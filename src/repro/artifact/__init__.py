"""Flat compiled-circuit artifacts: save, load, mmap, share.

- :mod:`~repro.artifact.encoding` — the framed binary container (magic,
  version, CRC, section directory) and :class:`ArtifactError`.
- :mod:`~repro.artifact.store` — :class:`FrozenSdd` /
  :class:`FrozenDdnnf` / :class:`FrozenObdd`: immutable array-backed node
  stores with evaluators bit-identical to the live ones, freezable from
  managers or wrapped around an mmap-ed file read-only.
- :mod:`~repro.artifact.format` — per-kind schemas, ``Compiled`` save/
  load, vtree/NNF/circuit codecs, and pysdd ``.sdd``/``.vtree`` interop.
"""

from .encoding import (
    Artifact,
    ArtifactError,
    load_artifact_bytes,
    open_artifact,
    pack_artifact,
    write_artifact,
)
from .format import (
    KIND_CIRCUIT,
    KIND_DDNNF,
    KIND_NNF,
    KIND_OBDD,
    KIND_SDD,
    KIND_VTREE,
    circuit_from_bytes,
    circuit_to_bytes,
    export_sdd_text,
    export_vtree_text,
    import_sdd_text,
    import_vtree_text,
    load_compiled,
    load_store,
    load_vtree,
    nnf_from_bytes,
    nnf_to_bytes,
    read_pysdd,
    save_compiled,
    save_vtree,
    vtree_from_bytes,
    vtree_from_pysdd,
    vtree_to_bytes,
    write_pysdd,
)
from .store import (
    FrozenCompiled,
    FrozenDdnnf,
    FrozenDdnnfWmc,
    FrozenObdd,
    FrozenSdd,
    FrozenSddWmc,
)

__all__ = [
    "Artifact",
    "ArtifactError",
    "open_artifact",
    "load_artifact_bytes",
    "pack_artifact",
    "write_artifact",
    "KIND_VTREE",
    "KIND_SDD",
    "KIND_DDNNF",
    "KIND_OBDD",
    "KIND_NNF",
    "KIND_CIRCUIT",
    "FrozenSdd",
    "FrozenSddWmc",
    "FrozenDdnnf",
    "FrozenDdnnfWmc",
    "FrozenObdd",
    "FrozenCompiled",
    "save_compiled",
    "load_compiled",
    "load_store",
    "save_vtree",
    "load_vtree",
    "vtree_to_bytes",
    "vtree_from_bytes",
    "nnf_to_bytes",
    "nnf_from_bytes",
    "circuit_to_bytes",
    "circuit_from_bytes",
    "export_vtree_text",
    "export_sdd_text",
    "import_vtree_text",
    "import_sdd_text",
    "vtree_from_pysdd",
    "write_pysdd",
    "read_pysdd",
]
