"""Artifact kinds: what goes inside the container for each structure.

:mod:`repro.artifact.encoding` owns the framing (magic, version, CRC,
section directory); this module owns the per-kind section schemas and the
public save/load surface:

========  =======================  ==========================================
kind      payload sections         loader
========  =======================  ==========================================
VTREE     ``vars``, ``vt``         :func:`load_vtree`
SDD       FrozenSdd tables         :class:`~repro.artifact.store.FrozenSdd`
DDNNF     FrozenDdnnf tables       :class:`~repro.artifact.store.FrozenDdnnf`
OBDD      FrozenObdd tables        :class:`~repro.artifact.store.FrozenObdd`
NNF       ``json``                 :func:`nnf_from_bytes`
CIRCUIT   ``json``                 :func:`circuit_from_bytes`
========  =======================  ==========================================

Compiled artifacts (``Compiled.save(path)`` / :func:`load_compiled`) are
SDD/DDNNF/OBDD stores carrying two extra sections: ``meta`` (backend,
strategy, size, width, …) and ``circuit`` (the compiled circuit, so the
loaded handle can answer ``model_count``/``probability`` with the same
extra-variable corrections as the live one).

The module also speaks the **pysdd text convention** (``.sdd`` /
``.vtree`` files as used by the SDD package ecosystem and the nnf2sdd
exemplar): :func:`write_pysdd` / :func:`read_pysdd` and the string-level
:func:`export_vtree_text` / :func:`export_sdd_text` /
:func:`import_sdd_text`.  Caveats: the text format identifies variables
by 1-based integers, so names ride along in ``c var`` comment lines (and
default to ``v<i>`` on import); foreign files may contain decision nodes
our manager would have trimmed — they load fine into a
:class:`FrozenSdd`, but :meth:`FrozenSdd.to_manager` re-canonicalizes.
"""

from __future__ import annotations

import json
from typing import Sequence

from ..core.vtree import Vtree
from .encoding import (
    DTYPE_BYTES,
    DTYPE_I32,
    KIND_CIRCUIT,
    KIND_DDNNF,
    KIND_NNF,
    KIND_OBDD,
    KIND_SDD,
    KIND_VTREE,
    Artifact,
    ArtifactError,
    load_artifact_bytes,
    open_artifact,
    pack_artifact,
    pack_strings,
    write_artifact,
)
from .store import (
    FrozenCompiled,
    FrozenDdnnf,
    FrozenObdd,
    FrozenSdd,
    _i32,
    _meta_bytes,
)

__all__ = [
    "KIND_VTREE",
    "KIND_SDD",
    "KIND_DDNNF",
    "KIND_OBDD",
    "KIND_NNF",
    "KIND_CIRCUIT",
    "vtree_to_bytes",
    "vtree_from_bytes",
    "save_vtree",
    "load_vtree",
    "nnf_to_bytes",
    "nnf_from_bytes",
    "circuit_to_bytes",
    "circuit_from_bytes",
    "save_compiled",
    "load_compiled",
    "load_store",
    "export_vtree_text",
    "export_sdd_text",
    "import_vtree_text",
    "import_sdd_text",
    "write_pysdd",
    "read_pysdd",
]


# ----------------------------------------------------------------------
# vtrees
# ----------------------------------------------------------------------
def _vtree_sections(vtree: Vtree) -> list[tuple[str, int, bytes]]:
    vars_tab: list[str] = []
    codes: list[int] = []
    for op in vtree.to_postfix():
        if op is None:
            codes.append(-1)
        else:
            codes.append(len(vars_tab))
            vars_tab.append(op)
    return [
        ("vars", DTYPE_BYTES, pack_strings(vars_tab)),
        ("vt", DTYPE_I32, _i32(codes)),
    ]


def vtree_to_bytes(vtree: Vtree) -> bytes:
    """A standalone vtree artifact image (kind ``VTREE``)."""
    return pack_artifact(KIND_VTREE, _vtree_sections(vtree))


def _vtree_from_artifact(art: Artifact) -> Vtree:
    vars_tab = art.strings("vars")
    ops: list[str | None] = []
    for c in art.i32("vt"):
        if c == -1:
            ops.append(None)
        elif 0 <= c < len(vars_tab):
            ops.append(vars_tab[c])
        else:
            raise ArtifactError(f"bad vtree leaf code {c}", path=art.path)
    try:
        return Vtree.from_postfix(ops)
    except ValueError as exc:
        raise ArtifactError(str(exc), path=art.path) from None


def vtree_from_bytes(data: bytes) -> Vtree:
    with load_artifact_bytes(data, expect_kind=KIND_VTREE) as art:
        return _vtree_from_artifact(art)


def save_vtree(path, vtree: Vtree) -> None:
    write_artifact(path, KIND_VTREE, _vtree_sections(vtree))


def load_vtree(path) -> Vtree:
    with open_artifact(path, expect_kind=KIND_VTREE) as art:
        return _vtree_from_artifact(art)


# ----------------------------------------------------------------------
# NNF / circuit payloads (the consolidated framing for
# repro.circuits.serialize — one container, one varint codec, one CRC)
# ----------------------------------------------------------------------
def _json_artifact(kind: int, payload: dict) -> bytes:
    data = json.dumps(payload, sort_keys=True).encode("utf-8")
    return pack_artifact(kind, [("json", DTYPE_BYTES, data)])


def _json_payload(data: bytes, kind: int) -> dict:
    with load_artifact_bytes(data, expect_kind=kind) as art:
        try:
            return json.loads(bytes(art.raw("json")).decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise ArtifactError("corrupt json payload", path=art.path) from None


def nnf_to_bytes(root) -> bytes:
    """Serialize an NNF DAG into the shared artifact container."""
    from ..circuits.serialize import nnf_to_dict

    return _json_artifact(KIND_NNF, nnf_to_dict(root))


def nnf_from_bytes(data: bytes):
    from ..circuits.serialize import nnf_from_dict

    return nnf_from_dict(_json_payload(data, KIND_NNF))


def circuit_to_bytes(circuit) -> bytes:
    """Serialize a circuit into the shared artifact container."""
    from ..circuits.serialize import circuit_to_dict

    return _json_artifact(KIND_CIRCUIT, circuit_to_dict(circuit))


def circuit_from_bytes(data: bytes):
    from ..circuits.serialize import circuit_from_dict

    return circuit_from_dict(_json_payload(data, KIND_CIRCUIT))


# ----------------------------------------------------------------------
# compiled artifacts
# ----------------------------------------------------------------------
_STORE_KIND = {FrozenSdd: KIND_SDD, FrozenDdnnf: KIND_DDNNF, FrozenObdd: KIND_OBDD}


def _write_compiled_store(path, store, meta, circuit) -> None:
    from ..circuits.serialize import circuit_to_dict

    sections = [s for s in store.sections() if s[0] != "meta"]
    sections.append(("meta", DTYPE_BYTES, _meta_bytes(meta)))
    sections.append(
        (
            "circuit",
            DTYPE_BYTES,
            json.dumps(circuit_to_dict(circuit), sort_keys=True).encode("utf-8"),
        )
    )
    write_artifact(path, _STORE_KIND[type(store)], sections)


def save_compiled(compiled, path) -> None:
    """Save any backend's ``Compiled`` result as a flat artifact.

    A ``race`` result saves its winner (under the winner's backend name);
    an already-frozen result re-saves its sections verbatim.
    """
    winner = getattr(compiled, "winner", None)
    if winner is not None:
        save_compiled(winner, path)
        return
    if isinstance(compiled, FrozenCompiled):
        compiled.save(path)
        return
    backend = compiled.backend
    meta = {
        "backend": backend,
        "strategy": compiled.strategy,
        "decomposition_width": compiled.decomposition_width,
        "size": compiled.size,
        "width": compiled.width,
    }
    if backend == "apply":
        store = FrozenSdd.from_manager(compiled.manager, [compiled.root])
    elif backend == "canonical":
        mgr, root = compiled._reuse_as_manager_sdd()
        store = FrozenSdd.from_manager(mgr, [root])
    elif backend == "obdd":
        store = FrozenObdd.from_manager(compiled.manager, [compiled.root])
        meta["vtree_postfix"] = compiled.vtree.to_postfix()
    elif backend == "ddnnf":
        store = FrozenDdnnf.from_dag(compiled.dag, [compiled.root])
        meta["vtree_postfix"] = compiled.vtree.to_postfix()
    else:
        raise ValueError(f"cannot save backend {backend!r} as an artifact")
    _write_compiled_store(path, store, meta, compiled.circuit)


def load_store(path, *, use_mmap: bool = True):
    """Open any SDD/DDNNF/OBDD artifact as its frozen store."""
    art = open_artifact(path, use_mmap=use_mmap)
    try:
        if art.kind == KIND_SDD:
            return FrozenSdd.from_artifact(art)
        if art.kind == KIND_DDNNF:
            return FrozenDdnnf.from_artifact(art)
        if art.kind == KIND_OBDD:
            return FrozenObdd.from_artifact(art)
        raise ArtifactError(
            f"artifact kind {art.kind} is not a compiled store", path=art.path
        )
    except ArtifactError:
        art.close()
        raise


def load_compiled(path, *, use_mmap: bool = True) -> FrozenCompiled:
    """Load a ``Compiled.save()`` artifact as a :class:`FrozenCompiled`.

    The store sections are mmap-backed (zero copy); the small meta and
    circuit sections are decoded eagerly.
    """
    from ..circuits.serialize import circuit_from_dict

    store = load_store(path, use_mmap=use_mmap)
    art = store._artifact
    if art is None or "circuit" not in art:
        store.close()
        raise ArtifactError(
            "artifact has no circuit section (an engine artifact? "
            "use FrozenSdd.load instead)", path=str(path),
        )
    try:
        payload = json.loads(bytes(art.raw("circuit")).decode("utf-8"))
        circuit = circuit_from_dict(payload)
    except (ValueError, UnicodeDecodeError):
        store.close()
        raise ArtifactError("corrupt circuit section", path=art.path) from None
    if "backend" not in store.meta or "size" not in store.meta:
        store.close()
        raise ArtifactError("compiled artifact missing meta fields", path=art.path)
    return FrozenCompiled(store, meta=store.meta, circuit=circuit)


# ----------------------------------------------------------------------
# pysdd text convention (.vtree / .sdd)
# ----------------------------------------------------------------------
def export_vtree_text(vtree: Vtree) -> str:
    """The pysdd ``.vtree`` file: nodes bottom-up, ids = postorder
    positions, variables 1-based in left-to-right leaf order.  Variable
    names ride in ``c var`` comments (ignored by other readers)."""
    lines = [
        "c ids of vtree nodes start at 0",
        "c ids of variables start at 1",
        "c vtree nodes appear bottom-up, children before parents",
    ]
    ops = vtree.to_postfix()
    leaves = [op for op in ops if op is not None]
    for i, name in enumerate(leaves):
        lines.append(f"c var {i + 1} {name}")
    lines.append(f"vtree {len(ops)}")
    var_no = 0
    stack: list[int] = []
    for k, op in enumerate(ops):
        if op is None:
            right = stack.pop()
            left = stack.pop()
            lines.append(f"I {k} {left} {right}")
        else:
            var_no += 1
            lines.append(f"L {k} {var_no}")
        stack.append(k)
    return "\n".join(lines) + "\n"


def export_sdd_text(frozen: FrozenSdd, root: int | None = None) -> str:
    """The pysdd ``.sdd`` file for one root: nodes children-first, root
    last; literals are signed 1-based variable ints; every node carries
    the id of the vtree node it is normalized for."""
    if root is None:
        root = frozen.roots[0]
    order = sorted(frozen.reachable(root))
    fid = {u: i for i, u in enumerate(order)}
    lines = [
        "c ids of sdd nodes start at 0",
        "c sdd nodes appear bottom-up, children before parents",
        f"sdd {len(order)}",
    ]
    for u in order:
        if u == 0:
            lines.append(f"F {fid[u]}")
        elif u == 1:
            lines.append(f"T {fid[u]}")
        elif u < frozen.dec_base:
            code = frozen.lits[u - 2]
            var_no = (code >> 1) + 1
            lit = var_no if code & 1 else -var_no
            lines.append(f"L {fid[u]} {frozen.leaf_pos[code >> 1]} {lit}")
        else:
            j = u - frozen.dec_base
            parts = [f"D {fid[u]} {frozen.dec_vnode[j]}",
                     str(frozen.dec_off[j + 1] - frozen.dec_off[j])]
            for p, s in frozen.elements(u):
                parts.append(f"{fid[p]} {fid[s]}")
            lines.append(" ".join(parts))
    # Root-last convention: move the root's line to the end if it is not
    # already there (ascending frozen ids put it last except when the
    # root is a constant or literal under other reachable nodes — which
    # cannot happen: the root is the maximal reachable id or a constant).
    return "\n".join(lines) + "\n"


def import_vtree_text(text: str):
    """Parse a pysdd ``.vtree`` file.

    Returns ``(vars_tab, vt_codes, pos_of_file_id, idx_of_var_int)`` —
    everything both :func:`import_sdd_text` and plain vtree loading need.
    """
    names: dict[int, str] = {}
    leaves: dict[int, int] = {}
    internals: dict[int, tuple[int, int]] = {}
    declared: int | None = None
    for ln, line in enumerate(text.splitlines(), 1):
        toks = line.split()
        if not toks:
            continue
        if toks[0] == "c":
            if len(toks) >= 4 and toks[1] == "var":
                try:
                    names[int(toks[2])] = " ".join(toks[3:])
                except ValueError:
                    pass
            continue
        try:
            if toks[0] == "vtree" and len(toks) == 2:
                declared = int(toks[1])
            elif toks[0] == "L" and len(toks) == 3:
                leaves[int(toks[1])] = int(toks[2])
            elif toks[0] == "I" and len(toks) == 4:
                internals[int(toks[1])] = (int(toks[2]), int(toks[3]))
            else:
                raise ValueError
        except ValueError:
            raise ArtifactError(f"bad vtree line {ln}: {line!r}") from None
    node_ids = set(leaves) | set(internals)
    if not node_ids:
        raise ArtifactError("empty vtree file")
    if declared is not None and declared != len(node_ids):
        raise ArtifactError(
            f"vtree header declares {declared} nodes, file has {len(node_ids)}"
        )
    children = {c for lr in internals.values() for c in lr}
    roots = node_ids - children
    if len(roots) != 1:
        raise ArtifactError(f"vtree file has {len(roots)} roots")
    (root,) = roots
    # Iterative postorder over the file's tree.
    vars_tab: list[str] = []
    idx_of_var_int: dict[int, int] = {}
    vt_codes: list[int] = []
    pos_of_file_id: dict[int, int] = {}
    stack: list[tuple[int, bool]] = [(root, False)]
    while stack:
        nid, expanded = stack.pop()
        if expanded or nid in leaves:
            pos_of_file_id[nid] = len(vt_codes)
            if nid in leaves:
                var_int = leaves[nid]
                if var_int in idx_of_var_int:
                    raise ArtifactError(f"duplicate variable {var_int} in vtree file")
                idx_of_var_int[var_int] = len(vars_tab)
                vt_codes.append(len(vars_tab))
                vars_tab.append(names.get(var_int, f"v{var_int}"))
            else:
                vt_codes.append(-1)
        else:
            left, right = internals[nid]
            if left not in node_ids or right not in node_ids:
                raise ArtifactError(f"vtree node {nid} has undefined children")
            stack.append((nid, True))
            stack.append((right, False))
            stack.append((left, False))
    if len(vt_codes) != len(node_ids):
        raise ArtifactError("vtree file is not a tree (shared or cyclic nodes)")
    return vars_tab, vt_codes, pos_of_file_id, idx_of_var_int


def vtree_from_pysdd(text: str) -> Vtree:
    vars_tab, vt_codes, _, _ = import_vtree_text(text)
    return Vtree.from_postfix(
        [vars_tab[c] if c >= 0 else None for c in vt_codes]
    )


def import_sdd_text(sdd_text: str, vtree_text: str) -> FrozenSdd:
    """Parse a pysdd ``.sdd`` + ``.vtree`` pair into a :class:`FrozenSdd`
    (one root: the last node listed, per the convention)."""
    vars_tab, vt_codes, pos_of_file_id, idx_of_var_int = import_vtree_text(vtree_text)
    lits_by_file: dict[int, tuple[int, bool]] = {}
    decs: list[tuple[int, int, list[tuple[int, int]]]] = []  # (file id, vnode pos, elements)
    consts: dict[int, int] = {}
    declared: int | None = None
    last_id: int | None = None
    for ln, line in enumerate(sdd_text.splitlines(), 1):
        toks = line.split()
        if not toks or toks[0] == "c":
            continue
        try:
            if toks[0] == "sdd" and len(toks) == 2:
                declared = int(toks[1])
                continue
            nid = int(toks[1])
            if toks[0] == "F" and len(toks) == 2:
                consts[nid] = 0
            elif toks[0] == "T" and len(toks) == 2:
                consts[nid] = 1
            elif toks[0] == "L" and len(toks) == 4:
                lit = int(toks[3])
                var_int = abs(lit)
                if var_int not in idx_of_var_int:
                    raise ValueError
                lits_by_file[nid] = (idx_of_var_int[var_int], lit > 0)
            elif toks[0] == "D" and len(toks) >= 4:
                vfile = int(toks[2])
                count = int(toks[3])
                ids = [int(t) for t in toks[4:]]
                if len(ids) != 2 * count or vfile not in pos_of_file_id:
                    raise ValueError
                pairs = [(ids[2 * i], ids[2 * i + 1]) for i in range(count)]
                decs.append((nid, pos_of_file_id[vfile], pairs))
            else:
                raise ValueError
        except (ValueError, IndexError):
            raise ArtifactError(f"bad sdd line {ln}: {line!r}") from None
        last_id = nid
    total = len(consts) + len(lits_by_file) + len(decs)
    if last_id is None:
        raise ArtifactError("empty sdd file")
    if declared is not None and declared != total:
        raise ArtifactError(
            f"sdd header declares {declared} nodes, file has {total}"
        )
    # Frozen id assignment: literals sorted by (var idx, sign), then
    # decisions in file (= children-first) order.
    lit_files = sorted(lits_by_file, key=lambda f: lits_by_file[f])
    fmap: dict[int, int] = {}
    for f, c in consts.items():
        fmap[f] = c
    seen_codes: set[int] = set()
    lits: list[int] = []
    for i, f in enumerate(lit_files):
        idx, sign = lits_by_file[f]
        code = idx * 2 + (1 if sign else 0)
        if code in seen_codes:
            raise ArtifactError(f"duplicate literal node for code {code}")
        seen_codes.add(code)
        fmap[f] = 2 + i
        lits.append(code)
    base = 2 + len(lits)
    dec_vnode: list[int] = []
    dec_off = [0]
    elems: list[int] = []
    for j, (f, vn, pairs) in enumerate(decs):
        if f in fmap:
            raise ArtifactError(f"duplicate sdd node id {f}")
        fmap[f] = base + j
    for f, vn, pairs in decs:
        dec_vnode.append(vn)
        for p, s in pairs:
            if p not in fmap or s not in fmap:
                raise ArtifactError(
                    f"decision {f} references undefined node ({p}, {s})"
                )
            elems.append(fmap[p])
            elems.append(fmap[s])
        dec_off.append(len(elems) // 2)
    return FrozenSdd(
        vars_tab, vt_codes, lits, dec_vnode, dec_off, elems, [fmap[last_id]]
    )


def write_pysdd(frozen: FrozenSdd, sdd_path, vtree_path,
                root: int | None = None) -> None:
    """Write a ``.sdd``/``.vtree`` pair in the pysdd text convention."""
    with open(vtree_path, "w") as fh:
        fh.write(export_vtree_text(frozen.vtree()))
    with open(sdd_path, "w") as fh:
        fh.write(export_sdd_text(frozen, root))


def read_pysdd(sdd_path, vtree_path) -> FrozenSdd:
    """Read a ``.sdd``/``.vtree`` pair into a :class:`FrozenSdd`."""
    with open(vtree_path) as fh:
        vtree_text = fh.read()
    with open(sdd_path) as fh:
        sdd_text = fh.read()
    return import_sdd_text(sdd_text, vtree_text)
