"""The one framing layer for every on-disk artifact.

Every flat file this repo writes — compiled SDDs, d-DNNF DAGs, OBDDs,
vtrees, and the binary circuit/NNF payloads — goes through this module:
one magic, one version field, one CRC, one section directory, one varint
codec.  Consolidating the framing here (instead of per-format ``"format":
"repro-xyz-v1"`` keys) is what makes corruption detection uniform: any
byte flip anywhere in a file surfaces as a typed :class:`ArtifactError`
with byte-offset context, never a silent wrong answer or a bare
``struct.error``.

File layout (all integers little-endian)::

    bytes 0..8    magic  b"REPROART"
    bytes 8..10   format version (u16)
    bytes 10..12  artifact kind  (u16; see repro.artifact.format)
    bytes 12..16  CRC-32 of every byte after the header
    ------------- payload (covered by the CRC) -------------
    uvarint       section count
    per section:  uvarint name length, name (ascii),
                  u8 dtype (0=bytes, 1=i32, 2=i64, 3=u8),
                  uvarint payload byte length
    padding       zeros to the next 8-byte boundary
    sections      each section's payload, zero-padded to 8-byte alignment

Sections are 8-byte aligned so a reader can hand out **zero-copy typed
views** straight into an ``mmap``-ed file (``memoryview.cast("i")`` /
``("q")``) — the node tables of a frozen store are then shared read-only
by every process that maps the file, which is the whole point of the
artifact tier.
"""

from __future__ import annotations

import mmap
import os
import struct
import sys
import zlib
from typing import Iterable, Sequence

__all__ = [
    "ArtifactError",
    "Artifact",
    "MAGIC",
    "VERSION",
    "KIND_VTREE",
    "KIND_SDD",
    "KIND_DDNNF",
    "KIND_OBDD",
    "KIND_NNF",
    "KIND_CIRCUIT",
    "read_uvarint",
    "write_uvarint",
    "pack_strings",
    "unpack_strings",
    "pack_artifact",
    "write_artifact",
    "open_artifact",
    "load_artifact_bytes",
]

MAGIC = b"REPROART"
VERSION = 1

# Artifact kinds (the u16 in the header).  Defined here, next to the
# framing they are part of; re-exported by repro.artifact.format.
KIND_VTREE = 1
KIND_SDD = 2
KIND_DDNNF = 3
KIND_OBDD = 4
KIND_NNF = 5
KIND_CIRCUIT = 6

_HEADER = struct.Struct("<8sHHI")  # magic, version, kind, crc32
HEADER_SIZE = _HEADER.size  # 16

# Section dtype codes.
DTYPE_BYTES = 0
DTYPE_I32 = 1
DTYPE_I64 = 2
DTYPE_U8 = 3
_DTYPES = (DTYPE_BYTES, DTYPE_I32, DTYPE_I64, DTYPE_U8)
_ITEMSIZE = {DTYPE_BYTES: 1, DTYPE_I32: 4, DTYPE_I64: 8, DTYPE_U8: 1}
_CAST = {DTYPE_I32: "i", DTYPE_I64: "q"}

assert struct.calcsize("i") == 4 and struct.calcsize("q") == 8


class ArtifactError(Exception):
    """A malformed, truncated, corrupt, or version-mismatched artifact.

    Carries the byte ``offset`` where the problem was detected and the
    ``path`` of the file (when reading from disk), so operators can tell
    a flipped byte from a truncated upload from an old writer.
    """

    def __init__(self, message: str, *, offset: int | None = None,
                 path: str | None = None):
        self.offset = offset
        self.path = path
        parts = [message]
        if offset is not None:
            parts.append(f"at byte {offset}")
        if path is not None:
            parts.append(f"in {path}")
        super().__init__(" ".join(parts))


# ----------------------------------------------------------------------
# varints and string tables
# ----------------------------------------------------------------------
def write_uvarint(out: bytearray, value: int) -> None:
    """Append ``value`` as an unsigned LEB128 varint."""
    if value < 0:
        raise ValueError("uvarint cannot encode negative values")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_uvarint(buf, pos: int, *, path: str | None = None) -> tuple[int, int]:
    """Read an unsigned LEB128 varint at ``pos``; returns ``(value, end)``.

    Raises :class:`ArtifactError` (with the offending offset) on
    truncation or a varint longer than 64 bits.
    """
    value = 0
    shift = 0
    n = len(buf)
    start = pos
    while True:
        if pos >= n:
            raise ArtifactError("truncated varint", offset=start, path=path)
        if shift > 63:
            raise ArtifactError("varint overflow", offset=start, path=path)
        byte = buf[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


def pack_strings(strings: Iterable[str]) -> bytes:
    """A varint-framed UTF-8 string table (count, then len+bytes each)."""
    items = list(strings)
    out = bytearray()
    write_uvarint(out, len(items))
    for s in items:
        data = s.encode("utf-8")
        write_uvarint(out, len(data))
        out += data
    return bytes(out)


def unpack_strings(buf, *, path: str | None = None) -> list[str]:
    """Inverse of :func:`pack_strings`; validates framing."""
    count, pos = read_uvarint(buf, 0, path=path)
    out: list[str] = []
    for _ in range(count):
        length, pos = read_uvarint(buf, pos, path=path)
        end = pos + length
        if end > len(buf):
            raise ArtifactError("truncated string table", offset=pos, path=path)
        try:
            out.append(bytes(buf[pos:end]).decode("utf-8"))
        except UnicodeDecodeError:
            raise ArtifactError("corrupt string table", offset=pos, path=path) from None
        pos = end
    if pos != len(buf):
        raise ArtifactError("trailing bytes after string table", offset=pos, path=path)
    return out


def _align8(n: int) -> int:
    return (n + 7) & ~7


def _to_le(dtype: int, data: bytes) -> bytes:
    """Arrays are stored little-endian; byteswap on big-endian hosts."""
    if sys.byteorder == "little" or _ITEMSIZE[dtype] == 1:
        return data
    import array as _array  # pragma: no cover - big-endian hosts only

    a = _array.array(_CAST[dtype], data)
    a.byteswap()
    return a.tobytes()


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------
def pack_artifact(kind: int, sections: Sequence[tuple[str, int, bytes]]) -> bytes:
    """Assemble a complete artifact file image.

    ``sections`` is a sequence of ``(name, dtype, payload_bytes)``; typed
    sections must have a byte length divisible by their item size.
    """
    directory = bytearray()
    write_uvarint(directory, len(sections))
    for name, dtype, data in sections:
        if dtype not in _DTYPES:
            raise ValueError(f"unknown section dtype {dtype}")
        if len(data) % _ITEMSIZE[dtype]:
            raise ValueError(
                f"section {name!r}: {len(data)} bytes is not a multiple of "
                f"the item size {_ITEMSIZE[dtype]}"
            )
        encoded = name.encode("ascii")
        write_uvarint(directory, len(encoded))
        directory += encoded
        directory.append(dtype)
        write_uvarint(directory, len(data))
    payload = bytearray(directory)
    payload += b"\0" * (_align8(HEADER_SIZE + len(directory)) - HEADER_SIZE - len(directory))
    for _, dtype, data in sections:
        payload += _to_le(dtype, data)
        payload += b"\0" * (_align8(len(data)) - len(data))
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return _HEADER.pack(MAGIC, VERSION, kind, crc) + bytes(payload)


def write_artifact(path, kind: int, sections: Sequence[tuple[str, int, bytes]]) -> None:
    """Atomically write an artifact file (temp file + rename, so a reader
    mmap-ing the path never sees a half-written image)."""
    data = pack_artifact(kind, sections)
    path = os.fspath(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:
        fh.write(data)
    os.replace(tmp, path)


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------
class Artifact:
    """A parsed, CRC-verified artifact: typed zero-copy section views.

    Construct via :func:`open_artifact` (mmap-backed) or
    :func:`load_artifact_bytes`.  Close mmap-backed instances when done
    (or use as a context manager); views handed out become invalid after
    :meth:`close`.
    """

    def __init__(self, buf, *, path: str | None = None, mm=None, fh=None,
                 expect_kind: int | None = None):
        self._buf = memoryview(buf)
        self._mm = mm
        self._fh = fh
        self.path = path
        n = len(self._buf)
        if n < HEADER_SIZE:
            raise ArtifactError("truncated header", offset=n, path=path)
        magic, version, kind, crc = _HEADER.unpack(self._buf[:HEADER_SIZE])
        if magic != MAGIC:
            raise ArtifactError("bad magic (not a repro artifact)", offset=0, path=path)
        # The header itself is outside the CRC, so each field is validated
        # individually; version 0 never shipped, so it is corruption too.
        if version > VERSION or version == 0:
            raise ArtifactError(
                f"unsupported artifact version {version} (reader supports "
                f"1..{VERSION})",
                offset=8, path=path,
            )
        if expect_kind is not None and kind != expect_kind:
            raise ArtifactError(
                f"artifact kind {kind} does not match expected {expect_kind}",
                offset=10, path=path,
            )
        payload = self._buf[HEADER_SIZE:]
        actual = zlib.crc32(payload) & 0xFFFFFFFF
        if actual != crc:
            raise ArtifactError(
                f"CRC mismatch (stored {crc:#010x}, computed {actual:#010x}): "
                "artifact is corrupt", offset=12, path=path,
            )
        self.version = version
        self.kind = kind
        # Parse the section directory.
        count, pos = read_uvarint(payload, 0, path=path)
        entries: list[tuple[str, int, int]] = []
        for _ in range(count):
            nlen, pos = read_uvarint(payload, pos, path=path)
            end = pos + nlen
            if end > len(payload):
                raise ArtifactError("truncated section name",
                                    offset=HEADER_SIZE + pos, path=path)
            try:
                name = bytes(payload[pos:end]).decode("ascii")
            except UnicodeDecodeError:
                raise ArtifactError("corrupt section name",
                                    offset=HEADER_SIZE + pos, path=path) from None
            pos = end
            if pos >= len(payload):
                raise ArtifactError("truncated section dtype",
                                    offset=HEADER_SIZE + pos, path=path)
            dtype = payload[pos]
            pos += 1
            if dtype not in _DTYPES:
                raise ArtifactError(f"unknown section dtype {dtype}",
                                    offset=HEADER_SIZE + pos - 1, path=path)
            length, pos = read_uvarint(payload, pos, path=path)
            entries.append((name, dtype, length))
        data_pos = _align8(HEADER_SIZE + pos) - HEADER_SIZE
        self._sections: dict[str, tuple[int, int, int]] = {}
        for name, dtype, length in entries:
            if length % _ITEMSIZE[dtype]:
                raise ArtifactError(
                    f"section {name!r} length {length} not aligned to item size",
                    offset=HEADER_SIZE + data_pos, path=path,
                )
            end = data_pos + length
            if end > len(payload):
                raise ArtifactError(
                    f"section {name!r} runs past end of file",
                    offset=HEADER_SIZE + data_pos, path=path,
                )
            self._sections[name] = (dtype, HEADER_SIZE + data_pos, length)
            data_pos = _align8(end)

    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        return list(self._sections)

    def __contains__(self, name: str) -> bool:
        return name in self._sections

    def _entry(self, name: str) -> tuple[int, int, int]:
        try:
            return self._sections[name]
        except KeyError:
            raise ArtifactError(f"missing section {name!r}", path=self.path) from None

    def raw(self, name: str) -> memoryview:
        """The section's bytes as a read-only view (no copy)."""
        dtype, off, length = self._entry(name)
        return self._buf[off:off + length]

    def i32(self, name: str) -> memoryview:
        """Zero-copy ``int32`` view (mmap-shared when the file is mapped)."""
        dtype, off, length = self._entry(name)
        if dtype != DTYPE_I32:
            raise ArtifactError(f"section {name!r} is not i32", path=self.path)
        return self._le_view(name, "i")

    def i64(self, name: str) -> memoryview:
        dtype, off, length = self._entry(name)
        if dtype != DTYPE_I64:
            raise ArtifactError(f"section {name!r} is not i64", path=self.path)
        return self._le_view(name, "q")

    def _le_view(self, name: str, code: str):
        view = self.raw(name)
        if sys.byteorder != "little":  # pragma: no cover - big-endian hosts
            import array as _array

            a = _array.array(code, bytes(view))
            a.byteswap()
            return a
        return view.cast(code)

    def strings(self, name: str) -> list[str]:
        return unpack_strings(self.raw(name), path=self.path)

    def close(self) -> None:
        self._buf.release()
        if self._mm is not None:
            self._mm.close()
            self._mm = None
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Artifact":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def open_artifact(path, *, expect_kind: int | None = None,
                  use_mmap: bool = True) -> Artifact:
    """Open, verify, and parse an artifact file.

    With ``use_mmap=True`` (default) the file is mapped read-only and all
    section views alias the mapping — N processes opening the same path
    share one copy of the node tables through the page cache.
    """
    path = os.fspath(path)
    try:
        fh = open(path, "rb")
    except OSError as exc:
        raise ArtifactError(f"cannot open artifact: {exc}", path=path) from None
    try:
        if use_mmap and os.fstat(fh.fileno()).st_size > 0:
            mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            return Artifact(mm, path=path, mm=mm, fh=fh, expect_kind=expect_kind)
        data = fh.read()
        fh.close()
        return Artifact(data, path=path, expect_kind=expect_kind)
    except ArtifactError:
        fh.close()
        raise


def load_artifact_bytes(data: bytes, *, expect_kind: int | None = None) -> Artifact:
    """Parse an in-memory artifact image (e.g. from a network transfer)."""
    return Artifact(data, expect_kind=expect_kind)
