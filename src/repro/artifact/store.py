"""Immutable array-backed node stores for compiled circuits.

A *frozen* store is the flat, position-indexed twin of a live structure:

- :class:`FrozenSdd`   ↔ :class:`repro.sdd.manager.SddManager` (one vtree,
  many pinned roots),
- :class:`FrozenDdnnf` ↔ :class:`repro.dnnf.nodes.DnnfDag`,
- :class:`FrozenObdd`  ↔ :class:`repro.obdd.obdd.ObddManager`.

Each holds nothing but integer tables (node kinds, element pairs, child
lists, vtree shape) plus a variable-name table — exactly the sections of
the on-disk artifact format, so a store can either be **frozen** from a
live manager (``from_manager`` / ``from_dag``) or **wrap an mmap-ed file
read-only** with zero copying (:meth:`load`): the evaluators below index
straight into the mapped page cache, and N worker processes opening the
same path share one physical copy of the compiled circuit.

The queries a store answers — WMC, model count, evaluate, size/width —
run as iterative sweeps over the arrays and are **op-for-op replicas** of
the live evaluators (:class:`repro.sdd.wmc.SddWmcEvaluator`,
:class:`repro.dnnf.wmc.DnnfWmcEvaluator`, the ``ObddManager`` sweeps):
same child iteration order, same gap-product climb order, same initial
``int`` accumulators.  Exact-``Fraction`` results are equal by
mathematics; **float results are equal bit-for-bit**, which is what lets
a warm-started worker pool assert answers identical to the process that
compiled the artifact.

Freezing renumbers nodes into a canonical dense id space (constants,
then literals sorted by ``(var, sign)``, then decisions in creation-stamp
order), so ``freeze → write → load`` is deterministic and ascending-id
sweeps stay topological.  The thaw paths (:meth:`FrozenSdd.to_manager`,
:meth:`FrozenDdnnf.to_dag`, :meth:`FrozenObdd.to_manager`) rebuild live
structures for sessions that need apply/minimize on a loaded artifact.
"""

from __future__ import annotations

import json
from array import array
from fractions import Fraction
from typing import Mapping, Sequence

from ..core.vtree import Vtree
from ..sdd.wmc import exact_weights, float_weights
from .encoding import (
    DTYPE_BYTES,
    DTYPE_I32,
    DTYPE_I64,
    DTYPE_U8,
    KIND_DDNNF,
    KIND_OBDD,
    KIND_SDD,
    Artifact,
    ArtifactError,
    open_artifact,
    pack_strings,
    write_artifact,
)

__all__ = [
    "FrozenSdd",
    "FrozenSddWmc",
    "FrozenDdnnf",
    "FrozenDdnnfWmc",
    "FrozenObdd",
    "FrozenCompiled",
]

_FALSE = 0
_TRUE = 1


def _i32(values) -> bytes:
    return array("i", values).tobytes()


def _i64(values) -> bytes:
    return array("q", values).tobytes()


def _meta_bytes(meta: Mapping) -> bytes:
    return json.dumps(meta, sort_keys=True).encode("utf-8")


def _read_meta(art: Artifact) -> dict:
    if "meta" not in art:
        return {}
    try:
        return json.loads(bytes(art.raw("meta")).decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        raise ArtifactError("corrupt meta section", path=art.path) from None


def _release_views(obj, names: Sequence[str]) -> None:
    # Zero-copy stores keep casted memoryviews into the mmap as their
    # table attributes; those views pin the mapping, so they must be
    # released before Artifact.close() can unmap the file.
    for name in names:
        value = getattr(obj, name, None)
        if isinstance(value, memoryview):
            value.release()
            setattr(obj, name, None)


# ======================================================================
# FrozenSdd
# ======================================================================
class FrozenSdd:
    """An immutable compiled SDD: vtree + node tables + named roots.

    Node id space: ``0`` = FALSE, ``1`` = TRUE, then ``n_lits`` literals,
    then ``n_decs`` decision nodes; decision children always have smaller
    ids, so ascending id order is topological.  The vtree is stored as
    postfix codes over positions ``0..m-1`` (leaf → index into the
    variable table, internal → ``-1``); position ``m-1`` is the root.
    """

    def __init__(
        self,
        vars: Sequence[str],
        vt: Sequence[int],
        lits: Sequence[int],
        dec_vnode: Sequence[int],
        dec_off: Sequence[int],
        elems: Sequence[int],
        roots: Sequence[int],
        *,
        root_names: Sequence[str] | None = None,
        meta: Mapping | None = None,
        _artifact: Artifact | None = None,
    ):
        path = _artifact.path if _artifact is not None else None
        self.vars = list(vars)
        self.vt = vt
        self.lits = lits
        self.dec_vnode = dec_vnode
        self.dec_off = dec_off
        self.elems = elems
        self.roots = list(roots)
        self.root_names = list(root_names) if root_names is not None else None
        self.meta = dict(meta) if meta else {}
        self._artifact = _artifact
        # --- derive + validate the vtree shape ------------------------
        m = len(self.vt)
        n_vars = len(self.vars)
        if m != 2 * n_vars - 1 or n_vars == 0:
            raise ArtifactError(
                f"vtree postfix of {m} codes does not fit {n_vars} variables",
                path=path,
            )
        v_left = [-1] * m
        v_right = [-1] * m
        v_parent = [-1] * m
        leaf_pos = [-1] * n_vars
        stack: list[int] = []
        for k in range(m):
            c = self.vt[k]
            if c == -1:
                if len(stack) < 2:
                    raise ArtifactError("malformed vtree postfix", path=path)
                r = stack.pop()
                left = stack.pop()
                v_left[k], v_right[k] = left, r
                v_parent[left] = k
                v_parent[r] = k
            else:
                if not 0 <= c < n_vars or leaf_pos[c] != -1:
                    raise ArtifactError(
                        f"bad vtree leaf code {c} at position {k}", path=path
                    )
                leaf_pos[c] = k
            stack.append(k)
        if len(stack) != 1:
            raise ArtifactError("malformed vtree postfix", path=path)
        self.v_left = v_left
        self.v_right = v_right
        self.v_parent = v_parent
        self.leaf_pos = leaf_pos
        self.root_vnode = m - 1
        self.variables = frozenset(self.vars)
        # --- validate node tables -------------------------------------
        self.n_lits = len(self.lits)
        self.n_decs = len(self.dec_vnode)
        self.dec_base = 2 + self.n_lits
        self.node_count_total = self.dec_base + self.n_decs
        for i in range(self.n_lits):
            if not 0 <= self.lits[i] < 2 * n_vars:
                raise ArtifactError(f"bad literal code at index {i}", path=path)
        if len(self.dec_off) != self.n_decs + 1 or (
            self.n_decs >= 0 and len(self.dec_off) and self.dec_off[0] != 0
        ):
            raise ArtifactError("bad decision offset table", path=path)
        for j in range(self.n_decs):
            if self.dec_off[j] > self.dec_off[j + 1]:
                raise ArtifactError(
                    f"decision offsets not monotone at {j}", path=path
                )
            vn = self.dec_vnode[j]
            if not 0 <= vn < m or v_left[vn] == -1:
                raise ArtifactError(
                    f"decision {j} at invalid vtree position {vn}", path=path
                )
            uid = self.dec_base + j
            for i in range(2 * self.dec_off[j], 2 * self.dec_off[j + 1]):
                child = self.elems[i]
                if not 0 <= child < uid:
                    raise ArtifactError(
                        f"decision {j} references child {child} (not topological)",
                        path=path,
                    )
        if len(self.elems) != 2 * self.dec_off[self.n_decs]:
            raise ArtifactError("element table length mismatch", path=path)
        for r in self.roots:
            if not 0 <= r < self.node_count_total:
                raise ArtifactError(f"root id {r} out of range", path=path)
        if self.root_names is not None and len(self.root_names) != len(self.roots):
            raise ArtifactError("root name count mismatch", path=path)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_manager(
        cls,
        mgr,
        roots: Sequence[int],
        *,
        names: Sequence[str] | None = None,
        meta: Mapping | None = None,
    ) -> "FrozenSdd":
        """Freeze ``roots`` of a live :class:`SddManager`.

        Uses the manager's *current* postorder (correct after in-place
        rotations) and renumbers: literals sorted by ``(var, sign)``,
        decisions by creation stamp — child stamps precede parents, so
        the frozen ids are topological by construction.
        """
        order = mgr.vtree_postorder()
        pos: dict[int, int] = {}
        vars_tab: list[str] = []
        var_idx: dict[str, int] = {}
        vt: list[int] = []
        for k, vi in enumerate(order):
            pos[vi] = k
            if mgr.v_left[vi] is None:
                var = mgr.v_nodes[vi].var
                var_idx[var] = len(vars_tab)
                vt.append(len(vars_tab))
                vars_tab.append(var)
            else:
                vt.append(-1)
        reach: set[int] = set()
        for r in roots:
            reach |= mgr.reachable(r)
        lit_ids = sorted(
            (u for u in reach if u > _TRUE and mgr.node_kind[u] == "lit"),
            key=lambda u: (var_idx[mgr.node_var[u]], bool(mgr.node_sign[u])),
        )
        dec_ids = sorted(
            (u for u in reach if u > _TRUE and mgr.node_kind[u] == "dec"),
            key=mgr.node_stamp.__getitem__,
        )
        idmap = {_FALSE: _FALSE, _TRUE: _TRUE}
        for i, u in enumerate(lit_ids):
            idmap[u] = 2 + i
        base = 2 + len(lit_ids)
        for j, u in enumerate(dec_ids):
            idmap[u] = base + j
        lits = [
            var_idx[mgr.node_var[u]] * 2 + (1 if mgr.node_sign[u] else 0)
            for u in lit_ids
        ]
        dec_vnode = [pos[mgr.node_vnode[u]] for u in dec_ids]
        dec_off = [0]
        elems: list[int] = []
        for u in dec_ids:
            for p, s in mgr.node_elements[u]:
                elems.append(idmap[p])
                elems.append(idmap[s])
            dec_off.append(len(elems) // 2)
        return cls(
            vars_tab,
            vt,
            lits,
            dec_vnode,
            dec_off,
            elems,
            [idmap[r] for r in roots],
            root_names=names,
            meta=meta,
        )

    @classmethod
    def from_artifact(cls, art: Artifact) -> "FrozenSdd":
        if art.kind != KIND_SDD:
            raise ArtifactError(
                f"artifact kind {art.kind} is not an SDD store",
                offset=10, path=art.path,
            )
        names = art.strings("rootnames") if "rootnames" in art else None
        return cls(
            art.strings("vars"),
            art.i32("vt"),
            art.i32("lits"),
            art.i32("decvn"),
            art.i64("decoff"),
            art.i32("elems"),
            list(art.i64("roots")),
            root_names=names,
            meta=_read_meta(art),
            _artifact=art,
        )

    @classmethod
    def load(cls, path, *, use_mmap: bool = True) -> "FrozenSdd":
        """mmap an artifact file read-only and wrap it (zero copy)."""
        art = open_artifact(path, expect_kind=KIND_SDD, use_mmap=use_mmap)
        try:
            return cls.from_artifact(art)
        except ArtifactError:
            art.close()
            raise

    def sections(self) -> list[tuple[str, int, bytes]]:
        out = [
            ("vars", DTYPE_BYTES, pack_strings(self.vars)),
            ("vt", DTYPE_I32, _i32(self.vt)),
            ("lits", DTYPE_I32, _i32(self.lits)),
            ("decvn", DTYPE_I32, _i32(self.dec_vnode)),
            ("decoff", DTYPE_I64, _i64(self.dec_off)),
            ("elems", DTYPE_I32, _i32(self.elems)),
            ("roots", DTYPE_I64, _i64(self.roots)),
        ]
        if self.root_names is not None:
            out.append(("rootnames", DTYPE_BYTES, pack_strings(self.root_names)))
        if self.meta:
            out.append(("meta", DTYPE_BYTES, _meta_bytes(self.meta)))
        return out

    def write(self, path) -> None:
        write_artifact(path, KIND_SDD, self.sections())

    def close(self) -> None:
        if self._artifact is not None:
            _release_views(self, ("vt", "lits", "dec_vnode", "dec_off", "elems"))
            self._artifact.close()
            self._artifact = None

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    def vtree(self) -> Vtree:
        return Vtree.from_postfix(
            [self.vars[c] if c >= 0 else None for c in self.vt]
        )

    def root_named(self, name: str) -> int:
        if self.root_names is None:
            raise KeyError(name)
        return self.roots[self.root_names.index(name)]

    def is_dec(self, u: int) -> bool:
        return u >= self.dec_base

    def elements(self, u: int):
        """Element pairs of decision node ``u``, in stored order."""
        j = u - self.dec_base
        elems = self.elems
        for i in range(self.dec_off[j], self.dec_off[j + 1]):
            yield elems[2 * i], elems[2 * i + 1]

    def reachable(self, root: int) -> set[int]:
        seen: set[int] = set()
        stack = [root]
        while stack:
            w = stack.pop()
            if w in seen:
                continue
            seen.add(w)
            if w >= self.dec_base:
                for p, s in self.elements(w):
                    stack.append(p)
                    stack.append(s)
        return seen

    def size(self, root: int) -> int:
        base = self.dec_base
        off = self.dec_off
        total = 0
        for w in self.reachable(root):
            if w >= base:
                j = w - base
                total += off[j + 1] - off[j]
        return total

    def node_count(self, root: int) -> int:
        return len(self.reachable(root))

    def width(self, root: int) -> int:
        per: dict[int, int] = {}
        base = self.dec_base
        off = self.dec_off
        for w in self.reachable(root):
            if w >= base:
                j = w - base
                vn = self.dec_vnode[j]
                per[vn] = per.get(vn, 0) + off[j + 1] - off[j]
        return max(per.values(), default=0)

    # ------------------------------------------------------------------
    # semantics (mirrors of the live evaluators)
    # ------------------------------------------------------------------
    def weighted_count(self, root: int, weights: Mapping[str, tuple]):
        return FrozenSddWmc(self, weights).value(root)

    def model_count(self, root: int, scope=None) -> int:
        weights = {v: (1, 1) for v in self.variables}
        base = FrozenSddWmc(self, weights).value(root)
        missing = len(set(scope) - self.variables) if scope is not None else 0
        return base << missing

    def probability(self, root: int, prob: Mapping[str, float], *, exact: bool = False):
        if exact:
            return Fraction(self.weighted_count(root, exact_weights(prob)))
        return float(self.weighted_count(root, float_weights(prob)))

    def evaluate(self, root: int, assignment: Mapping[str, int]) -> bool:
        # Lazy short-circuit evaluation, mirroring SddManager.evaluate:
        # only the taken branches need their variables assigned.
        val: dict[int, bool] = {_FALSE: False, _TRUE: True}
        stack = [root]
        base = self.dec_base
        while stack:
            w = stack[-1]
            if w in val:
                stack.pop()
                continue
            if w < base:
                code = self.lits[w - 2]
                b = bool(assignment[self.vars[code >> 1]])
                val[w] = b if code & 1 else not b
                stack.pop()
                continue
            needed: int | None = None
            res = False
            for p, s in self.elements(w):
                pv = val.get(p)
                if pv is None:
                    needed = p
                    break
                if pv:
                    sv = val.get(s)
                    if sv is None:
                        needed = s
                    else:
                        res = sv
                    break
            if needed is not None:
                stack.append(needed)
            else:
                val[w] = res
                stack.pop()
        return val[root]

    # ------------------------------------------------------------------
    # thaw
    # ------------------------------------------------------------------
    def to_manager(self):
        """Rebuild a live :class:`SddManager` holding the same SDDs.

        Returns ``(manager, roots)`` with every root pinned; ``roots``
        aligns index-for-index with :attr:`roots` (and
        :attr:`root_names`).  In a fresh manager the vtree-table index of
        a node equals its postorder position, so frozen vtree positions
        carry over unchanged.
        """
        from ..sdd.manager import SddManager

        mgr = SddManager(self.vtree())
        idmap: dict[int, int] = {_FALSE: _FALSE, _TRUE: _TRUE}
        for i in range(self.n_lits):
            code = self.lits[i]
            idmap[2 + i] = mgr.literal(self.vars[code >> 1], bool(code & 1))
        for j in range(self.n_decs):
            uid = self.dec_base + j
            elems = tuple(
                (idmap[p], idmap[s]) for p, s in self.elements(uid)
            )
            idmap[uid] = mgr.intern_decision(self.dec_vnode[j], elems)
        roots = [idmap[r] for r in self.roots]
        for r in roots:
            mgr.pin(r)
        return mgr, roots

    def stats(self) -> dict[str, int]:
        return {
            "frozen_vars": len(self.vars),
            "frozen_literals": self.n_lits,
            "frozen_decisions": self.n_decs,
            "frozen_elements": self.dec_off[self.n_decs],
            "frozen_roots": len(self.roots),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FrozenSdd(vars={len(self.vars)}, decisions={self.n_decs}, "
            f"roots={len(self.roots)})"
        )


class FrozenSddWmc:
    """Array-backed twin of :class:`repro.sdd.wmc.SddWmcEvaluator`.

    Same ring-genericity, same amortized gap products, and — deliberately
    — the same operation order everywhere, so float results match the
    live evaluator bit-for-bit.  Reusable across roots of one store.
    """

    def __init__(self, frozen: FrozenSdd, weights: Mapping[str, tuple]):
        self.frozen = frozen
        missing = frozen.variables - set(weights)
        if missing:
            raise ValueError(f"weights missing for variables: {sorted(missing)[:5]}")
        self.weights = {v: weights[v] for v in frozen.variables}
        fz = frozen
        prod: list = [1] * len(fz.vt)
        for k in range(len(fz.vt)):
            c = fz.vt[k]
            if c >= 0:
                w0, w1 = self.weights[fz.vars[c]]
                prod[k] = w0 + w1
            else:
                prod[k] = prod[fz.v_left[k]] * prod[fz.v_right[k]]
        self._subtree_prod = prod
        self._gap_cache: dict[tuple[int, int], object] = {}
        self._memo: dict[int, object] = {}

    def _gap(self, outer: int, inner: int):
        if outer == inner:
            return 1
        key = (outer, inner)
        got = self._gap_cache.get(key)
        if got is not None:
            return got
        fz = self.frozen
        g = 1
        x = inner
        while x != outer:
            p = fz.v_parent[x]
            sib = fz.v_left[p] if fz.v_right[p] == x else fz.v_right[p]
            g = g * self._subtree_prod[sib]
            x = p
        self._gap_cache[key] = g
        return g

    def _lift(self, u: int, target_vnode: int):
        if u == _FALSE:
            return 0
        if u == _TRUE:
            return self._subtree_prod[target_vnode]
        fz = self.frozen
        vn = (
            fz.dec_vnode[u - fz.dec_base]
            if u >= fz.dec_base
            else fz.leaf_pos[fz.lits[u - 2] >> 1]
        )
        return self._memo[u] * self._gap(target_vnode, vn)

    def value(self, root: int):
        fz = self.frozen
        memo = self._memo
        todo = [u for u in fz.reachable(root) if u > _TRUE and u not in memo]
        todo.sort()  # ascending frozen id == creation-stamp order
        base = fz.dec_base
        for u in todo:
            if u < base:
                code = fz.lits[u - 2]
                w0, w1 = self.weights[fz.vars[code >> 1]]
                memo[u] = w1 if code & 1 else w0
            else:
                vn = fz.dec_vnode[u - base]
                vl, vr = fz.v_left[vn], fz.v_right[vn]
                acc = 0
                for p, s in fz.elements(u):
                    acc = acc + self._lift(p, vl) * self._lift(s, vr)
                memo[u] = acc
        return self._lift(root, fz.root_vnode)

    def stats(self) -> dict[str, int]:
        return {
            "memo_entries": len(self._memo),
            "gap_cache_entries": len(self._gap_cache),
        }


# ======================================================================
# FrozenDdnnf
# ======================================================================
_K_FALSE, _K_TRUE, _K_LIT, _K_AND, _K_OR = 0, 1, 2, 3, 4


class FrozenDdnnf:
    """An immutable smooth d-DNNF DAG: kinds, literal codes, child lists.

    Ids ``0``/``1`` are FALSE/TRUE; children always have smaller ids
    (the monotone renumbering of a hash-consed DAG), so ascending order
    is topological.
    """

    def __init__(
        self,
        vars: Sequence[str],
        kinds: Sequence[int],
        litv: Sequence[int],
        ch_off: Sequence[int],
        children: Sequence[int],
        roots: Sequence[int],
        *,
        root_names: Sequence[str] | None = None,
        meta: Mapping | None = None,
        _artifact: Artifact | None = None,
    ):
        path = _artifact.path if _artifact is not None else None
        self.vars = list(vars)
        self.kinds = kinds
        self.litv = litv
        self.ch_off = ch_off
        self.children = children
        self.roots = list(roots)
        self.root_names = list(root_names) if root_names is not None else None
        self.meta = dict(meta) if meta else {}
        self._artifact = _artifact
        n = len(self.kinds)
        if n < 2 or self.kinds[0] != _K_FALSE or self.kinds[1] != _K_TRUE:
            raise ArtifactError("d-DNNF store missing constant nodes", path=path)
        if len(self.litv) != n or len(self.ch_off) != n + 1 or self.ch_off[0] != 0:
            raise ArtifactError("d-DNNF table length mismatch", path=path)
        for u in range(n):
            k = self.kinds[u]
            if k not in (_K_FALSE, _K_TRUE, _K_LIT, _K_AND, _K_OR):
                raise ArtifactError(f"bad node kind {k} at id {u}", path=path)
            if self.ch_off[u] > self.ch_off[u + 1]:
                raise ArtifactError(f"child offsets not monotone at {u}", path=path)
            if k == _K_LIT:
                if not 0 <= self.litv[u] < 2 * len(self.vars):
                    raise ArtifactError(f"bad literal code at id {u}", path=path)
            for i in range(self.ch_off[u], self.ch_off[u + 1]):
                if not 0 <= self.children[i] < u:
                    raise ArtifactError(
                        f"node {u} references child {self.children[i]} "
                        "(not topological)", path=path,
                    )
        if len(self.children) != self.ch_off[n]:
            raise ArtifactError("child table length mismatch", path=path)
        for r in self.roots:
            if not 0 <= r < n:
                raise ArtifactError(f"root id {r} out of range", path=path)
        if self.root_names is not None and len(self.root_names) != len(self.roots):
            raise ArtifactError("root name count mismatch", path=path)
        self.variables = frozenset(self.vars)

    # ------------------------------------------------------------------
    @classmethod
    def from_dag(
        cls,
        dag,
        roots: Sequence[int],
        *,
        names: Sequence[str] | None = None,
        meta: Mapping | None = None,
    ) -> "FrozenDdnnf":
        """Freeze ``roots`` of a live :class:`DnnfDag` (monotone renumber:
        DAG ids are creation-order topological, so sorted-children
        invariants survive)."""
        reach = {_FALSE, _TRUE}
        for r in roots:
            reach.update(dag.reachable(r))
        order = sorted(reach)
        idmap = {u: i for i, u in enumerate(order)}
        lit_vars = sorted(
            {dag.node_var[u] for u in order if u > _TRUE and dag.node_kind[u] == "lit"}
        )
        var_idx = {v: i for i, v in enumerate(lit_vars)}
        kinds: list[int] = []
        litv: list[int] = []
        ch_off = [0]
        children: list[int] = []
        for u in order:
            if u == _FALSE:
                kinds.append(_K_FALSE)
                litv.append(-1)
            elif u == _TRUE:
                kinds.append(_K_TRUE)
                litv.append(-1)
            elif dag.node_kind[u] == "lit":
                kinds.append(_K_LIT)
                litv.append(
                    var_idx[dag.node_var[u]] * 2 + (1 if dag.node_sign[u] else 0)
                )
            else:
                kinds.append(_K_AND if dag.node_kind[u] == "and" else _K_OR)
                litv.append(-1)
                children.extend(idmap[c] for c in dag.node_children[u])
            ch_off.append(len(children))
        return cls(
            lit_vars, kinds, litv, ch_off, children,
            [idmap[r] for r in roots], root_names=names, meta=meta,
        )

    @classmethod
    def from_artifact(cls, art: Artifact) -> "FrozenDdnnf":
        if art.kind != KIND_DDNNF:
            raise ArtifactError(
                f"artifact kind {art.kind} is not a d-DNNF store",
                offset=10, path=art.path,
            )
        names = art.strings("rootnames") if "rootnames" in art else None
        return cls(
            art.strings("vars"),
            art.raw("kinds"),
            art.i32("litv"),
            art.i64("choff"),
            art.i32("children"),
            list(art.i64("roots")),
            root_names=names,
            meta=_read_meta(art),
            _artifact=art,
        )

    @classmethod
    def load(cls, path, *, use_mmap: bool = True) -> "FrozenDdnnf":
        art = open_artifact(path, expect_kind=KIND_DDNNF, use_mmap=use_mmap)
        try:
            return cls.from_artifact(art)
        except ArtifactError:
            art.close()
            raise

    def sections(self) -> list[tuple[str, int, bytes]]:
        out = [
            ("vars", DTYPE_BYTES, pack_strings(self.vars)),
            ("kinds", DTYPE_U8, bytes(bytearray(self.kinds))),
            ("litv", DTYPE_I32, _i32(self.litv)),
            ("choff", DTYPE_I64, _i64(self.ch_off)),
            ("children", DTYPE_I32, _i32(self.children)),
            ("roots", DTYPE_I64, _i64(self.roots)),
        ]
        if self.root_names is not None:
            out.append(("rootnames", DTYPE_BYTES, pack_strings(self.root_names)))
        if self.meta:
            out.append(("meta", DTYPE_BYTES, _meta_bytes(self.meta)))
        return out

    def write(self, path) -> None:
        write_artifact(path, KIND_DDNNF, self.sections())

    def close(self) -> None:
        if self._artifact is not None:
            _release_views(self, ("kinds", "litv", "ch_off", "children"))
            self._artifact.close()
            self._artifact = None

    # ------------------------------------------------------------------
    def node_children(self, u: int):
        for i in range(self.ch_off[u], self.ch_off[u + 1]):
            yield self.children[i]

    def reachable(self, root: int) -> list[int]:
        seen = {root}
        stack = [root]
        while stack:
            u = stack.pop()
            for c in self.node_children(u):
                if c not in seen:
                    seen.add(c)
                    stack.append(c)
        return sorted(seen)

    def size(self, root: int) -> int:
        return sum(1 for u in self.reachable(root) if u > _TRUE)

    def width(self, root: int) -> int:
        return max(
            (self.ch_off[u + 1] - self.ch_off[u] for u in self.reachable(root)),
            default=0,
        )

    def scope(self, root: int) -> frozenset[str]:
        """Variables mentioned under ``root`` (mirrors ``DnnfDag.scopes``)."""
        out: dict[int, frozenset[str]] = {}
        for u in self.reachable(root):
            k = self.kinds[u]
            if k in (_K_FALSE, _K_TRUE):
                out[u] = frozenset()
            elif k == _K_LIT:
                out[u] = frozenset((self.vars[self.litv[u] >> 1],))
            else:
                acc: frozenset[str] = frozenset()
                for c in self.node_children(u):
                    acc |= out[c]
                out[u] = acc
        return out[root]

    def weighted_count(self, root: int, weights: Mapping[str, tuple]):
        return FrozenDdnnfWmc(self, weights).value(root)

    def model_count(self, root: int, scope=None) -> int:
        mentioned = self.scope(root)
        weights = {v: (1, 1) for v in mentioned}
        base = FrozenDdnnfWmc(self, weights).value(root)
        missing = len(set(scope) - mentioned) if scope is not None else 0
        return base << missing

    def probability(self, root: int, prob: Mapping[str, float], *, exact: bool = False):
        if exact:
            return Fraction(self.weighted_count(root, exact_weights(prob)))
        return float(self.weighted_count(root, float_weights(prob)))

    def evaluate(self, root: int, assignment: Mapping[str, int]) -> bool:
        vals: dict[int, bool] = {}
        for u in self.reachable(root):
            k = self.kinds[u]
            if k in (_K_FALSE, _K_TRUE):
                vals[u] = u == _TRUE
            elif k == _K_LIT:
                code = self.litv[u]
                vals[u] = bool(assignment[self.vars[code >> 1]]) == bool(code & 1)
            elif k == _K_AND:
                vals[u] = all(vals[c] for c in self.node_children(u))
            else:
                vals[u] = any(vals[c] for c in self.node_children(u))
        return vals[root]

    # ------------------------------------------------------------------
    def to_dag(self):
        """Rebuild a live :class:`DnnfDag`; returns ``(dag, roots)``.

        The stored nodes are already canonical (no constant children, no
        single-child gates, AND children sorted), so re-interning them in
        ascending order reproduces the structure exactly.
        """
        from ..dnnf.nodes import DnnfDag

        dag = DnnfDag()
        idmap = {_FALSE: _FALSE, _TRUE: _TRUE}
        for u in range(2, len(self.kinds)):
            k = self.kinds[u]
            if k == _K_LIT:
                code = self.litv[u]
                idmap[u] = dag.literal(self.vars[code >> 1], bool(code & 1))
            elif k == _K_AND:
                idmap[u] = dag.conjoin([idmap[c] for c in self.node_children(u)])
            else:
                idmap[u] = dag.disjoin([idmap[c] for c in self.node_children(u)])
        return dag, [idmap[r] for r in self.roots]

    def stats(self) -> dict[str, int]:
        return {
            "frozen_vars": len(self.vars),
            "frozen_nodes": len(self.kinds),
            "frozen_edges": self.ch_off[len(self.kinds)],
            "frozen_roots": len(self.roots),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FrozenDdnnf(nodes={len(self.kinds)}, roots={len(self.roots)})"


class FrozenDdnnfWmc:
    """Array-backed twin of :class:`repro.dnnf.wmc.DnnfWmcEvaluator`;
    identical operation order, so float results match bit-for-bit."""

    def __init__(self, frozen: FrozenDdnnf, weights: Mapping[str, tuple]):
        self.frozen = frozen
        self.weights = dict(weights)
        self._memo: dict[int, object] = {_FALSE: 0, _TRUE: 1}

    def value(self, root: int):
        fz = self.frozen
        memo = self._memo
        todo = [u for u in fz.reachable(root) if u not in memo]
        for u in todo:
            k = fz.kinds[u]
            if k == _K_LIT:
                code = fz.litv[u]
                w0, w1 = self.weights[fz.vars[code >> 1]]
                memo[u] = w1 if code & 1 else w0
            elif k == _K_AND:
                acc = 1
                for c in fz.node_children(u):
                    acc = acc * memo[c]
                memo[u] = acc
            else:
                acc = 0
                for c in fz.node_children(u):
                    acc = acc + memo[c]
                memo[u] = acc
        return memo[root]

    def stats(self) -> dict[str, int]:
        return {"memo_entries": len(self._memo)}


# ======================================================================
# FrozenObdd
# ======================================================================
class FrozenObdd:
    """An immutable reduced OBDD: variable order + level/lo/hi tables.

    Ids ``0``/``1`` are the terminals (stored at level ``n`` with child
    slots ``-1``); internal nodes follow in topological (ascending)
    order, exactly like a live :class:`ObddManager`.
    """

    def __init__(
        self,
        vars: Sequence[str],
        level: Sequence[int],
        lo: Sequence[int],
        hi: Sequence[int],
        roots: Sequence[int],
        *,
        root_names: Sequence[str] | None = None,
        meta: Mapping | None = None,
        _artifact: Artifact | None = None,
    ):
        path = _artifact.path if _artifact is not None else None
        self.vars = list(vars)
        self.level = level
        self.lo = lo
        self.hi = hi
        self.roots = list(roots)
        self.root_names = list(root_names) if root_names is not None else None
        self.meta = dict(meta) if meta else {}
        self._artifact = _artifact
        n = len(self.vars)
        self.n = n
        m = len(self.level)
        if m < 2 or len(self.lo) != m or len(self.hi) != m:
            raise ArtifactError("OBDD table length mismatch", path=path)
        if self.level[0] != n or self.level[1] != n:
            raise ArtifactError("OBDD terminals must sit at level n", path=path)
        for u in range(2, m):
            if not 0 <= self.level[u] < n:
                raise ArtifactError(f"bad level at node {u}", path=path)
            for c in (self.lo[u], self.hi[u]):
                if not 0 <= c < u:
                    raise ArtifactError(
                        f"node {u} references child {c} (not topological)",
                        path=path,
                    )
        for r in self.roots:
            if not 0 <= r < m:
                raise ArtifactError(f"root id {r} out of range", path=path)
        if self.root_names is not None and len(self.root_names) != len(self.roots):
            raise ArtifactError("root name count mismatch", path=path)

    # ------------------------------------------------------------------
    @classmethod
    def from_manager(
        cls,
        mgr,
        roots: Sequence[int],
        *,
        names: Sequence[str] | None = None,
        meta: Mapping | None = None,
    ) -> "FrozenObdd":
        """Freeze ``roots`` of a live :class:`ObddManager` (ids are
        creation-order topological, so a monotone renumber suffices)."""
        reach = {0, 1}
        for r in roots:
            reach |= mgr.reachable(r)
        order = sorted(reach)
        idmap = {u: i for i, u in enumerate(order)}
        level = [mgr.level[u] for u in order]
        lo = [-1 if u <= 1 else idmap[mgr.lo[u]] for u in order]
        hi = [-1 if u <= 1 else idmap[mgr.hi[u]] for u in order]
        return cls(
            list(mgr.order), level, lo, hi, [idmap[r] for r in roots],
            root_names=names, meta=meta,
        )

    @classmethod
    def from_artifact(cls, art: Artifact) -> "FrozenObdd":
        if art.kind != KIND_OBDD:
            raise ArtifactError(
                f"artifact kind {art.kind} is not an OBDD store",
                offset=10, path=art.path,
            )
        names = art.strings("rootnames") if "rootnames" in art else None
        return cls(
            art.strings("vars"),
            art.i32("level"),
            art.i32("lo"),
            art.i32("hi"),
            list(art.i64("roots")),
            root_names=names,
            meta=_read_meta(art),
            _artifact=art,
        )

    @classmethod
    def load(cls, path, *, use_mmap: bool = True) -> "FrozenObdd":
        art = open_artifact(path, expect_kind=KIND_OBDD, use_mmap=use_mmap)
        try:
            return cls.from_artifact(art)
        except ArtifactError:
            art.close()
            raise

    def sections(self) -> list[tuple[str, int, bytes]]:
        out = [
            ("vars", DTYPE_BYTES, pack_strings(self.vars)),
            ("level", DTYPE_I32, _i32(self.level)),
            ("lo", DTYPE_I32, _i32(self.lo)),
            ("hi", DTYPE_I32, _i32(self.hi)),
            ("roots", DTYPE_I64, _i64(self.roots)),
        ]
        if self.root_names is not None:
            out.append(("rootnames", DTYPE_BYTES, pack_strings(self.root_names)))
        if self.meta:
            out.append(("meta", DTYPE_BYTES, _meta_bytes(self.meta)))
        return out

    def write(self, path) -> None:
        write_artifact(path, KIND_OBDD, self.sections())

    def close(self) -> None:
        if self._artifact is not None:
            _release_views(self, ("level", "lo", "hi"))
            self._artifact.close()
            self._artifact = None

    # ------------------------------------------------------------------
    def reachable(self, root: int) -> set[int]:
        seen: set[int] = set()
        stack = [root]
        while stack:
            w = stack.pop()
            if w in seen:
                continue
            seen.add(w)
            if w > 1:
                stack.extend((self.lo[w], self.hi[w]))
        return seen

    def size(self, root: int) -> int:
        return len(self.reachable(root))

    def width(self, root: int) -> int:
        counts: dict[int, int] = {}
        for w in self.reachable(root):
            if w > 1:
                counts[self.level[w]] = counts.get(self.level[w], 0) + 1
        return max(counts.values(), default=0)

    def count_models(self, root: int, scope=None) -> int:
        scope_set = set(scope) if scope is not None else set(self.vars)
        missing = len(scope_set - set(self.vars))
        memo: dict[int, int] = {0: 0, 1: 1}
        level = self.level
        for u in sorted(self.reachable(root)):
            if u <= 1:
                continue
            lvl = level[u]
            lo, hi = self.lo[u], self.hi[u]
            lo_count = memo[lo] << (level[lo] - lvl - 1)
            hi_count = memo[hi] << (level[hi] - lvl - 1)
            memo[u] = lo_count + hi_count
        total = memo[root] << level[root]
        return total << missing

    def weighted_count(self, root: int, weights: Mapping[str, tuple]):
        # Iterative mirror of ObddManager.weighted_count: same per-node
        # expression, same sequential (uncached) gap products.
        sums = [weights[v][0] + weights[v][1] for v in self.vars]

        def gap(from_level: int, to_level: int):
            f = 1
            for i in range(from_level, to_level):
                f = f * sums[i]
            return f

        memo: dict[int, object] = {0: 0, 1: 1}
        level = self.level
        for u in sorted(self.reachable(root)):
            if u <= 1:
                continue
            lvl = level[u]
            w0, w1 = weights[self.vars[lvl]]
            lo, hi = self.lo[u], self.hi[u]
            lo_val = memo[lo] * gap(lvl + 1, level[lo])
            hi_val = memo[hi] * gap(lvl + 1, level[hi])
            memo[u] = w0 * lo_val + w1 * hi_val
        return memo[root] * gap(0, level[root])

    def probability(self, root: int, prob: Mapping[str, float], *, exact: bool = False):
        weights = exact_weights(prob) if exact else float_weights(prob)
        value = self.weighted_count(root, weights)
        return Fraction(value) if exact else float(value)

    def evaluate(self, root: int, assignment: Mapping[str, int]) -> bool:
        w = root
        while w > 1:
            v = self.vars[self.level[w]]
            w = self.hi[w] if assignment[v] else self.lo[w]
        return bool(w)

    # ------------------------------------------------------------------
    def to_manager(self):
        """Rebuild a live :class:`ObddManager`; returns ``(manager,
        roots)``.  Stored nodes are reduced (``lo != hi``, interned), so
        ascending re-insertion reproduces identical node ids."""
        from ..obdd.obdd import ObddManager

        mgr = ObddManager(list(self.vars))
        idmap = {0: 0, 1: 1}
        for u in range(2, len(self.level)):
            idmap[u] = mgr.node(self.level[u], idmap[self.lo[u]], idmap[self.hi[u]])
        return mgr, [idmap[r] for r in self.roots]

    def stats(self) -> dict[str, int]:
        return {
            "frozen_vars": len(self.vars),
            "frozen_nodes": len(self.level),
            "frozen_roots": len(self.roots),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FrozenObdd(nodes={len(self.level)}, roots={len(self.roots)})"


# ======================================================================
# FrozenCompiled — the Compiled protocol over a frozen store
# ======================================================================
class FrozenCompiled:
    """A loaded compilation result satisfying the ``Compiled`` protocol.

    Wraps one frozen store plus the metadata and circuit saved alongside
    it, and answers every uniform accessor (``size``, ``width``,
    ``model_count()``, ``probability()``, ``evaluate()``) with the same
    values — float probabilities bit-identical — as the live ``Compiled``
    it was saved from, without rebuilding any manager.  The one
    exception is the ``canonical`` backend's float path, which the live
    object answers from its truth-table ``BooleanFunction``; that
    function is reconstructed lazily from the saved circuit here.
    """

    def __init__(self, store, *, meta: Mapping, circuit):
        self.store = store
        self.meta = dict(meta)
        self.backend: str = self.meta["backend"]
        self.circuit = circuit
        self.root: int = store.roots[0]
        self.strategy: str = self.meta.get("strategy", "")
        self.decomposition_width = self.meta.get("decomposition_width")
        if isinstance(store, FrozenSdd):
            self.vtree = store.vtree()
        elif self.meta.get("vtree_postfix") is not None:
            self.vtree = Vtree.from_postfix(self.meta["vtree_postfix"])
        else:
            self.vtree = None
        self._function = None

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self.meta["size"]

    @property
    def width(self) -> int:
        return self.meta["width"]

    @property
    def circuit_variables(self) -> set[str]:
        return set(map(str, self.circuit.variables))

    def _fill_extra(self, prob, extra):
        from ..compiler.backends import _fill_extra

        return _fill_extra(prob, extra)

    def _fn(self):
        if self._function is None:
            self._function = self.circuit.function()
        return self._function

    # ------------------------------------------------------------------
    def model_count(self) -> int:
        if self.backend == "canonical":
            return self._fn().count_models()
        if self.backend == "ddnnf":
            return self.store.model_count(self.root, self.circuit.variables)
        if self.backend == "obdd":
            base = self.store.count_models(self.root)
            extra = set(self.store.vars) - self.circuit_variables
            return base >> len(extra)
        base = self.store.model_count(self.root, self.circuit.variables)
        extra = self.vtree.variables - self.circuit_variables
        return base >> len(extra)

    def probability(self, prob: Mapping[str, float], *, exact: bool = False):
        if self.backend == "canonical":
            if exact:
                weights = exact_weights(
                    self._fill_extra(prob, self.vtree.variables)
                )
                return Fraction(self.store.weighted_count(self.root, weights))
            return self._fn().probability(prob)
        if self.backend == "ddnnf":
            return self.store.probability(self.root, prob, exact=exact)
        if self.backend == "obdd":
            full = self._fill_extra(prob, set(self.store.vars))
            weights = exact_weights(full) if exact else float_weights(full)
            value = self.store.weighted_count(self.root, weights)
            return Fraction(value) if exact else float(value)
        full = self._fill_extra(prob, self.vtree.variables)
        return self.store.probability(self.root, full, exact=exact)

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        if self.backend == "canonical":
            return bool(self._fn()(dict(assignment)))
        return self.store.evaluate(self.root, assignment)

    def stats(self) -> dict[str, int]:
        out = {"frozen": 1}
        out.update(self.store.stats())
        return out

    def save(self, path) -> None:
        """Re-save (round-trips exactly: same sections, same meta)."""
        from .format import _write_compiled_store

        _write_compiled_store(path, self.store, self.meta, self.circuit)

    def close(self) -> None:
        self.store.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FrozenCompiled backend={self.backend!r} "
            f"vars={len(self.circuit_variables)} size={self.size}>"
        )
