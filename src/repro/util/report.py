"""Small aligned-table reporting used by benches and examples."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "report"]


def format_table(title: str, header: Sequence[str], rows: Sequence[Sequence]) -> str:
    widths = [len(h) for h in header]
    str_rows = [[str(c) for c in r] for r in rows]
    for r in str_rows:
        for i, c in enumerate(r):
            widths[i] = max(widths[i], len(c))
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
    out = [f"== {title} ==", line, "-" * len(line)]
    for r in str_rows:
        out.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(out)


def report(title: str, header: Sequence[str], rows: Sequence[Sequence]) -> None:
    print("\n" + format_table(title, header, rows))
