"""Interoperability: the standard vtree file format and DOT export.

- :func:`vtree_to_sdd_format` / :func:`vtree_from_sdd_format` speak the
  libsdd/PySDD vtree file format (``c`` comments, ``vtree <count>`` header,
  ``L <id> <var>`` leaves, ``I <id> <left> <right>`` internals), so vtrees
  can be exchanged with Darwiche's SDD package ecosystem.
- :func:`obdd_to_dot` / :func:`nnf_to_dot` render diagrams for graphviz.
"""

from __future__ import annotations

from typing import Mapping

from ..circuits.nnf import NNF
from ..core.vtree import Vtree
from ..obdd.obdd import ObddManager

__all__ = [
    "vtree_to_sdd_format",
    "vtree_from_sdd_format",
    "obdd_to_dot",
    "nnf_to_dot",
]


def vtree_to_sdd_format(vtree: Vtree, var_ids: Mapping[str, int] | None = None) -> str:
    """Serialize in the libsdd vtree format.

    Variables are numbered from 1 (sorted order) unless ``var_ids`` maps
    names explicitly; node ids follow the package's inorder convention
    (leaves even-ish positions — we use plain inorder numbering, which the
    format permits)."""
    names = sorted(vtree.variables)
    ids = dict(var_ids) if var_ids is not None else {v: i + 1 for i, v in enumerate(names)}
    lines: list[str] = []
    counter = [0]
    node_ids: dict[int, int] = {}

    def walk(v: Vtree) -> int:
        if v.is_leaf:
            nid = counter[0]
            counter[0] += 1
            node_ids[id(v)] = nid
            lines.append(f"L {nid} {ids[v.var]}")
            return nid
        left = walk(v.left)  # type: ignore[arg-type]
        nid = counter[0]
        counter[0] += 1
        right = walk(v.right)  # type: ignore[arg-type]
        node_ids[id(v)] = nid
        lines.append(f"I {nid} {left} {right}")
        return nid

    walk(vtree)
    header = [
        "c vtree exported by repro (Bova-Szeider PODS'17 reproduction)",
        "c variable mapping:",
    ]
    for v in names:
        header.append(f"c   {ids[v]} = {v}")
    header.append(f"vtree {counter[0]}")
    return "\n".join(header + lines) + "\n"


def vtree_from_sdd_format(text: str, var_names: Mapping[int, str] | None = None) -> Vtree:
    """Parse the libsdd vtree format; variable ``i`` becomes name
    ``var_names[i]`` (default ``v{i}``)."""
    nodes: dict[int, Vtree] = {}
    count = None
    root_id = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        parts = line.split()
        if parts[0] == "vtree":
            count = int(parts[1])
            continue
        if parts[0] == "L":
            nid, var = int(parts[1]), int(parts[2])
            name = var_names[var] if var_names is not None else f"v{var}"
            nodes[nid] = Vtree.leaf(name)
        elif parts[0] == "I":
            nid, left, right = (int(x) for x in parts[1:4])
            nodes[nid] = Vtree.internal(nodes[left], nodes[right])
        else:
            raise ValueError(f"unrecognized vtree line: {line!r}")
        root_id = nid
    if count is None or root_id is None:
        raise ValueError("not a vtree file (missing header or nodes)")
    if len(nodes) != count:
        raise ValueError(f"header declares {count} nodes, found {len(nodes)}")
    # The root is the node that is nobody's child: with the inorder writer
    # above it is the last top-level id; recompute robustly.
    children: set[int] = set()
    for raw in text.splitlines():
        parts = raw.split()
        if parts and parts[0] == "I":
            children.add(int(parts[2]))
            children.add(int(parts[3]))
    roots = [nid for nid in nodes if nid not in children]
    if len(roots) != 1:
        raise ValueError("vtree file does not have a unique root")
    return nodes[roots[0]]


def obdd_to_dot(mgr: ObddManager, root: int, name: str = "obdd") -> str:
    """Graphviz DOT for the diagram rooted at ``root`` (dashed = low)."""
    lines = [f"digraph {name} {{", "  rankdir=TB;"]
    for w in sorted(mgr.reachable(root)):
        if w <= 1:
            label = "1" if w else "0"
            lines.append(f'  n{w} [shape=box, label="{label}"];')
        else:
            lines.append(f'  n{w} [shape=circle, label="{mgr.order[mgr.level[w]]}"];')
            lines.append(f"  n{w} -> n{mgr.lo[w]} [style=dashed];")
            lines.append(f"  n{w} -> n{mgr.hi[w]};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def nnf_to_dot(root: NNF, name: str = "nnf") -> str:
    """Graphviz DOT for an NNF DAG."""
    lines = [f"digraph {name} {{", "  rankdir=TB;"]
    nodes = root.nodes()
    ids = {id(n): i for i, n in enumerate(nodes)}
    for n in nodes:
        i = ids[id(n)]
        if n.kind == "lit":
            label = n.var if n.sign else f"¬{n.var}"
            lines.append(f'  n{i} [shape=plaintext, label="{label}"];')
        elif n.kind in ("true", "false"):
            lines.append(f'  n{i} [shape=box, label="{"⊤" if n.kind == "true" else "⊥"}"];')
        else:
            symbol = "∧" if n.kind == "and" else "∨"
            lines.append(f'  n{i} [shape=circle, label="{symbol}"];')
            for c in n.children:
                lines.append(f"  n{i} -> n{ids[id(c)]};")
    lines.append("}")
    return "\n".join(lines) + "\n"
