"""Variable trees (vtrees).

A vtree for a variable set ``Y`` is a rooted, ordered, binary tree whose
leaves correspond bijectively to ``Y`` (Section 2.1).  Following the paper we
*relax* fullness: during the Lemma-1 extraction from tree decompositions,
intermediate trees may contain unary internal nodes; :meth:`Vtree.contract`
removes them, and :meth:`Vtree.prune_to` drops dummy leaves.

OBDDs are canonical SDDs respecting *linear* vtrees — vtrees where every
left child is a leaf (right-linear combs); see Section 3.2.2.

Every traversal here is iterative (explicit stacks / postorder loops):
right-linear vtrees over 10k-variable lineages are routine for the query
workloads, and recursive walks used to hit Python's recursion limit at
~1000 leaves — before compilation even started.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Sequence

__all__ = ["Vtree"]

# Trees up to this many leaves validate child-disjointness eagerly at
# construction; larger (lazy) trees validate at first materialization.
_EAGER_CHECK_LEAVES = 256


class Vtree:
    """An immutable vtree node (leaf or internal with two children)."""

    __slots__ = ("var", "left", "right", "_vars", "_size", "_nvars", "_hash")

    def __init__(self, var: str | None, left: "Vtree | None", right: "Vtree | None"):
        if var is not None and (left is not None or right is not None):
            raise ValueError("leaf nodes cannot have children")
        if var is None and (left is None or right is None):
            raise ValueError("internal nodes need two children (use helpers for unary)")
        self.var = var
        self.left = left
        self.right = right
        if var is not None:
            self._vars: frozenset[str] | None = frozenset({var})
            self._size = 1
            self._nvars = 1
            self._hash = hash(("leaf", var))
        else:
            assert left is not None and right is not None
            self._vars = None
            self._size = 1 + left._size + right._size
            self._nvars = left._nvars + right._nvars
            self._hash = hash(("internal", left._hash, right._hash))
            # Variable sets of internal nodes are *lazy* (see ``variables``):
            # eagerly storing a frozenset per node costs Θ(n²) memory on the
            # 10k-leaf combs the query workloads use.  Disjointness is still
            # checked eagerly here for small trees (every hand-built /
            # test-sized vtree keeps the construction-time ValueError) and
            # whenever both children happen to have materialized sets; for
            # big lazy trees it is enforced — via the leaf count — the
            # moment a set is materialized, ``leaf_order`` runs, or an
            # ``SddManager`` is built over the tree.
            lv, rv = left._vars, right._vars
            if lv is None or rv is None:
                if self._nvars <= _EAGER_CHECK_LEAVES:
                    lv = left.variables  # materializes + caches (and checks
                    rv = right.variables  # the subtree's own disjointness)
            if lv is not None and rv is not None:
                if len(lv) < len(rv):
                    lv, rv = rv, lv
                overlap = [v for v in rv if v in lv]
                if overlap:
                    raise ValueError(f"children share variables: {sorted(overlap)}")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def leaf(cls, var: str) -> "Vtree":
        return cls(var, None, None)

    @classmethod
    def internal(cls, left: "Vtree", right: "Vtree") -> "Vtree":
        return cls(None, left, right)

    @classmethod
    def internal_trusted(cls, left: "Vtree", right: "Vtree") -> "Vtree":
        """Internal node *without* the child-disjointness re-check.

        For callers restructuring an already-validated tree — the
        :class:`~repro.sdd.manager.SddManager`'s in-place rotations rebuild
        the ancestor path of every move, and leaf sets are invariant under
        reassociation, so re-materializing variable sets per move (the
        eager check on small trees) would turn an O(affected-nodes) local
        move into an O(variables) one."""
        node = cls.__new__(cls)
        node.var = None
        node.left = left
        node.right = right
        node._vars = None
        node._size = 1 + left._size + right._size
        node._nvars = left._nvars + right._nvars
        node._hash = hash(("internal", left._hash, right._hash))
        return node

    @classmethod
    def right_linear(cls, order: Sequence[str]) -> "Vtree":
        """The *linear* vtree of the paper: every left child is a leaf.

        ``order`` is the OBDD variable order, outermost decision first.
        """
        if not order:
            raise ValueError("empty variable order")
        node = cls.leaf(order[-1])
        for v in reversed(order[:-1]):
            node = cls.internal(cls.leaf(v), node)
        return node

    @classmethod
    def left_linear(cls, order: Sequence[str]) -> "Vtree":
        """Left-linear comb: every right child is a leaf (used by ISA's ``T_n``)."""
        if not order:
            raise ValueError("empty variable order")
        node = cls.leaf(order[0])
        for v in order[1:]:
            node = cls.internal(node, cls.leaf(v))
        return node

    @classmethod
    def balanced(cls, order: Sequence[str]) -> "Vtree":
        if not order:
            raise ValueError("empty variable order")
        if len(order) == 1:
            return cls.leaf(order[0])
        mid = len(order) // 2
        return cls.internal(cls.balanced(order[:mid]), cls.balanced(order[mid:]))

    @classmethod
    def random(cls, order: Sequence[str], rng) -> "Vtree":
        """A uniformly-shaped random vtree over a shuffled order."""
        items = [cls.leaf(v) for v in order]
        rng.shuffle(items)
        while len(items) > 1:
            i = int(rng.integers(0, len(items) - 1))
            merged = cls.internal(items[i], items[i + 1])
            items[i : i + 2] = [merged]
        return items[0]

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        return self.var is not None

    @property
    def variables(self) -> frozenset[str]:
        """The variables at the leaves of this subtree (paper's ``Y_v``).

        Materialized on first access (O(subtree) walk, reusing any cached
        descendant sets) and cached on this node only.
        """
        got = self._vars
        if got is None:
            vs: set[str] = set()
            stack: list[Vtree] = [self]
            while stack:
                node = stack.pop()
                cached = node._vars
                if cached is not None:
                    vs |= cached
                else:
                    assert node.left is not None and node.right is not None
                    stack.append(node.left)
                    stack.append(node.right)
            got = frozenset(vs)
            if len(got) != self._nvars:
                raise ValueError("children share variables: duplicate leaves")
            self._vars = got
        return got

    @property
    def size(self) -> int:
        return self._size

    def nodes(self) -> Iterator["Vtree"]:
        """Postorder traversal (children before parents), stack-based."""
        stack: list[tuple[Vtree, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded or node.is_leaf:
                yield node
            else:
                assert node.left is not None and node.right is not None
                stack.append((node, True))
                stack.append((node.right, False))
                stack.append((node.left, False))

    def internal_nodes(self) -> Iterator["Vtree"]:
        return (v for v in self.nodes() if not v.is_leaf)

    def leaves(self) -> Iterator["Vtree"]:
        return (v for v in self.nodes() if v.is_leaf)

    def leaf_order(self) -> list[str]:
        """Variables left-to-right (postorder visits leaves in that order)."""
        order = [v.var for v in self.nodes() if v.is_leaf]
        if len(set(order)) != len(order):
            raise ValueError("children share variables: duplicate leaves")
        return order  # type: ignore[return-value]

    def depth(self) -> int:
        best = 0
        stack: list[tuple[Vtree, int]] = [(self, 0)]
        while stack:
            node, d = stack.pop()
            if node.is_leaf:
                if d > best:
                    best = d
            else:
                assert node.left is not None and node.right is not None
                stack.append((node.left, d + 1))
                stack.append((node.right, d + 1))
        return best

    def is_right_linear(self) -> bool:
        """Every left child a leaf (the paper's 'linear vtree')."""
        node = self
        while not node.is_leaf:
            assert node.left is not None and node.right is not None
            if not node.left.is_leaf:
                return False
            node = node.right
        return True

    def is_left_linear(self) -> bool:
        node = self
        while not node.is_leaf:
            assert node.left is not None and node.right is not None
            if not node.right.is_leaf:
                return False
            node = node.left
        return True

    def find_structuring_node(self, left_vars: Iterable[str], right_vars: Iterable[str]) -> "Vtree | None":
        """Find a node ``v`` with ``left_vars ⊆ Y_{v_l}`` and
        ``right_vars ⊆ Y_{v_r}`` (the structuredness condition)."""
        lv, rv = frozenset(left_vars), frozenset(right_vars)
        for v in self.nodes():
            if v.is_leaf:
                continue
            assert v.left is not None and v.right is not None
            if lv <= v.left.variables and rv <= v.right.variables:
                return v
        return None

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def prune_to(self, keep: Iterable[str]) -> "Vtree":
        """Remove leaves outside ``keep`` and contract unary nodes.

        Used to drop Lemma 1's dummy variables ``W``; never increases any of
        the paper's widths since subtree variable sets only shrink.
        """
        keep_set = frozenset(keep)
        pruned = self._prune(keep_set)
        if pruned is None:
            raise ValueError("pruning removed every leaf")
        return pruned

    def _prune(self, keep: frozenset[str]) -> "Vtree | None":
        # Bottom-up over the postorder: children are resolved before parents.
        result: dict[int, Vtree | None] = {}
        for node in self.nodes():
            if node.is_leaf:
                result[id(node)] = node if node.var in keep else None
            else:
                l = result[id(node.left)]
                r = result[id(node.right)]
                if l is None:
                    result[id(node)] = r
                elif r is None:
                    result[id(node)] = l
                else:
                    result[id(node)] = Vtree.internal(l, r)
        return result[id(self)]

    def swap(self) -> "Vtree":
        """Swap children at the root (vtrees are *ordered* trees)."""
        if self.is_leaf:
            return self
        assert self.left is not None and self.right is not None
        return Vtree.internal(self.right, self.left)

    # ------------------------------------------------------------------
    # enumeration (for exact width minimization on tiny variable sets)
    # ------------------------------------------------------------------
    @classmethod
    def enumerate_all(cls, variables: Sequence[str]) -> Iterator["Vtree"]:
        """Every vtree over ``variables`` (all shapes × all leaf orders).

        The count is ``n! · Catalan(n-1)``; callers should keep ``n ≤ 5``.
        """
        vs = sorted(set(variables))
        if len(vs) > 6:
            raise ValueError("vtree enumeration is exponential; use <= 6 variables")
        for perm in itertools.permutations(vs):
            yield from cls._enumerate_shapes(list(perm))

    @classmethod
    def _enumerate_shapes(cls, order: list[str]) -> Iterator["Vtree"]:
        if len(order) == 1:
            yield cls.leaf(order[0])
            return
        for split in range(1, len(order)):
            for l in cls._enumerate_shapes(order[:split]):
                for r in cls._enumerate_shapes(order[split:]):
                    yield cls.internal(l, r)

    @classmethod
    def candidate_vtrees(cls, variables: Sequence[str], rng=None, samples: int = 8) -> list["Vtree"]:
        """A practical candidate set for width minimization on larger sets:
        right-linear, left-linear, balanced (sorted order) plus random trees."""
        vs = sorted(set(variables))
        if len(vs) == 0:
            raise ValueError("no variables")
        if len(vs) == 1:
            return [cls.leaf(vs[0])]
        out = [cls.right_linear(vs), cls.left_linear(vs), cls.balanced(vs)]
        if rng is not None:
            for _ in range(samples):
                out.append(cls.random(list(vs), rng))
        return out

    # ------------------------------------------------------------------
    # rendering / io
    # ------------------------------------------------------------------
    def to_nested(self):
        """Nested-tuple form, e.g. ``(('x', 'y'), 'z')``."""
        result: dict[int, object] = {}
        for node in self.nodes():
            if node.is_leaf:
                result[id(node)] = node.var
            else:
                result[id(node)] = (result[id(node.left)], result[id(node.right)])
        return result[id(self)]

    @classmethod
    def from_nested(cls, spec) -> "Vtree":
        done: dict[int, Vtree] = {}
        stack: list[tuple[object, bool]] = [(spec, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                l, r = node  # type: ignore[misc]
                done[id(node)] = cls.internal(done[id(l)], done[id(r)])
            elif isinstance(node, str):
                done[id(node)] = cls.leaf(node)
            else:
                l, r = node  # type: ignore[misc]
                stack.append((node, True))
                stack.append((r, False))
                stack.append((l, False))
        return done[id(spec)]

    def to_postfix(self) -> list[str | None]:
        """Flat postfix encoding: a leaf emits its variable, an internal
        node emits ``None`` after its children (pop two, push one).

        Unlike :meth:`to_nested` / ``pickle``, both directions are loops
        over a flat list — no nesting, so a 10k-deep right-linear comb
        round-trips without touching the recursion limit (``pickle`` of the
        node structure itself recurses and dies at ~1000 levels; this is
        the wire format the parallel query workers use).
        """
        out: list[str | None] = []
        for node in self.nodes():
            out.append(node.var)
        return out

    @classmethod
    def from_postfix(cls, ops: Sequence[str | None]) -> "Vtree":
        """Rebuild a vtree from :meth:`to_postfix` output."""
        stack: list[Vtree] = []
        for op in ops:
            if op is None:
                if len(stack) < 2:
                    raise ValueError("malformed postfix vtree encoding")
                r = stack.pop()
                l = stack.pop()
                stack.append(cls.internal(l, r))
            else:
                stack.append(cls.leaf(op))
        if len(stack) != 1:
            raise ValueError("malformed postfix vtree encoding")
        return stack[0]

    def to_bytes(self) -> bytes:
        """The vtree as a standalone binary artifact (the postfix codes
        inside the shared :mod:`repro.artifact` container — versioned,
        CRC-checked, mmap-able)."""
        from ..artifact.format import vtree_to_bytes

        return vtree_to_bytes(self)

    @staticmethod
    def from_bytes(data: bytes) -> "Vtree":
        """Inverse of :meth:`to_bytes`; raises
        :class:`~repro.artifact.encoding.ArtifactError` on corruption."""
        from ..artifact.format import vtree_from_bytes

        return vtree_from_bytes(data)

    def render(self) -> str:
        """ASCII rendering (root at top), used to regenerate Figure 4."""
        lines: list[str] = []
        stack: list[tuple[Vtree, str, str]] = [(self, "", "")]
        while stack:
            node, prefix, child_prefix = stack.pop()
            lines.append(prefix + str(node.var if node.is_leaf else "*"))
            if not node.is_leaf:
                assert node.left is not None and node.right is not None
                stack.append((node.right, child_prefix + "`-- ", child_prefix + "    "))
                stack.append((node.left, child_prefix + "|-- ", child_prefix + "|   "))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self._size > 64:
            return f"Vtree(<{self._nvars} leaves>)"
        return f"Vtree({self.to_nested()!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vtree):
            return NotImplemented
        if self is other:
            return True
        if self._hash != other._hash or self._size != other._size:
            return False
        stack = [(self, other)]
        while stack:
            a, b = stack.pop()
            if a is b:
                continue
            if a.var != b.var or a._size != b._size or a._hash != b._hash:
                return False
            if not a.is_leaf:
                # b is internal too: equal vars (both None) and equal sizes.
                stack.append((a.left, b.left))  # type: ignore[arg-type]
                stack.append((a.right, b.right))  # type: ignore[arg-type]
        return True

    def __hash__(self) -> int:
        return self._hash
