"""Variable trees (vtrees).

A vtree for a variable set ``Y`` is a rooted, ordered, binary tree whose
leaves correspond bijectively to ``Y`` (Section 2.1).  Following the paper we
*relax* fullness: during the Lemma-1 extraction from tree decompositions,
intermediate trees may contain unary internal nodes; :meth:`Vtree.contract`
removes them, and :meth:`Vtree.prune_to` drops dummy leaves.

OBDDs are canonical SDDs respecting *linear* vtrees — vtrees where every
left child is a leaf (right-linear combs); see Section 3.2.2.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Iterator, Sequence

__all__ = ["Vtree"]


class Vtree:
    """An immutable vtree node (leaf or internal with two children)."""

    __slots__ = ("var", "left", "right", "_vars", "_size")

    def __init__(self, var: str | None, left: "Vtree | None", right: "Vtree | None"):
        if var is not None and (left is not None or right is not None):
            raise ValueError("leaf nodes cannot have children")
        if var is None and (left is None or right is None):
            raise ValueError("internal nodes need two children (use helpers for unary)")
        self.var = var
        self.left = left
        self.right = right
        if var is not None:
            self._vars = frozenset({var})
            self._size = 1
        else:
            assert left is not None and right is not None
            overlap = left._vars & right._vars
            if overlap:
                raise ValueError(f"children share variables: {sorted(overlap)}")
            self._vars = left._vars | right._vars
            self._size = 1 + left._size + right._size

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def leaf(cls, var: str) -> "Vtree":
        return cls(var, None, None)

    @classmethod
    def internal(cls, left: "Vtree", right: "Vtree") -> "Vtree":
        return cls(None, left, right)

    @classmethod
    def right_linear(cls, order: Sequence[str]) -> "Vtree":
        """The *linear* vtree of the paper: every left child is a leaf.

        ``order`` is the OBDD variable order, outermost decision first.
        """
        if not order:
            raise ValueError("empty variable order")
        node = cls.leaf(order[-1])
        for v in reversed(order[:-1]):
            node = cls.internal(cls.leaf(v), node)
        return node

    @classmethod
    def left_linear(cls, order: Sequence[str]) -> "Vtree":
        """Left-linear comb: every right child is a leaf (used by ISA's ``T_n``)."""
        if not order:
            raise ValueError("empty variable order")
        node = cls.leaf(order[0])
        for v in order[1:]:
            node = cls.internal(node, cls.leaf(v))
        return node

    @classmethod
    def balanced(cls, order: Sequence[str]) -> "Vtree":
        if not order:
            raise ValueError("empty variable order")
        if len(order) == 1:
            return cls.leaf(order[0])
        mid = len(order) // 2
        return cls.internal(cls.balanced(order[:mid]), cls.balanced(order[mid:]))

    @classmethod
    def random(cls, order: Sequence[str], rng) -> "Vtree":
        """A uniformly-shaped random vtree over a shuffled order."""
        items = [cls.leaf(v) for v in order]
        rng.shuffle(items)
        while len(items) > 1:
            i = int(rng.integers(0, len(items) - 1))
            merged = cls.internal(items[i], items[i + 1])
            items[i : i + 2] = [merged]
        return items[0]

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        return self.var is not None

    @property
    def variables(self) -> frozenset[str]:
        """The variables at the leaves of this subtree (paper's ``Y_v``)."""
        return self._vars

    @property
    def size(self) -> int:
        return self._size

    def nodes(self) -> Iterator["Vtree"]:
        """Postorder traversal (children before parents)."""
        if not self.is_leaf:
            assert self.left is not None and self.right is not None
            yield from self.left.nodes()
            yield from self.right.nodes()
        yield self

    def internal_nodes(self) -> Iterator["Vtree"]:
        return (v for v in self.nodes() if not v.is_leaf)

    def leaves(self) -> Iterator["Vtree"]:
        return (v for v in self.nodes() if v.is_leaf)

    def leaf_order(self) -> list[str]:
        """Variables left-to-right."""
        if self.is_leaf:
            assert self.var is not None
            return [self.var]
        assert self.left is not None and self.right is not None
        return self.left.leaf_order() + self.right.leaf_order()

    def depth(self) -> int:
        if self.is_leaf:
            return 0
        assert self.left is not None and self.right is not None
        return 1 + max(self.left.depth(), self.right.depth())

    def is_right_linear(self) -> bool:
        """Every left child a leaf (the paper's 'linear vtree')."""
        if self.is_leaf:
            return True
        assert self.left is not None and self.right is not None
        return self.left.is_leaf and self.right.is_right_linear()

    def is_left_linear(self) -> bool:
        if self.is_leaf:
            return True
        assert self.left is not None and self.right is not None
        return self.right.is_leaf and self.left.is_left_linear()

    def find_structuring_node(self, left_vars: Iterable[str], right_vars: Iterable[str]) -> "Vtree | None":
        """Find a node ``v`` with ``left_vars ⊆ Y_{v_l}`` and
        ``right_vars ⊆ Y_{v_r}`` (the structuredness condition)."""
        lv, rv = frozenset(left_vars), frozenset(right_vars)
        for v in self.nodes():
            if v.is_leaf:
                continue
            assert v.left is not None and v.right is not None
            if lv <= v.left.variables and rv <= v.right.variables:
                return v
        return None

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def prune_to(self, keep: Iterable[str]) -> "Vtree":
        """Remove leaves outside ``keep`` and contract unary nodes.

        Used to drop Lemma 1's dummy variables ``W``; never increases any of
        the paper's widths since subtree variable sets only shrink.
        """
        keep_set = frozenset(keep)
        pruned = self._prune(keep_set)
        if pruned is None:
            raise ValueError("pruning removed every leaf")
        return pruned

    def _prune(self, keep: frozenset[str]) -> "Vtree | None":
        if self.is_leaf:
            return self if self.var in keep else None
        assert self.left is not None and self.right is not None
        l = self.left._prune(keep)
        r = self.right._prune(keep)
        if l is None:
            return r
        if r is None:
            return l
        return Vtree.internal(l, r)

    def swap(self) -> "Vtree":
        """Swap children at the root (vtrees are *ordered* trees)."""
        if self.is_leaf:
            return self
        assert self.left is not None and self.right is not None
        return Vtree.internal(self.right, self.left)

    # ------------------------------------------------------------------
    # enumeration (for exact width minimization on tiny variable sets)
    # ------------------------------------------------------------------
    @classmethod
    def enumerate_all(cls, variables: Sequence[str]) -> Iterator["Vtree"]:
        """Every vtree over ``variables`` (all shapes × all leaf orders).

        The count is ``n! · Catalan(n-1)``; callers should keep ``n ≤ 5``.
        """
        vs = sorted(set(variables))
        if len(vs) > 6:
            raise ValueError("vtree enumeration is exponential; use <= 6 variables")
        for perm in itertools.permutations(vs):
            yield from cls._enumerate_shapes(list(perm))

    @classmethod
    def _enumerate_shapes(cls, order: list[str]) -> Iterator["Vtree"]:
        if len(order) == 1:
            yield cls.leaf(order[0])
            return
        for split in range(1, len(order)):
            for l in cls._enumerate_shapes(order[:split]):
                for r in cls._enumerate_shapes(order[split:]):
                    yield cls.internal(l, r)

    @classmethod
    def candidate_vtrees(cls, variables: Sequence[str], rng=None, samples: int = 8) -> list["Vtree"]:
        """A practical candidate set for width minimization on larger sets:
        right-linear, left-linear, balanced (sorted order) plus random trees."""
        vs = sorted(set(variables))
        if len(vs) == 0:
            raise ValueError("no variables")
        if len(vs) == 1:
            return [cls.leaf(vs[0])]
        out = [cls.right_linear(vs), cls.left_linear(vs), cls.balanced(vs)]
        if rng is not None:
            for _ in range(samples):
                out.append(cls.random(list(vs), rng))
        return out

    # ------------------------------------------------------------------
    # rendering / io
    # ------------------------------------------------------------------
    def to_nested(self):
        """Nested-tuple form, e.g. ``(('x', 'y'), 'z')``."""
        if self.is_leaf:
            return self.var
        assert self.left is not None and self.right is not None
        return (self.left.to_nested(), self.right.to_nested())

    @classmethod
    def from_nested(cls, spec) -> "Vtree":
        if isinstance(spec, str):
            return cls.leaf(spec)
        l, r = spec
        return cls.internal(cls.from_nested(l), cls.from_nested(r))

    def render(self) -> str:
        """ASCII rendering (root at top), used to regenerate Figure 4."""
        lines: list[str] = []
        self._render(lines, "", "")
        return "\n".join(lines)

    def _render(self, lines: list[str], prefix: str, child_prefix: str) -> None:
        label = self.var if self.is_leaf else "*"
        lines.append(prefix + str(label))
        if not self.is_leaf:
            assert self.left is not None and self.right is not None
            self.left._render(lines, child_prefix + "|-- ", child_prefix + "|   ")
            self.right._render(lines, child_prefix + "`-- ", child_prefix + "    ")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Vtree({self.to_nested()!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vtree):
            return NotImplemented
        return self.to_nested() == other.to_nested()

    def __hash__(self) -> int:
        return hash(self.to_nested())
