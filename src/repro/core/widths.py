"""Width measures and the paper's width inequalities.

- :func:`factor_width` — Definition 2: ``fw(F,T) = max_v |factors(F, Z_v)|``
  and ``fw(F) = min_T fw(F,T)``.
- :func:`fiw` / :func:`sdw` — Definitions 4 / 5 via the canonical compilers.
- :func:`lemma1_bound` — Lemma 1: ``fw(F) ≤ 2^{(k+2)·2^{k+1}}`` for
  ``k = ctw(F)``.
- :func:`eq22_bound` — ``fiw(F) ≤ fw(F)^2`` (eq. (22), first inequality).
- :func:`eq29_bound` — ``sdw(F) ≤ 2^{2·fw(F)+1}`` (eq. (29), first inequality).
- :func:`prop2_tree_decomposition` — Proposition 2 / eq. (23) and (30):
  ``ctw(F) ≤ 3·fiw(F)`` witnessed by an explicit tree decomposition of the
  graph underlying ``C_{F,T}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import networkx as nx

from .boolfunc import BooleanFunction
from .factors import factors
from .nnf_compile import CompiledNNF, compile_canonical_nnf
from .sdd_compile import CompiledSDD, compile_canonical_sdd
from .vtree import Vtree
from ..circuits.nnf import NNF
from ..graphs.treedecomp import TreeDecomposition

__all__ = [
    "factor_width",
    "min_factor_width",
    "fiw",
    "min_fiw",
    "sdw",
    "min_sdw",
    "lemma1_bound",
    "eq22_bound",
    "eq29_bound",
    "prop2_tree_decomposition",
    "best_vtree",
]


def factor_width(f: BooleanFunction, vtree: Vtree) -> int:
    """``fw(F, T) = max_{v ∈ T} |factors(F, Z_v)|`` (Definition 2)."""
    return max(len(factors(f, v.variables)) for v in vtree.nodes())


def fiw(f: BooleanFunction, vtree: Vtree) -> int:
    """``fiw(F, T)`` (Definition 4) via the canonical construction."""
    return compile_canonical_nnf(f, vtree).fiw


def sdw(f: BooleanFunction, vtree: Vtree) -> int:
    """``sdw(F, T)`` (Definition 5) via the canonical construction."""
    return compile_canonical_sdd(f, vtree).sdw


def _vtree_candidates(f: BooleanFunction, exhaustive: bool | None, rng=None) -> Iterable[Vtree]:
    vs = sorted(f.variables)
    if not vs:
        raise ValueError("width minimization needs at least one variable")
    if exhaustive is None:
        exhaustive = len(vs) <= 4
    if exhaustive:
        return Vtree.enumerate_all(vs)
    return Vtree.candidate_vtrees(vs, rng=rng)


def min_factor_width(
    f: BooleanFunction, exhaustive: bool | None = None, rng=None
) -> tuple[int, Vtree]:
    """``fw(F)``: minimize over vtrees (exhaustively for ≤ 4 variables,
    candidate-set heuristic otherwise).  Returns ``(width, witness vtree)``."""
    best: tuple[int, Vtree] | None = None
    for t in _vtree_candidates(f, exhaustive, rng):
        w = factor_width(f, t)
        if best is None or w < best[0]:
            best = (w, t)
    assert best is not None
    return best


def min_fiw(f: BooleanFunction, exhaustive: bool | None = None, rng=None) -> tuple[int, Vtree]:
    """``fiw(F)`` (Definition 4) with a witness vtree."""
    best: tuple[int, Vtree] | None = None
    for t in _vtree_candidates(f, exhaustive, rng):
        w = fiw(f, t)
        if best is None or w < best[0]:
            best = (w, t)
    assert best is not None
    return best


def min_sdw(f: BooleanFunction, exhaustive: bool | None = None, rng=None) -> tuple[int, Vtree]:
    """``sdw(F)`` (Definition 5) with a witness vtree."""
    best: tuple[int, Vtree] | None = None
    for t in _vtree_candidates(f, exhaustive, rng):
        w = sdw(f, t)
        if best is None or w < best[0]:
            best = (w, t)
    assert best is not None
    return best


def best_vtree(f: BooleanFunction, objective: str = "sdw", exhaustive: bool | None = None, rng=None) -> Vtree:
    """Convenience: the witness vtree for ``fw`` / ``fiw`` / ``sdw``."""
    fns = {"fw": min_factor_width, "fiw": min_fiw, "sdw": min_sdw}
    if objective not in fns:
        raise ValueError(f"objective must be one of {sorted(fns)}")
    return fns[objective](f, exhaustive=exhaustive, rng=rng)[1]


# ----------------------------------------------------------------------
# the paper's bounds
# ----------------------------------------------------------------------
def lemma1_bound(ctw: int) -> int:
    """Lemma 1: ``fw(F) ≤ 2^{(k+2)·2^{k+1}}`` where ``k = ctw(F)``."""
    if ctw < 0:
        raise ValueError("treewidth must be >= 0")
    return 2 ** ((ctw + 2) * 2 ** (ctw + 1))


def eq22_bound(fw_value: int) -> int:
    """Eq. (22) first inequality: ``fiw(F) ≤ fw(F)^2``."""
    return fw_value * fw_value


def eq29_bound(fw_value: int) -> int:
    """Eq. (29) first inequality: ``sdw(F) ≤ 2^{2·fw(F)+1}``."""
    return 2 ** (2 * fw_value + 1)


# ----------------------------------------------------------------------
# Proposition 2: ctw(F) <= 3·fiw(F) via an explicit tree decomposition
# ----------------------------------------------------------------------
@dataclass
class Prop2Result:
    """The Proposition-2 decomposition together with the graph it is a
    decomposition *of* (the compiled circuit with constants replicated)."""

    decomposition: TreeDecomposition
    graph: nx.Graph
    root: NNF

    @property
    def width(self) -> int:
        return self.decomposition.width

    def validate(self) -> None:
        self.decomposition.validate(self.graph)


def prop2_tree_decomposition(compiled: CompiledNNF | CompiledSDD) -> Prop2Result:
    """The Proposition-2 tree decomposition of the graph underlying the
    compiled circuit: one bag per vtree node collecting the closed
    neighborhoods of the AND gates structured there.

    The returned decomposition is validated by tests to have width
    ``≤ 3·width`` (+O(1) slack for the degenerate fringe described below),
    witnessing eq. (23)/(30).

    Degenerate cases (literal-only circuits, constants) get a single bag.

    Shared constant gates (the global ``⊤``/``⊥`` singletons) would sit in
    bags of far-apart vtree nodes and break the connectivity condition, so
    they are replicated one-per-use first — semantically free, and exactly
    how the paper's per-gate neighborhood accounting treats them; the
    result therefore carries its own :attr:`graph`.
    """
    root = _replicate_constants(compiled.root)
    vtree = compiled.vtree
    graph = _nnf_graph(root)
    struct_map: dict[int, list[NNF]] = {}
    for gate in root.and_gates():
        l, r = gate.children
        v = vtree.find_structuring_node(l.variables, r.variables)
        if v is None:
            raise ValueError("compiled circuit not structured by its vtree")
        struct_map.setdefault(id(v), []).append(gate)

    parents = _parents(root)
    tree = nx.Graph()
    bags: dict[int, frozenset] = {}
    index: dict[int, int] = {}
    counter = 0
    for v in vtree.nodes():
        bag: set[int] = set()
        for gate in struct_map.get(id(v), []):
            bag.add(id(gate))
            for c in gate.children:
                bag.add(id(c))
            for parent in parents.get(id(gate), []):
                bag.add(id(parent))
        bags[counter] = frozenset(bag)
        index[id(v)] = counter
        tree.add_node(counter)
        counter += 1
    for v in vtree.nodes():
        if not v.is_leaf:
            assert v.left is not None and v.right is not None
            tree.add_edge(index[id(v)], index[id(v.left)])
            tree.add_edge(index[id(v)], index[id(v.right)])
    # Sweep up any nodes not adjacent to a structured AND gate (constants,
    # literal roots, singleton chains): put them in the root bag.
    covered: set[int] = set()
    for b in bags.values():
        covered |= set(b)
    missing = {id(n) for n in root.nodes()} - covered
    if missing:
        root_bag_id = index[id(vtree)]
        bags[root_bag_id] = bags[root_bag_id] | frozenset(missing)
    # Connectivity closure (T3): a gate with an ∅-variable child (a
    # replicated constant) is structured at the *first* postorder vtree
    # node one of whose sides covers the non-trivial child — possibly far
    # from the bags where the same gate appears as a parent or child of
    # other gates, leaving its occurrences in non-adjacent bags.  Add each
    # vertex to every bag on the tree paths between its occurrences (the
    # Steiner closure of the occurrence set); only the degenerate gates
    # travel, so bags grow by O(1) per such gate.
    root_bag_id = index[id(vtree)]
    parent_bag = dict(nx.bfs_predecessors(tree, root_bag_id))
    depth_bag = {
        n: d for d, layer in enumerate(nx.bfs_layers(tree, root_bag_id)) for n in layer
    }
    occurrences: dict[int, set[int]] = {}
    for b, bag in bags.items():
        for x in bag:
            occurrences.setdefault(x, set()).add(b)
    for x, occ in occurrences.items():
        frontier = set(occ)
        members = set(occ)
        while len(frontier) > 1:
            u = max(frontier, key=depth_bag.__getitem__)
            frontier.remove(u)
            p = parent_bag[u]
            if p not in members:
                bags[p] = bags[p] | frozenset({x})
                members.add(p)
            frontier.add(p)
    return Prop2Result(decomposition=TreeDecomposition(tree, bags), graph=graph, root=root)


def _replicate_constants(root: NNF) -> NNF:
    """Copy of the DAG where every constant occurrence is a fresh node."""
    if root.kind in ("true", "false"):
        return root
    memo: dict[int, NNF] = {}
    for node in root.nodes():
        if node.kind in ("true", "false", "lit"):
            memo[id(node)] = node
            continue
        children = tuple(
            NNF(c.kind) if c.kind in ("true", "false") else memo[id(c)]
            for c in node.children
        )
        memo[id(node)] = NNF(node.kind, children=children)
    return memo[id(root)]


def _nnf_graph(root: NNF) -> nx.Graph:
    g = nx.Graph()
    for node in root.nodes():
        g.add_node(id(node))
        for c in node.children:
            g.add_edge(id(node), id(c))
    return g


def _parents(root: NNF) -> dict[int, list[NNF]]:
    out: dict[int, list[NNF]] = {}
    for node in root.nodes():
        for c in node.children:
            out.setdefault(id(c), []).append(node)
    return out
