"""Vtree search: local transformations and dynamic minimization.

The paper remarks (Section 1) that SDD compilers beat OBDDs in practice by
"leveraging the additional flexibility offered by variable trees compared
to variable orders" (Choi & Darwiche's dynamic minimization).  This module
implements the classical local vtree operations —

- left rotation, right rotation (reassociating splits),
- child swap (vtrees are ordered),
- adjacent-leaf swap along the left-to-right order,

— and a hill-climbing minimizer over them for any objective (``sdw``,
``fiw``, SDD size).  The ablation bench E13 measures how much the extra
flexibility buys over pure order search.
"""

from __future__ import annotations

from typing import Callable, Iterator

from .boolfunc import BooleanFunction
from .sdd_compile import compile_canonical_sdd
from .vtree import Vtree

__all__ = [
    "rotate_left",
    "rotate_right",
    "neighbors",
    "minimize_vtree",
    "sdd_size_objective",
    "sdw_objective",
]


def rotate_right(v: Vtree) -> Vtree | None:
    """``(a b) c  ->  a (b c)`` at the root of ``v`` (None if not applicable)."""
    if v.is_leaf or v.left is None or v.left.is_leaf:
        return None
    a, b = v.left.left, v.left.right
    assert a is not None and b is not None and v.right is not None
    return Vtree.internal(a, Vtree.internal(b, v.right))


def rotate_left(v: Vtree) -> Vtree | None:
    """``a (b c)  ->  (a b) c`` at the root of ``v``."""
    if v.is_leaf or v.right is None or v.right.is_leaf:
        return None
    b, c = v.right.left, v.right.right
    assert b is not None and c is not None and v.left is not None
    return Vtree.internal(Vtree.internal(v.left, b), c)


def _replace(root: Vtree, target: Vtree, replacement: Vtree) -> Vtree:
    """Rebuild ``root`` with ``target`` (an identity-matched node) swapped
    for ``replacement``.  Iterative postorder: neighbor enumeration runs
    on the deep right-linear vtrees of query lineages, where a recursive
    rebuild would overflow the stack long before the search matters."""
    result: dict[int, Vtree] = {}
    for node in root.nodes():
        if node is target:
            result[id(node)] = replacement
        elif node.is_leaf:
            result[id(node)] = node
        else:
            assert node.left is not None and node.right is not None
            new_left = result[id(node.left)]
            new_right = result[id(node.right)]
            if new_left is node.left and new_right is node.right:
                result[id(node)] = node
            else:
                result[id(node)] = Vtree.internal(new_left, new_right)
    return result[id(root)]


def neighbors(root: Vtree) -> Iterator[Vtree]:
    """All vtrees reachable by one local operation anywhere in ``root``."""
    for node in root.nodes():
        if node.is_leaf:
            continue
        for candidate in (rotate_left(node), rotate_right(node), node.swap()):
            if candidate is not None and candidate is not node:
                yield _replace(root, node, candidate)


def sdd_size_objective(f: BooleanFunction) -> Callable[[Vtree], int]:
    def obj(t: Vtree) -> int:
        return compile_canonical_sdd(f, t).size

    return obj


def sdw_objective(f: BooleanFunction) -> Callable[[Vtree], int]:
    def obj(t: Vtree) -> int:
        return compile_canonical_sdd(f, t).sdw

    return obj


def minimize_vtree(
    f: BooleanFunction,
    start: Vtree | None = None,
    objective: Callable[[Vtree], int] | None = None,
    max_rounds: int = 12,
) -> tuple[int, Vtree]:
    """Hill-climb over local vtree operations (dynamic-minimization style).

    Returns ``(best objective value, best vtree)``.  Deterministic: at each
    round the best-improving neighbor is taken; stops at a local optimum.
    """
    t = start if start is not None else Vtree.balanced(sorted(f.variables))
    obj = objective if objective is not None else sdd_size_objective(f)
    best_val = obj(t)
    for _ in range(max_rounds):
        improved = False
        best_neighbor: tuple[int, Vtree] | None = None
        for cand in neighbors(t):
            val = obj(cand)
            if best_neighbor is None or val < best_neighbor[0]:
                best_neighbor = (val, cand)
        if best_neighbor is not None and best_neighbor[0] < best_val:
            best_val, t = best_neighbor
            improved = True
        if not improved:
            break
    return best_val, t
