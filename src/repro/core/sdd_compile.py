"""The canonical SDD ``S_{F,T}`` (Section 3.2.2).

The construction keys circuits by pairs ``(v, H)`` where ``H`` is a *set* of
factors of ``F`` relative to ``X_v``:

- leaf ``v`` labelled ``x``: ``C_{v,∅} = ⊥``; with one factor
  ``C_{v,{H}} = ⊤``; with two factors ``C_{v,{H_0}} = ¬x``,
  ``C_{v,{H_1}} = x``, ``C_{v,{H_0,H_1}} = ⊤``;
- internal ``v`` with children ``w, w'`` (eq. (27)):

      C_{v,H} = OR_{(P,S) ∈ sd(F,H,X_w,X_{w'})} ( C_{w,P} ∧ C_{w',S} )

- ``S_{F,T} = C_{r,{F}}`` (eq. (28)).

By Lemma 6 each ``C_{v,H}`` is a canonical SDD respecting ``T_v`` computing
``∨_{H∈H} H``; the elements satisfy (SD1) primes exhaustive, (SD2) primes
pairwise disjoint, (SD3) distinct subs.  SDD width (Definition 5) counts AND
gates structured per vtree node; Theorem 4 then gives size ``O(k·n)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .boolfunc import BooleanFunction
from .factors import FactorDecomposition, factors, sentential_decomposition
from .vtree import Vtree
from ..circuits.nnf import NNF, false_node, lit, true_node

__all__ = ["CompiledSDD", "compile_canonical_sdd"]


@dataclass
class CompiledSDD:
    """The result of the ``S_{F,T}`` construction."""

    root: NNF
    function: BooleanFunction
    vtree: Vtree
    and_gates_per_node: dict[int, int] = field(default_factory=dict)
    elements_per_node: dict[int, list[int]] = field(default_factory=dict)

    @property
    def sdw(self) -> int:
        """``sdw(F, T)`` — SDD width relative to ``T`` (Definition 5)."""
        if not self.and_gates_per_node:
            return 0
        return max(self.and_gates_per_node.values())

    @property
    def size(self) -> int:
        return self.root.size

    def theorem4_size_bound(self) -> int:
        """Theorem 4's gate budget: ``2(n+1) + 3k(n-1)``."""
        n = len(self.function.variables)
        k = self.sdw
        return 2 * (n + 1) + 3 * k * max(n - 1, 0)


def compile_canonical_sdd(f: BooleanFunction, vtree: Vtree) -> CompiledSDD:
    """Build the canonical SDD ``S_{F,T}``.

    The vtree may cover a superset of ``f``'s variables.  Constant functions
    compile to constants (constants are SDDs over any vtree).
    """
    if not set(f.variables) <= vtree.variables:
        raise ValueError("vtree must cover the function's variables")
    result = CompiledSDD(root=true_node(), function=f, vtree=vtree)
    if f.is_constant():
        result.root = true_node() if f.is_tautology() else false_node()
        return result

    dec_cache: dict[int, FactorDecomposition] = {}

    def dec_of(v: Vtree) -> FactorDecomposition:
        d = dec_cache.get(id(v))
        if d is None:
            d = factors(f, v.variables)
            dec_cache[id(v)] = d
        return d

    node_cache: dict[tuple[int, frozenset[int]], NNF] = {}

    def build(v: Vtree, hset: frozenset[int]) -> NNF:
        key = (id(v), hset)
        cached = node_cache.get(key)
        if cached is not None:
            return cached
        dec = dec_of(v)
        if v.is_leaf:
            out = _leaf_circuit(dec, hset)
        elif not hset:
            out = false_node()
        else:
            assert v.left is not None and v.right is not None
            dl, dr = dec_of(v.left), dec_of(v.right)
            elements = sentential_decomposition(
                f, hset, v.left.variables, v.right.variables,
                union_dec=dec, left_dec=dl, right_dec=dr,
            )
            ands = []
            for el in elements:
                prime = build(v.left, frozenset(el.primes))
                sub = build(v.right, frozenset(el.subs))
                ands.append(NNF("and", children=(prime, sub)))
            result.and_gates_per_node[id(v)] = (
                result.and_gates_per_node.get(id(v), 0) + len(ands)
            )
            result.elements_per_node.setdefault(id(v), []).append(len(ands))
            out = ands[0] if len(ands) == 1 else NNF("or", children=tuple(ands))
        node_cache[key] = out
        return out

    root_dec = dec_of(vtree)
    target = None
    for h, cof in enumerate(root_dec.cofactors):
        if cof.is_tautology():
            target = h
            break
    assert target is not None
    result.root = build(vtree, frozenset({target}))
    return result


def _leaf_circuit(dec: FactorDecomposition, hset: frozenset[int]) -> NNF:
    """Leaf cases of Section 3.2.2 (⊥ / literals / ⊤), including dummies."""
    if not hset:
        return false_node()
    if len(hset) == len(dec):
        return true_node()
    if len(dec.block) == 0:
        # Dummy leaf: single factor; hset nonempty means "all of them".
        return true_node()
    (x,) = dec.block
    (h,) = hset  # strict subset of a 2-element factor set is a singleton
    g = dec.factors[h]
    if bool(g.table[1]):
        return lit(x, True)
    return lit(x, False)
