"""Circuit treewidth is computable (Proposition 1 / Result 2).

The paper's proof is a decidability argument: express "G implements a
circuit computing F" in MSO and appeal to Seese's theorem on graphs of
bounded treewidth.  That argument is non-constructive in practice, so — as
recorded in DESIGN.md §4 — this module executes the *specification* of
circuit treewidth directly on the instances where any procedure terminates:

    ctw(F) = min { tw(C) : C a circuit computing F }

by exhaustive enumeration of circuits up to a gate budget, with the DNF
circuit of Proposition 1's proof as the terminating upper bound.  A
certified *lower* bound is also provided by inverting Lemma 1 on the exact
factor width ``fw(F)`` — entirely within the paper's own machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from .boolfunc import BooleanFunction
from .widths import lemma1_bound, min_factor_width
from ..circuits.circuit import Circuit
from ..graphs.exact_tw import exact_treewidth

__all__ = [
    "dnf_upper_bound_circuit",
    "ctw_upper_bound",
    "ctw_lower_bound_from_fw",
    "exact_circuit_treewidth",
    "CtwResult",
]


def dnf_upper_bound_circuit(f: BooleanFunction) -> Circuit:
    """The DNF whose terms are the models of ``F`` — Proposition 1's
    terminating upper bound on ``ctw(F)``."""
    return Circuit.from_function_dnf(f)


def ctw_upper_bound(f: BooleanFunction) -> int:
    """``tw`` of the Proposition-1 DNF circuit (may be loose)."""
    c = dnf_upper_bound_circuit(f)
    g = c.graph()
    if g.number_of_nodes() > 16:
        from ..graphs.elimination import treewidth_upper_bound

        return treewidth_upper_bound(g)
    return exact_treewidth(g)


def ctw_lower_bound_from_fw(f: BooleanFunction, exhaustive: bool | None = None) -> int:
    """The least ``k`` with ``lemma1_bound(k) ≥ fw(F)`` — a certified lower
    bound on ``ctw(F)`` by Lemma 1 (contrapositive)."""
    fw_val, _ = min_factor_width(f, exhaustive=exhaustive)
    k = 0
    while lemma1_bound(k) < fw_val:
        k += 1
    return k


@dataclass
class CtwResult:
    """Outcome of the exhaustive search."""

    value: int
    witness: Circuit | None
    exhausted: bool  # a witness circuit was found within the budget


def exact_circuit_treewidth(f: BooleanFunction, max_gates: int = 5) -> CtwResult:
    """Exhaustive ``ctw`` search (Result 2 executed literally).

    Enumerates all circuits with up to ``max_gates`` internal NOT/AND2/OR2
    gates over the essential variables (fanin-2 AND/OR plus NOT realizes
    every function); the reported value is the true minimum over that space.
    ``value == -1`` with ``exhausted == False`` means the budget was too
    small to realize ``F`` at all.

    Treewidth-0 answers (constants, bare positive literals) are recognized
    directly: a treewidth-0 graph has no edges, so the only such circuits
    are single input gates.
    """
    vs = f.variables
    if f.is_constant():
        c = Circuit()
        c.set_output(c.add_const(f.is_tautology()))
        return CtwResult(0, c, True)
    for v in vs:
        if f == BooleanFunction.literal(v, True, vs):
            c = Circuit()
            c.set_output(c.add_var(v))
            return CtwResult(0, c, True)

    target = f.drop_inessential()
    tvars = target.variables
    n = len(tvars)
    size = 1 << n
    full = (1 << size) - 1
    target_mask = target.to_int()
    input_masks = [BooleanFunction.literal(v, True, tvars).to_int() for v in tvars]

    best: list[tuple[int, tuple] | None] = [None]

    def tw_of(combo: tuple) -> int:
        return exact_treewidth(_combo_to_circuit(tvars, combo).graph())

    # DFS over gate sequences, computing masks incrementally.
    def dfs(masks: list[int], combo: list[tuple[str, tuple[int, ...]]], budget: int) -> None:
        if best[0] is not None and best[0][0] == 1:
            return  # cannot beat treewidth 1 with a non-trivial circuit
        if combo and masks[-1] == target_mask:
            # output = last gate; require all other internal gates used
            used = set()
            for _, inputs in combo:
                used.update(inputs)
            n_internal = len(combo)
            if all((n + i) in used for i in range(n_internal - 1)):
                tw = tw_of(tuple(combo))
                if best[0] is None or tw < best[0][0]:
                    best[0] = (tw, tuple(combo))
        if budget == 0:
            return
        pool = len(masks)
        for a in range(pool):
            masks.append(full & ~masks[a])
            combo.append(("not", (a,)))
            dfs(masks, combo, budget - 1)
            masks.pop()
            combo.pop()
        for a in range(pool):
            for b in range(a + 1, pool):
                for kind, m in (("and", masks[a] & masks[b]), ("or", masks[a] | masks[b])):
                    masks.append(m)
                    combo.append((kind, (a, b)))
                    dfs(masks, combo, budget - 1)
                    masks.pop()
                    combo.pop()

    dfs(list(input_masks), [], max_gates)
    if best[0] is None:
        return CtwResult(-1, None, False)
    tw, combo = best[0]
    return CtwResult(tw, _combo_to_circuit(tvars, combo), True)


def _combo_to_circuit(variables: tuple[str, ...], combo) -> Circuit:
    c = Circuit()
    ids = [c.add_var(v) for v in variables]
    for kind, inputs in combo:
        wired = tuple(ids[a] for a in inputs)
        if kind == "not":
            ids.append(c.add_not(wired[0]))
        elif kind == "and":
            ids.append(c.add_and(*wired))
        else:
            ids.append(c.add_or(*wired))
    c.set_output(ids[-1])
    return c
