"""The Lemma-1 compilation pipeline: circuit → tree decomposition → vtree →
canonical SDD / deterministic structured NNF.

This is the constructive content of Result 1: a circuit of treewidth ``k``
and ``n`` variables yields a vtree ``T`` with ``fw(F,T) ≤ 2^{(w+2)·2^{w+1}}``
(for ``w`` the width of the decomposition used), hence SDD size ``O(f(k)·n)``.

The vtree extraction follows the proof of Lemma 1 exactly:

1. take a *nice* tree decomposition ``S`` of the circuit's gates whose root
   bag is empty (so every input gate is forgotten exactly once);
2. label the leaves of ``S`` with fresh dummy variables ``W``;
3. for every variable ``x``, append a fresh leaf labelled ``x`` to the node
   of ``S`` forgetting the input gate of ``x``;
4. the resulting tree is a vtree for ``X ∪ W ⊇ X`` (unary nodes contracted;
   dummies optionally pruned — pruning never increases widths since subtree
   variable sets only shrink).
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Mapping

from .boolfunc import BooleanFunction
from .nnf_compile import CompiledNNF
from .sdd_compile import CompiledSDD
from .vtree import Vtree
from .widths import factor_width, lemma1_bound
from ..circuits.circuit import Circuit, VAR
from ..graphs.elimination import heuristic_tree_decomposition
from ..graphs.exact_tw import exact_tree_decomposition
from ..graphs.treedecomp import TreeDecomposition
from ..sdd.manager import SddManager

__all__ = [
    "PipelineResult",
    "vtree_from_circuit",
    "compile_circuit",
    "compile_circuit_apply",
]


class PipelineResult:
    """Everything the Lemma-1 pipeline produces for one circuit.

    .. deprecated:: PR 2
        New code should use :class:`repro.compiler.Compiler`, whose
        :class:`~repro.compiler.backends.Compiled` results expose the same
        measures uniformly across *three* registered backends.  This class
        remains as the result type of the legacy entry points
        :func:`compile_circuit` / :func:`compile_circuit_apply`, which now
        delegate to the facade.

    Two backends share this interface:

    - ``backend == "canonical"`` — the paper-faithful ``S_{F,T}`` / NNF
      construction from the full truth table (``sdd``/``nnf``/``function``
      populated eagerly; limited to ~20 variables);
    - ``backend == "apply"`` — bottom-up :class:`SddManager` compilation
      through ``apply`` over the same Lemma-1 vtree (``manager``/``root``
      populated; scales to hundreds of variables, ``function`` available
      lazily and only sensible at small ``n``).

    ``decomposition_width`` is ``None`` when no tree decomposition was
    involved (explicit vtree or reused manager).

    The unified accessors (:attr:`sdd_size`, :attr:`sdd_width`,
    :meth:`model_count`, :meth:`probability`, :meth:`evaluate`) work on
    either backend so callers can switch on scale without branching.
    """

    def __init__(
        self,
        circuit: Circuit,
        decomposition_width: int | None,
        vtree: Vtree,
        *,
        backend: str = "canonical",
        function: BooleanFunction | None = None,
        sdd: CompiledSDD | None = None,
        nnf: CompiledNNF | None = None,
        manager: SddManager | None = None,
        root: int | None = None,
    ):
        if backend not in ("canonical", "apply"):
            raise ValueError(f"unknown backend {backend!r}")
        self.circuit = circuit
        self.backend = backend
        self.decomposition_width = decomposition_width
        self.vtree = vtree
        self.sdd = sdd
        self.nnf = nnf
        self.manager = manager
        self.root = root
        self._function = function
        # The facade Compiled this result delegates its measures to; set by
        # compile_circuit / compile_circuit_apply, built lazily otherwise.
        self._compiled = None

    # -- truth-table views (computed lazily for the apply backend) -------
    @property
    def function(self) -> BooleanFunction:
        """The circuit's exact Boolean function.

        Materializes the ``2^n`` truth table on first access for the apply
        backend — only call it at small ``n``.
        """
        if self._function is None:
            self._function = self.circuit.function()
        return self._function

    @property
    def factor_width(self) -> int:
        return factor_width(self.function, self.vtree)

    def lemma1_bound(self) -> int:
        """``2^{(w+2)·2^{w+1}}`` for ``w`` the decomposition width used."""
        if self.decomposition_width is None:
            raise ValueError(
                "no tree decomposition was involved (explicit vtree); "
                "the Lemma-1 bound is undefined"
            )
        return lemma1_bound(self.decomposition_width)

    # -- backend-independent measures ------------------------------------
    # All measures delegate to the facade's Compiled implementations
    # (repro.compiler.backends) so there is exactly one copy of the
    # per-backend logic — extras marginalization, exact-WMC SDD reuse, etc.
    @property
    def _delegate(self):
        if self._compiled is None:
            if self.backend == "apply":
                from ..compiler.backends import ApplyCompiled

                assert self.manager is not None and self.root is not None
                self._compiled = ApplyCompiled(
                    self.circuit,
                    self.vtree,
                    self.decomposition_width,
                    "",
                    manager=self.manager,
                    root=self.root,
                )
            else:
                from ..compiler.backends import CanonicalCompiled

                assert self.sdd is not None
                self._compiled = CanonicalCompiled(
                    self.circuit,
                    self.vtree,
                    self.decomposition_width,
                    "",
                    function=self.function,
                    sdd=self.sdd,
                    nnf=self.nnf,
                )
        return self._compiled

    @property
    def sdd_size(self) -> int:
        """SDD size in the backend's own convention (NNF gates for the
        canonical construction, decision elements for the manager)."""
        return self._delegate.size

    @property
    def sdd_width(self) -> int:
        return self._delegate.width

    def model_count(self) -> int:
        """Exact model count over the circuit's variables (linear-time on
        the apply backend, truth-table on the canonical one)."""
        return self._delegate.model_count()

    def probability(
        self, prob: Mapping[str, float], *, exact: bool = False
    ) -> float | Fraction:
        """Probability under independent literal probabilities.

        ``exact=True`` runs the WMC in :class:`~fractions.Fraction`
        arithmetic (on the canonical backend it reuses the already-compiled
        SDD instead of recompiling the circuit).
        """
        return self._delegate.probability(prob, exact=exact)

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        return self._delegate.evaluate(assignment)

    def stats(self) -> dict[str, int]:
        """Public counters of the underlying compilation (see
        :meth:`repro.compiler.backends.Compiled.stats`)."""
        return self._delegate.stats()


def vtree_from_circuit(
    circuit: Circuit,
    decomposition: TreeDecomposition | None = None,
    *,
    exact: bool | None = None,
    prune_dummies: bool = True,
) -> tuple[Vtree, int]:
    """Extract the Lemma-1 vtree.  Returns ``(vtree, decomposition width)``.

    ``exact=None`` picks the exact treewidth DP when the circuit has at most
    12 gates and the heuristics otherwise.
    """
    variables = circuit.variables
    if not variables:
        raise ValueError("circuit has no variables; constants need no vtree")
    graph = circuit.graph()
    if decomposition is None:
        if exact is None:
            exact = graph.number_of_nodes() <= 12
        decomposition = (
            exact_tree_decomposition(graph) if exact else heuristic_tree_decomposition(graph)
        )
    decomposition.validate(graph)
    nice = decomposition.make_nice()
    nice.validate(graph)

    var_of_gate = {
        gid: gate.payload
        for gid, gate in enumerate(circuit.gates)
        if gate.kind == VAR
    }
    dummy_counter = itertools.count()

    # Iterative postorder over the (deep) nice tree; Vtrees keyed by object
    # identity of the nice node they were built for.
    built: dict[int, Vtree | None] = {}
    for node in nice.root.nodes():
        out: Vtree | None
        if node.kind == "leaf":
            out = None if prune_dummies else Vtree.leaf(f"__dummy{next(dummy_counter)}__")
        elif node.kind == "join":
            l = built[id(node.children[0])]
            r = built[id(node.children[1])]
            out = l if r is None else (r if l is None else Vtree.internal(l, r))
        else:
            out = built[id(node.children[0])]
            if node.kind == "forget" and node.vertex in var_of_gate:
                x_leaf = Vtree.leaf(str(var_of_gate[node.vertex]))
                out = x_leaf if out is None else Vtree.internal(out, x_leaf)
            # introduce nodes and forgets of non-variable gates are unary:
            # contract.
        built[id(node)] = out

    vtree = built[id(nice.root)]
    assert vtree is not None, "circuit with variables must yield a vtree"
    if prune_dummies:
        vtree = vtree.prune_to(set(map(str, variables)))
    assert vtree.variables >= set(variables)
    return vtree, decomposition.width


def compile_circuit(
    circuit: Circuit,
    decomposition: TreeDecomposition | None = None,
    *,
    exact: bool | None = None,
    prune_dummies: bool = True,
) -> PipelineResult:
    """Run the full Result-1 pipeline on ``circuit``.

    .. deprecated:: PR 2
        Shim over ``Compiler(backend="canonical")`` — prefer
        :class:`repro.compiler.Compiler`, which also gives strategy choice
        and the ``obdd`` backend.

    Produces both compiled forms (canonical SDD and canonical deterministic
    structured NNF) over the Lemma-1 vtree.
    """
    from ..compiler.backends import CanonicalBackend

    vtree, width = vtree_from_circuit(
        circuit, decomposition, exact=exact, prune_dummies=prune_dummies
    )
    compiled = CanonicalBackend().compile(circuit, vtree, decomposition_width=width)
    result = PipelineResult(
        circuit,
        width,
        vtree,
        backend="canonical",
        function=compiled.function,
        sdd=compiled.sdd,
        nnf=compiled.nnf,
    )
    result._compiled = compiled
    return result


def compile_circuit_apply(
    circuit: Circuit,
    decomposition: TreeDecomposition | None = None,
    *,
    exact: bool | None = None,
    prune_dummies: bool = True,
    vtree: Vtree | None = None,
    manager: SddManager | None = None,
) -> PipelineResult:
    """Run the Result-1 pipeline through :class:`SddManager.apply` — no
    truth table anywhere, so circuits with hundreds of variables compile.

    .. deprecated:: PR 2
        Shim over ``Compiler(backend="apply")`` — prefer
        :class:`repro.compiler.Compiler` for one-off circuits and
        :class:`repro.queries.QueryEngine` for shared-manager workloads.

    The vtree is the same Lemma-1 extraction as :func:`compile_circuit`
    (bounded-treewidth circuits therefore keep their linear-size guarantee);
    the SDD itself is built bottom-up over the circuit's gates with
    hash-consing and apply-caching instead of the ``(v, H)`` truth-table
    keys of ``S_{F,T}``.

    ``vtree`` overrides the extraction (``decomposition``/``exact``/
    ``prune_dummies`` are then ignored and the reported
    ``decomposition_width`` is ``None``); ``manager`` reuses an existing
    manager — its vtree must cover the circuit's variables — so a batch of
    circuits shares one apply cache.
    """
    from ..compiler.backends import ApplyBackend

    if manager is not None:
        vt = manager.vtree
        if not set(map(str, circuit.variables)) <= vt.variables:
            raise ValueError("manager's vtree does not cover the circuit")
        width: int | None = None
        root = manager.compile_circuit(circuit)
        return PipelineResult(
            circuit, width, vt, backend="apply", manager=manager, root=root
        )
    if vtree is not None:
        if not set(map(str, circuit.variables)) <= vtree.variables:
            raise ValueError("vtree does not cover the circuit's variables")
        vt, width = vtree, None
    else:
        vt, width = vtree_from_circuit(
            circuit, decomposition, exact=exact, prune_dummies=prune_dummies
        )
    compiled = ApplyBackend().compile(circuit, vt, decomposition_width=width)
    result = PipelineResult(
        circuit,
        width,
        vt,
        backend="apply",
        manager=compiled.manager,
        root=compiled.root,
    )
    result._compiled = compiled
    return result
