"""The Lemma-1 compilation pipeline: circuit → tree decomposition → vtree →
canonical SDD / deterministic structured NNF.

This is the constructive content of Result 1: a circuit of treewidth ``k``
and ``n`` variables yields a vtree ``T`` with ``fw(F,T) ≤ 2^{(w+2)·2^{w+1}}``
(for ``w`` the width of the decomposition used), hence SDD size ``O(f(k)·n)``.

The vtree extraction follows the proof of Lemma 1 exactly:

1. take a *nice* tree decomposition ``S`` of the circuit's gates whose root
   bag is empty (so every input gate is forgotten exactly once);
2. label the leaves of ``S`` with fresh dummy variables ``W``;
3. for every variable ``x``, append a fresh leaf labelled ``x`` to the node
   of ``S`` forgetting the input gate of ``x``;
4. the resulting tree is a vtree for ``X ∪ W ⊇ X`` (unary nodes contracted;
   dummies optionally pruned — pruning never increases widths since subtree
   variable sets only shrink).
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Mapping

from .boolfunc import BooleanFunction
from .nnf_compile import CompiledNNF, compile_canonical_nnf
from .sdd_compile import CompiledSDD, compile_canonical_sdd
from .vtree import Vtree
from .widths import factor_width, lemma1_bound
from ..circuits.circuit import Circuit, VAR
from ..graphs.elimination import heuristic_tree_decomposition
from ..graphs.exact_tw import exact_tree_decomposition
from ..graphs.treedecomp import TreeDecomposition
from ..sdd.manager import SddManager

__all__ = [
    "PipelineResult",
    "vtree_from_circuit",
    "compile_circuit",
    "compile_circuit_apply",
]


class PipelineResult:
    """Everything the Lemma-1 pipeline produces for one circuit.

    Two backends share this interface:

    - ``backend == "canonical"`` — the paper-faithful ``S_{F,T}`` / NNF
      construction from the full truth table (``sdd``/``nnf``/``function``
      populated eagerly; limited to ~20 variables);
    - ``backend == "apply"`` — bottom-up :class:`SddManager` compilation
      through ``apply`` over the same Lemma-1 vtree (``manager``/``root``
      populated; scales to hundreds of variables, ``function`` available
      lazily and only sensible at small ``n``).

    The unified accessors (:attr:`sdd_size`, :attr:`sdd_width`,
    :meth:`model_count`, :meth:`probability`, :meth:`evaluate`) work on
    either backend so callers can switch on scale without branching.
    """

    def __init__(
        self,
        circuit: Circuit,
        decomposition_width: int,
        vtree: Vtree,
        *,
        backend: str = "canonical",
        function: BooleanFunction | None = None,
        sdd: CompiledSDD | None = None,
        nnf: CompiledNNF | None = None,
        manager: SddManager | None = None,
        root: int | None = None,
    ):
        if backend not in ("canonical", "apply"):
            raise ValueError(f"unknown backend {backend!r}")
        self.circuit = circuit
        self.backend = backend
        self.decomposition_width = decomposition_width
        self.vtree = vtree
        self.sdd = sdd
        self.nnf = nnf
        self.manager = manager
        self.root = root
        self._function = function

    # -- truth-table views (computed lazily for the apply backend) -------
    @property
    def function(self) -> BooleanFunction:
        """The circuit's exact Boolean function.

        Materializes the ``2^n`` truth table on first access for the apply
        backend — only call it at small ``n``.
        """
        if self._function is None:
            self._function = self.circuit.function()
        return self._function

    @property
    def factor_width(self) -> int:
        return factor_width(self.function, self.vtree)

    def lemma1_bound(self) -> int:
        """``2^{(w+2)·2^{w+1}}`` for ``w`` the decomposition width used."""
        return lemma1_bound(self.decomposition_width)

    # -- backend-independent measures ------------------------------------
    @property
    def sdd_size(self) -> int:
        """SDD size in the backend's own convention (NNF gates for the
        canonical construction, decision elements for the manager)."""
        if self.backend == "canonical":
            assert self.sdd is not None
            return self.sdd.size
        assert self.manager is not None and self.root is not None
        return self.manager.size(self.root)

    @property
    def sdd_width(self) -> int:
        if self.backend == "canonical":
            assert self.sdd is not None
            return self.sdd.sdw
        assert self.manager is not None and self.root is not None
        return self.manager.width(self.root)

    def _extra_vtree_vars(self) -> frozenset[str]:
        """Vtree variables beyond the circuit's own (unpruned dummies, or a
        reused manager whose vtree covers a larger variable set)."""
        assert self.manager is not None
        return self.manager.vtree.variables - set(map(str, self.circuit.variables))

    def model_count(self) -> int:
        """Exact model count over the circuit's variables (linear-time on
        the apply backend, truth-table on the canonical one)."""
        if self.backend == "apply":
            assert self.manager is not None and self.root is not None
            base = self.manager.count_models(self.root, self.circuit.variables)
            # The WMC sweep counts over *all* vtree variables; the circuit
            # doesn't depend on the extra ones, so each contributes an
            # exact factor of 2.
            return base >> len(self._extra_vtree_vars())
        return self.function.count_models()

    def probability(
        self, prob: Mapping[str, float], *, exact: bool = False
    ) -> float | Fraction:
        """Probability under independent literal probabilities.

        ``exact=True`` runs the WMC in :class:`~fractions.Fraction`
        arithmetic (apply backend only, where exactness matters at scale).
        """
        if self.backend == "apply":
            from ..sdd.wmc import probability as sdd_probability

            assert self.manager is not None and self.root is not None
            extra = self._extra_vtree_vars() - set(prob)
            if extra:
                # The root is independent of these; any weight pair summing
                # to 1 marginalizes them out.
                prob = {**prob, **{v: 0.5 for v in extra}}
            return sdd_probability(self.manager, self.root, prob, exact=exact)
        if exact:
            from ..sdd.wmc import exact_weights

            mgr = SddManager(self.vtree)
            return mgr.weighted_count(mgr.compile_circuit(self.circuit), exact_weights(prob))
        return self.function.probability(prob)

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        if self.backend == "apply":
            assert self.manager is not None and self.root is not None
            return self.manager.evaluate(self.root, assignment)
        return bool(self.function(dict(assignment)))


def vtree_from_circuit(
    circuit: Circuit,
    decomposition: TreeDecomposition | None = None,
    *,
    exact: bool | None = None,
    prune_dummies: bool = True,
) -> tuple[Vtree, int]:
    """Extract the Lemma-1 vtree.  Returns ``(vtree, decomposition width)``.

    ``exact=None`` picks the exact treewidth DP when the circuit has at most
    12 gates and the heuristics otherwise.
    """
    variables = circuit.variables
    if not variables:
        raise ValueError("circuit has no variables; constants need no vtree")
    graph = circuit.graph()
    if decomposition is None:
        if exact is None:
            exact = graph.number_of_nodes() <= 12
        decomposition = (
            exact_tree_decomposition(graph) if exact else heuristic_tree_decomposition(graph)
        )
    decomposition.validate(graph)
    nice = decomposition.make_nice()
    nice.validate(graph)

    var_of_gate = {
        gid: gate.payload
        for gid, gate in enumerate(circuit.gates)
        if gate.kind == VAR
    }
    dummy_counter = itertools.count()

    # Iterative postorder over the (deep) nice tree; Vtrees keyed by object
    # identity of the nice node they were built for.
    built: dict[int, Vtree | None] = {}
    for node in nice.root.nodes():
        out: Vtree | None
        if node.kind == "leaf":
            out = None if prune_dummies else Vtree.leaf(f"__dummy{next(dummy_counter)}__")
        elif node.kind == "join":
            l = built[id(node.children[0])]
            r = built[id(node.children[1])]
            out = l if r is None else (r if l is None else Vtree.internal(l, r))
        else:
            out = built[id(node.children[0])]
            if node.kind == "forget" and node.vertex in var_of_gate:
                x_leaf = Vtree.leaf(str(var_of_gate[node.vertex]))
                out = x_leaf if out is None else Vtree.internal(out, x_leaf)
            # introduce nodes and forgets of non-variable gates are unary:
            # contract.
        built[id(node)] = out

    vtree = built[id(nice.root)]
    assert vtree is not None, "circuit with variables must yield a vtree"
    if prune_dummies:
        vtree = vtree.prune_to(set(map(str, variables)))
    assert vtree.variables >= set(variables)
    return vtree, decomposition.width


def compile_circuit(
    circuit: Circuit,
    decomposition: TreeDecomposition | None = None,
    *,
    exact: bool | None = None,
    prune_dummies: bool = True,
) -> PipelineResult:
    """Run the full Result-1 pipeline on ``circuit``.

    Produces both compiled forms (canonical SDD and canonical deterministic
    structured NNF) over the Lemma-1 vtree.
    """
    f = circuit.function()
    vtree, width = vtree_from_circuit(
        circuit, decomposition, exact=exact, prune_dummies=prune_dummies
    )
    sdd = compile_canonical_sdd(f, vtree)
    nnf = compile_canonical_nnf(f, vtree)
    return PipelineResult(
        circuit,
        width,
        vtree,
        backend="canonical",
        function=f,
        sdd=sdd,
        nnf=nnf,
    )


def compile_circuit_apply(
    circuit: Circuit,
    decomposition: TreeDecomposition | None = None,
    *,
    exact: bool | None = None,
    prune_dummies: bool = True,
    vtree: Vtree | None = None,
    manager: SddManager | None = None,
) -> PipelineResult:
    """Run the Result-1 pipeline through :class:`SddManager.apply` — no
    truth table anywhere, so circuits with hundreds of variables compile.

    The vtree is the same Lemma-1 extraction as :func:`compile_circuit`
    (bounded-treewidth circuits therefore keep their linear-size guarantee);
    the SDD itself is built bottom-up over the circuit's gates with
    hash-consing and apply-caching instead of the ``(v, H)`` truth-table
    keys of ``S_{F,T}``.

    ``vtree`` overrides the extraction (``decomposition``/``exact``/
    ``prune_dummies`` are then ignored and the reported width is ``-1``);
    ``manager`` reuses an existing manager — its vtree must cover the
    circuit's variables — so a batch of circuits shares one apply cache.
    """
    if manager is not None:
        vt = manager.vtree
        if not set(map(str, circuit.variables)) <= vt.variables:
            raise ValueError("manager's vtree does not cover the circuit")
        width = -1
        mgr = manager
    elif vtree is not None:
        if not set(map(str, circuit.variables)) <= vtree.variables:
            raise ValueError("vtree does not cover the circuit's variables")
        vt, width = vtree, -1
        mgr = SddManager(vt)
    else:
        vt, width = vtree_from_circuit(
            circuit, decomposition, exact=exact, prune_dummies=prune_dummies
        )
        mgr = SddManager(vt)
    root = mgr.compile_circuit(circuit)
    return PipelineResult(
        circuit,
        width,
        vt,
        backend="apply",
        manager=mgr,
        root=root,
    )
