"""The Lemma-1 compilation pipeline: circuit → tree decomposition → vtree →
canonical SDD / deterministic structured NNF.

This is the constructive content of Result 1: a circuit of treewidth ``k``
and ``n`` variables yields a vtree ``T`` with ``fw(F,T) ≤ 2^{(w+2)·2^{w+1}}``
(for ``w`` the width of the decomposition used), hence SDD size ``O(f(k)·n)``.

The vtree extraction follows the proof of Lemma 1 exactly:

1. take a *nice* tree decomposition ``S`` of the circuit's gates whose root
   bag is empty (so every input gate is forgotten exactly once);
2. label the leaves of ``S`` with fresh dummy variables ``W``;
3. for every variable ``x``, append a fresh leaf labelled ``x`` to the node
   of ``S`` forgetting the input gate of ``x``;
4. the resulting tree is a vtree for ``X ∪ W ⊇ X`` (unary nodes contracted;
   dummies optionally pruned — pruning never increases widths since subtree
   variable sets only shrink).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import networkx as nx

from .boolfunc import BooleanFunction
from .nnf_compile import CompiledNNF, compile_canonical_nnf
from .sdd_compile import CompiledSDD, compile_canonical_sdd
from .vtree import Vtree
from .widths import factor_width, lemma1_bound
from ..circuits.circuit import Circuit, VAR
from ..graphs.elimination import heuristic_tree_decomposition
from ..graphs.exact_tw import exact_tree_decomposition
from ..graphs.treedecomp import NiceNode, NiceTreeDecomposition, TreeDecomposition

__all__ = ["PipelineResult", "vtree_from_circuit", "compile_circuit"]


@dataclass
class PipelineResult:
    """Everything the Lemma-1 pipeline produces for one circuit."""

    circuit: Circuit
    function: BooleanFunction
    decomposition_width: int
    vtree: Vtree
    sdd: CompiledSDD
    nnf: CompiledNNF

    @property
    def factor_width(self) -> int:
        return factor_width(self.function, self.vtree)

    def lemma1_bound(self) -> int:
        """``2^{(w+2)·2^{w+1}}`` for ``w`` the decomposition width used."""
        return lemma1_bound(self.decomposition_width)


def vtree_from_circuit(
    circuit: Circuit,
    decomposition: TreeDecomposition | None = None,
    *,
    exact: bool | None = None,
    prune_dummies: bool = True,
) -> tuple[Vtree, int]:
    """Extract the Lemma-1 vtree.  Returns ``(vtree, decomposition width)``.

    ``exact=None`` picks the exact treewidth DP when the circuit has at most
    12 gates and the heuristics otherwise.
    """
    variables = circuit.variables
    if not variables:
        raise ValueError("circuit has no variables; constants need no vtree")
    graph = circuit.graph()
    if decomposition is None:
        if exact is None:
            exact = graph.number_of_nodes() <= 12
        decomposition = (
            exact_tree_decomposition(graph) if exact else heuristic_tree_decomposition(graph)
        )
    decomposition.validate(graph)
    nice = decomposition.make_nice()
    nice.validate(graph)

    var_of_gate = {
        gid: gate.payload
        for gid, gate in enumerate(circuit.gates)
        if gate.kind == VAR
    }
    dummy_counter = itertools.count()

    def build(node: NiceNode) -> Vtree | None:
        if node.kind == "leaf":
            if prune_dummies:
                return None
            return Vtree.leaf(f"__dummy{next(dummy_counter)}__")
        if node.kind == "join":
            l = build(node.children[0])
            r = build(node.children[1])
            if l is None:
                return r
            if r is None:
                return l
            return Vtree.internal(l, r)
        child = build(node.children[0])
        if node.kind == "forget" and node.vertex in var_of_gate:
            x_leaf = Vtree.leaf(str(var_of_gate[node.vertex]))
            if child is None:
                return x_leaf
            return Vtree.internal(child, x_leaf)
        # introduce nodes and forgets of non-variable gates are unary: contract.
        return child

    vtree = build(nice.root)
    assert vtree is not None, "circuit with variables must yield a vtree"
    if prune_dummies:
        vtree = vtree.prune_to(set(map(str, variables)))
    assert vtree.variables >= set(variables)
    return vtree, decomposition.width


def compile_circuit(
    circuit: Circuit,
    decomposition: TreeDecomposition | None = None,
    *,
    exact: bool | None = None,
    prune_dummies: bool = True,
) -> PipelineResult:
    """Run the full Result-1 pipeline on ``circuit``.

    Produces both compiled forms (canonical SDD and canonical deterministic
    structured NNF) over the Lemma-1 vtree.
    """
    f = circuit.function()
    vtree, width = vtree_from_circuit(
        circuit, decomposition, exact=exact, prune_dummies=prune_dummies
    )
    sdd = compile_canonical_sdd(f, vtree)
    nnf = compile_canonical_nnf(f, vtree)
    return PipelineResult(
        circuit=circuit,
        function=f,
        decomposition_width=width,
        vtree=vtree,
        sdd=sdd,
        nnf=nnf,
    )
