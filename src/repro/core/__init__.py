"""The paper's primary contribution: factors, vtrees, canonical compilers,
width theory, the Lemma-1 pipeline, and Result-2 computability."""

from .boolfunc import BooleanFunction
from .factors import FactorDecomposition, factorized_implicants, factors, sentential_decomposition
from .nnf_compile import CompiledNNF, compile_canonical_nnf
from .pipeline import (
    PipelineResult,
    compile_circuit,
    compile_circuit_apply,
    vtree_from_circuit,
)
from .sdd_compile import CompiledSDD, compile_canonical_sdd
from .vtree import Vtree
