"""Exact Boolean functions backed by dense truth tables.

This module is the semantic bedrock of the reproduction.  Every notion the
paper defines *semantically* (cofactors, factors, determinism of a gate,
canonicity of a compiled form, communication matrices, ...) is computed here
exactly, with no floating point and no sampling.

Representation
--------------
A :class:`BooleanFunction` over variables ``(v_0 < v_1 < ... < v_{n-1})``
(sorted tuple of strings) stores a numpy bool array ``table`` of length
``2**n``.  The entry for an assignment ``b`` lives at index
``sum(b[v_i] << i)`` — variable ``i`` occupies bit ``i`` (little-endian).

The dense representation is exact and fast (numpy vectorization) up to
roughly 20 variables, which covers every experiment in the paper at the
scale where its *shapes* (linear vs polynomial vs exponential) are visible.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

__all__ = ["BooleanFunction", "Assignment"]

Assignment = Mapping[str, int]


def _as_bool_array(table: Sequence[int] | np.ndarray, n: int) -> np.ndarray:
    arr = np.asarray(table, dtype=bool)
    if arr.shape != (1 << n,):
        raise ValueError(f"table must have length 2**{n}, got shape {arr.shape}")
    arr = np.ascontiguousarray(arr)
    arr.flags.writeable = False
    return arr


class BooleanFunction:
    """An exact Boolean function ``F : {0,1}^X -> {0,1}``.

    Instances are immutable and hashable; equality is *semantic identity over
    the same variable tuple* — i.e. two functions are equal iff they have the
    same variables (as a set) and the same truth table.  This matches the
    paper's convention where a cofactor ``F'(X \\ Y)`` is a function over the
    block ``X \\ Y`` even if it does not depend on all of it.
    """

    __slots__ = ("_vars", "_table", "_hash")

    def __init__(self, variables: Iterable[str], table: Sequence[int] | np.ndarray):
        vs = tuple(sorted(set(variables)))
        if len(vs) != len(tuple(variables)) and len(set(variables)) != len(tuple(variables)):
            raise ValueError("duplicate variables")
        self._vars = vs
        self._table = _as_bool_array(table, len(vs))
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, value: bool, variables: Iterable[str] = ()) -> "BooleanFunction":
        """The constant ``value`` viewed as a function over ``variables``."""
        vs = tuple(sorted(set(variables)))
        return cls(vs, np.full(1 << len(vs), bool(value), dtype=bool))

    @classmethod
    def true(cls, variables: Iterable[str] = ()) -> "BooleanFunction":
        return cls.constant(True, variables)

    @classmethod
    def false(cls, variables: Iterable[str] = ()) -> "BooleanFunction":
        return cls.constant(False, variables)

    @classmethod
    def literal(cls, var: str, positive: bool = True, variables: Iterable[str] = ()) -> "BooleanFunction":
        """The literal ``var`` (or its negation) over ``variables ∪ {var}``."""
        vs = tuple(sorted(set(variables) | {var}))
        i = vs.index(var)
        n = len(vs)
        idx = np.arange(1 << n)
        bit = (idx >> i) & 1
        table = bit.astype(bool) if positive else ~bit.astype(bool)
        return cls(vs, table)

    @classmethod
    def var(cls, name: str) -> "BooleanFunction":
        return cls.literal(name, True)

    @classmethod
    def from_callable(
        cls, variables: Sequence[str], fn: Callable[..., int | bool]
    ) -> "BooleanFunction":
        """Build from a Python predicate; ``fn`` receives one kwarg per variable."""
        vs = tuple(sorted(set(variables)))
        n = len(vs)
        table = np.zeros(1 << n, dtype=bool)
        for idx in range(1 << n):
            b = {v: (idx >> i) & 1 for i, v in enumerate(vs)}
            table[idx] = bool(fn(**b))
        return cls(vs, table)

    @classmethod
    def from_models(
        cls, variables: Sequence[str], models: Iterable[Assignment]
    ) -> "BooleanFunction":
        vs = tuple(sorted(set(variables)))
        table = np.zeros(1 << len(vs), dtype=bool)
        for m in models:
            table[cls._index_of(vs, m)] = True
        return cls(vs, table)

    @classmethod
    def from_int(cls, variables: Sequence[str], mask: int) -> "BooleanFunction":
        """Build from an integer bitmask (bit ``i`` = value on assignment ``i``)."""
        vs = tuple(sorted(set(variables)))
        n = len(vs)
        table = np.array([(mask >> i) & 1 for i in range(1 << n)], dtype=bool)
        return cls(vs, table)

    @staticmethod
    def _index_of(vs: Sequence[str], assignment: Assignment) -> int:
        idx = 0
        for i, v in enumerate(vs):
            if v not in assignment:
                raise KeyError(f"assignment missing variable {v!r}")
            if assignment[v]:
                idx |= 1 << i
        return idx

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def variables(self) -> tuple[str, ...]:
        """The (sorted) variable tuple this function is *over*."""
        return self._vars

    @property
    def arity(self) -> int:
        return len(self._vars)

    @property
    def table(self) -> np.ndarray:
        """Read-only truth table (bool array of length ``2**arity``)."""
        return self._table

    def to_int(self) -> int:
        """The truth table packed into a Python int."""
        out = 0
        for i in np.flatnonzero(self._table):
            out |= 1 << int(i)
        return out

    def key(self) -> tuple[tuple[str, ...], bytes]:
        """A hashable canonical key (variables, raw table bytes)."""
        return (self._vars, self._table.tobytes())

    # ------------------------------------------------------------------
    # evaluation / models
    # ------------------------------------------------------------------
    def __call__(self, assignment: Assignment | None = None, **kwargs: int) -> bool:
        a = dict(assignment or {})
        a.update(kwargs)
        return bool(self._table[self._index_of(self._vars, a)])

    def models(self) -> Iterator[dict[str, int]]:
        """Yield all satisfying assignments as dicts."""
        for idx in np.flatnonzero(self._table):
            yield {v: (int(idx) >> i) & 1 for i, v in enumerate(self._vars)}

    def count_models(self) -> int:
        return int(self._table.sum())

    def is_satisfiable(self) -> bool:
        return bool(self._table.any())

    def is_tautology(self) -> bool:
        return bool(self._table.all())

    def is_constant(self) -> bool:
        return self.is_tautology() or not self.is_satisfiable()

    # ------------------------------------------------------------------
    # comparisons
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BooleanFunction):
            return NotImplemented
        return self._vars == other._vars and bool(np.array_equal(self._table, other._table))

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._vars, self._table.tobytes()))
        return self._hash

    def equivalent(self, other: "BooleanFunction") -> bool:
        """Semantic equivalence over the *union* of variable sets.

        This is the paper's ``C ≡ C'`` (both circuits viewed over the union
        of their variables).
        """
        joint = sorted(set(self._vars) | set(other._vars))
        return self.extend(joint) == other.extend(joint)

    # ------------------------------------------------------------------
    # variable manipulation
    # ------------------------------------------------------------------
    def _shaped(self) -> np.ndarray:
        """Table reshaped to ``(2,)*n``; axis ``j`` corresponds to variable
        ``n-1-j`` (C order: the last axis varies fastest = variable 0)."""
        n = len(self._vars)
        return self._table.reshape((2,) * n) if n else self._table.reshape(())

    def _axis_of(self, var: str) -> int:
        n = len(self._vars)
        return n - 1 - self._vars.index(var)

    def extend(self, variables: Iterable[str]) -> "BooleanFunction":
        """View this function over a superset of its variables."""
        vs = tuple(sorted(set(variables)))
        if not set(self._vars) <= set(vs):
            raise ValueError("extend target must be a superset of current variables")
        if vs == self._vars:
            return self
        n_new = len(vs)
        shaped = self._shaped()
        # Build index arrays: for each new assignment, pick old index.
        idx = np.arange(1 << n_new)
        old_idx = np.zeros(1 << n_new, dtype=np.int64)
        for old_i, v in enumerate(self._vars):
            new_i = vs.index(v)
            old_idx |= (((idx >> new_i) & 1) << old_i)
        return BooleanFunction(vs, self._table[old_idx])

    def drop_inessential(self) -> "BooleanFunction":
        """Project onto the essential variables (those the function depends on)."""
        ess = [v for v in self._vars if self.depends_on(v)]
        return self.project(ess)

    def depends_on(self, var: str) -> bool:
        if var not in self._vars:
            return False
        ax = self._axis_of(var)
        shaped = self._shaped()
        zero = np.take(shaped, 0, axis=ax)
        one = np.take(shaped, 1, axis=ax)
        return not bool(np.array_equal(zero, one))

    def essential_variables(self) -> tuple[str, ...]:
        return tuple(v for v in self._vars if self.depends_on(v))

    def project(self, variables: Iterable[str]) -> "BooleanFunction":
        """Restrict the variable *tuple* to ``variables``.

        Only legal when the function does not depend on the dropped
        variables; raises ``ValueError`` otherwise.
        """
        vs = tuple(sorted(set(variables)))
        dropped = [v for v in self._vars if v not in vs]
        for v in dropped:
            if self.depends_on(v):
                raise ValueError(f"cannot drop essential variable {v!r}")
        if not set(vs) <= set(self._vars):
            # allow projecting onto a superset by extending first
            return self.extend(sorted(set(vs) | set(self._vars))).project(vs)
        out = self
        for v in dropped:
            ax = out._axis_of(v)
            shaped = out._shaped()
            out = BooleanFunction(
                tuple(x for x in out._vars if x != v),
                np.take(shaped, 0, axis=ax).reshape(-1),
            )
        return out

    def rename(self, mapping: Mapping[str, str]) -> "BooleanFunction":
        """Rename variables (must stay injective)."""
        new_vars = [mapping.get(v, v) for v in self._vars]
        if len(set(new_vars)) != len(new_vars):
            raise ValueError("renaming must be injective")
        # Renaming can permute the sorted order; rebuild via index mapping.
        vs_new = tuple(sorted(new_vars))
        n = len(vs_new)
        idx = np.arange(1 << n)
        old_idx = np.zeros(1 << n, dtype=np.int64)
        for old_i, v in enumerate(self._vars):
            new_i = vs_new.index(mapping.get(v, v))
            old_idx |= (((idx >> new_i) & 1) << old_i)
        return BooleanFunction(vs_new, self._table[old_idx])

    # ------------------------------------------------------------------
    # cofactors (paper Section 3.1)
    # ------------------------------------------------------------------
    def cofactor(self, assignment: Assignment) -> "BooleanFunction":
        """The cofactor of ``F`` induced by ``assignment`` (paper's
        ``F(b, X \\ Y)``): a function over the unassigned variables."""
        fixed = {v: int(b) for v, b in assignment.items() if v in self._vars}
        rest = tuple(v for v in self._vars if v not in fixed)
        shaped = self._shaped()
        # np index: axis j corresponds to var n-1-j
        index: list[object] = []
        n = len(self._vars)
        for j in range(n):
            v = self._vars[n - 1 - j]
            index.append(fixed[v] if v in fixed else slice(None))
        sub = shaped[tuple(index)]
        return BooleanFunction(rest, np.asarray(sub).reshape(-1))

    def restrict(self, assignment: Assignment) -> "BooleanFunction":
        """Alias for :meth:`cofactor`."""
        return self.cofactor(assignment)

    def cofactors_wrt(self, y_vars: Iterable[str]) -> list["BooleanFunction"]:
        """All distinct cofactors of ``F`` relative to ``X \\ Y`` (i.e. induced
        by assignments of ``Y ∩ X``), in first-seen order."""
        y = tuple(v for v in self._vars if v in set(y_vars))
        seen: dict[bytes, BooleanFunction] = {}
        for sub in self._cofactor_rows(y):
            k = sub.tobytes()
            if k not in seen:
                rest = tuple(v for v in self._vars if v not in set(y))
                seen[k] = BooleanFunction(rest, sub)
        return list(seen.values())

    def _cofactor_rows(self, y: tuple[str, ...]) -> np.ndarray:
        """Rows = cofactor tables, one per assignment of ``y`` (in little-endian
        assignment order).  Shape ``(2**|y|, 2**(n-|y|))``."""
        n = len(self._vars)
        yset = set(y)
        rest = [v for v in self._vars if v not in yset]
        shaped = self._shaped()
        # Move Y axes to the front (most significant first for row ordering).
        # Row index must be little-endian over sorted(y): var y[i] is bit i.
        y_sorted = tuple(sorted(yset))
        src_axes = [self._axis_of(v) for v in y_sorted]  # axis of each y var
        # Destination: y_sorted[i] should become axis (len(y)-1-i) among leading axes
        dst_axes = [len(y_sorted) - 1 - i for i in range(len(y_sorted))]
        moved = np.moveaxis(shaped, src_axes, dst_axes) if n else shaped
        return np.ascontiguousarray(moved.reshape(1 << len(y_sorted), -1))

    # ------------------------------------------------------------------
    # connectives (variables are aligned to the union)
    # ------------------------------------------------------------------
    def _align(self, other: "BooleanFunction") -> tuple["BooleanFunction", "BooleanFunction"]:
        joint = sorted(set(self._vars) | set(other._vars))
        return self.extend(joint), other.extend(joint)

    def __and__(self, other: "BooleanFunction") -> "BooleanFunction":
        a, b = self._align(other)
        return BooleanFunction(a._vars, a._table & b._table)

    def __or__(self, other: "BooleanFunction") -> "BooleanFunction":
        a, b = self._align(other)
        return BooleanFunction(a._vars, a._table | b._table)

    def __xor__(self, other: "BooleanFunction") -> "BooleanFunction":
        a, b = self._align(other)
        return BooleanFunction(a._vars, a._table ^ b._table)

    def __invert__(self) -> "BooleanFunction":
        return BooleanFunction(self._vars, ~self._table)

    def implies(self, other: "BooleanFunction") -> bool:
        a, b = self._align(other)
        return bool((~a._table | b._table).all())

    def disjoint(self, other: "BooleanFunction") -> bool:
        """``sat(self) ∩ sat(other) = ∅`` over the union of variables."""
        a, b = self._align(other)
        return not bool((a._table & b._table).any())

    # ------------------------------------------------------------------
    # quantification
    # ------------------------------------------------------------------
    def exists(self, variables: Iterable[str]) -> "BooleanFunction":
        out = self
        for v in sorted(set(variables)):
            if v not in out._vars:
                continue
            ax = out._axis_of(v)
            shaped = out._shaped()
            table = np.take(shaped, 0, axis=ax) | np.take(shaped, 1, axis=ax)
            out = BooleanFunction(tuple(x for x in out._vars if x != v), table.reshape(-1))
        return out

    def forall(self, variables: Iterable[str]) -> "BooleanFunction":
        out = self
        for v in sorted(set(variables)):
            if v not in out._vars:
                continue
            ax = out._axis_of(v)
            shaped = out._shaped()
            table = np.take(shaped, 0, axis=ax) & np.take(shaped, 1, axis=ax)
            out = BooleanFunction(tuple(x for x in out._vars if x != v), table.reshape(-1))
        return out

    # ------------------------------------------------------------------
    # probability (tuple-independent product measure)
    # ------------------------------------------------------------------
    def probability(self, prob: Mapping[str, float]) -> float:
        """Exact probability of ``F`` under independent variables with
        ``P(v = 1) = prob[v]`` (brute force over the truth table)."""
        n = len(self._vars)
        p = np.ones(1 << n, dtype=float)
        idx = np.arange(1 << n)
        for i, v in enumerate(self._vars):
            pv = float(prob[v])
            bit = (idx >> i) & 1
            p *= np.where(bit == 1, pv, 1.0 - pv)
        return float(p[self._table].sum())

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.arity <= 4:
            return f"BooleanFunction({self._vars}, 0b{self.to_int():0{1 << self.arity}b})"
        return f"BooleanFunction({self._vars}, <2^{self.arity} table>)"

    @classmethod
    def random(cls, variables: Sequence[str], rng: "np.random.Generator") -> "BooleanFunction":
        vs = tuple(sorted(set(variables)))
        return cls(vs, rng.integers(0, 2, size=1 << len(vs)).astype(bool))

    @classmethod
    def all_functions(cls, variables: Sequence[str]) -> Iterator["BooleanFunction"]:
        """Enumerate every Boolean function over ``variables`` (tiny arities only)."""
        vs = tuple(sorted(set(variables)))
        n = len(vs)
        if n > 4:
            raise ValueError("all_functions is only sensible for <= 4 variables")
        for mask in range(1 << (1 << n)):
            yield cls.from_int(vs, mask)
