"""The canonical deterministic structured NNF ``C_{F,T}`` (Section 3.2.1).

Implements equations (17)–(21) verbatim:

- at a leaf ``v`` with variable ``x``: ``⊤`` if ``F`` has a single factor
  relative to ``{x}``, else the literals ``x`` / ``¬x`` (17)–(19);
- at an internal node ``v`` with children ``w, w'``:

      C_{v,H} = OR_{(G,G') ∈ impl(F,H,X_w,X_{w'})} ( C_{w,G} ∧ C_{w',G'} )   (20)

- ``C_{F,T} = C_{r,F}`` at the root (21).

By Lemma 4 the result is a deterministic NNF structured by ``T`` computing
``F``; it is canonical (uniquely determined by ``F`` and ``T``), and by
Theorem 3 its size is ``O(k·n)`` for ``k`` the factorized implicant width.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from .boolfunc import BooleanFunction
from .factors import FactorDecomposition, factorized_implicants, factors
from .vtree import Vtree
from ..circuits.nnf import NNF, false_node, lit, true_node

__all__ = ["CompiledNNF", "compile_canonical_nnf"]


@dataclass
class CompiledNNF:
    """The result of the ``C_{F,T}`` construction.

    Attributes
    ----------
    root:
        The compiled NNF (deterministic, structured by ``vtree``).
    function:
        The input function ``F``.
    vtree:
        The vtree ``T`` used.
    and_gates_per_node:
        For each internal vtree node (by identity), the number of AND gates
        *structured by* that node (Definition 4's counting).
    """

    root: NNF
    function: BooleanFunction
    vtree: Vtree
    and_gates_per_node: dict[int, int] = field(default_factory=dict)

    @property
    def fiw(self) -> int:
        """``fiw(F, T)`` — the factorized implicant width relative to ``T``
        (Definition 4): the max number of AND gates structured by one node."""
        if not self.and_gates_per_node:
            return 0
        return max(self.and_gates_per_node.values())

    @property
    def size(self) -> int:
        return self.root.size

    def theorem3_size_bound(self) -> int:
        """Theorem 3's gate budget: ``2n + 1 + 3k(n-1)``."""
        n = len(self.function.variables)
        k = self.fiw
        return 2 * n + 1 + 3 * k * max(n - 1, 0)


def compile_canonical_nnf(f: BooleanFunction, vtree: Vtree) -> CompiledNNF:
    """Build ``C_{F,T}`` for function ``f`` and vtree ``vtree``.

    The vtree may be over a superset of ``f``'s variables (dummy leaves are
    handled per equation (9): their factor decompositions are trivial).
    Constant functions compile to the corresponding constant node.
    """
    if not set(f.variables) <= vtree.variables:
        raise ValueError("vtree must cover the function's variables")
    result = CompiledNNF(root=true_node(), function=f, vtree=vtree)
    if f.is_constant():
        result.root = true_node() if f.is_tautology() else false_node()
        return result

    dec_cache: dict[int, FactorDecomposition] = {}

    def dec_of(v: Vtree) -> FactorDecomposition:
        d = dec_cache.get(id(v))
        if d is None:
            d = factors(f, v.variables)
            dec_cache[id(v)] = d
        return d

    node_cache: dict[tuple[int, int], NNF] = {}

    def build(v: Vtree, h: int) -> NNF:
        key = (id(v), h)
        cached = node_cache.get(key)
        if cached is not None:
            return cached
        dec = dec_of(v)
        if v.is_leaf:
            out = _leaf_circuit(dec, h, v)
        else:
            assert v.left is not None and v.right is not None
            dl, dr = dec_of(v.left), dec_of(v.right)
            impl = factorized_implicants(
                f, v.left.variables, v.right.variables,
                union_dec=dec, left_dec=dl, right_dec=dr,
            )
            pairs = impl[h]
            ands = []
            for (i, j) in pairs:
                left_c = build(v.left, i)
                right_c = build(v.right, j)
                ands.append(NNF("and", children=(left_c, right_c)))
            result.and_gates_per_node[id(v)] = (
                result.and_gates_per_node.get(id(v), 0) + len(ands)
            )
            out = ands[0] if len(ands) == 1 else NNF("or", children=tuple(ands))
        node_cache[key] = out
        return out

    root_dec = dec_of(vtree)
    # F itself is a factor of F relative to X: the one whose cofactor (over
    # the empty set) is the constant 1 (see the remark after eq. (21)).
    target = None
    for h, cof in enumerate(root_dec.cofactors):
        if cof.is_tautology():
            target = h
            break
    assert target is not None, "non-constant function must have a 1-cofactor factor"
    result.root = build(vtree, target)
    return result


def _leaf_circuit(dec: FactorDecomposition, h: int, v: Vtree) -> NNF:
    """Equations (17)–(19), extended to dummy leaves (empty block)."""
    if len(dec.block) == 0:
        # Dummy leaf: single trivial factor, circuit ⊤ (eq. (17) degenerate).
        return true_node()
    (x,) = dec.block
    if len(dec) == 1:
        return true_node()
    g = dec.factors[h]
    # g's table over {x}: [value at x=0, value at x=1]
    if bool(g.table[1]):
        return lit(x, True)
    return lit(x, False)
