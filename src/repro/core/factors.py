"""Factors, factorized implicants, and sentential decompositions.

Implements the paper's Section 3.1/3.2 combinatorics exactly:

- :func:`factors` — Definition 1: the partition of ``{0,1}^{Y∩X}`` whose
  blocks collect the assignments inducing the same cofactor of ``F``.
- :func:`rectangle_status` — Lemma 2: the rectangle of two factors is either
  contained in or disjoint from any factor of the union block.
- :func:`factorized_implicants` — Definition 3 / Lemma 3: the disjoint
  rectangle cover of a factor ``H`` by products of factors.
- :func:`sentential_decomposition` — the ``sd(F, H, Y, Y')`` partition of
  Section 3.2.2 used to build canonical SDDs, satisfying (SD1)–(SD3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from .boolfunc import BooleanFunction

__all__ = [
    "FactorDecomposition",
    "factors",
    "rectangle_status",
    "factorized_implicants",
    "sentential_decomposition",
    "SententialElement",
]


@dataclass(frozen=True)
class FactorDecomposition:
    """``factors(F, Y)`` — the factors of ``F`` relative to ``Y``.

    Attributes
    ----------
    function:
        The function ``F`` the decomposition refers to.
    block:
        ``Y ∩ X`` as a sorted tuple (the variables factors are over).
    factors:
        The factors ``G(Y ∩ X)``, one per distinct cofactor, ordered
        canonically (lexicographically by cofactor table — deterministic,
        which the canonical compilers rely on).
    cofactors:
        ``cofactors[i]`` is the cofactor of ``F`` relative to ``X \\ Y``
        induced by (every model of) ``factors[i]``.
    """

    function: BooleanFunction
    block: tuple[str, ...]
    factors: tuple[BooleanFunction, ...]
    cofactors: tuple[BooleanFunction, ...]
    _inverse: np.ndarray = field(repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.factors)

    def factor_index_of(self, assignment: Mapping[str, int]) -> int:
        """Index of the (unique) factor whose models contain ``assignment``
        (an assignment of the block)."""
        idx = 0
        for i, v in enumerate(self.block):
            if assignment[v]:
                idx |= 1 << i
        return int(self._inverse[idx])

    def factor_of(self, assignment: Mapping[str, int]) -> BooleanFunction:
        return self.factors[self.factor_index_of(assignment)]

    def representative(self, i: int) -> dict[str, int]:
        """A canonical model of ``factors[i]`` (the least assignment index)."""
        idx = int(np.flatnonzero(self.factors[i].table)[0])
        return {v: (idx >> j) & 1 for j, v in enumerate(self.block)}

    def validate(self) -> None:
        """Check equation (10): factors partition ``{0,1}^{Y∩X}``."""
        total = np.zeros(1 << len(self.block), dtype=int)
        for g in self.factors:
            total += g.table.astype(int)
        if not bool((total == 1).all()):
            raise AssertionError("factors do not partition the assignment space")


def factors(f: BooleanFunction, y_vars: Iterable[str]) -> FactorDecomposition:
    """Compute ``factors(F, Y)`` (Definition 1).

    Per equation (9), ``factors(F, Y) = factors(F, Y ∩ X)`` — variables in
    ``Y`` outside ``F``'s scope are ignored.
    """
    block = tuple(v for v in f.variables if v in set(y_vars))
    rest = tuple(v for v in f.variables if v not in set(y_vars))
    rows = f._cofactor_rows(block)  # (2^|block|, 2^|rest|)
    # Group assignments of the block by identical cofactor rows.
    uniq, inverse = np.unique(rows, axis=0, return_inverse=True)
    inverse = inverse.reshape(-1)
    fac: list[BooleanFunction] = []
    cof: list[BooleanFunction] = []
    for i in range(uniq.shape[0]):
        fac.append(BooleanFunction(block, inverse == i))
        cof.append(BooleanFunction(rest, uniq[i]))
    return FactorDecomposition(
        function=f,
        block=block,
        factors=tuple(fac),
        cofactors=tuple(cof),
        _inverse=inverse,
    )


def _merge_assignments(a: Mapping[str, int], b: Mapping[str, int]) -> dict[str, int]:
    out = dict(a)
    out.update(b)
    return out


def rectangle_status(
    union_dec: FactorDecomposition,
    h_index: int,
    left_dec: FactorDecomposition,
    g_index: int,
    right_dec: FactorDecomposition,
    gp_index: int,
) -> str:
    """Lemma 2: is ``sat(G) × sat(G')`` contained in or disjoint from
    ``sat(H)``?  Returns ``"contained"`` or ``"disjoint"``.

    Only a single representative test is needed *because of Lemma 2*; tests
    validate the dichotomy exhaustively.
    """
    b = left_dec.representative(g_index)
    bp = right_dec.representative(gp_index)
    if union_dec.factor_index_of(_merge_assignments(b, bp)) == h_index:
        return "contained"
    return "disjoint"


def factorized_implicants(
    f: BooleanFunction,
    y_vars: Iterable[str],
    yp_vars: Iterable[str],
    *,
    union_dec: FactorDecomposition | None = None,
    left_dec: FactorDecomposition | None = None,
    right_dec: FactorDecomposition | None = None,
) -> dict[int, list[tuple[int, int]]]:
    """``impl(F, H, Y, Y')`` for *every* factor ``H`` of ``F`` rel. ``Y ∪ Y'``.

    Returns a dict mapping the index of ``H`` (in ``factors(F, Y ∪ Y')``) to
    the list of index pairs ``(i, j)`` such that
    ``(factors(F,Y)[i], factors(F,Y')[j])`` is a factorized implicant of
    ``H``.  By Lemma 3 the rectangles of the pairs listed under ``H`` form a
    disjoint rectangle cover of ``H``.

    Pre-computed decompositions can be passed to avoid recomputation.
    """
    y = set(y_vars)
    yp = set(yp_vars)
    if y & yp & set(f.variables):
        raise ValueError("Y and Y' must be disjoint on F's variables")
    du = union_dec if union_dec is not None else factors(f, y | yp)
    dl = left_dec if left_dec is not None else factors(f, y)
    dr = right_dec if right_dec is not None else factors(f, yp)
    out: dict[int, list[tuple[int, int]]] = {h: [] for h in range(len(du))}
    for i in range(len(dl)):
        b = dl.representative(i)
        for j in range(len(dr)):
            bp = dr.representative(j)
            h = du.factor_index_of(_merge_assignments(b, bp))
            out[h].append((i, j))
    return out


@dataclass(frozen=True)
class SententialElement:
    """One element ``(P_i, S_i)`` of the ``sd(F, H, Y, Y')`` partition.

    ``primes`` are indices into ``factors(F, Y)``; ``subs`` are indices into
    ``factors(F, Y')`` (``subs`` may be empty, standing for ``⊥``).
    """

    primes: tuple[int, ...]
    subs: tuple[int, ...]


def sentential_decomposition(
    f: BooleanFunction,
    h_indices: frozenset[int] | set[int],
    y_vars: Iterable[str],
    yp_vars: Iterable[str],
    *,
    union_dec: FactorDecomposition | None = None,
    left_dec: FactorDecomposition | None = None,
    right_dec: FactorDecomposition | None = None,
) -> list[SententialElement]:
    """The ``sd(F, H, Y, Y')`` construction of Section 3.2.2.

    ``h_indices`` selects a set ``H`` of factors of ``F`` relative to
    ``Y ∪ Y'``.  For every prime factor ``G ∈ factors(F, Y)`` the set

        ``S_G = { G' : (G, G') is an implicant of some H ∈ H }``

    is computed; primes with equal ``S_G`` are grouped, yielding elements
    that satisfy (SD1) (primes exhaust), (SD2) (primes pairwise disjoint)
    and (SD3) (distinct subs).  Elements are ordered canonically by their
    smallest prime index.
    """
    y = set(y_vars)
    yp = set(yp_vars)
    du = union_dec if union_dec is not None else factors(f, y | yp)
    dl = left_dec if left_dec is not None else factors(f, y)
    dr = right_dec if right_dec is not None else factors(f, yp)
    h_set = set(h_indices)
    groups: dict[tuple[int, ...], list[int]] = {}
    for i in range(len(dl)):
        b = dl.representative(i)
        s_g: list[int] = []
        for j in range(len(dr)):
            bp = dr.representative(j)
            h = du.factor_index_of(_merge_assignments(b, bp))
            if h in h_set:
                s_g.append(j)
        groups.setdefault(tuple(s_g), []).append(i)
    elements = [
        SententialElement(primes=tuple(sorted(ps)), subs=subs)
        for subs, ps in groups.items()
    ]
    elements.sort(key=lambda e: e.primes[0])
    return elements
