"""The fourth compilation backend: bag-by-bag d-DNNF (no SddManager).

See ``README.md`` in this directory for the friendly-bag / responsible-bag /
suspicious-gate glossary and the mapping to arXiv 1811.02944 §5.1.
"""

from .builder import DdnnfResult, build_ddnnf, friendly_from_circuit
from .nodes import (
    FALSE,
    TRUE,
    DnnfDag,
    check_ddnnf,
    check_decomposable,
    check_deterministic,
    check_smooth,
)
from .wmc import DnnfWmcEvaluator, model_count, probability, weighted_model_count

__all__ = [
    "FALSE",
    "TRUE",
    "DnnfDag",
    "DnnfWmcEvaluator",
    "DdnnfResult",
    "build_ddnnf",
    "friendly_from_circuit",
    "check_ddnnf",
    "check_decomposable",
    "check_deterministic",
    "check_smooth",
    "model_count",
    "probability",
    "weighted_model_count",
]
