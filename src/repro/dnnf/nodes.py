"""The d-DNNF DAG: a hash-consed node store plus exact structural oracles.

A d-DNNF is a negation normal form whose AND gates are *decomposable*
(children mention disjoint variables) and whose OR gates are *deterministic*
(children are pairwise logically inconsistent); the builder in
:mod:`repro.dnnf.builder` additionally keeps every OR *smooth* (children
mention the same variables).  Those three invariants are what make the
single ascending-id sweep of :mod:`repro.dnnf.wmc` a correct linear-time
weighted model counter — so they are exposed here as first-class test
oracles (:func:`check_decomposable`, :func:`check_deterministic`,
:func:`check_smooth`), exact and raising ``AssertionError`` with the
offending node, exactly like :meth:`repro.sdd.manager.SddManager.
check_unique_table` is for SDDs.

Design notes, matching the repo's other node stores:

- **Hash-consing.**  ``literal``/``conjoin``/``disjoin`` intern through a
  unique table, so structurally identical subgraphs are one node and
  ``unique_hits``/``unique_misses`` are meaningful counters.
- **Ids are topological.**  Children are interned before parents, so an
  ascending-id iteration visits children first — every sweep here and in
  :mod:`repro.dnnf.wmc` is iterative (no recursion; friendly decompositions
  of large circuits get very deep).
- **Constants.**  Node ``0`` is FALSE and node ``1`` is TRUE, mirroring the
  :class:`~repro.sdd.manager.SddManager` convention.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = [
    "FALSE",
    "TRUE",
    "DnnfDag",
    "check_decomposable",
    "check_deterministic",
    "check_smooth",
    "check_ddnnf",
]

FALSE = 0
TRUE = 1

_CONST = "const"
_LIT = "lit"
_AND = "and"
_OR = "or"


class DnnfDag:
    """A growing d-DNNF DAG; nodes are integer ids into parallel arrays.

    ``node_kind[u]`` is one of ``"const"``/``"lit"``/``"and"``/``"or"``;
    literals carry ``node_var``/``node_sign``, internal nodes carry
    ``node_children`` (a tuple of ids, sorted for AND so interning is
    order-insensitive; ORs keep builder order — their children are
    semantically disjoint, not interchangeable duplicates).
    """

    def __init__(self) -> None:
        self.node_kind: list[str] = [_CONST, _CONST]
        self.node_children: list[tuple[int, ...]] = [(), ()]
        self.node_var: list[str | None] = [None, None]
        self.node_sign: list[bool | None] = [None, None]
        self._unique: dict[tuple, int] = {}
        self.unique_hits = 0
        self.unique_misses = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _intern(self, key: tuple, kind: str, children: tuple[int, ...],
                var: str | None = None, sign: bool | None = None) -> int:
        got = self._unique.get(key)
        if got is not None:
            self.unique_hits += 1
            return got
        self.unique_misses += 1
        uid = len(self.node_kind)
        self.node_kind.append(kind)
        self.node_children.append(children)
        self.node_var.append(var)
        self.node_sign.append(sign)
        self._unique[key] = uid
        return uid

    def literal(self, var: str, sign: bool) -> int:
        """The literal ``var`` (``sign=True``) or ``¬var``."""
        return self._intern((_LIT, var, bool(sign)), _LIT, (), var, bool(sign))

    def conjoin(self, children: Iterable[int]) -> int:
        """Decomposable AND of already-built nodes (TRUE units dropped,
        FALSE absorbing, single child returned as-is)."""
        kept: list[int] = []
        for c in children:
            if c == FALSE:
                return FALSE
            if c != TRUE:
                kept.append(c)
        if not kept:
            return TRUE
        if len(kept) == 1:
            return kept[0]
        key_children = tuple(sorted(kept))
        return self._intern((_AND, key_children), _AND, key_children)

    def disjoin(self, children: Sequence[int]) -> int:
        """Deterministic OR of already-built nodes (FALSE units dropped,
        TRUE absorbing, single child returned as-is).

        Callers are responsible for determinism — children must be pairwise
        inconsistent; this store never merges or deduplicates OR children
        because dropping a "duplicate" would silently change the model
        count of a deterministic form.
        """
        kept: list[int] = []
        for c in children:
            if c == TRUE:
                return TRUE
            if c != FALSE:
                kept.append(c)
        if not kept:
            return FALSE
        if len(kept) == 1:
            return kept[0]
        key_children = tuple(kept)
        return self._intern((_OR, key_children), _OR, key_children)

    # ------------------------------------------------------------------
    # traversal and measures
    # ------------------------------------------------------------------
    def reachable(self, root: int) -> list[int]:
        """Ids reachable from ``root`` in ascending (= topological) order."""
        seen = {root}
        stack = [root]
        while stack:
            u = stack.pop()
            for c in self.node_children[u]:
                if c not in seen:
                    seen.add(c)
                    stack.append(c)
        return sorted(seen)

    def size(self, root: int) -> int:
        """Number of non-constant nodes reachable from ``root``."""
        return sum(1 for u in self.reachable(root) if u > TRUE)

    def edge_count(self, root: int) -> int:
        """Number of wires reachable from ``root`` (the NNF size measure)."""
        return sum(len(self.node_children[u]) for u in self.reachable(root))

    def width(self, root: int) -> int:
        """Max fanin over reachable AND/OR nodes (0 for literal/const roots)."""
        return max(
            (len(self.node_children[u]) for u in self.reachable(root)), default=0
        )

    def scopes(self, root: int) -> dict[int, frozenset[str]]:
        """Variables mentioned under each reachable node (children first)."""
        out: dict[int, frozenset[str]] = {}
        for u in self.reachable(root):
            kind = self.node_kind[u]
            if kind == _CONST:
                out[u] = frozenset()
            elif kind == _LIT:
                out[u] = frozenset((self.node_var[u],))
            else:
                acc: frozenset[str] = frozenset()
                for c in self.node_children[u]:
                    acc |= out[c]
                out[u] = acc
        return out

    def evaluate(self, root: int, assignment: Mapping[str, int]) -> bool:
        """Evaluate under a total assignment of the mentioned variables."""
        vals: dict[int, bool] = {}
        for u in self.reachable(root):
            kind = self.node_kind[u]
            if kind == _CONST:
                vals[u] = u == TRUE
            elif kind == _LIT:
                vals[u] = bool(assignment[self.node_var[u]]) == self.node_sign[u]
            elif kind == _AND:
                vals[u] = all(vals[c] for c in self.node_children[u])
            else:
                vals[u] = any(vals[c] for c in self.node_children[u])
        return vals[root]

    def freeze(self, roots, *, names=None, meta=None):
        """Freeze ``roots`` into an immutable array-backed
        :class:`~repro.artifact.store.FrozenDdnnf` (save/mmap/share)."""
        from ..artifact.store import FrozenDdnnf

        return FrozenDdnnf.from_dag(self, list(roots), names=names, meta=meta)

    def stats(self) -> dict[str, int]:
        """Public counters (the supported alternative to private pokes)."""
        return {
            "nodes": len(self.node_kind),
            "unique_hits": self.unique_hits,
            "unique_misses": self.unique_misses,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DnnfDag(nodes={len(self.node_kind)})"


# ----------------------------------------------------------------------
# structural-invariant oracles
# ----------------------------------------------------------------------
def check_decomposable(dag: DnnfDag, root: int) -> None:
    """Raise ``AssertionError`` unless every reachable AND is decomposable
    (children mention pairwise disjoint variable sets).  Exact, O(size·vars)."""
    scopes = dag.scopes(root)
    for u in dag.reachable(root):
        if dag.node_kind[u] != _AND:
            continue
        seen: set[str] = set()
        for c in dag.node_children[u]:
            overlap = seen & scopes[c]
            if overlap:
                raise AssertionError(
                    f"AND node {u} is not decomposable: child {c} re-mentions "
                    f"{sorted(overlap)[:5]}"
                )
            seen |= scopes[c]


def check_smooth(dag: DnnfDag, root: int) -> None:
    """Raise ``AssertionError`` unless every reachable OR is smooth
    (all children mention exactly the same variable set)."""
    scopes = dag.scopes(root)
    for u in dag.reachable(root):
        if dag.node_kind[u] != _OR:
            continue
        children = dag.node_children[u]
        first = scopes[children[0]]
        for c in children[1:]:
            if scopes[c] != first:
                raise AssertionError(
                    f"OR node {u} is not smooth: child scopes "
                    f"{sorted(first)[:5]} vs {sorted(scopes[c])[:5]}"
                )


def check_deterministic(dag: DnnfDag, root: int) -> None:
    """Raise ``AssertionError`` unless every reachable OR is deterministic
    (children pairwise logically inconsistent).

    Exact: computes each node's model set over its own scope bottom-up and
    verifies, per OR, that the children's model sets — lifted to the union
    scope — are pairwise disjoint.  Exponential in the scope size, so meant
    for the test-oracle sizes (≤ ~16 variables), like the brute-force
    ground truths elsewhere in the test suite.
    """
    scopes = dag.scopes(root)
    # models[u]: frozenset of frozensets-of-true-variables over scopes[u].
    models: dict[int, frozenset[frozenset[str]]] = {}
    for u in dag.reachable(root):
        kind = dag.node_kind[u]
        if kind == _CONST:
            models[u] = frozenset() if u == FALSE else frozenset((frozenset(),))
        elif kind == _LIT:
            true_part = frozenset((dag.node_var[u],)) if dag.node_sign[u] else frozenset()
            models[u] = frozenset((true_part,))
        elif kind == _AND:
            acc = frozenset((frozenset(),))
            for c in dag.node_children[u]:
                acc = frozenset(m | mc for m in acc for mc in models[c])
            models[u] = acc
        else:
            union_scope = scopes[u]
            lifted: list[frozenset[frozenset[str]]] = []
            for c in dag.node_children[u]:
                lifted.append(_lift_models(models[c], scopes[c], union_scope))
            total = sum(len(ms) for ms in lifted)
            combined = frozenset().union(*lifted) if lifted else frozenset()
            if len(combined) != total:
                raise AssertionError(
                    f"OR node {u} is not deterministic: children share "
                    f"{total - len(combined)} model(s)"
                )
            models[u] = combined


def _lift_models(
    models: frozenset[frozenset[str]],
    scope: frozenset[str],
    target: frozenset[str],
) -> frozenset[frozenset[str]]:
    """Expand models over ``scope`` to models over ``target ⊇ scope``."""
    missing = sorted(target - scope)
    if not missing:
        return models
    out: set[frozenset[str]] = set()
    for m in models:
        for mask in range(1 << len(missing)):
            extra = frozenset(v for i, v in enumerate(missing) if (mask >> i) & 1)
            out.add(m | extra)
    return frozenset(out)


def check_ddnnf(dag: DnnfDag, root: int) -> None:
    """All three oracles in one call (decomposable + smooth + deterministic)."""
    check_decomposable(dag, root)
    check_smooth(dag, root)
    check_deterministic(dag, root)
