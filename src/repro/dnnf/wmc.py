"""Linear-time (weighted) model counting over a smooth d-DNNF DAG.

The mirror of :mod:`repro.sdd.wmc` for the fourth backend — and the reason
the builder insists on smoothness and determinism: on a smooth
deterministic decomposable DAG the WMC is literally "OR = sum, AND =
product, literal = weight", one ring operation per wire, no gap products
needed (every OR child already mentions the full scope of its parent).

Same conventions as the SDD evaluator:

- **No recursion.**  DAG ids are hash-consed children-first, so a single
  ascending-id pass is a topological sweep; deep chains compile to deep
  DAGs and must not touch Python's stack.
- **Generic ring.**  ``int`` weights count models, Fraction weights give
  exact probabilities, floats the fast inexact mode — one implementation,
  Python's numeric tower does the rest.  :func:`repro.sdd.wmc.exact_weights`
  and :func:`~repro.sdd.wmc.float_weights` are reused verbatim so the
  ``Fraction(str(p))`` decimal-fidelity convention is shared bit-for-bit
  across backends (the cross-backend parity suite depends on it).
- **Reusable memo.**  One evaluator serves many roots of the same DAG;
  shared subgraphs are paid for once.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping, Sequence

from ..sdd.wmc import exact_weights, float_weights
from .nodes import FALSE, TRUE, DnnfDag

__all__ = [
    "DnnfWmcEvaluator",
    "model_count",
    "weighted_model_count",
    "probability",
    "exact_weights",
    "float_weights",
]


class DnnfWmcEvaluator:
    """Weighted model counting over one DAG, reusable across roots.

    ``weights`` maps variables to ``(w_neg, w_pos)``; it must cover every
    variable the swept nodes mention.  The result of :meth:`value` is the
    WMC over the *root's own scope* — callers owning a wider scope multiply
    in ``w_neg + w_pos`` per absent variable (see :func:`model_count`).
    """

    def __init__(self, dag: DnnfDag, weights: Mapping[str, tuple]):
        self.dag = dag
        self.weights = dict(weights)
        self._memo: dict[int, object] = {FALSE: 0, TRUE: 1}

    def value(self, root: int):
        dag = self.dag
        memo = self._memo
        todo = [u for u in dag.reachable(root) if u not in memo]
        # reachable() is ascending-id = children first.
        for u in todo:
            kind = dag.node_kind[u]
            if kind == "lit":
                w0, w1 = self.weights[dag.node_var[u]]
                memo[u] = w1 if dag.node_sign[u] else w0
            elif kind == "and":
                acc = 1
                for c in dag.node_children[u]:
                    acc = acc * memo[c]
                memo[u] = acc
            elif kind == "or":
                acc = 0
                for c in dag.node_children[u]:
                    acc = acc + memo[c]
                memo[u] = acc
            else:  # constants pre-seeded; nothing else exists
                raise AssertionError(f"unexpected node kind {kind!r}")
        return memo[root]

    def update_weights(self, changed: Mapping[str, tuple]) -> int:
        """Point-update literal weights, invalidating exactly the stale memo.

        One ascending-id pass marks every node whose value (transitively)
        reaches a literal of a changed variable, then drops only those
        memo entries.  Returns the number evicted; the next :meth:`value`
        re-sweeps just the marked cone — the DAG itself is untouched.
        """
        vars_changed = set(changed)
        for var, w in changed.items():
            self.weights[var] = w
        dag = self.dag
        dirty = bytearray(len(dag.node_kind))
        for u in range(2, len(dag.node_kind)):
            kind = dag.node_kind[u]
            if kind == "lit":
                if dag.node_var[u] in vars_changed:
                    dirty[u] = 1
            elif kind != "const":
                for c in dag.node_children[u]:
                    if dirty[c]:
                        dirty[u] = 1
                        break
        memo = self._memo
        stale = [u for u in memo if u > TRUE and dirty[u]]
        for u in stale:
            del memo[u]
        return len(stale)

    def memoized(self, root: int) -> bool:
        """Whether ``root``'s value survived the last weight update — a
        caller caching final values can keep them exactly when this holds."""
        return root in self._memo

    def stats(self) -> dict[str, int]:
        """Public counters (the supported alternative to poking ``_memo``)."""
        return {"memo_entries": len(self._memo)}


# ----------------------------------------------------------------------
# functional entry points (same surface as repro.sdd.wmc)
# ----------------------------------------------------------------------
def weighted_model_count(dag: DnnfDag, root: int, weights: Mapping[str, tuple]):
    """One-shot WMC; see :class:`DnnfWmcEvaluator` for the reusable form."""
    return DnnfWmcEvaluator(dag, weights).value(root)


def model_count(dag: DnnfDag, root: int, scope: Sequence[str] | None = None) -> int:
    """Exact model count over ``scope`` (default: the root's own scope).

    The builder's smoothness guarantee makes the root mention exactly the
    circuit's variables, so the default counts over the circuit; ``scope``
    may name extra variables, each contributing a free factor of 2 —
    matching :func:`repro.sdd.wmc.model_count`.
    """
    mentioned = dag.scopes(root)[root]
    weights = {v: (1, 1) for v in mentioned}
    base = DnnfWmcEvaluator(dag, weights).value(root)
    missing = len(set(scope) - mentioned) if scope is not None else 0
    return base << missing


def probability(
    dag: DnnfDag, root: int, prob: Mapping[str, float], *, exact: bool = False
):
    """Probability of ``root`` under independent literal probabilities.

    Variables in ``prob`` beyond the root's scope are marginalized for free
    (their ``(1-p) + p`` factor is 1).  ``exact=True`` computes in
    :class:`~fractions.Fraction` arithmetic and returns the exact rational.
    """
    if exact:
        return Fraction(weighted_model_count(dag, root, exact_weights(prob)))
    return float(weighted_model_count(dag, root, float_weights(prob)))
