"""Bag-by-bag d-DNNF compilation from a friendly tree decomposition.

This is the direct bounded-treewidth-circuit → d-DNNF construction of
"Connecting Knowledge Compilation Classes and Width Parameters"
(arXiv 1811.02944, §5.1), the provsql ``dDNNFTreeDecompositionBuilder``
motion re-done over this repo's :class:`~repro.graphs.treedecomp.
FriendlyTreeDecomposition`.  Unlike every other backend here it performs
**no apply calls and touches no SddManager**: one pass over the
decomposition, ``O(2^{O(w)} · n)`` work total.

The moving parts (see ``src/repro/dnnf/README.md`` for the glossary):

- **States.**  At each decomposition node ``t`` the builder keeps a table
  mapping ``(ν, S)`` → d-DNNF node, where ``ν`` values the gates of the
  current bag and ``S ⊆ bag`` is the set of *suspicious* gates — gates
  whose guessed value still lacks a strong justification among the wires
  covered at-or-below ``t`` (an OR guessed ``1`` with no true input seen
  yet, an AND guessed ``0`` with no false input seen yet).  The d-DNNF
  node represents exactly the assignments to the variables *committed
  below* ``t`` that are consistent with ``ν`` with pending set ``S``.
- **Introduce(g).**  Every candidate value of ``g`` is enumerated (CONST
  gates are pinned to their payload), wires between ``g`` and its
  bag-mates are checked in both directions, ``g`` may justify suspicious
  bag-mates, and ``g`` itself turns suspicious if its value needs a
  justification no bag-mate provides yet.
- **Forget(g) — the responsible bag.**  All wires incident to ``g`` are
  covered below, so a still-suspicious ``g`` can never be justified: the
  state dies.  If ``g`` is the output gate, only ``ν(g) = 1`` survives.
  If ``g`` is a variable gate, its literal is conjoined here — committing
  the variable at its responsible bag is the same move as Lemma 1's
  variable-leaf attachment in :func:`repro.core.pipeline.vtree_from_circuit`,
  and it is what keeps the ORs below both deterministic and smooth.
- **Join.**  States with equal ``ν`` combine: the d-DNNF nodes are
  conjoined (decomposable — the two sides commit disjoint variables) and
  the suspicious sets intersect (justified on either side is justified).

Whenever two states collapse onto the same ``(ν, S)`` key they are merged
with a deterministic OR: for a fixed assignment of the committed variables
and a fixed ``ν``, the values of *all* gates below are forced by wire
consistency, so ``S`` is forced too — distinct colliding states have
pairwise disjoint models.  The same argument gives smoothness (every state
at ``t`` mentions exactly the variables committed below ``t``) and, at the
(empty) root bag, yields a single state whose node's models are exactly
the circuit's models over *all* its variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..circuits.circuit import AND, CONST, NOT, OR, VAR, Circuit
from ..graphs.elimination import heuristic_tree_decomposition
from ..graphs.exact_tw import exact_tree_decomposition
from ..graphs.treedecomp import FriendlyTreeDecomposition, TreeDecomposition
from .nodes import FALSE, TRUE, DnnfDag

__all__ = ["DdnnfResult", "build_ddnnf", "friendly_from_circuit"]

# A state key: (ν, S) with ν a gate-id-sorted tuple of (gate, value) pairs
# over the current bag and S a frozenset of still-suspicious gate ids.
_StateKey = tuple[tuple[tuple[int, bool], ...], frozenset[int]]


def _wire_ok(kind_u: str, vu: bool, vh: bool) -> bool:
    """Per-wire consistency for gate ``u`` (kind ``kind_u``, value ``vu``)
    with one of its inputs valued ``vh``.  AND=0 / OR=1 are *not* refuted
    by a single wire — that is the suspicious-gate mechanism's job."""
    if kind_u == NOT:
        return vu != vh
    if kind_u == AND:
        return vh or not vu
    if kind_u == OR:
        return vu or not vh
    return True  # var/const gates have no wires in


def _needs_strong(kind: str, v: bool) -> bool:
    """Does value ``v`` on a ``kind`` gate require a justifying input?"""
    return (kind == OR and v) or (kind == AND and not v)


def _is_strong(kind_u: str, vu: bool, vh: bool) -> bool:
    """Does an input valued ``vh`` justify gate ``u`` valued ``vu``?
    (A true input of a true OR, a false input of a false AND — provsql's
    ``isStrong``.)"""
    return (kind_u == OR and vu and vh) or (kind_u == AND and not vu and not vh)


def friendly_from_circuit(
    circuit: Circuit,
    decomposition: TreeDecomposition | None = None,
    *,
    exact: bool | None = None,
) -> FriendlyTreeDecomposition:
    """The friendly decomposition of the circuit's gate graph.

    Mirrors :func:`repro.core.pipeline.vtree_from_circuit`'s selection rule:
    ``exact=None`` picks the exact treewidth DP when the graph has at most
    12 nodes and the heuristics otherwise.
    """
    graph = circuit.graph()
    if decomposition is None:
        if exact is None:
            exact = graph.number_of_nodes() <= 12
        decomposition = (
            exact_tree_decomposition(graph) if exact else heuristic_tree_decomposition(graph)
        )
    decomposition.validate(graph)
    friendly = decomposition.make_friendly()
    friendly.validate(graph)
    return friendly


@dataclass
class DdnnfResult:
    """One compiled circuit: the DAG, its root id, and public counters."""

    circuit: Circuit
    dag: DnnfDag
    root: int
    friendly: FriendlyTreeDecomposition
    counters: dict[str, int]

    @property
    def size(self) -> int:
        return self.dag.size(self.root)

    @property
    def width(self) -> int:
        return self.dag.width(self.root)

    def stats(self) -> dict[str, int]:
        """Bag counts, widths, state-table and valuation/unique-table
        counters — all plain ints, no private attribute pokes needed."""
        out = dict(self.counters)
        for kind, n in self.friendly.kind_counts().items():
            out[f"bags_{kind}"] = n
        out["friendly_width"] = self.friendly.width
        out.update(self.dag.stats())
        return out


def build_ddnnf(
    circuit: Circuit,
    decomposition: TreeDecomposition | None = None,
    *,
    exact: bool | None = None,
    node_budget: int | None = None,
    deadline=None,
) -> DdnnfResult:
    """Compile ``circuit`` to a smooth deterministic d-DNNF, bag by bag.

    ``node_budget`` caps the total DAG node count; exceeding it raises
    :class:`~repro.sdd.manager.CompilationBudgetExceeded` (checked between
    bags, the same between-work-units contract as
    :meth:`~repro.sdd.manager.SddManager.compile_circuit`) — the hook the
    race backend's early abandon uses to cut off a candidate that can no
    longer win.  ``deadline`` is a
    :class:`~repro.service.errors.Deadline`-like token checked at the
    same per-bag safepoints (its ``check()`` raises the typed
    :class:`~repro.service.errors.DeadlineExceeded`), giving the service
    tier cooperative wall-clock cancellation."""
    if circuit.output is None:
        raise ValueError("circuit has no output gate")
    friendly = friendly_from_circuit(circuit, decomposition, exact=exact)
    dag = DnnfDag()
    builder = _BagBuilder(circuit, dag, node_budget=node_budget, deadline=deadline)
    root = builder.run(friendly)
    return DdnnfResult(circuit, dag, root, friendly, builder.counters)


class _BagBuilder:
    """The (ν, S)-state walk; one instance per compilation."""

    def __init__(
        self,
        circuit: Circuit,
        dag: DnnfDag,
        *,
        node_budget: int | None = None,
        deadline=None,
    ):
        self.circuit = circuit
        self.dag = dag
        self.node_budget = node_budget
        self.deadline = deadline
        self.kinds = [g.kind for g in circuit.gates]
        self.inputs = [frozenset(g.inputs) for g in circuit.gates]
        self.payloads = [g.payload for g in circuit.gates]
        self.counters = {
            "states_peak": 0,
            "states_total": 0,
            "or_merges": 0,
            "pruned_unjustified": 0,
            "pruned_output": 0,
        }

    # -- state-table plumbing -------------------------------------------
    def _finalize(self, acc: dict[_StateKey, list[int]]) -> dict[_StateKey, int]:
        """Collapse accumulated per-key node lists with deterministic ORs."""
        out: dict[_StateKey, int] = {}
        for key, nodes in acc.items():
            if len(nodes) > 1:
                self.counters["or_merges"] += 1
            out[key] = nodes[0] if len(nodes) == 1 else self.dag.disjoin(nodes)
        self.counters["states_peak"] = max(self.counters["states_peak"], len(out))
        self.counters["states_total"] += len(out)
        return out

    # -- the four bag shapes --------------------------------------------
    def _introduce(
        self, child: dict[_StateKey, int], g: int
    ) -> dict[_StateKey, int]:
        kind = self.kinds[g]
        g_inputs = self.inputs[g]
        candidates = (bool(self.payloads[g]),) if kind == CONST else (False, True)
        acc: dict[_StateKey, list[int]] = {}
        for (nu, suspicious), node in child.items():
            for v in candidates:
                ok = True
                for h, vh in nu:
                    if h in g_inputs and not _wire_ok(kind, v, vh):
                        ok = False
                        break
                    if g in self.inputs[h] and not _wire_ok(self.kinds[h], vh, v):
                        ok = False
                        break
                if not ok:
                    continue
                new_s = set(suspicious)
                for h, vh in nu:
                    if h in new_s and g in self.inputs[h] and _is_strong(
                        self.kinds[h], vh, v
                    ):
                        new_s.discard(h)
                if _needs_strong(kind, v) and not any(
                    h in g_inputs and _is_strong(kind, v, vh) for h, vh in nu
                ):
                    new_s.add(g)
                key = (tuple(sorted((*nu, (g, v)))), frozenset(new_s))
                acc.setdefault(key, []).append(node)
        return self._finalize(acc)

    def _forget(self, child: dict[_StateKey, int], g: int) -> dict[_StateKey, int]:
        kind = self.kinds[g]
        is_output = g == self.circuit.output
        acc: dict[_StateKey, list[int]] = {}
        for (nu, suspicious), node in child.items():
            if g in suspicious:
                # All wires incident to g are covered below this (its
                # responsible) bag; an unjustified guess can never recover.
                self.counters["pruned_unjustified"] += 1
                continue
            v = next(val for h, val in nu if h == g)
            if is_output and not v:
                self.counters["pruned_output"] += 1
                continue
            if kind == VAR:
                node = self.dag.conjoin(
                    (node, self.dag.literal(str(self.payloads[g]), v))
                )
            key = (tuple(kv for kv in nu if kv[0] != g), suspicious)
            acc.setdefault(key, []).append(node)
        return self._finalize(acc)

    def _join(
        self, left: dict[_StateKey, int], right: dict[_StateKey, int]
    ) -> dict[_StateKey, int]:
        by_nu: dict[tuple, list[tuple[frozenset[int], int]]] = {}
        for (nu, s_l), n_l in left.items():
            by_nu.setdefault(nu, []).append((s_l, n_l))
        acc: dict[_StateKey, list[int]] = {}
        for (nu, s_r), n_r in right.items():
            for s_l, n_l in by_nu.get(nu, ()):
                node = self.dag.conjoin((n_l, n_r))
                if node != FALSE:
                    acc.setdefault((nu, s_l & s_r), []).append(node)
        return self._finalize(acc)

    # -- the walk --------------------------------------------------------
    def run(self, friendly: FriendlyTreeDecomposition) -> int:
        states: dict[int, dict[_StateKey, int]] = {}
        for node in friendly.root.nodes():  # iterative postorder
            if node.kind == "leaf":
                cur = {((), frozenset()): TRUE}
            elif node.kind == "introduce":
                cur = self._introduce(states.pop(id(node.children[0])), node.vertex)
            elif node.kind == "forget":
                cur = self._forget(states.pop(id(node.children[0])), node.vertex)
            else:
                cur = self._join(
                    states.pop(id(node.children[0])),
                    states.pop(id(node.children[1])),
                )
            if (
                self.node_budget is not None
                and len(self.dag.node_kind) > self.node_budget
            ):
                from ..sdd.manager import CompilationBudgetExceeded

                raise CompilationBudgetExceeded(
                    f"node budget {self.node_budget} exceeded "
                    f"({len(self.dag.node_kind)} d-DNNF nodes)"
                )
            if self.deadline is not None:
                self.deadline.check("d-DNNF bag compilation")
            states[id(node)] = cur
        root_states = states[id(friendly.root)]
        # Root bag is empty: at most the single key ((), ∅) can survive.
        assert set(root_states) <= {((), frozenset())}, "non-empty root bag?"
        return root_states.get(((), frozenset()), FALSE)
