"""An apply-based SDD manager (Darwiche 2011).

The canonical construction ``S_{F,T}`` of :mod:`repro.core.sdd_compile`
needs the full truth table of ``F``; query lineages can have far too many
variables for that.  This manager compiles *circuits* bottom-up instead:
SDD nodes are hash-consed decision nodes ``(vtree node, ((prime, sub), ...))``
with compression (equal subs merged) and trimming, so every function has a
unique normalized representation per vtree, and ``apply`` runs on pairs of
canonical nodes with memoization.

Size conventions follow the SDD literature: ``size(α)`` is the total number
of elements of the decision nodes reachable from ``α``; ``width`` per the
paper counts elements per vtree node (AND gates structured there).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..core.boolfunc import BooleanFunction
from ..core.vtree import Vtree
from ..circuits.circuit import AND, CONST, NOT, OR, VAR, Circuit
from ..circuits.nnf import NNF, conj, disj, false_node, lit, true_node

__all__ = ["SddManager", "sdd_from_circuit", "CompilationBudgetExceeded"]

_FALSE = 0
_TRUE = 1


class CompilationBudgetExceeded(RuntimeError):
    """Raised by :meth:`SddManager.compile_circuit` when a ``node_budget``
    is exhausted mid-compilation (used by the ``best-of`` vtree strategy to
    abandon candidates that blow up)."""


class SddManager:
    """SDD manager for a fixed vtree."""

    def __init__(self, vtree: Vtree):
        self.vtree = vtree
        # --- vtree tables -------------------------------------------------
        self.v_nodes: list[Vtree] = list(vtree.nodes())  # postorder
        self.v_index: dict[int, int] = {id(v): i for i, v in enumerate(self.v_nodes)}
        self.v_parent: list[int | None] = [None] * len(self.v_nodes)
        self.v_left: list[int | None] = [None] * len(self.v_nodes)
        self.v_right: list[int | None] = [None] * len(self.v_nodes)
        self.v_interval: list[tuple[int, int]] = [(0, 0)] * len(self.v_nodes)
        self.v_lo: list[int] = [0] * len(self.v_nodes)
        self.v_hi: list[int] = [0] * len(self.v_nodes)
        self.v_nvars: list[int] = [0] * len(self.v_nodes)
        self.leaf_of_var: dict[str, int] = {}
        pos = 0
        for i, v in enumerate(self.v_nodes):
            if v.is_leaf:
                self.v_interval[i] = (pos, pos + 1)
                self.v_nvars[i] = 1
                self.leaf_of_var[v.var] = i  # type: ignore[index]
                pos += 1
            else:
                li = self.v_index[id(v.left)]
                ri = self.v_index[id(v.right)]
                self.v_left[i], self.v_right[i] = li, ri
                self.v_parent[li] = i
                self.v_parent[ri] = i
                self.v_interval[i] = (self.v_interval[li][0], self.v_interval[ri][1])
                self.v_nvars[i] = self.v_nvars[li] + self.v_nvars[ri]
            self.v_lo[i], self.v_hi[i] = self.v_interval[i]
        # --- sdd node tables ----------------------------------------------
        # id 0 = FALSE, id 1 = TRUE; literals and decisions from 2 on.
        self.node_kind: list[str] = ["false", "true"]
        self.node_vnode: list[int] = [-1, -1]
        self.node_var: list[str | None] = [None, None]
        self.node_sign: list[bool | None] = [None, None]
        self.node_elements: list[tuple[tuple[int, int], ...] | None] = [None, None]
        self._lit_table: dict[tuple[str, bool], int] = {}
        self._dec_table: dict[tuple[int, tuple[tuple[int, int], ...]], int] = {}
        # Apply caches are op-specialized and keyed by the packed pair
        # (a << 32) | b with a < b — integer keys hash far faster than
        # tuples on this, the hottest dictionary in the engine.
        self._and_cache: dict[int, int] = {}
        self._or_cache: dict[int, int] = {}
        self._neg_cache: dict[int, int] = {}

    # ------------------------------------------------------------------
    # vtree helpers
    # ------------------------------------------------------------------
    def _contains(self, outer: int, inner: int) -> bool:
        (a, b), (c, d) = self.v_interval[outer], self.v_interval[inner]
        return a <= c and d <= b

    def vnode_of(self, u: int) -> int:
        return self.node_vnode[u]

    # ------------------------------------------------------------------
    # node construction
    # ------------------------------------------------------------------
    @property
    def false(self) -> int:
        return _FALSE

    @property
    def true(self) -> int:
        return _TRUE

    def literal(self, var: str, sign: bool = True) -> int:
        key = (var, bool(sign))
        got = self._lit_table.get(key)
        if got is not None:
            return got
        if var not in self.leaf_of_var:
            raise ValueError(f"variable {var!r} not in the vtree")
        nid = len(self.node_kind)
        self.node_kind.append("lit")
        self.node_vnode.append(self.leaf_of_var[var])
        self.node_var.append(var)
        self.node_sign.append(bool(sign))
        self.node_elements.append(None)
        self._lit_table[key] = nid
        return nid

    def _decision(self, vnode: int, elements: Iterable[tuple[int, int]]) -> int:
        """Compress + trim + intern a decision node at ``vnode``."""
        # Compression: merge primes with equal subs (OR on the left subtree).
        by_sub: dict[int, int] = {}
        for p, s in elements:
            if p == _FALSE:
                continue
            q = by_sub.get(s)
            by_sub[s] = p if q is None else self._apply(q, p, False)
        elems = tuple(sorted((p, s) for s, p in by_sub.items()))
        if not elems:
            return _FALSE
        # Trimming rules.
        if len(elems) == 1:
            p, s = elems[0]
            if p == _TRUE:
                return s
            if s == _TRUE:
                return p
            if s == _FALSE:
                return _FALSE
        if len(elems) == 2:
            (p1, s1), (p2, s2) = elems
            if s1 == _FALSE and s2 == _TRUE:
                return p2
            if s1 == _TRUE and s2 == _FALSE:
                return p1
        key = (vnode, elems)
        got = self._dec_table.get(key)
        if got is not None:
            return got
        nid = len(self.node_kind)
        self.node_kind.append("dec")
        self.node_vnode.append(vnode)
        self.node_var.append(None)
        self.node_sign.append(None)
        self.node_elements.append(elems)
        self._dec_table[key] = nid
        return nid

    # ------------------------------------------------------------------
    # boolean operations
    # ------------------------------------------------------------------
    def negate(self, u: int) -> int:
        got = self._neg_cache.get(u)
        if got is not None:
            return got
        if u == _FALSE:
            res = _TRUE
        elif u == _TRUE:
            res = _FALSE
        elif self.node_kind[u] == "lit":
            res = self.literal(self.node_var[u], not self.node_sign[u])  # type: ignore[arg-type]
        else:
            elems = self.node_elements[u]
            assert elems is not None
            res = self._decision(
                self.node_vnode[u], [(p, self.negate(s)) for p, s in elems]
            )
        self._neg_cache[u] = res
        self._neg_cache[res] = u
        return res

    def apply(self, a: int, b: int, op: str) -> int:
        if op == "and":
            return self._apply(a, b, True)
        if op == "or":
            return self._apply(a, b, False)
        raise ValueError("op must be 'and' or 'or'")

    def _apply(self, a: int, b: int, is_and: bool) -> int:
        # Apply is commutative for both ops: order the pair so constants
        # (the smallest ids) surface as ``a`` and the cache key is unique.
        if a == b:
            return a
        if a > b:
            a, b = b, a
        if a == _FALSE:
            return _FALSE if is_and else b
        if a == _TRUE:
            return b if is_and else _TRUE
        kind = self.node_kind
        if kind[a] == "lit" and kind[b] == "lit" and self.node_var[a] == self.node_var[b]:
            # same variable, different sign (equal handled above)
            return _FALSE if is_and else _TRUE
        cache = self._and_cache if is_and else self._or_cache
        key = (a << 32) | b
        got = cache.get(key)
        if got is not None:
            return got
        v_lo, v_hi = self.v_lo, self.v_hi
        node_vnode = self.node_vnode
        va, vb = node_vnode[a], node_vnode[b]
        # lca walk: climb from va until the interval covers vb's.
        v = va
        lob, hib = v_lo[vb], v_hi[vb]
        parent = self.v_parent
        while not (v_lo[v] <= lob and hib <= v_hi[v]):
            p = parent[v]
            assert p is not None, "lca walked past the root"
            v = p
        ea = self._elements_at(a, v)
        eb = self._elements_at(b, v)
        _ap = self._apply
        out: list[tuple[int, int]] = []
        for pa, sa in ea:
            for pb, sb in eb:
                p = _ap(pa, pb, True)
                if p == _FALSE:
                    continue
                out.append((p, _ap(sa, sb, is_and)))
        res = self._decision(v, out)
        cache[key] = res
        return res

    def _elements_at(self, u: int, v: int) -> tuple[tuple[int, int], ...]:
        """View ``u`` as a decision element list normalized for internal
        vtree node ``v`` (``u``'s vtree node must be within ``v``'s
        subtree)."""
        vu = self.node_vnode[u]
        if vu == v and self.node_kind[u] == "dec":
            elems = self.node_elements[u]
            assert elems is not None
            return elems
        v_lo, v_hi = self.v_lo, self.v_hi
        lo, hi = v_lo[vu], v_hi[vu]
        vl, vr = self.v_left[v], self.v_right[v]
        assert vl is not None and vr is not None
        if v_lo[vl] <= lo and hi <= v_hi[vl]:
            return ((u, _TRUE), (self.negate(u), _FALSE))
        if v_lo[vr] <= lo and hi <= v_hi[vr]:
            return ((_TRUE, u),)
        raise AssertionError("node does not fit under the requested vtree node")

    def conjoin(self, *nodes: int) -> int:
        acc = _TRUE
        for u in nodes:
            acc = self._apply(acc, u, True)
        return acc

    def disjoin(self, *nodes: int) -> int:
        acc = _FALSE
        for u in nodes:
            acc = self._apply(acc, u, False)
        return acc

    def condition(self, u: int, assignment: Mapping[str, int]) -> int:
        """Condition on a partial assignment (literal substitution)."""
        out = u
        for var, val in assignment.items():
            out = self._apply(out, self.literal(var, bool(val)), True)
            out = self._forget_var(out, var)
        return out

    def _forget_var(self, u: int, var: str) -> int:
        """Existentially quantify one variable."""
        pos = self._restrict(u, var, True)
        neg = self._restrict(u, var, False)
        return self._apply(pos, neg, False)

    def _restrict(self, u: int, var: str, value: bool) -> int:
        cache: dict[int, int] = {}
        leaf = self.leaf_of_var[var]

        def rec(w: int) -> int:
            if w <= 1:
                return w
            got = cache.get(w)
            if got is not None:
                return got
            if self.node_kind[w] == "lit":
                if self.node_var[w] == var:
                    res = _TRUE if (self.node_sign[w] == value) else _FALSE
                else:
                    res = w
            else:
                vn = self.node_vnode[w]
                if not self._contains(vn, leaf):
                    res = w
                else:
                    elems = self.node_elements[w]
                    assert elems is not None
                    res = self._decision(vn, [(rec(p), rec(s)) for p, s in elems])
            cache[w] = res
            return res

        return rec(u)

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def compile_circuit(self, circuit: Circuit, *, node_budget: int | None = None) -> int:
        """Bottom-up apply compilation of ``circuit``.

        ``node_budget`` caps the total number of manager nodes; exceeding it
        raises :class:`CompilationBudgetExceeded` (checked between gates).
        """
        if circuit.output is None:
            raise ValueError("circuit has no output")
        vals: dict[int, int] = {}
        for gid in circuit.topological_order():
            if node_budget is not None and len(self.node_kind) > node_budget:
                raise CompilationBudgetExceeded(
                    f"node budget {node_budget} exceeded ({len(self.node_kind)} nodes)"
                )
            gate = circuit.gates[gid]
            if gate.kind == VAR:
                vals[gid] = self.literal(gate.payload, True)  # type: ignore[arg-type]
            elif gate.kind == CONST:
                vals[gid] = _TRUE if gate.payload else _FALSE
            elif gate.kind == NOT:
                vals[gid] = self.negate(vals[gate.inputs[0]])
            elif gate.kind == AND:
                vals[gid] = self.conjoin(*[vals[i] for i in gate.inputs])
            else:
                vals[gid] = self.disjoin(*[vals[i] for i in gate.inputs])
        return vals[circuit.output]

    def compile_nnf(self, root: NNF) -> int:
        memo: dict[int, int] = {}
        for node in root.nodes():
            if node.kind == "true":
                val = _TRUE
            elif node.kind == "false":
                val = _FALSE
            elif node.kind == "lit":
                val = self.literal(node.var, bool(node.sign))  # type: ignore[arg-type]
            elif node.kind == "and":
                val = self.conjoin(*[memo[id(c)] for c in node.children])
            else:
                val = self.disjoin(*[memo[id(c)] for c in node.children])
            memo[id(node)] = val
        return memo[id(root)]

    # ------------------------------------------------------------------
    # measures / queries
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Public counters for the manager's tables and caches.

        This is the supported way to observe sharing (batch APIs and CLI
        reports use it); the underlying cache attributes are private.
        """
        n_lit = len(self._lit_table)
        return {
            "vtree_nodes": len(self.v_nodes),
            "nodes": len(self.node_kind),
            "literal_nodes": n_lit,
            "decision_nodes": len(self.node_kind) - n_lit - 2,  # minus constants
            "and_cache_entries": len(self._and_cache),
            "or_cache_entries": len(self._or_cache),
            "neg_cache_entries": len(self._neg_cache),
            "apply_cache_entries": len(self._and_cache) + len(self._or_cache),
        }

    def reachable(self, u: int) -> set[int]:
        seen: set[int] = set()
        stack = [u]
        while stack:
            w = stack.pop()
            if w in seen:
                continue
            seen.add(w)
            if w > 1 and self.node_kind[w] == "dec":
                elems = self.node_elements[w]
                assert elems is not None
                for p, s in elems:
                    stack.extend((p, s))
        return seen

    def size(self, u: int) -> int:
        """Standard SDD size: total element count over decision nodes."""
        total = 0
        for w in self.reachable(u):
            if w > 1 and self.node_kind[w] == "dec":
                total += len(self.node_elements[w])  # type: ignore[arg-type]
        return total

    def node_count(self, u: int) -> int:
        return len(self.reachable(u))

    def width(self, u: int) -> int:
        """The paper's SDD width: max, over vtree nodes, of the number of
        elements (AND gates) structured there."""
        per: dict[int, int] = {}
        for w in self.reachable(u):
            if w > 1 and self.node_kind[w] == "dec":
                vn = self.node_vnode[w]
                per[vn] = per.get(vn, 0) + len(self.node_elements[w])  # type: ignore[arg-type]
        return max(per.values(), default=0)

    def count_models(self, u: int, scope: Iterable[str] | None = None) -> int:
        """Exact model count via the linear sweep of :mod:`repro.sdd.wmc`."""
        from .wmc import model_count

        return model_count(self, u, list(scope) if scope is not None else None)

    def weighted_count(self, u: int, weights: Mapping[str, tuple[float, float]]):
        """WMC with weights ``(w_neg, w_pos)``; exact with Fractions.

        Delegates to the iterative linear-time sweep of
        :mod:`repro.sdd.wmc` (no recursion, amortized gap products).
        """
        from .wmc import weighted_model_count

        return weighted_model_count(self, u, weights)

    def probability(self, u: int, prob: Mapping[str, float]) -> float:
        from .wmc import probability

        return float(probability(self, u, prob))

    def evaluate(self, u: int, assignment: Mapping[str, int]) -> bool:
        memo: dict[int, bool] = {}

        def rec(w: int) -> bool:
            if w == _FALSE:
                return False
            if w == _TRUE:
                return True
            got = memo.get(w)
            if got is not None:
                return got
            if self.node_kind[w] == "lit":
                b = bool(assignment[self.node_var[w]])  # type: ignore[index]
                res = b if self.node_sign[w] else not b
            else:
                res = False
                elems = self.node_elements[w]
                assert elems is not None
                for p, s in elems:
                    if rec(p):
                        res = rec(s)
                        break
            memo[w] = res
            return res

        return rec(u)

    def function(self, u: int, variables: Sequence[str] | None = None) -> BooleanFunction:
        vs = tuple(sorted(variables if variables is not None else self.vtree.variables))
        return self.to_nnf(u).function(vs)

    def to_nnf(self, u: int) -> NNF:
        memo: dict[int, NNF] = {_FALSE: false_node(), _TRUE: true_node()}

        def rec(w: int) -> NNF:
            got = memo.get(w)
            if got is not None:
                return got
            if self.node_kind[w] == "lit":
                res = lit(self.node_var[w], bool(self.node_sign[w]))  # type: ignore[arg-type]
            else:
                parts = []
                elems = self.node_elements[w]
                assert elems is not None
                for p, s in elems:
                    parts.append(NNF("and", children=(rec(p), rec(s))))
                res = parts[0] if len(parts) == 1 else NNF("or", children=tuple(parts))
            memo[w] = res
            return res

        return rec(u)

    def validate(self, u: int) -> None:
        """Check the SDD invariants on the reachable nodes: primes exhaust
        (SD1), are pairwise disjoint (SD2), and subs are distinct (SD3)."""
        for w in self.reachable(u):
            if w <= 1 or self.node_kind[w] != "dec":
                continue
            elems = self.node_elements[w]
            assert elems is not None
            subs = [s for _, s in elems]
            if len(set(subs)) != len(subs):
                raise AssertionError("compression violated: duplicate subs")
            primes = [p for p, _ in elems]
            acc = _FALSE
            for i, p in enumerate(primes):
                for q in primes[i + 1 :]:
                    if self._apply(p, q, True) != _FALSE:
                        raise AssertionError("primes not pairwise disjoint")
                acc = self._apply(acc, p, False)
            if acc != _TRUE:
                raise AssertionError("primes do not exhaust")


def sdd_from_circuit(circuit: Circuit, vtree: Vtree | None = None) -> tuple[SddManager, int]:
    """Convenience: compile ``circuit`` into an SDD (default: balanced vtree
    over the circuit's variables)."""
    t = vtree if vtree is not None else Vtree.balanced(sorted(circuit.variables))
    mgr = SddManager(t)
    return mgr, mgr.compile_circuit(circuit)
