"""An apply-based SDD manager (Darwiche 2011).

The canonical construction ``S_{F,T}`` of :mod:`repro.core.sdd_compile`
needs the full truth table of ``F``; query lineages can have far too many
variables for that.  This manager compiles *circuits* bottom-up instead:
SDD nodes are hash-consed decision nodes ``(vtree node, ((prime, sub), ...))``
with compression (equal subs merged) and trimming, so every function has a
unique normalized representation per vtree, and ``apply`` runs on pairs of
canonical nodes with memoization.

Size conventions follow the SDD literature: ``size(α)`` is the total number
of elements of the decision nodes reachable from ``α``; ``width`` per the
paper counts elements per vtree node (AND gates structured there).

Two operational properties matter for long-running sessions:

- **Stack safety.**  ``apply`` descends one vtree level per step, so on the
  deep right-linear vtrees that query lineages use a recursive
  implementation overflows Python's stack around 1000 variables.  Every
  operation here (``apply``, ``negate``, ``condition``, ``to_nnf``,
  ``evaluate``) is iterative: ``apply`` runs as a trampoline over generator
  frames, the single-pass traversals as creation-order sweeps.
- **Garbage collection.**  Hash-cons tables and apply caches only ever
  grow unless collected.  Roots are reference-count *pinned*
  (:meth:`pin`/:meth:`release`); :meth:`gc` mark-sweeps everything
  unreachable from the pinned roots, recycles the node ids through a free
  list, and coherently evicts every cache keyed by node id — the apply and
  negation caches here, and any registered
  :class:`~repro.sdd.wmc.SddWmcEvaluator` memo (id reuse without eviction
  would silently corrupt results).  Nodes born since the previous
  collection are spared by default (*aging*), so callers holding fresh
  intermediate results get one grace generation.
- **Dynamic vtree minimization.**  :meth:`rotate_left`, :meth:`rotate_right`
  and :meth:`swap` transform the vtree *in place*: only the SDD nodes
  normalized at the affected vtree nodes are re-partitioned (through the
  unique table, so canonicity is preserved), pins travel with the returned
  old→new id mapping, and every id-keyed cache is evicted coherently.
  :meth:`minimize` is the sifting-style search driver over those moves —
  the Choi–Darwiche flexibility the paper credits for SDDs' practical edge
  over OBDDs, without ever recompiling the circuit.
"""

from __future__ import annotations

import weakref
from typing import Iterable, Iterator, Mapping, Sequence

from ..core.boolfunc import BooleanFunction
from ..core.vtree import Vtree
from ..circuits.circuit import AND, CONST, NOT, OR, VAR, Circuit
from ..circuits.nnf import NNF, false_node, lit, true_node

__all__ = ["SddManager", "sdd_from_circuit", "CompilationBudgetExceeded"]

_FALSE = 0
_TRUE = 1


class CompilationBudgetExceeded(RuntimeError):
    """Raised by :meth:`SddManager.compile_circuit` when a ``node_budget``
    is exhausted mid-compilation (used by the ``best-of`` vtree strategy to
    abandon candidates that blow up)."""


class SddManager:
    """SDD manager over a vtree that :meth:`minimize` may rewrite in place.

    ``auto_gc_nodes`` arms :meth:`maybe_gc`: when the live node count
    exceeds the watermark, the next ``maybe_gc()`` call (a *safe point* —
    callers invoke it only when every root they care about is pinned)
    collects garbage.

    ``auto_minimize_nodes`` arms mid-compilation dynamic vtree
    minimization: when :meth:`compile_circuit` crosses the watermark it
    pins its live intermediates, runs one :meth:`minimize` round, and
    re-anchors them — with a 2× hysteresis so one compilation cannot
    thrash the search.
    """

    def __init__(
        self,
        vtree: Vtree,
        *,
        auto_gc_nodes: int | None = None,
        auto_minimize_nodes: int | None = None,
    ):
        self.vtree = vtree
        # --- vtree tables -------------------------------------------------
        self.v_nodes: list[Vtree] = list(vtree.nodes())  # postorder
        self.v_index: dict[int, int] = {id(v): i for i, v in enumerate(self.v_nodes)}
        self.v_parent: list[int | None] = [None] * len(self.v_nodes)
        self.v_left: list[int | None] = [None] * len(self.v_nodes)
        self.v_right: list[int | None] = [None] * len(self.v_nodes)
        self.v_interval: list[tuple[int, int]] = [(0, 0)] * len(self.v_nodes)
        self.v_lo: list[int] = [0] * len(self.v_nodes)
        self.v_hi: list[int] = [0] * len(self.v_nodes)
        self.v_nvars: list[int] = [0] * len(self.v_nodes)
        self.leaf_of_var: dict[str, int] = {}
        pos = 0
        for i, v in enumerate(self.v_nodes):
            if v.is_leaf:
                self.v_interval[i] = (pos, pos + 1)
                self.v_nvars[i] = 1
                if v.var in self.leaf_of_var:
                    raise ValueError(f"duplicate vtree leaf {v.var!r}")
                self.leaf_of_var[v.var] = i  # type: ignore[index]
                pos += 1
            else:
                li = self.v_index[id(v.left)]
                ri = self.v_index[id(v.right)]
                self.v_left[i], self.v_right[i] = li, ri
                self.v_parent[li] = i
                self.v_parent[ri] = i
                self.v_interval[i] = (self.v_interval[li][0], self.v_interval[ri][1])
                self.v_nvars[i] = self.v_nvars[li] + self.v_nvars[ri]
            self.v_lo[i], self.v_hi[i] = self.v_interval[i]
        self.v_root: int = len(self.v_nodes) - 1  # stable across rotations
        # Decision nodes normalized at each vtree node: the locality index
        # the in-place vtree moves depend on (a rotation touches exactly
        # these buckets), also kept coherent by gc.
        self._vnode_members: list[set[int]] = [set() for _ in self.v_nodes]
        # Live SDD size (total elements over live decisions), maintained
        # incrementally so the minimization search never has to re-walk.
        self._total_elements = 0
        # --- sdd node tables ----------------------------------------------
        # id 0 = FALSE, id 1 = TRUE; literals and decisions from 2 on.
        # Freed slots are recycled through _free_ids, so ids are NOT
        # topological once gc has run — node_stamp (strictly increasing
        # creation order) is, and the linear sweeps sort by it.
        self.node_kind: list[str] = ["false", "true"]
        self.node_vnode: list[int] = [-1, -1]
        self.node_var: list[str | None] = [None, None]
        self.node_sign: list[bool | None] = [None, None]
        self.node_elements: list[tuple[tuple[int, int], ...] | None] = [None, None]
        self.node_stamp: list[int] = [0, 1]
        self._next_stamp = 2
        self._lit_table: dict[tuple[str, bool], int] = {}
        self._dec_table: dict[tuple[int, tuple[tuple[int, int], ...]], int] = {}
        # Apply caches are op-specialized and keyed by the packed pair
        # (a << 32) | b with a < b — integer keys hash far faster than
        # tuples on this, the hottest dictionary in the engine.
        self._and_cache: dict[int, int] = {}
        self._or_cache: dict[int, int] = {}
        self._neg_cache: dict[int, int] = {}
        # --- garbage collection -------------------------------------------
        self.auto_gc_nodes = auto_gc_nodes
        self.auto_minimize_nodes = auto_minimize_nodes
        self._next_minimize_at = auto_minimize_nodes
        self._minimize_runs = 0
        self._moves_applied = 0
        self._free_ids: list[int] = []
        self._pins: dict[int, int] = {}
        self._generation = 0
        self.node_gen: list[int] = [0, 0]
        self._gc_runs = 0
        self._collected_total = 0
        self._wmc_caches: weakref.WeakSet = weakref.WeakSet()

    # ------------------------------------------------------------------
    # vtree helpers
    # ------------------------------------------------------------------
    def _contains(self, outer: int, inner: int) -> bool:
        (a, b), (c, d) = self.v_interval[outer], self.v_interval[inner]
        return a <= c and d <= b

    def vnode_of(self, u: int) -> int:
        return self.node_vnode[u]

    def add_variable(self, var: str) -> int:
        """Extend the vtree with a fresh variable; returns its leaf index.

        The new leaf is appended *after* every existing variable and hung
        under a brand-new root internal node ``(old_root, leaf)``.  No
        existing vtree index, interval, or SDD node changes, so every
        compiled root, pin, apply-cache entry, and WMC memo stays valid —
        the new variable only contributes a marginalization factor above
        the old root.  This is how live tuple inserts grow the manager
        without invalidating the session; the serial and parallel tiers
        apply the same deltas in the same order, so the extended vtrees
        (and hence the canonical SDDs) stay identical across workers.
        Idempotent: an already-present variable just returns its leaf.
        """
        got = self.leaf_of_var.get(var)
        if got is not None:
            return got
        old_root = self.v_root
        pos = self.v_hi[old_root]
        leaf = Vtree.leaf(var)
        li = len(self.v_nodes)
        self.v_nodes.append(leaf)
        self.v_index[id(leaf)] = li
        self.v_parent.append(None)
        self.v_left.append(None)
        self.v_right.append(None)
        self.v_interval.append((pos, pos + 1))
        self.v_lo.append(pos)
        self.v_hi.append(pos + 1)
        self.v_nvars.append(1)
        self.leaf_of_var[var] = li
        self._vnode_members.append(set())

        root_obj = Vtree.internal_trusted(self.v_nodes[old_root], leaf)
        ri = len(self.v_nodes)
        self.v_nodes.append(root_obj)
        self.v_index[id(root_obj)] = ri
        self.v_parent.append(None)
        self.v_left.append(old_root)
        self.v_right.append(li)
        self.v_interval.append((self.v_lo[old_root], pos + 1))
        self.v_lo.append(self.v_lo[old_root])
        self.v_hi.append(pos + 1)
        self.v_nvars.append(self.v_nvars[old_root] + 1)
        self.v_parent[old_root] = ri
        self.v_parent[li] = ri
        self._vnode_members.append(set())
        self.v_root = ri
        self.vtree = root_obj
        self._refresh_wmc_vtrees()
        return li

    # ------------------------------------------------------------------
    # node construction
    # ------------------------------------------------------------------
    @property
    def false(self) -> int:
        return _FALSE

    @property
    def true(self) -> int:
        return _TRUE

    @property
    def live_node_count(self) -> int:
        """Nodes currently allocated (constants + literals + live decisions)."""
        return len(self.node_kind) - len(self._free_ids)

    @property
    def live_size(self) -> int:
        """Manager-wide SDD size: total element count over *all* live
        decision nodes (per-root size is :meth:`size`).  Maintained
        incrementally; the minimization search reads it after each move."""
        return self._total_elements

    def _alloc(
        self,
        kind: str,
        vnode: int,
        var: str | None,
        sign: bool | None,
        elements: tuple[tuple[int, int], ...] | None,
    ) -> int:
        free = self._free_ids
        if free:
            nid = free.pop()
            self.node_kind[nid] = kind
            self.node_vnode[nid] = vnode
            self.node_var[nid] = var
            self.node_sign[nid] = sign
            self.node_elements[nid] = elements
            self.node_stamp[nid] = self._next_stamp
            self.node_gen[nid] = self._generation
        else:
            nid = len(self.node_kind)
            self.node_kind.append(kind)
            self.node_vnode.append(vnode)
            self.node_var.append(var)
            self.node_sign.append(sign)
            self.node_elements.append(elements)
            self.node_stamp.append(self._next_stamp)
            self.node_gen.append(self._generation)
        self._next_stamp += 1
        if kind == "dec":
            assert elements is not None
            self._vnode_members[vnode].add(nid)
            self._total_elements += len(elements)
        return nid

    def literal(self, var: str, sign: bool = True) -> int:
        key = (var, bool(sign))
        got = self._lit_table.get(key)
        if got is not None:
            return got
        if var not in self.leaf_of_var:
            raise ValueError(f"variable {var!r} not in the vtree")
        nid = self._alloc("lit", self.leaf_of_var[var], var, bool(sign), None)
        self._lit_table[key] = nid
        return nid

    def _intern_decision(
        self, vnode: int, elems: tuple[tuple[int, int], ...]
    ) -> int:
        """Trim + intern an already-compressed element tuple at ``vnode``."""
        if not elems:
            return _FALSE
        # Trimming rules.
        if len(elems) == 1:
            p, s = elems[0]
            if p == _TRUE:
                return s
            if s == _TRUE:
                return p
            if s == _FALSE:
                return _FALSE
        if len(elems) == 2:
            (p1, s1), (p2, s2) = elems
            if s1 == _FALSE and s2 == _TRUE:
                return p2
            if s1 == _TRUE and s2 == _FALSE:
                return p1
        key = (vnode, elems)
        got = self._dec_table.get(key)
        if got is not None:
            return got
        nid = self._alloc("dec", vnode, None, None, elems)
        self._dec_table[key] = nid
        return nid

    def intern_decision(
        self, vnode: int, elems: Iterable[tuple[int, int]]
    ) -> int:
        """Public trim+intern hook (element children must already be
        compressed and live in this manager) — the thaw path of
        :meth:`repro.artifact.store.FrozenSdd.to_manager` rebuilds loaded
        artifacts through this."""
        return self._intern_decision(vnode, tuple((p, s) for p, s in elems))

    def freeze(self, roots: Iterable[int], *, names=None, meta=None):
        """Freeze ``roots`` into an immutable array-backed
        :class:`~repro.artifact.store.FrozenSdd` (save/mmap/share)."""
        from ..artifact.store import FrozenSdd

        return FrozenSdd.from_manager(self, list(roots), names=names, meta=meta)

    def _decision(self, vnode: int, elements: Iterable[tuple[int, int]]) -> int:
        """Compress + trim + intern a decision node at ``vnode``."""
        # Compression: merge primes with equal subs (OR on the left subtree).
        by_sub: dict[int, int] = {}
        for p, s in elements:
            if p == _FALSE:
                continue
            q = by_sub.get(s)
            by_sub[s] = p if q is None else self._apply(q, p, False)
        return self._intern_decision(
            vnode, tuple(sorted((p, s) for s, p in by_sub.items()))
        )

    # ------------------------------------------------------------------
    # boolean operations
    # ------------------------------------------------------------------
    def negate(self, u: int) -> int:
        if u == _FALSE:
            return _TRUE
        if u == _TRUE:
            return _FALSE
        neg = self._neg_cache
        got = neg.get(u)
        if got is not None:
            return got
        if self.node_kind[u] == "lit":
            res = self.literal(self.node_var[u], not self.node_sign[u])  # type: ignore[arg-type]
            neg[u] = res
            neg[res] = u
            return res
        # Negation rewrites *subs* only (primes are shared untouched), so
        # walk just the sub-closure of ``u``, pruned at already-negated
        # nodes, then sweep it in creation order: children are always
        # created before the decision nodes referencing them, so every
        # sub's negation is ready when its parent is processed — no
        # recursion over SDD depth.
        node_kind, node_elements = self.node_kind, self.node_elements
        seen: set[int] = set()
        stack = [u]
        while stack:
            w = stack.pop()
            if w <= _TRUE or w in seen or w in neg:
                continue
            seen.add(w)
            if node_kind[w] == "dec":
                elems = node_elements[w]
                assert elems is not None
                for _p, s in elems:
                    stack.append(s)
        todo = sorted(seen, key=self.node_stamp.__getitem__)
        for w in todo:
            if w in neg:  # interned as another node's negation mid-sweep
                continue
            if node_kind[w] == "lit":
                res = self.literal(self.node_var[w], not self.node_sign[w])  # type: ignore[arg-type]
            else:
                elems = node_elements[w]
                assert elems is not None
                res = self._decision(
                    self.node_vnode[w],
                    [(p, s ^ 1 if s <= _TRUE else neg[s]) for p, s in elems],
                )
            neg[w] = res
            neg[res] = w
        return neg[u]

    def apply(self, a: int, b: int, op: str) -> int:
        if op == "and":
            return self._apply(a, b, True)
        if op == "or":
            return self._apply(a, b, False)
        raise ValueError("op must be 'and' or 'or'")

    def _apply_shallow(self, a: int, b: int, is_and: bool) -> int | None:
        """The non-allocating fast paths of apply; ``None`` on a true miss."""
        if a == b:
            return a
        if a > b:
            a, b = b, a
        if a == _FALSE:
            return _FALSE if is_and else b
        if a == _TRUE:
            return b if is_and else _TRUE
        kind = self.node_kind
        if kind[a] == "lit" and kind[b] == "lit" and self.node_var[a] == self.node_var[b]:
            # same variable, different sign (equal handled above)
            return _FALSE if is_and else _TRUE
        cache = self._and_cache if is_and else self._or_cache
        return cache.get((a << 32) | b)

    def _apply(self, a: int, b: int, is_and: bool) -> int:
        # Apply is commutative for both ops: order the pair so constants
        # (the smallest ids) surface as ``a`` and the cache key is unique.
        res = self._apply_shallow(a, b, is_and)
        if res is not None:
            return res
        return self._drive(self._apply_gen(a, b, is_and))

    def _drive(self, gen) -> int:
        """Trampoline for the apply/decision generators.

        Generators yield ``(a, b, is_and)`` requests (only after their own
        shallow check missed); the driver runs each request as a child
        frame on an explicit stack, so the Python call stack stays O(1) no
        matter how deep the vtree is.
        """
        stack = [gen]
        send: int | None = None
        while stack:
            try:
                req = stack[-1].send(send)
            except StopIteration as st:
                stack.pop()
                send = st.value
            else:
                stack.append(self._apply_gen(*req))
                send = None
        assert send is not None
        return send

    def _apply_gen(self, a: int, b: int, is_and: bool) -> Iterator[tuple[int, int, bool]]:
        if a > b:
            a, b = b, a
        v_lo, v_hi = self.v_lo, self.v_hi
        va, vb = self.node_vnode[a], self.node_vnode[b]
        # lca walk: climb from va until the interval covers vb's.
        v = va
        lob, hib = v_lo[vb], v_hi[vb]
        parent = self.v_parent
        while not (v_lo[v] <= lob and hib <= v_hi[v]):
            p = parent[v]
            assert p is not None, "lca walked past the root"
            v = p
        ea = self._elements_at(a, v)
        eb = self._elements_at(b, v)
        shallow = self._apply_shallow
        out: list[tuple[int, int]] = []
        for pa, sa in ea:
            for pb, sb in eb:
                p = shallow(pa, pb, True)
                if p is None:
                    p = yield (pa, pb, True)
                if p == _FALSE:
                    continue
                s = shallow(sa, sb, is_and)
                if s is None:
                    s = yield (sa, sb, is_and)
                out.append((p, s))
        res = yield from self._decision_gen(v, out)
        cache = self._and_cache if is_and else self._or_cache
        cache[(a << 32) | b] = res
        return res

    def _decision_gen(
        self, vnode: int, elements: Iterable[tuple[int, int]]
    ) -> Iterator[tuple[int, int, bool]]:
        """Generator twin of :meth:`_decision` for use inside the trampoline
        (compression ORs on primes become yielded requests, not recursion)."""
        by_sub: dict[int, int] = {}
        shallow = self._apply_shallow
        for p, s in elements:
            if p == _FALSE:
                continue
            q = by_sub.get(s)
            if q is None:
                by_sub[s] = p
            else:
                r = shallow(q, p, False)
                if r is None:
                    r = yield (q, p, False)
                by_sub[s] = r
        return self._intern_decision(
            vnode, tuple(sorted((p, s) for s, p in by_sub.items()))
        )

    def _elements_at(self, u: int, v: int) -> tuple[tuple[int, int], ...]:
        """View ``u`` as a decision element list normalized for internal
        vtree node ``v`` (``u``'s vtree node must be within ``v``'s
        subtree)."""
        vu = self.node_vnode[u]
        if vu == v and self.node_kind[u] == "dec":
            elems = self.node_elements[u]
            assert elems is not None
            return elems
        v_lo, v_hi = self.v_lo, self.v_hi
        lo, hi = v_lo[vu], v_hi[vu]
        vl, vr = self.v_left[v], self.v_right[v]
        assert vl is not None and vr is not None
        if v_lo[vl] <= lo and hi <= v_hi[vl]:
            return ((u, _TRUE), (self.negate(u), _FALSE))
        if v_lo[vr] <= lo and hi <= v_hi[vr]:
            return ((_TRUE, u),)
        raise AssertionError("node does not fit under the requested vtree node")

    def _reduce(
        self,
        items: list[int],
        is_and: bool,
        *,
        node_budget: int | None = None,
        safepoint=None,
        deadline=None,
    ) -> int:
        """Balanced pairwise fold — on k operands whose supports form a
        chain this costs O(total size · log k) instead of the O(total
        size · k) a left-to-right fold pays (each sequential step
        re-applies across the whole accumulated support).

        ``node_budget`` keeps :meth:`compile_circuit`'s budget binding even
        when chain absorption folds a whole circuit into one reduce call:
        it is re-checked before every pairwise apply (matching the old
        per-gate granularity).  ``safepoint`` is the ``auto_minimize``
        hook at the same granularity: when the watermark trips it receives
        every in-flight operand, may collect and rewrite the vtree, and
        returns the operands re-anchored.  ``deadline`` is a
        :class:`~repro.service.errors.Deadline`-like token checked at the
        same points (cooperative wall-clock cancellation)."""
        if not items:
            return _TRUE if is_and else _FALSE
        ap = self._apply
        while len(items) > 1:
            nxt = []
            for i in range(0, len(items) - 1, 2):
                if node_budget is not None and self.live_node_count > node_budget:
                    raise CompilationBudgetExceeded(
                        f"node budget {node_budget} exceeded "
                        f"({self.live_node_count} nodes)"
                    )
                if deadline is not None:
                    deadline.check("apply compilation")
                if (
                    safepoint is not None
                    and self._next_minimize_at is not None
                    and self.live_node_count > self._next_minimize_at
                ):
                    pending = safepoint(nxt + items[i:])
                    nxt = pending[: len(nxt)]
                    items[i:] = pending[len(nxt):]
                nxt.append(ap(items[i], items[i + 1], is_and))
            if len(items) % 2:
                nxt.append(items[-1])
            items = nxt
        return items[0]

    def conjoin(self, *nodes: int) -> int:
        return self._reduce(list(nodes), True)

    def disjoin(self, *nodes: int) -> int:
        return self._reduce(list(nodes), False)

    def condition(self, u: int, assignment: Mapping[str, int]) -> int:
        """Condition on a partial assignment (literal substitution)."""
        out = u
        for var, val in assignment.items():
            out = self._apply(out, self.literal(var, bool(val)), True)
            out = self._forget_var(out, var)
        return out

    def _forget_var(self, u: int, var: str) -> int:
        """Existentially quantify one variable."""
        pos = self._restrict(u, var, True)
        neg = self._restrict(u, var, False)
        return self._apply(pos, neg, False)

    def _restrict(self, u: int, var: str, value: bool) -> int:
        if u <= _TRUE:
            return u
        leaf = self.leaf_of_var[var]
        contains = self._contains
        node_kind, node_elements = self.node_kind, self.node_elements
        # Walk only the affected cone: descend exactly where the vtree
        # node contains the restricted leaf — everything outside maps to
        # itself and its descendants are never visited.
        seen: set[int] = set()
        stack = [u]
        while stack:
            w = stack.pop()
            if w <= _TRUE or w in seen:
                continue
            seen.add(w)
            if node_kind[w] == "dec" and contains(self.node_vnode[w], leaf):
                elems = node_elements[w]
                assert elems is not None
                for p, s in elems:
                    stack.append(p)
                    stack.append(s)
        out: dict[int, int] = {}
        for w in sorted(seen, key=self.node_stamp.__getitem__):
            if node_kind[w] == "lit":
                if self.node_var[w] == var:
                    out[w] = _TRUE if (self.node_sign[w] == value) else _FALSE
                else:
                    out[w] = w
            else:
                vn = self.node_vnode[w]
                if not contains(vn, leaf):
                    out[w] = w
                else:
                    elems = node_elements[w]
                    assert elems is not None
                    out[w] = self._decision(
                        vn,
                        [
                            (p if p <= _TRUE else out[p], s if s <= _TRUE else out[s])
                            for p, s in elems
                        ],
                    )
        return out[u]

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def compile_circuit(
        self, circuit: Circuit, *, node_budget: int | None = None, deadline=None
    ) -> int:
        """Bottom-up apply compilation of ``circuit``.

        Chains of same-kind AND/OR gates whose intermediate results feed
        only the next link are flattened and folded balanced: the
        gate-by-gate fold on an n-gate OR chain re-applies across the
        accumulated support every step (Θ(n²) manager nodes on
        ``chain_and_or``); the balanced fold costs O(n log n).

        ``node_budget`` caps the number of live manager nodes; exceeding it
        raises :class:`CompilationBudgetExceeded` (checked between gates).
        ``deadline`` is a :class:`~repro.service.errors.Deadline`-like
        token whose ``check()`` raises
        :class:`~repro.service.errors.DeadlineExceeded`; it is consulted
        at exactly the budget safepoints (per gate, and per pairwise
        apply inside folded chains), making wall-clock cancellation
        cooperative and the cancellation points deterministic.

        With ``auto_minimize_nodes`` set, crossing the watermark between
        gates triggers one in-place :meth:`minimize` round: the live
        intermediate gate results are pinned, the vtree search runs, and
        the intermediates are re-anchored through the move mapping — so a
        compilation that starts blowing up under a bad vtree can repair
        the vtree mid-flight instead of paying the blow-up to the end.
        """
        if circuit.output is None:
            raise ValueError("circuit has no output")
        gates = circuit.gates
        order = circuit.topological_order()
        # A gate is absorbed into its consumer when it is a same-kind
        # AND/OR gate feeding exactly one gate — its operands are folded
        # at the consumer and its own intermediate SDD is never built.
        fanout = [0] * len(gates)
        consumer_kind: list[str | None] = [None] * len(gates)
        for gate in gates:
            for i in gate.inputs:
                fanout[i] += 1
                consumer_kind[i] = gate.kind
        fanout[circuit.output] += 1
        absorbed = [
            gate.kind in (AND, OR)
            and fanout[gid] == 1
            and consumer_kind[gid] == gate.kind
            for gid, gate in enumerate(gates)
        ]
        absorbed[circuit.output] = False
        vals: dict[int, int] = {}
        safepoint = None
        if self._next_minimize_at is not None:
            def safepoint(extra: list[int]) -> list[int]:
                return self._compile_safepoint(vals, extra)
        for gid in order:
            if absorbed[gid]:
                continue
            if node_budget is not None and self.live_node_count > node_budget:
                raise CompilationBudgetExceeded(
                    f"node budget {node_budget} exceeded ({self.live_node_count} nodes)"
                )
            if deadline is not None:
                deadline.check("apply compilation")
            if (
                safepoint is not None
                and self._next_minimize_at is not None
                and self.live_node_count > self._next_minimize_at
            ):
                safepoint([])
            gate = gates[gid]
            if gate.kind == VAR:
                vals[gid] = self.literal(gate.payload, True)  # type: ignore[arg-type]
            elif gate.kind == CONST:
                vals[gid] = _TRUE if gate.payload else _FALSE
            elif gate.kind == NOT:
                vals[gid] = self.negate(vals[gate.inputs[0]])
            else:
                ops: list[int] = []
                stack = list(reversed(gate.inputs))
                while stack:
                    i = stack.pop()
                    if absorbed[i]:
                        stack.extend(reversed(gates[i].inputs))
                    else:
                        ops.append(vals[i])
                vals[gid] = self._reduce(
                    ops, gate.kind == AND,
                    node_budget=node_budget, safepoint=safepoint,
                    deadline=deadline,
                )
        return vals[circuit.output]

    def compile_nnf(self, root: NNF) -> int:
        memo: dict[int, int] = {}
        for node in root.nodes():
            if node.kind == "true":
                val = _TRUE
            elif node.kind == "false":
                val = _FALSE
            elif node.kind == "lit":
                val = self.literal(node.var, bool(node.sign))  # type: ignore[arg-type]
            elif node.kind == "and":
                val = self.conjoin(*[memo[id(c)] for c in node.children])
            else:
                val = self.disjoin(*[memo[id(c)] for c in node.children])
            memo[id(node)] = val
        return memo[id(root)]

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def pin(self, root: int) -> int:
        """Protect ``root`` (and everything reachable from it) from
        :meth:`gc`.  Pins are counted: ``pin`` twice, ``release`` twice.
        Returns ``root`` for call-chaining convenience.

        Pin a root *before* any collection can run: node ids are bare
        ints whose slots are recycled after collection, so holding an
        unpinned id across a :meth:`gc` is undefined — this guard raises
        only while the slot is still free; once a later allocation reuses
        it, the id silently names a different node.  (The managed paths —
        ``QueryEngine``, the apply backend — always pin at compile time.)
        """
        if root > _TRUE:
            if self.node_kind[root] == "free":
                raise ValueError(f"cannot pin collected node {root}")
            self._pins[root] = self._pins.get(root, 0) + 1
        return root

    def release(self, root: int) -> None:
        """Drop one pin from ``root``; at zero pins the root becomes
        collectable by the next :meth:`gc`."""
        if root <= _TRUE:
            return
        count = self._pins.get(root)
        if count is None:
            raise ValueError(f"node {root} is not pinned")
        if count == 1:
            del self._pins[root]
        else:
            self._pins[root] = count - 1

    def pinned_roots(self) -> tuple[int, ...]:
        return tuple(self._pins)

    def register_wmc_cache(self, cache) -> None:
        """Register an object with an ``evict(dead_ids)`` method (e.g. an
        :class:`~repro.sdd.wmc.SddWmcEvaluator`) to be notified when node
        ids die; held weakly."""
        self._wmc_caches.add(cache)

    def _live_set(self, extra_roots: Iterable[int] = ()) -> set[int]:
        """Constants, literals, pinned roots (and ``extra_roots``), and
        everything they reach."""
        live = {_FALSE, _TRUE}
        stack = [r for r in self._pins if r > _TRUE]
        stack.extend(self._lit_table.values())
        stack.extend(extra_roots)
        node_kind, node_elements = self.node_kind, self.node_elements
        while stack:
            w = stack.pop()
            if w in live:
                continue
            live.add(w)
            if node_kind[w] == "dec":
                elems = node_elements[w]
                assert elems is not None
                for p, s in elems:
                    if p not in live:
                        stack.append(p)
                    if s not in live:
                        stack.append(s)
        return live

    def gc(self, *, full: bool = False) -> dict[str, int]:
        """Collect every decision node unreachable from the pinned roots.

        Constants and literals are permanent.  With ``full=False`` nodes
        born in the current generation are spared (*aging*), along with
        everything they reach: a caller that has just compiled something
        and not yet pinned it loses nothing — not even older shared
        substructure — to a concurrent watermark collection.  ``full=True``
        sweeps the unpinned regardless of age.

        Freed ids go to a free list and are reused by later allocations;
        every cache keyed by node id (apply/negation caches here, the memos
        of registered WMC evaluators) is evicted in the same pass, so id
        reuse can never resurrect a stale cache entry.  *Caller-held* ids
        are not versioned, though: an unpinned id kept across a collection
        is a dangling handle — see :meth:`pin`.

        Returns the collection's counters.
        """
        node_kind = self.node_kind
        gen = self._generation
        node_gen = self.node_gen
        # Aging is transitive: a spared young node keeps everything it
        # reaches alive (young nodes act as additional GC roots), so no
        # spared node is ever left with dangling element ids.
        young = (
            ()
            if full
            else [
                w
                for w in range(2, len(node_kind))
                if node_gen[w] == gen and node_kind[w] == "dec"
            ]
        )
        live = self._live_set(young)
        # Iterate the unique table, not the id range: every live decision
        # is interned, so this is O(live) — the minimization driver
        # collects after every move and must not pay O(capacity) each time.
        dead = [w for w in self._dec_table.values() if w not in live]
        dead_set = set(dead)
        for w in dead:
            elems = self.node_elements[w]
            assert elems is not None
            key = (self.node_vnode[w], elems)
            del self._dec_table[key]
            self._vnode_members[self.node_vnode[w]].discard(w)
            self._total_elements -= len(elems)
            node_kind[w] = "free"
            self.node_vnode[w] = -1
            self.node_elements[w] = None
        self._free_ids.extend(dead)
        if dead_set:
            self._evict_apply_caches(dead_set)
            for cache in tuple(self._wmc_caches):
                cache.evict(dead_set)
        self._generation += 1
        self._gc_runs += 1
        self._collected_total += len(dead)
        return {
            "collected": len(dead),
            "live": self.live_node_count,
            "free": len(self._free_ids),
            "generation": self._generation,
        }

    def maybe_gc(self) -> dict[str, int] | None:
        """Run :meth:`gc` iff the live node count exceeds the
        ``auto_gc_nodes`` watermark.  Call this only at safe points: any
        root not pinned (or younger than one generation) may be swept."""
        if self.auto_gc_nodes is not None and self.live_node_count > self.auto_gc_nodes:
            return self.gc()
        return None

    def _evict_apply_caches(self, dead: set[int]) -> None:
        mask = (1 << 32) - 1
        for cache in (self._and_cache, self._or_cache):
            stale = [
                k
                for k, v in cache.items()
                if v in dead or (k >> 32) in dead or (k & mask) in dead
            ]
            for k in stale:
                del cache[k]
        neg = self._neg_cache
        stale_neg = [k for k, v in neg.items() if k in dead or v in dead]
        for k in stale_neg:
            neg.pop(k, None)

    # ------------------------------------------------------------------
    # dynamic vtree minimization: in-place rotations and child swap
    # ------------------------------------------------------------------
    #
    # The three local moves rewrite the *live* vtree tables and
    # re-normalize only the SDD nodes whose vtree node changed partition:
    #
    # - ``rotate_right(v)``: ``(a b) c -> a (b c)`` — nodes at ``v`` and at
    #   its old left child re-partition;
    # - ``rotate_left(v)``:  ``a (b c) -> (a b) c`` — nodes at ``v`` and at
    #   its old right child re-partition;
    # - ``swap(v)``: children exchanged — nodes at ``v`` re-partition.
    #
    # Everything normalized *outside* those vtree nodes keeps its id,
    # structure, and cached values: subtrees ``a``/``b``/``c`` are moved
    # wholesale, so their canonical nodes stay canonical, and vtree-node
    # *indices* are reused across the move (the rotated child keeps its
    # index with a new variable interval) so ``node_vnode`` never needs a
    # global rewrite.  Each move returns the old→new id mapping of the
    # re-normalized nodes; pins travel with the mapping, parents
    # referencing a remapped node are rewritten through the unique table,
    # and the apply/negation caches plus registered WMC memos are evicted
    # for the retired ids — the same coherence contract as :meth:`gc`.
    #
    # Re-normalization is *structure-directed*, never a generic apply over
    # the fragment: one bucket re-interns verbatim at its new vtree node
    # (a rotation leaves its element tuples well-formed under the new
    # partition), and the other is rebuilt from its elements' own
    # decompositions, so the only ``apply`` calls issued are confined to
    # the child scopes — this is what makes a move orders of magnitude
    # cheaper than recompiling, even near the root.

    def rotate_right(self, v: int) -> dict[int, int] | None:
        """In-place right rotation at vtree node index ``v``:
        ``(a b) c -> a (b c)``.  Returns the old→new id mapping of the
        re-normalized SDD nodes (``{}`` when none moved), or ``None`` when
        the move does not apply (``v`` or its left child is a leaf)."""
        y = self.v_left[v]
        if y is None or self.v_left[y] is None:
            return None
        a, b = self.v_left[y], self.v_right[y]
        c = self.v_right[v]
        assert a is not None and b is not None and c is not None
        bucket_x = self._affected((v,))
        bucket_y = self._affected((y,))
        self.v_left[v], self.v_right[v] = a, y
        self.v_left[y], self.v_right[y] = b, c
        self.v_parent[a] = v
        self.v_parent[b] = y
        self.v_parent[c] = y
        lo, hi = self.v_lo[b], self.v_hi[c]
        self.v_interval[y] = (lo, hi)
        self.v_lo[y], self.v_hi[y] = lo, hi
        self.v_nvars[y] = self.v_nvars[b] + self.v_nvars[c]
        self._rebuild_vtree_objects(y)
        self._refresh_wmc_vtrees()
        self._moves_applied += 1
        mapping: dict[int, int] = {}
        # Old y-nodes (primes over a, subs over b) re-intern verbatim at
        # x' = (a, (b c)): their primes still partition the left scope and
        # their subs fit the wider right scope.
        for u in bucket_y:
            elems = self.node_elements[u]
            assert elems is not None
            mapping[u] = self._intern_decision(v, elems)
        # Old x-nodes (primes over a∪b, subs over c): refine the a-space
        # by the primes' own (a, b)-decompositions, and build each refined
        # region's sub directly as a (b, c)-decision — within a region,
        # the b-parts inherit the primes' disjointness and exhaustiveness.
        for u in bucket_x:
            elems = self.node_elements[u]
            assert elems is not None
            regions: list[tuple[int, list[tuple[int, int]]]] = [(_TRUE, [])]
            for p, s in elems:
                pairs = self._split_pairs(p, a, b, y)
                out = []
                for q, lst in regions:
                    for aj, bj in pairs:
                        if aj == _FALSE:
                            continue
                        q2 = self._apply(q, aj, True)
                        if q2 == _FALSE:
                            continue
                        out.append((q2, lst + [(bj, s)]))
                regions = out
            new_elems = []
            for q, lst in regions:
                sub = self._decision(y, [(bj, s) for bj, s in lst])
                new_elems.append((q, sub))
            mapping[u] = self._decision(v, new_elems)
        return self._finalize_move(v, mapping)

    def rotate_left(self, v: int) -> dict[int, int] | None:
        """In-place left rotation at vtree node index ``v``:
        ``a (b c) -> (a b) c`` (the inverse of :meth:`rotate_right`)."""
        y = self.v_right[v]
        if y is None or self.v_left[y] is None:
            return None
        a = self.v_left[v]
        b, c = self.v_left[y], self.v_right[y]
        assert a is not None and b is not None and c is not None
        bucket_x = self._affected((v,))
        bucket_y = self._affected((y,))
        self.v_left[v], self.v_right[v] = y, c
        self.v_left[y], self.v_right[y] = a, b
        self.v_parent[a] = y
        self.v_parent[b] = y
        self.v_parent[c] = v
        lo, hi = self.v_lo[a], self.v_hi[b]
        self.v_interval[y] = (lo, hi)
        self.v_lo[y], self.v_hi[y] = lo, hi
        self.v_nvars[y] = self.v_nvars[a] + self.v_nvars[b]
        self._rebuild_vtree_objects(y)
        self._refresh_wmc_vtrees()
        self._moves_applied += 1
        mapping: dict[int, int] = {}
        # Old y-nodes (primes over b, subs over c) re-intern verbatim at
        # x' = ((a b), c): b-primes partition the wider left scope too.
        for u in bucket_y:
            elems = self.node_elements[u]
            assert elems is not None
            mapping[u] = self._intern_decision(v, elems)
        # Old x-nodes (primes over a, subs over b∪c): decompose each sub
        # into (b, c) pairs; the new primes are the disjoint-scope
        # conjunctions p ∧ b_j, built directly as (a, b)-decisions.
        for u in bucket_x:
            elems = self.node_elements[u]
            assert elems is not None
            new_elems = []
            for p, s in elems:
                for bj, cj in self._split_pairs(s, b, c, y):
                    if bj == _FALSE:
                        continue
                    prime = self._conjoin_disjoint(y, p, bj)
                    if prime == _FALSE:
                        continue
                    new_elems.append((prime, cj))
            mapping[u] = self._decision(v, new_elems)
        return self._finalize_move(v, mapping)

    def swap(self, v: int) -> dict[int, int] | None:
        """In-place child swap at vtree node index ``v`` (its own inverse).

        Unlike the rotations this changes the left-to-right leaf order, so
        the variable *intervals* of both child subtrees shift (whole
        blocks, no SDD nodes inside them are touched); only the nodes
        normalized at ``v`` itself re-partition."""
        l = self.v_left[v]
        if l is None:
            return None
        r = self.v_right[v]
        assert r is not None
        affected = self._affected((v,))
        self.v_left[v], self.v_right[v] = r, l
        # l occupied [L0, L1), r occupied [L1, R1); afterwards r sits at
        # [L0, L0 + |r|) and l at [L0 + |r|, R1).
        l1 = self.v_hi[l]
        delta_l = self.v_hi[r] - l1
        delta_r = self.v_lo[l] - l1
        for sub, delta in ((l, delta_l), (r, delta_r)):
            if delta == 0:
                continue
            stack = [sub]
            while stack:
                i = stack.pop()
                self.v_interval[i] = (self.v_lo[i] + delta, self.v_hi[i] + delta)
                self.v_lo[i], self.v_hi[i] = self.v_interval[i]
                li, ri = self.v_left[i], self.v_right[i]
                if li is not None:
                    assert ri is not None
                    stack.append(li)
                    stack.append(ri)
        self._rebuild_vtree_objects(v)
        # No WMC refresh: every vtree node keeps its variable *set* (only
        # the order changed), so subtree products and gap paths hold.
        self._moves_applied += 1
        mapping: dict[int, int] = {}
        # Partition inversion by expansion: refine the new prime space (the
        # old subs' scope) with each element's sub and its negation,
        # accumulating the old primes on the other side.  All applies stay
        # within the two child scopes.
        for u in affected:
            elems = self.node_elements[u]
            assert elems is not None
            regions: list[tuple[int, int]] = [(_TRUE, _FALSE)]
            for p, s in elems:
                ns = self.negate(s)
                out = []
                for q, t in regions:
                    q1 = self._apply(q, s, True)
                    if q1 != _FALSE:
                        out.append((q1, self._apply(t, p, False)))
                    q2 = self._apply(q, ns, True)
                    if q2 != _FALSE:
                        out.append((q2, t))
                regions = out
            mapping[u] = self._decision(v, regions)
        return self._finalize_move(v, mapping)

    def _affected(self, vnodes: tuple[int, ...]) -> list[int]:
        """The decision nodes normalized at ``vnodes``, oldest first
        (stamp order is topological, so re-normalizing in this order sees
        every referenced node already mapped)."""
        out: list[int] = []
        for i in vnodes:
            out.extend(self._vnode_members[i])
        out.sort(key=self.node_stamp.__getitem__)
        return out

    def _rebuild_vtree_objects(self, start: int) -> None:
        """Recreate the immutable :class:`Vtree` objects for ``start`` and
        its ancestors after an index-table rewiring (children changed), so
        ``v_nodes``/``v_index``/``self.vtree`` stay consistent with the
        tables.  Uses the trusted constructor: disjointness is invariant
        under reassociation of an already-validated tree."""
        i: int | None = start
        while i is not None:
            old = self.v_nodes[i]
            li, ri = self.v_left[i], self.v_right[i]
            assert li is not None and ri is not None
            new = Vtree.internal_trusted(self.v_nodes[li], self.v_nodes[ri])
            del self.v_index[id(old)]
            self.v_nodes[i] = new
            self.v_index[id(new)] = i
            i = self.v_parent[i]
        self.vtree = self.v_nodes[self.v_root]

    def _refresh_wmc_vtrees(self) -> None:
        for cache in tuple(self._wmc_caches):
            refresh = getattr(cache, "refresh_vtree", None)
            if refresh is not None:
                refresh()

    def _split_pairs(
        self, u: int, li: int, ri: int, at_idx: int
    ) -> tuple[tuple[int, int], ...]:
        """Decompose ``u`` (scope within the subtrees of ``li``/``ri``)
        into ``(left_part, right_part)`` pairs whose left parts partition
        the ``li`` scope.  ``at_idx`` is the internal vtree index the pair
        ``(li, ri)`` hung under *before* the rewiring; nodes normalized
        there decompose by their own (still-present) element tuples, so no
        apply is ever needed."""
        if u <= _TRUE:
            return ((_TRUE, u),)
        vu = self.node_vnode[u]
        if vu == at_idx and self.node_kind[u] == "dec":
            elems = self.node_elements[u]
            assert elems is not None
            return elems
        lo, hi = self.v_lo[vu], self.v_hi[vu]
        if self.v_lo[li] <= lo and hi <= self.v_hi[li]:
            return ((u, _TRUE), (self.negate(u), _FALSE))
        if self.v_lo[ri] <= lo and hi <= self.v_hi[ri]:
            return ((_TRUE, u),)
        raise AssertionError("node does not fit the split being rotated")

    def _conjoin_disjoint(self, vnode: int, p: int, bj: int) -> int:
        """``p ∧ bj`` for nodes with scopes under ``vnode``'s (new) left
        and right child respectively — built as a decision directly, no
        apply descent."""
        if p == _TRUE:
            return bj
        if bj == _TRUE:
            return p
        if p == _FALSE or bj == _FALSE:
            return _FALSE
        return self._intern_decision(
            vnode, tuple(sorted([(p, bj), (self.negate(p), _FALSE)]))
        )

    def _finalize_move(self, v: int, mapping: dict[int, int]) -> dict[int, int]:
        """Retire the re-normalized nodes coherently: re-anchor referers,
        transfer pins, free the stale ids, and evict every cache that
        could resurrect them."""
        # Defensive transitive closure: a mapping target that is itself a
        # re-normalized (stale) id would dangle once retired.  Canonicity
        # makes real chains impossible — two distinct live nodes never
        # denote the same function under one vtree — but resolving them is
        # cheap and turns a latent corruption into dead code.
        for u in mapping:
            m = mapping[u]
            seen = {u}
            while m in mapping and mapping[m] != m and m not in seen:
                seen.add(m)
                m = mapping[m]
            mapping[u] = m
        remapped = {u: m for u, m in mapping.items() if m != u}
        if not remapped:
            return remapped
        self._rewrite_referers(v, remapped)
        for old, new in remapped.items():
            count = self._pins.pop(old, 0)
            if count and new > _TRUE:
                self._pins[new] = self._pins.get(new, 0) + count
        dead = set(remapped)
        for u in remapped:
            elems = self.node_elements[u]
            assert elems is not None
            vn = self.node_vnode[u]
            key = (vn, elems)
            if self._dec_table.get(key) == u:
                del self._dec_table[key]
            self._vnode_members[vn].discard(u)
            self._total_elements -= len(elems)
            self.node_kind[u] = "free"
            self.node_vnode[u] = -1
            self.node_elements[u] = None
        self._free_ids.extend(remapped)
        # Op-cache entries created *during* the move only involve nodes
        # that survive it (the transforms' applies never span a
        # re-partitioned scope), but pre-move entries may name the ids
        # just freed; dropping the caches wholesale is O(1), scanning them
        # per move would be O(cache) — quadratic over a sift.  The WMC
        # memos persist across moves and drop exactly the retired ids.
        self._and_cache.clear()
        self._or_cache.clear()
        self._neg_cache.clear()
        for cache in tuple(self._wmc_caches):
            cache.evict(dead)
        return remapped

    def _rewrite_referers(self, v: int, remapped: dict[int, int]) -> None:
        """Point every decision element at a remapped node to its new id.

        A referencing node's vtree node strictly contains the fragment, so
        only the buckets along ``v``'s ancestor path are scanned — this is
        what keeps a move local.  Rewriting is structural: the referer
        keeps its id, function and vtree node; its element tuple (and
        hence its unique-table key) changes — and because the new element
        ids can be *younger* than the referer, every touched node is
        re-stamped (cascading up the path) to keep creation-stamp order
        topological, the invariant all the linear sweeps sort by."""
        # Seed with the replacement ids: anything now referencing them
        # must become younger than they are.
        restamped = set(remapped.values())
        w = self.v_parent[v]
        while w is not None:
            for pi in self._vnode_members[w]:
                elems = self.node_elements[pi]
                assert elems is not None
                rewrite = any(p in remapped or s in remapped for p, s in elems)
                if not rewrite and not any(
                    p in restamped or s in restamped for p, s in elems
                ):
                    continue
                if rewrite:
                    new_elems = tuple(sorted(
                        (remapped.get(p, p), remapped.get(s, s)) for p, s in elems
                    ))
                    del self._dec_table[(w, elems)]
                    assert (w, new_elems) not in self._dec_table, (
                        "unique-table collision while re-anchoring a referer"
                    )
                    self._dec_table[(w, new_elems)] = pi
                    self.node_elements[pi] = new_elems
                self.node_stamp[pi] = self._next_stamp
                self._next_stamp += 1
                restamped.add(pi)
            w = self.v_parent[w]

    # ------------------------------------------------------------------
    # minimization search driver
    # ------------------------------------------------------------------
    def vtree_postorder(self) -> list[int]:
        """Current vtree node indices, children before parents.  Index
        order itself stops being topological once in-place rotations have
        run — sweeps over vtree indices must use this instead."""
        out: list[int] = []
        stack: list[tuple[int, bool]] = [(self.v_root, False)]
        while stack:
            i, expanded = stack.pop()
            if expanded or self.v_left[i] is None:
                out.append(i)
            else:
                right = self.v_right[i]
                left = self.v_left[i]
                assert left is not None and right is not None
                stack.append((i, True))
                stack.append((right, False))
                stack.append((left, False))
        return out

    # Consecutive non-improving rotation steps tolerated before a sift
    # walk gives up on its current direction.
    _SIFT_STALL = 4
    # Nodes whose element bucket exceeds this fraction of the live SDD
    # (with an absolute floor for small managers) are not sifted.
    _SIFT_FAT_FRAC = 0.25
    _SIFT_FAT_FLOOR = 48

    def _move(self, name: str, v: int) -> dict[int, int] | None:
        if name == "rotate-left":
            return self.rotate_left(v)
        if name == "rotate-right":
            return self.rotate_right(v)
        if name == "swap":
            return self.swap(v)
        raise ValueError(f"unknown vtree move {name!r}")


    def minimize(
        self,
        *,
        budget: int | None = None,
        max_growth: float = 1.5,
        rounds: int = 2,
        node_order: Sequence[int] | None = None,
        target_size: int | None = None,
    ) -> dict[int, int]:
        """Sifting-style dynamic vtree search over the live SDD.

        Walks the internal vtree nodes (thinnest element buckets first —
        cheap moves carry most of the improvement; buckets holding a
        large share of the SDD are skipped outright, a move there costs
        about a recompile) and
        *sifts* each one: rotates as far right as the tree allows, then as
        far left, measuring the pinned SDD size after every move, and
        settles on the best position seen; a child swap is then kept iff
        it improves further.  Moves whose size exceeds ``max_growth ×``
        the node's starting size cut the walk short and are rolled back —
        exploration may pass through worse shapes, but never runs away.

        The optimization objective is the footprint of the *pinned*
        roots: the driver runs a full collection after every move (O(live)
        — the incremental size counter then *is* the pinned footprint), so
        anything unpinned is garbage to it.  Pin what you care about
        first; the managed paths (``QueryEngine``, the apply backend,
        ``compile_circuit``'s watermark) always do.

        ``budget`` caps the number of exploration moves (rollback moves
        needed to restore the best shape are always allowed, so the search
        never strands the tree in a worse position).  ``rounds`` bounds
        the number of full passes; the search stops early at a fixpoint.
        ``node_order`` restricts a pass to the given vtree node indices
        (the circuit-level search uses this to subsample).  ``target_size``
        makes the search *anytime*: it returns as soon as the pinned size
        reaches the target (used to measure time-to-quality against the
        recompile-per-neighbor baseline).

        Returns the composed old→new id mapping over every move applied —
        callers holding node ids (including ids pinned on their behalf)
        must re-anchor through it, e.g. ``root = m.get(root, root)``.
        """
        if rounds < 1:
            raise ValueError("rounds must be positive")
        if max_growth < 1.0:
            raise ValueError("max_growth must be >= 1.0")
        composed: dict[int, int] = {}
        moves = 0

        def apply_move(name: str, v: int) -> bool:
            nonlocal moves
            before = self.live_node_count
            m = self._move(name, v)
            if m is None:
                return False
            moves += 1
            for k in composed:
                composed[k] = m.get(composed[k], composed[k])
            for k, val in m.items():
                if k not in composed:
                    composed[k] = val
            # Collect immediately: leftover re-normalization garbage would
            # otherwise swell the vnode buckets and every later move would
            # re-normalize it again (quadratic over a sift walk).  With the
            # op caches reset by the move itself this is O(live); a move
            # that allocated and retired nothing made no garbage either.
            if m or self.live_node_count != before:
                self.gc(full=True)
            return True

        def can_explore() -> bool:
            return budget is None or moves < budget

        self.gc(full=True)
        size = self._total_elements
        if target_size is not None and size <= target_size:
            return composed
        for _ in range(rounds):
            round_start = size
            if node_order is not None:
                order = [i for i in node_order if self.v_left[i] is not None]
            else:
                order = [
                    i for i in range(len(self.v_nodes))
                    if self.v_left[i] is not None
                ]
            # Thinnest element buckets first: their moves are cheapest
            # (re-normalization cost is the bucket size) and empirically
            # carry most of the improvement — high-width shapes keep their
            # fat near the root, where a move approaches a recompile and
            # rarely pays.  Cheap wins land first, making the search a
            # good anytime algorithm.
            order.sort(
                key=lambda i: sum(
                    len(self.node_elements[u] or ())
                    for u in self._vnode_members[i]
                )
            )
            for v in order:
                if not can_explore():
                    break
                bucket = sum(
                    len(self.node_elements[u] or ())
                    for u in self._vnode_members[v]
                )
                # A bucket holding a large share of the whole SDD makes
                # every move there cost about a recompile (the exact
                # thing in-manager search exists to avoid) and such moves
                # essentially never pay; leave those nodes alone.
                if bucket > max(self._SIFT_FAT_FLOOR, self._SIFT_FAT_FRAC * size):
                    continue
                size = self._sift_node(
                    v, size, can_explore, apply_move, max_growth, target_size
                )
                if target_size is not None and size <= target_size:
                    self._minimize_runs += 1
                    return composed
            self._minimize_runs += 1
            if size >= round_start or not can_explore():
                break
        return composed

    def _sift_node(self, v, size, can_explore, apply_move, max_growth, target=None):
        """Sift one vtree node through its rotation positions (then try a
        swap) and settle on the smallest shape seen.  Returns the pinned
        size at the settled shape.  With an anytime ``target``, stops *in
        place* the moment any explored shape reaches it."""
        base = size
        best_pos, best_size = 0, size
        for name, step in (("rotate-right", 1), ("rotate-left", -1)):
            pos = 0
            stalled = 0
            while can_explore() and apply_move(name, v):
                pos += step
                size = self._total_elements
                if target is not None and size <= target:
                    return size
                if size < best_size:
                    best_size, best_pos = size, pos
                    stalled = 0
                else:
                    stalled += 1
                # Two stop rules, both standard sifting practice: hard
                # growth cap, and bail after a non-improving streak (the
                # tail of a long walk almost never recovers within the
                # growth bound, but costs a re-normalization per step).
                if size > max_growth * base or stalled >= self._SIFT_STALL:
                    break
            back = "rotate-left" if step == 1 else "rotate-right"
            while pos != 0:
                applied = apply_move(back, v)
                assert applied, "rotation rollback must always apply"
                pos -= step
        if best_pos:
            name = "rotate-right" if best_pos > 0 else "rotate-left"
            for _ in range(abs(best_pos)):
                applied = apply_move(name, v)
                assert applied, "replaying the best rotation walk must apply"
        size = self._total_elements
        if can_explore() and apply_move("swap", v):
            swapped = self._total_elements
            if swapped < size or (target is not None and swapped <= target):
                size = swapped
            else:
                applied = apply_move("swap", v)
                assert applied, "swap is its own inverse"
                size = self._total_elements
        return size

    def _compile_safepoint(self, vals: dict[int, int], extra: list[int]) -> list[int]:
        """One minimization round at the ``auto_minimize_nodes`` watermark:
        pin every live intermediate (the gate results in ``vals`` and the
        in-flight reduce operands in ``extra``) so the driver's collections
        cannot sweep them, search, and re-anchor everything through the
        move mapping (``vals`` in place, ``extra`` returned).  The
        watermark then backs off to twice the post-search size so one
        compilation cannot thrash the search."""
        for u in vals.values():
            self.pin(u)
        for u in extra:
            self.pin(u)
        mapping = self.minimize(rounds=1)
        new_extra = [mapping.get(u, u) for u in extra]
        for gid, u in list(vals.items()):
            vals[gid] = mapping.get(u, u)
        for u in vals.values():
            self.release(u)
        for u in new_extra:
            self.release(u)
        assert self.auto_minimize_nodes is not None
        self._next_minimize_at = max(
            self.auto_minimize_nodes, 2 * self.live_node_count
        )
        return new_extra

    def check_unique_table(self) -> None:
        """Verify unique-table canonicity after moves/rollbacks: every live
        decision is interned under exactly its ``(vnode, elements)`` key,
        no duplicates, and the incremental size/membership counters agree
        with the tables.  Test/debug aid; O(live nodes)."""
        decisions = [
            u for u in range(2, len(self.node_kind)) if self.node_kind[u] == "dec"
        ]
        if len(self._dec_table) != len(decisions):
            raise AssertionError(
                f"unique table has {len(self._dec_table)} entries for "
                f"{len(decisions)} live decisions"
            )
        total = 0
        for u in decisions:
            elems = self.node_elements[u]
            assert elems is not None
            if self._dec_table.get((self.node_vnode[u], elems)) != u:
                raise AssertionError(f"decision {u} not interned under its key")
            if u not in self._vnode_members[self.node_vnode[u]]:
                raise AssertionError(f"decision {u} missing from its vnode bucket")
            total += len(elems)
        if total != self._total_elements:
            raise AssertionError(
                f"incremental size {self._total_elements} != measured {total}"
            )
        member_count = sum(len(s) for s in self._vnode_members)
        if member_count != len(decisions):
            raise AssertionError(
                f"vnode buckets hold {member_count} ids for "
                f"{len(decisions)} live decisions"
            )

    # ------------------------------------------------------------------
    # measures / queries
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Public counters for the manager's tables and caches.

        This is the supported way to observe sharing and collection (batch
        APIs and CLI reports use it); the underlying attributes are
        private.  ``nodes`` counts *live* nodes; ``node_capacity`` is the
        table length including freed slots awaiting reuse.
        """
        n_lit = len(self._lit_table)
        live = self.live_node_count
        return {
            "vtree_nodes": len(self.v_nodes),
            "nodes": live,
            "node_capacity": len(self.node_kind),
            "free_nodes": len(self._free_ids),
            "literal_nodes": n_lit,
            "decision_nodes": live - n_lit - 2,  # minus constants
            "pinned_roots": len(self._pins),
            "gc_runs": self._gc_runs,
            "collected_nodes": self._collected_total,
            "generation": self._generation,
            "live_size": self._total_elements,
            "minimize_runs": self._minimize_runs,
            "vtree_moves": self._moves_applied,
            "and_cache_entries": len(self._and_cache),
            "or_cache_entries": len(self._or_cache),
            "neg_cache_entries": len(self._neg_cache),
            "apply_cache_entries": len(self._and_cache) + len(self._or_cache),
        }

    def reachable(self, u: int) -> set[int]:
        seen: set[int] = set()
        stack = [u]
        while stack:
            w = stack.pop()
            if w in seen:
                continue
            seen.add(w)
            if w > 1 and self.node_kind[w] == "dec":
                elems = self.node_elements[w]
                assert elems is not None
                for p, s in elems:
                    stack.extend((p, s))
        return seen

    def size(self, u: int) -> int:
        """Standard SDD size: total element count over decision nodes."""
        total = 0
        for w in self.reachable(u):
            if w > 1 and self.node_kind[w] == "dec":
                total += len(self.node_elements[w])  # type: ignore[arg-type]
        return total

    def node_count(self, u: int) -> int:
        return len(self.reachable(u))

    def width(self, u: int) -> int:
        """The paper's SDD width: max, over vtree nodes, of the number of
        elements (AND gates) structured there."""
        per: dict[int, int] = {}
        for w in self.reachable(u):
            if w > 1 and self.node_kind[w] == "dec":
                vn = self.node_vnode[w]
                per[vn] = per.get(vn, 0) + len(self.node_elements[w])  # type: ignore[arg-type]
        return max(per.values(), default=0)

    def count_models(self, u: int, scope: Iterable[str] | None = None) -> int:
        """Exact model count via the linear sweep of :mod:`repro.sdd.wmc`."""
        from .wmc import model_count

        return model_count(self, u, list(scope) if scope is not None else None)

    def weighted_count(self, u: int, weights: Mapping[str, tuple[float, float]]):
        """WMC with weights ``(w_neg, w_pos)``; exact with Fractions.

        Delegates to the iterative linear-time sweep of
        :mod:`repro.sdd.wmc` (no recursion, amortized gap products).
        """
        from .wmc import weighted_model_count

        return weighted_model_count(self, u, weights)

    def probability(self, u: int, prob: Mapping[str, float]) -> float:
        from .wmc import probability

        return float(probability(self, u, prob))

    def evaluate(self, u: int, assignment: Mapping[str, int]) -> bool:
        # Lazy short-circuit evaluation (only the taken branches need their
        # variables assigned), iterative: a node stays on the stack until
        # the one child value it is waiting on has been computed.
        val: dict[int, bool] = {_FALSE: False, _TRUE: True}
        stack = [u]
        while stack:
            w = stack[-1]
            if w in val:
                stack.pop()
                continue
            if self.node_kind[w] == "lit":
                b = bool(assignment[self.node_var[w]])  # type: ignore[index]
                val[w] = b if self.node_sign[w] else not b
                stack.pop()
                continue
            elems = self.node_elements[w]
            assert elems is not None
            needed: int | None = None
            res = False
            for p, s in elems:
                pv = val.get(p)
                if pv is None:
                    needed = p
                    break
                if pv:
                    sv = val.get(s)
                    if sv is None:
                        needed = s
                    else:
                        res = sv
                    break
            if needed is not None:
                stack.append(needed)
            else:
                val[w] = res
                stack.pop()
        return val[u]

    def function(self, u: int, variables: Sequence[str] | None = None) -> BooleanFunction:
        vs = tuple(sorted(variables if variables is not None else self.vtree.variables))
        return self.to_nnf(u).function(vs)

    def to_nnf(self, u: int) -> NNF:
        memo: dict[int, NNF] = {_FALSE: false_node(), _TRUE: true_node()}
        todo = [w for w in self.reachable(u) if w > _TRUE]
        todo.sort(key=self.node_stamp.__getitem__)
        for w in todo:
            if self.node_kind[w] == "lit":
                memo[w] = lit(self.node_var[w], bool(self.node_sign[w]))  # type: ignore[arg-type]
            else:
                parts = []
                elems = self.node_elements[w]
                assert elems is not None
                for p, s in elems:
                    parts.append(NNF("and", children=(memo[p], memo[s])))
                memo[w] = parts[0] if len(parts) == 1 else NNF("or", children=tuple(parts))
        return memo[u]

    def validate(self, u: int) -> None:
        """Check the SDD invariants on the reachable nodes: primes exhaust
        (SD1), are pairwise disjoint (SD2), and subs are distinct (SD3) —
        and that no reachable node has been garbage-collected."""
        for w in self.reachable(u):
            if w <= 1:
                continue
            if self.node_kind[w] == "free":
                raise AssertionError(f"reachable node {w} was collected")
            if self.node_kind[w] != "dec":
                continue
            elems = self.node_elements[w]
            assert elems is not None
            subs = [s for _, s in elems]
            if len(set(subs)) != len(subs):
                raise AssertionError("compression violated: duplicate subs")
            primes = [p for p, _ in elems]
            acc = _FALSE
            for i, p in enumerate(primes):
                for q in primes[i + 1 :]:
                    if self._apply(p, q, True) != _FALSE:
                        raise AssertionError("primes not pairwise disjoint")
                acc = self._apply(acc, p, False)
            if acc != _TRUE:
                raise AssertionError("primes do not exhaust")


def sdd_from_circuit(circuit: Circuit, vtree: Vtree | None = None) -> tuple[SddManager, int]:
    """Convenience: compile ``circuit`` into an SDD (default: balanced vtree
    over the circuit's variables)."""
    t = vtree if vtree is not None else Vtree.balanced(sorted(circuit.variables))
    mgr = SddManager(t)
    return mgr, mgr.compile_circuit(circuit)
