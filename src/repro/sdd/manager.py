"""An apply-based SDD manager (Darwiche 2011).

The canonical construction ``S_{F,T}`` of :mod:`repro.core.sdd_compile`
needs the full truth table of ``F``; query lineages can have far too many
variables for that.  This manager compiles *circuits* bottom-up instead:
SDD nodes are hash-consed decision nodes ``(vtree node, ((prime, sub), ...))``
with compression (equal subs merged) and trimming, so every function has a
unique normalized representation per vtree, and ``apply`` runs on pairs of
canonical nodes with memoization.

Size conventions follow the SDD literature: ``size(α)`` is the total number
of elements of the decision nodes reachable from ``α``; ``width`` per the
paper counts elements per vtree node (AND gates structured there).

Two operational properties matter for long-running sessions:

- **Stack safety.**  ``apply`` descends one vtree level per step, so on the
  deep right-linear vtrees that query lineages use a recursive
  implementation overflows Python's stack around 1000 variables.  Every
  operation here (``apply``, ``negate``, ``condition``, ``to_nnf``,
  ``evaluate``) is iterative: ``apply`` runs as a trampoline over generator
  frames, the single-pass traversals as creation-order sweeps.
- **Garbage collection.**  Hash-cons tables and apply caches only ever
  grow unless collected.  Roots are reference-count *pinned*
  (:meth:`pin`/:meth:`release`); :meth:`gc` mark-sweeps everything
  unreachable from the pinned roots, recycles the node ids through a free
  list, and coherently evicts every cache keyed by node id — the apply and
  negation caches here, and any registered
  :class:`~repro.sdd.wmc.SddWmcEvaluator` memo (id reuse without eviction
  would silently corrupt results).  Nodes born since the previous
  collection are spared by default (*aging*), so callers holding fresh
  intermediate results get one grace generation.
"""

from __future__ import annotations

import weakref
from typing import Iterable, Iterator, Mapping, Sequence

from ..core.boolfunc import BooleanFunction
from ..core.vtree import Vtree
from ..circuits.circuit import AND, CONST, NOT, OR, VAR, Circuit
from ..circuits.nnf import NNF, false_node, lit, true_node

__all__ = ["SddManager", "sdd_from_circuit", "CompilationBudgetExceeded"]

_FALSE = 0
_TRUE = 1


class CompilationBudgetExceeded(RuntimeError):
    """Raised by :meth:`SddManager.compile_circuit` when a ``node_budget``
    is exhausted mid-compilation (used by the ``best-of`` vtree strategy to
    abandon candidates that blow up)."""


class SddManager:
    """SDD manager for a fixed vtree.

    ``auto_gc_nodes`` arms :meth:`maybe_gc`: when the live node count
    exceeds the watermark, the next ``maybe_gc()`` call (a *safe point* —
    callers invoke it only when every root they care about is pinned)
    collects garbage.
    """

    def __init__(self, vtree: Vtree, *, auto_gc_nodes: int | None = None):
        self.vtree = vtree
        # --- vtree tables -------------------------------------------------
        self.v_nodes: list[Vtree] = list(vtree.nodes())  # postorder
        self.v_index: dict[int, int] = {id(v): i for i, v in enumerate(self.v_nodes)}
        self.v_parent: list[int | None] = [None] * len(self.v_nodes)
        self.v_left: list[int | None] = [None] * len(self.v_nodes)
        self.v_right: list[int | None] = [None] * len(self.v_nodes)
        self.v_interval: list[tuple[int, int]] = [(0, 0)] * len(self.v_nodes)
        self.v_lo: list[int] = [0] * len(self.v_nodes)
        self.v_hi: list[int] = [0] * len(self.v_nodes)
        self.v_nvars: list[int] = [0] * len(self.v_nodes)
        self.leaf_of_var: dict[str, int] = {}
        pos = 0
        for i, v in enumerate(self.v_nodes):
            if v.is_leaf:
                self.v_interval[i] = (pos, pos + 1)
                self.v_nvars[i] = 1
                if v.var in self.leaf_of_var:
                    raise ValueError(f"duplicate vtree leaf {v.var!r}")
                self.leaf_of_var[v.var] = i  # type: ignore[index]
                pos += 1
            else:
                li = self.v_index[id(v.left)]
                ri = self.v_index[id(v.right)]
                self.v_left[i], self.v_right[i] = li, ri
                self.v_parent[li] = i
                self.v_parent[ri] = i
                self.v_interval[i] = (self.v_interval[li][0], self.v_interval[ri][1])
                self.v_nvars[i] = self.v_nvars[li] + self.v_nvars[ri]
            self.v_lo[i], self.v_hi[i] = self.v_interval[i]
        # --- sdd node tables ----------------------------------------------
        # id 0 = FALSE, id 1 = TRUE; literals and decisions from 2 on.
        # Freed slots are recycled through _free_ids, so ids are NOT
        # topological once gc has run — node_stamp (strictly increasing
        # creation order) is, and the linear sweeps sort by it.
        self.node_kind: list[str] = ["false", "true"]
        self.node_vnode: list[int] = [-1, -1]
        self.node_var: list[str | None] = [None, None]
        self.node_sign: list[bool | None] = [None, None]
        self.node_elements: list[tuple[tuple[int, int], ...] | None] = [None, None]
        self.node_stamp: list[int] = [0, 1]
        self._next_stamp = 2
        self._lit_table: dict[tuple[str, bool], int] = {}
        self._dec_table: dict[tuple[int, tuple[tuple[int, int], ...]], int] = {}
        # Apply caches are op-specialized and keyed by the packed pair
        # (a << 32) | b with a < b — integer keys hash far faster than
        # tuples on this, the hottest dictionary in the engine.
        self._and_cache: dict[int, int] = {}
        self._or_cache: dict[int, int] = {}
        self._neg_cache: dict[int, int] = {}
        # --- garbage collection -------------------------------------------
        self.auto_gc_nodes = auto_gc_nodes
        self._free_ids: list[int] = []
        self._pins: dict[int, int] = {}
        self._generation = 0
        self.node_gen: list[int] = [0, 0]
        self._gc_runs = 0
        self._collected_total = 0
        self._wmc_caches: weakref.WeakSet = weakref.WeakSet()

    # ------------------------------------------------------------------
    # vtree helpers
    # ------------------------------------------------------------------
    def _contains(self, outer: int, inner: int) -> bool:
        (a, b), (c, d) = self.v_interval[outer], self.v_interval[inner]
        return a <= c and d <= b

    def vnode_of(self, u: int) -> int:
        return self.node_vnode[u]

    # ------------------------------------------------------------------
    # node construction
    # ------------------------------------------------------------------
    @property
    def false(self) -> int:
        return _FALSE

    @property
    def true(self) -> int:
        return _TRUE

    @property
    def live_node_count(self) -> int:
        """Nodes currently allocated (constants + literals + live decisions)."""
        return len(self.node_kind) - len(self._free_ids)

    def _alloc(
        self,
        kind: str,
        vnode: int,
        var: str | None,
        sign: bool | None,
        elements: tuple[tuple[int, int], ...] | None,
    ) -> int:
        free = self._free_ids
        if free:
            nid = free.pop()
            self.node_kind[nid] = kind
            self.node_vnode[nid] = vnode
            self.node_var[nid] = var
            self.node_sign[nid] = sign
            self.node_elements[nid] = elements
            self.node_stamp[nid] = self._next_stamp
            self.node_gen[nid] = self._generation
        else:
            nid = len(self.node_kind)
            self.node_kind.append(kind)
            self.node_vnode.append(vnode)
            self.node_var.append(var)
            self.node_sign.append(sign)
            self.node_elements.append(elements)
            self.node_stamp.append(self._next_stamp)
            self.node_gen.append(self._generation)
        self._next_stamp += 1
        return nid

    def literal(self, var: str, sign: bool = True) -> int:
        key = (var, bool(sign))
        got = self._lit_table.get(key)
        if got is not None:
            return got
        if var not in self.leaf_of_var:
            raise ValueError(f"variable {var!r} not in the vtree")
        nid = self._alloc("lit", self.leaf_of_var[var], var, bool(sign), None)
        self._lit_table[key] = nid
        return nid

    def _intern_decision(
        self, vnode: int, elems: tuple[tuple[int, int], ...]
    ) -> int:
        """Trim + intern an already-compressed element tuple at ``vnode``."""
        if not elems:
            return _FALSE
        # Trimming rules.
        if len(elems) == 1:
            p, s = elems[0]
            if p == _TRUE:
                return s
            if s == _TRUE:
                return p
            if s == _FALSE:
                return _FALSE
        if len(elems) == 2:
            (p1, s1), (p2, s2) = elems
            if s1 == _FALSE and s2 == _TRUE:
                return p2
            if s1 == _TRUE and s2 == _FALSE:
                return p1
        key = (vnode, elems)
        got = self._dec_table.get(key)
        if got is not None:
            return got
        nid = self._alloc("dec", vnode, None, None, elems)
        self._dec_table[key] = nid
        return nid

    def _decision(self, vnode: int, elements: Iterable[tuple[int, int]]) -> int:
        """Compress + trim + intern a decision node at ``vnode``."""
        # Compression: merge primes with equal subs (OR on the left subtree).
        by_sub: dict[int, int] = {}
        for p, s in elements:
            if p == _FALSE:
                continue
            q = by_sub.get(s)
            by_sub[s] = p if q is None else self._apply(q, p, False)
        return self._intern_decision(
            vnode, tuple(sorted((p, s) for s, p in by_sub.items()))
        )

    # ------------------------------------------------------------------
    # boolean operations
    # ------------------------------------------------------------------
    def negate(self, u: int) -> int:
        if u == _FALSE:
            return _TRUE
        if u == _TRUE:
            return _FALSE
        neg = self._neg_cache
        got = neg.get(u)
        if got is not None:
            return got
        if self.node_kind[u] == "lit":
            res = self.literal(self.node_var[u], not self.node_sign[u])  # type: ignore[arg-type]
            neg[u] = res
            neg[res] = u
            return res
        # Negation rewrites *subs* only (primes are shared untouched), so
        # walk just the sub-closure of ``u``, pruned at already-negated
        # nodes, then sweep it in creation order: children are always
        # created before the decision nodes referencing them, so every
        # sub's negation is ready when its parent is processed — no
        # recursion over SDD depth.
        node_kind, node_elements = self.node_kind, self.node_elements
        seen: set[int] = set()
        stack = [u]
        while stack:
            w = stack.pop()
            if w <= _TRUE or w in seen or w in neg:
                continue
            seen.add(w)
            if node_kind[w] == "dec":
                elems = node_elements[w]
                assert elems is not None
                for _p, s in elems:
                    stack.append(s)
        todo = sorted(seen, key=self.node_stamp.__getitem__)
        for w in todo:
            if w in neg:  # interned as another node's negation mid-sweep
                continue
            if node_kind[w] == "lit":
                res = self.literal(self.node_var[w], not self.node_sign[w])  # type: ignore[arg-type]
            else:
                elems = node_elements[w]
                assert elems is not None
                res = self._decision(
                    self.node_vnode[w],
                    [(p, s ^ 1 if s <= _TRUE else neg[s]) for p, s in elems],
                )
            neg[w] = res
            neg[res] = w
        return neg[u]

    def apply(self, a: int, b: int, op: str) -> int:
        if op == "and":
            return self._apply(a, b, True)
        if op == "or":
            return self._apply(a, b, False)
        raise ValueError("op must be 'and' or 'or'")

    def _apply_shallow(self, a: int, b: int, is_and: bool) -> int | None:
        """The non-allocating fast paths of apply; ``None`` on a true miss."""
        if a == b:
            return a
        if a > b:
            a, b = b, a
        if a == _FALSE:
            return _FALSE if is_and else b
        if a == _TRUE:
            return b if is_and else _TRUE
        kind = self.node_kind
        if kind[a] == "lit" and kind[b] == "lit" and self.node_var[a] == self.node_var[b]:
            # same variable, different sign (equal handled above)
            return _FALSE if is_and else _TRUE
        cache = self._and_cache if is_and else self._or_cache
        return cache.get((a << 32) | b)

    def _apply(self, a: int, b: int, is_and: bool) -> int:
        # Apply is commutative for both ops: order the pair so constants
        # (the smallest ids) surface as ``a`` and the cache key is unique.
        res = self._apply_shallow(a, b, is_and)
        if res is not None:
            return res
        return self._drive(self._apply_gen(a, b, is_and))

    def _drive(self, gen) -> int:
        """Trampoline for the apply/decision generators.

        Generators yield ``(a, b, is_and)`` requests (only after their own
        shallow check missed); the driver runs each request as a child
        frame on an explicit stack, so the Python call stack stays O(1) no
        matter how deep the vtree is.
        """
        stack = [gen]
        send: int | None = None
        while stack:
            try:
                req = stack[-1].send(send)
            except StopIteration as st:
                stack.pop()
                send = st.value
            else:
                stack.append(self._apply_gen(*req))
                send = None
        assert send is not None
        return send

    def _apply_gen(self, a: int, b: int, is_and: bool) -> Iterator[tuple[int, int, bool]]:
        if a > b:
            a, b = b, a
        v_lo, v_hi = self.v_lo, self.v_hi
        va, vb = self.node_vnode[a], self.node_vnode[b]
        # lca walk: climb from va until the interval covers vb's.
        v = va
        lob, hib = v_lo[vb], v_hi[vb]
        parent = self.v_parent
        while not (v_lo[v] <= lob and hib <= v_hi[v]):
            p = parent[v]
            assert p is not None, "lca walked past the root"
            v = p
        ea = self._elements_at(a, v)
        eb = self._elements_at(b, v)
        shallow = self._apply_shallow
        out: list[tuple[int, int]] = []
        for pa, sa in ea:
            for pb, sb in eb:
                p = shallow(pa, pb, True)
                if p is None:
                    p = yield (pa, pb, True)
                if p == _FALSE:
                    continue
                s = shallow(sa, sb, is_and)
                if s is None:
                    s = yield (sa, sb, is_and)
                out.append((p, s))
        res = yield from self._decision_gen(v, out)
        cache = self._and_cache if is_and else self._or_cache
        cache[(a << 32) | b] = res
        return res

    def _decision_gen(
        self, vnode: int, elements: Iterable[tuple[int, int]]
    ) -> Iterator[tuple[int, int, bool]]:
        """Generator twin of :meth:`_decision` for use inside the trampoline
        (compression ORs on primes become yielded requests, not recursion)."""
        by_sub: dict[int, int] = {}
        shallow = self._apply_shallow
        for p, s in elements:
            if p == _FALSE:
                continue
            q = by_sub.get(s)
            if q is None:
                by_sub[s] = p
            else:
                r = shallow(q, p, False)
                if r is None:
                    r = yield (q, p, False)
                by_sub[s] = r
        return self._intern_decision(
            vnode, tuple(sorted((p, s) for s, p in by_sub.items()))
        )

    def _elements_at(self, u: int, v: int) -> tuple[tuple[int, int], ...]:
        """View ``u`` as a decision element list normalized for internal
        vtree node ``v`` (``u``'s vtree node must be within ``v``'s
        subtree)."""
        vu = self.node_vnode[u]
        if vu == v and self.node_kind[u] == "dec":
            elems = self.node_elements[u]
            assert elems is not None
            return elems
        v_lo, v_hi = self.v_lo, self.v_hi
        lo, hi = v_lo[vu], v_hi[vu]
        vl, vr = self.v_left[v], self.v_right[v]
        assert vl is not None and vr is not None
        if v_lo[vl] <= lo and hi <= v_hi[vl]:
            return ((u, _TRUE), (self.negate(u), _FALSE))
        if v_lo[vr] <= lo and hi <= v_hi[vr]:
            return ((_TRUE, u),)
        raise AssertionError("node does not fit under the requested vtree node")

    def _reduce(
        self, items: list[int], is_and: bool, *, node_budget: int | None = None
    ) -> int:
        """Balanced pairwise fold — on k operands whose supports form a
        chain this costs O(total size · log k) instead of the O(total
        size · k) a left-to-right fold pays (each sequential step
        re-applies across the whole accumulated support).

        ``node_budget`` keeps :meth:`compile_circuit`'s budget binding even
        when chain absorption folds a whole circuit into one reduce call:
        it is re-checked before every pairwise apply (matching the old
        per-gate granularity)."""
        if not items:
            return _TRUE if is_and else _FALSE
        ap = self._apply
        while len(items) > 1:
            nxt = []
            for i in range(0, len(items) - 1, 2):
                if node_budget is not None and self.live_node_count > node_budget:
                    raise CompilationBudgetExceeded(
                        f"node budget {node_budget} exceeded "
                        f"({self.live_node_count} nodes)"
                    )
                nxt.append(ap(items[i], items[i + 1], is_and))
            if len(items) % 2:
                nxt.append(items[-1])
            items = nxt
        return items[0]

    def conjoin(self, *nodes: int) -> int:
        return self._reduce(list(nodes), True)

    def disjoin(self, *nodes: int) -> int:
        return self._reduce(list(nodes), False)

    def condition(self, u: int, assignment: Mapping[str, int]) -> int:
        """Condition on a partial assignment (literal substitution)."""
        out = u
        for var, val in assignment.items():
            out = self._apply(out, self.literal(var, bool(val)), True)
            out = self._forget_var(out, var)
        return out

    def _forget_var(self, u: int, var: str) -> int:
        """Existentially quantify one variable."""
        pos = self._restrict(u, var, True)
        neg = self._restrict(u, var, False)
        return self._apply(pos, neg, False)

    def _restrict(self, u: int, var: str, value: bool) -> int:
        if u <= _TRUE:
            return u
        leaf = self.leaf_of_var[var]
        contains = self._contains
        node_kind, node_elements = self.node_kind, self.node_elements
        # Walk only the affected cone: descend exactly where the vtree
        # node contains the restricted leaf — everything outside maps to
        # itself and its descendants are never visited.
        seen: set[int] = set()
        stack = [u]
        while stack:
            w = stack.pop()
            if w <= _TRUE or w in seen:
                continue
            seen.add(w)
            if node_kind[w] == "dec" and contains(self.node_vnode[w], leaf):
                elems = node_elements[w]
                assert elems is not None
                for p, s in elems:
                    stack.append(p)
                    stack.append(s)
        out: dict[int, int] = {}
        for w in sorted(seen, key=self.node_stamp.__getitem__):
            if node_kind[w] == "lit":
                if self.node_var[w] == var:
                    out[w] = _TRUE if (self.node_sign[w] == value) else _FALSE
                else:
                    out[w] = w
            else:
                vn = self.node_vnode[w]
                if not contains(vn, leaf):
                    out[w] = w
                else:
                    elems = node_elements[w]
                    assert elems is not None
                    out[w] = self._decision(
                        vn,
                        [
                            (p if p <= _TRUE else out[p], s if s <= _TRUE else out[s])
                            for p, s in elems
                        ],
                    )
        return out[u]

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def compile_circuit(self, circuit: Circuit, *, node_budget: int | None = None) -> int:
        """Bottom-up apply compilation of ``circuit``.

        Chains of same-kind AND/OR gates whose intermediate results feed
        only the next link are flattened and folded balanced: the
        gate-by-gate fold on an n-gate OR chain re-applies across the
        accumulated support every step (Θ(n²) manager nodes on
        ``chain_and_or``); the balanced fold costs O(n log n).

        ``node_budget`` caps the number of live manager nodes; exceeding it
        raises :class:`CompilationBudgetExceeded` (checked between gates).
        """
        if circuit.output is None:
            raise ValueError("circuit has no output")
        gates = circuit.gates
        order = circuit.topological_order()
        # A gate is absorbed into its consumer when it is a same-kind
        # AND/OR gate feeding exactly one gate — its operands are folded
        # at the consumer and its own intermediate SDD is never built.
        fanout = [0] * len(gates)
        consumer_kind: list[str | None] = [None] * len(gates)
        for gate in gates:
            for i in gate.inputs:
                fanout[i] += 1
                consumer_kind[i] = gate.kind
        fanout[circuit.output] += 1
        absorbed = [
            gate.kind in (AND, OR)
            and fanout[gid] == 1
            and consumer_kind[gid] == gate.kind
            for gid, gate in enumerate(gates)
        ]
        absorbed[circuit.output] = False
        vals: dict[int, int] = {}
        for gid in order:
            if absorbed[gid]:
                continue
            if node_budget is not None and self.live_node_count > node_budget:
                raise CompilationBudgetExceeded(
                    f"node budget {node_budget} exceeded ({self.live_node_count} nodes)"
                )
            gate = gates[gid]
            if gate.kind == VAR:
                vals[gid] = self.literal(gate.payload, True)  # type: ignore[arg-type]
            elif gate.kind == CONST:
                vals[gid] = _TRUE if gate.payload else _FALSE
            elif gate.kind == NOT:
                vals[gid] = self.negate(vals[gate.inputs[0]])
            else:
                ops: list[int] = []
                stack = list(reversed(gate.inputs))
                while stack:
                    i = stack.pop()
                    if absorbed[i]:
                        stack.extend(reversed(gates[i].inputs))
                    else:
                        ops.append(vals[i])
                vals[gid] = self._reduce(
                    ops, gate.kind == AND, node_budget=node_budget
                )
        return vals[circuit.output]

    def compile_nnf(self, root: NNF) -> int:
        memo: dict[int, int] = {}
        for node in root.nodes():
            if node.kind == "true":
                val = _TRUE
            elif node.kind == "false":
                val = _FALSE
            elif node.kind == "lit":
                val = self.literal(node.var, bool(node.sign))  # type: ignore[arg-type]
            elif node.kind == "and":
                val = self.conjoin(*[memo[id(c)] for c in node.children])
            else:
                val = self.disjoin(*[memo[id(c)] for c in node.children])
            memo[id(node)] = val
        return memo[id(root)]

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------
    def pin(self, root: int) -> int:
        """Protect ``root`` (and everything reachable from it) from
        :meth:`gc`.  Pins are counted: ``pin`` twice, ``release`` twice.
        Returns ``root`` for call-chaining convenience.

        Pin a root *before* any collection can run: node ids are bare
        ints whose slots are recycled after collection, so holding an
        unpinned id across a :meth:`gc` is undefined — this guard raises
        only while the slot is still free; once a later allocation reuses
        it, the id silently names a different node.  (The managed paths —
        ``QueryEngine``, the apply backend — always pin at compile time.)
        """
        if root > _TRUE:
            if self.node_kind[root] == "free":
                raise ValueError(f"cannot pin collected node {root}")
            self._pins[root] = self._pins.get(root, 0) + 1
        return root

    def release(self, root: int) -> None:
        """Drop one pin from ``root``; at zero pins the root becomes
        collectable by the next :meth:`gc`."""
        if root <= _TRUE:
            return
        count = self._pins.get(root)
        if count is None:
            raise ValueError(f"node {root} is not pinned")
        if count == 1:
            del self._pins[root]
        else:
            self._pins[root] = count - 1

    def pinned_roots(self) -> tuple[int, ...]:
        return tuple(self._pins)

    def register_wmc_cache(self, cache) -> None:
        """Register an object with an ``evict(dead_ids)`` method (e.g. an
        :class:`~repro.sdd.wmc.SddWmcEvaluator`) to be notified when node
        ids die; held weakly."""
        self._wmc_caches.add(cache)

    def _live_set(self, extra_roots: Iterable[int] = ()) -> set[int]:
        """Constants, literals, pinned roots (and ``extra_roots``), and
        everything they reach."""
        live = {_FALSE, _TRUE}
        stack = [r for r in self._pins if r > _TRUE]
        stack.extend(self._lit_table.values())
        stack.extend(extra_roots)
        node_kind, node_elements = self.node_kind, self.node_elements
        while stack:
            w = stack.pop()
            if w in live:
                continue
            live.add(w)
            if node_kind[w] == "dec":
                elems = node_elements[w]
                assert elems is not None
                for p, s in elems:
                    if p not in live:
                        stack.append(p)
                    if s not in live:
                        stack.append(s)
        return live

    def gc(self, *, full: bool = False) -> dict[str, int]:
        """Collect every decision node unreachable from the pinned roots.

        Constants and literals are permanent.  With ``full=False`` nodes
        born in the current generation are spared (*aging*), along with
        everything they reach: a caller that has just compiled something
        and not yet pinned it loses nothing — not even older shared
        substructure — to a concurrent watermark collection.  ``full=True``
        sweeps the unpinned regardless of age.

        Freed ids go to a free list and are reused by later allocations;
        every cache keyed by node id (apply/negation caches here, the memos
        of registered WMC evaluators) is evicted in the same pass, so id
        reuse can never resurrect a stale cache entry.  *Caller-held* ids
        are not versioned, though: an unpinned id kept across a collection
        is a dangling handle — see :meth:`pin`.

        Returns the collection's counters.
        """
        node_kind = self.node_kind
        gen = self._generation
        node_gen = self.node_gen
        # Aging is transitive: a spared young node keeps everything it
        # reaches alive (young nodes act as additional GC roots), so no
        # spared node is ever left with dangling element ids.
        young = (
            ()
            if full
            else [
                w
                for w in range(2, len(node_kind))
                if node_gen[w] == gen and node_kind[w] == "dec"
            ]
        )
        live = self._live_set(young)
        dead = [
            w
            for w in range(2, len(node_kind))
            if w not in live and node_kind[w] == "dec"
        ]
        dead_set = set(dead)
        for w in dead:
            key = (self.node_vnode[w], self.node_elements[w])
            del self._dec_table[key]  # type: ignore[arg-type]
            node_kind[w] = "free"
            self.node_vnode[w] = -1
            self.node_elements[w] = None
        self._free_ids.extend(dead)
        if dead_set:
            self._evict_apply_caches(dead_set)
            for cache in tuple(self._wmc_caches):
                cache.evict(dead_set)
        self._generation += 1
        self._gc_runs += 1
        self._collected_total += len(dead)
        return {
            "collected": len(dead),
            "live": self.live_node_count,
            "free": len(self._free_ids),
            "generation": self._generation,
        }

    def maybe_gc(self) -> dict[str, int] | None:
        """Run :meth:`gc` iff the live node count exceeds the
        ``auto_gc_nodes`` watermark.  Call this only at safe points: any
        root not pinned (or younger than one generation) may be swept."""
        if self.auto_gc_nodes is not None and self.live_node_count > self.auto_gc_nodes:
            return self.gc()
        return None

    def _evict_apply_caches(self, dead: set[int]) -> None:
        mask = (1 << 32) - 1
        for cache in (self._and_cache, self._or_cache):
            stale = [
                k
                for k, v in cache.items()
                if v in dead or (k >> 32) in dead or (k & mask) in dead
            ]
            for k in stale:
                del cache[k]
        neg = self._neg_cache
        stale_neg = [k for k, v in neg.items() if k in dead or v in dead]
        for k in stale_neg:
            neg.pop(k, None)

    # ------------------------------------------------------------------
    # measures / queries
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Public counters for the manager's tables and caches.

        This is the supported way to observe sharing and collection (batch
        APIs and CLI reports use it); the underlying attributes are
        private.  ``nodes`` counts *live* nodes; ``node_capacity`` is the
        table length including freed slots awaiting reuse.
        """
        n_lit = len(self._lit_table)
        live = self.live_node_count
        return {
            "vtree_nodes": len(self.v_nodes),
            "nodes": live,
            "node_capacity": len(self.node_kind),
            "free_nodes": len(self._free_ids),
            "literal_nodes": n_lit,
            "decision_nodes": live - n_lit - 2,  # minus constants
            "pinned_roots": len(self._pins),
            "gc_runs": self._gc_runs,
            "collected_nodes": self._collected_total,
            "generation": self._generation,
            "and_cache_entries": len(self._and_cache),
            "or_cache_entries": len(self._or_cache),
            "neg_cache_entries": len(self._neg_cache),
            "apply_cache_entries": len(self._and_cache) + len(self._or_cache),
        }

    def reachable(self, u: int) -> set[int]:
        seen: set[int] = set()
        stack = [u]
        while stack:
            w = stack.pop()
            if w in seen:
                continue
            seen.add(w)
            if w > 1 and self.node_kind[w] == "dec":
                elems = self.node_elements[w]
                assert elems is not None
                for p, s in elems:
                    stack.extend((p, s))
        return seen

    def size(self, u: int) -> int:
        """Standard SDD size: total element count over decision nodes."""
        total = 0
        for w in self.reachable(u):
            if w > 1 and self.node_kind[w] == "dec":
                total += len(self.node_elements[w])  # type: ignore[arg-type]
        return total

    def node_count(self, u: int) -> int:
        return len(self.reachable(u))

    def width(self, u: int) -> int:
        """The paper's SDD width: max, over vtree nodes, of the number of
        elements (AND gates) structured there."""
        per: dict[int, int] = {}
        for w in self.reachable(u):
            if w > 1 and self.node_kind[w] == "dec":
                vn = self.node_vnode[w]
                per[vn] = per.get(vn, 0) + len(self.node_elements[w])  # type: ignore[arg-type]
        return max(per.values(), default=0)

    def count_models(self, u: int, scope: Iterable[str] | None = None) -> int:
        """Exact model count via the linear sweep of :mod:`repro.sdd.wmc`."""
        from .wmc import model_count

        return model_count(self, u, list(scope) if scope is not None else None)

    def weighted_count(self, u: int, weights: Mapping[str, tuple[float, float]]):
        """WMC with weights ``(w_neg, w_pos)``; exact with Fractions.

        Delegates to the iterative linear-time sweep of
        :mod:`repro.sdd.wmc` (no recursion, amortized gap products).
        """
        from .wmc import weighted_model_count

        return weighted_model_count(self, u, weights)

    def probability(self, u: int, prob: Mapping[str, float]) -> float:
        from .wmc import probability

        return float(probability(self, u, prob))

    def evaluate(self, u: int, assignment: Mapping[str, int]) -> bool:
        # Lazy short-circuit evaluation (only the taken branches need their
        # variables assigned), iterative: a node stays on the stack until
        # the one child value it is waiting on has been computed.
        val: dict[int, bool] = {_FALSE: False, _TRUE: True}
        stack = [u]
        while stack:
            w = stack[-1]
            if w in val:
                stack.pop()
                continue
            if self.node_kind[w] == "lit":
                b = bool(assignment[self.node_var[w]])  # type: ignore[index]
                val[w] = b if self.node_sign[w] else not b
                stack.pop()
                continue
            elems = self.node_elements[w]
            assert elems is not None
            needed: int | None = None
            res = False
            for p, s in elems:
                pv = val.get(p)
                if pv is None:
                    needed = p
                    break
                if pv:
                    sv = val.get(s)
                    if sv is None:
                        needed = s
                    else:
                        res = sv
                    break
            if needed is not None:
                stack.append(needed)
            else:
                val[w] = res
                stack.pop()
        return val[u]

    def function(self, u: int, variables: Sequence[str] | None = None) -> BooleanFunction:
        vs = tuple(sorted(variables if variables is not None else self.vtree.variables))
        return self.to_nnf(u).function(vs)

    def to_nnf(self, u: int) -> NNF:
        memo: dict[int, NNF] = {_FALSE: false_node(), _TRUE: true_node()}
        todo = [w for w in self.reachable(u) if w > _TRUE]
        todo.sort(key=self.node_stamp.__getitem__)
        for w in todo:
            if self.node_kind[w] == "lit":
                memo[w] = lit(self.node_var[w], bool(self.node_sign[w]))  # type: ignore[arg-type]
            else:
                parts = []
                elems = self.node_elements[w]
                assert elems is not None
                for p, s in elems:
                    parts.append(NNF("and", children=(memo[p], memo[s])))
                memo[w] = parts[0] if len(parts) == 1 else NNF("or", children=tuple(parts))
        return memo[u]

    def validate(self, u: int) -> None:
        """Check the SDD invariants on the reachable nodes: primes exhaust
        (SD1), are pairwise disjoint (SD2), and subs are distinct (SD3) —
        and that no reachable node has been garbage-collected."""
        for w in self.reachable(u):
            if w <= 1:
                continue
            if self.node_kind[w] == "free":
                raise AssertionError(f"reachable node {w} was collected")
            if self.node_kind[w] != "dec":
                continue
            elems = self.node_elements[w]
            assert elems is not None
            subs = [s for _, s in elems]
            if len(set(subs)) != len(subs):
                raise AssertionError("compression violated: duplicate subs")
            primes = [p for p, _ in elems]
            acc = _FALSE
            for i, p in enumerate(primes):
                for q in primes[i + 1 :]:
                    if self._apply(p, q, True) != _FALSE:
                        raise AssertionError("primes not pairwise disjoint")
                acc = self._apply(acc, p, False)
            if acc != _TRUE:
                raise AssertionError("primes do not exhaust")


def sdd_from_circuit(circuit: Circuit, vtree: Vtree | None = None) -> tuple[SddManager, int]:
    """Convenience: compile ``circuit`` into an SDD (default: balanced vtree
    over the circuit's variables)."""
    t = vtree if vtree is not None else Vtree.balanced(sorted(circuit.variables))
    mgr = SddManager(t)
    return mgr, mgr.compile_circuit(circuit)
