"""Linear-time (weighted) model counting over :class:`SddManager` node ids.

The manager's SDDs are hash-consed, so every node id is created *after* the
ids it references.  That makes a single ascending-id sweep a topological
traversal: each reachable node is visited once, each element ``(p, s)``
combines the already-computed child values, and the whole count costs
``O(size(α))`` ring operations — the linear-time WMC the knowledge
compilation literature promises for deterministic structured forms.

Two things distinguish this module from a naive recursive walk:

- **No recursion.**  Lineages of 100+ tuples compile against deep
  right-linear vtrees; a recursive traversal overflows Python's stack long
  before the instances get interesting.  The sweep here is iterative.
- **Amortized gap products.**  A sub-SDD normalized for a vtree node ``v``
  deep inside the tree says nothing about the variables outside ``v``; its
  value must be multiplied by the product of ``w_neg + w_pos`` over the
  *gap* variables.  Those products are precomputed per vtree node and the
  path products are cached, so the sweep stays linear instead of paying an
  ``O(n)`` set difference per element (as the manager's original recursive
  implementation did).

The evaluator is generic over the weight ring: ``int`` weights give exact
model counts, :class:`~fractions.Fraction` weights give exact probabilities,
``float`` weights give the fast inexact mode.  One evaluator instance can be
reused across many roots of the same manager — the memo table is keyed by
node id, so a workload of queries sharing sub-lineages pays for each shared
node once (this is what :func:`repro.queries.evaluate.evaluate_many` leans
on).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping, Sequence

__all__ = [
    "SddWmcEvaluator",
    "model_count",
    "weighted_model_count",
    "probability",
    "exact_weights",
    "float_weights",
]

_FALSE = 0
_TRUE = 1


def exact_weights(prob: Mapping[str, float]) -> dict[str, tuple[Fraction, Fraction]]:
    """Literal weights ``(1-p, p)`` as exact rationals.

    Floats are converted with ``Fraction(str(p))`` fidelity so that ``0.1``
    means the decimal ``1/10``, not its binary approximation.
    """
    out: dict[str, tuple[Fraction, Fraction]] = {}
    for v, p in prob.items():
        fp = p if isinstance(p, Fraction) else Fraction(str(p))
        out[v] = (1 - fp, fp)
    return out


def float_weights(prob: Mapping[str, float]) -> dict[str, tuple[float, float]]:
    """Literal weights ``(1-p, p)`` as floats (the fast inexact mode)."""
    return {v: (1.0 - float(p), float(p)) for v, p in prob.items()}


class SddWmcEvaluator:
    """Weighted model counting over one manager, reusable across roots.

    ``weights`` maps every vtree variable to ``(w_neg, w_pos)``.  Values may
    be ``int``, ``float`` or :class:`~fractions.Fraction`; results stay in
    the ring the weights live in (Python's numeric tower does the rest).
    """

    def __init__(self, mgr, weights: Mapping[str, tuple]):
        self.mgr = mgr
        missing = mgr.vtree.variables - set(weights)
        if missing:
            raise ValueError(f"weights missing for variables: {sorted(missing)[:5]}")
        self.weights = {v: weights[v] for v in mgr.vtree.variables}
        self._rebuild_vtree_tables()
        self._memo: dict[int, object] = {}
        # The memo is keyed by node id; register for eviction (and for
        # vtree refresh after in-place rotations) so the manager can keep
        # this cache coherent across gc and minimization.
        register = getattr(mgr, "register_wmc_cache", None)
        if register is not None:
            register(self)

    def _rebuild_vtree_tables(self) -> None:
        """Product of (w_neg + w_pos) over the variables under each vtree
        node, children before parents.  Uses the manager's current
        postorder — index order itself stops being topological once
        in-place vtree rotations have run."""
        mgr = self.mgr
        postorder = getattr(mgr, "vtree_postorder", None)
        order = postorder() if postorder is not None else range(len(mgr.v_nodes))
        prod: list = [1] * len(mgr.v_nodes)
        for i in order:
            v = mgr.v_nodes[i]
            if v.is_leaf:
                # A variable just appended by SddManager.add_variable may
                # not have weights yet (update_weights supplies them next);
                # the multiplicative identity keeps the tables usable.
                w = self.weights.get(v.var)
                prod[i] = 1 if w is None else w[0] + w[1]
            else:
                prod[i] = prod[mgr.v_left[i]] * prod[mgr.v_right[i]]
        self._subtree_prod = prod
        self._root_vnode = getattr(mgr, "v_root", len(mgr.v_nodes) - 1)
        self._gap_cache: dict[tuple[int, int], object] = {}

    def refresh_vtree(self) -> None:
        """Called by the manager after an in-place rotation changed a vtree
        node's variable scope.  Memoized node values survive — a live
        node's own vtree scope never changes across a move — but the
        per-vnode subtree products and gap paths must be rebuilt."""
        self._rebuild_vtree_tables()

    # ------------------------------------------------------------------
    def _gap(self, outer: int, inner: int):
        """Product of leaf sums under vtree node ``outer`` but not ``inner``
        (``inner`` must lie in ``outer``'s subtree)."""
        if outer == inner:
            return 1
        key = (outer, inner)
        got = self._gap_cache.get(key)
        if got is not None:
            return got
        mgr = self.mgr
        g = 1
        x = inner
        while x != outer:
            p = mgr.v_parent[x]
            assert p is not None, "inner vtree node not under outer"
            sib = mgr.v_left[p] if mgr.v_right[p] == x else mgr.v_right[p]
            g = g * self._subtree_prod[sib]
            x = p
        self._gap_cache[key] = g
        return g

    def _lift(self, u: int, target_vnode: int):
        """Value of node ``u`` normalized to ``target_vnode``'s full scope."""
        if u == _FALSE:
            return 0
        if u == _TRUE:
            return self._subtree_prod[target_vnode]
        return self._memo[u] * self._gap(target_vnode, self.mgr.node_vnode[u])

    def _sweep(self, root: int) -> None:
        """Fill the memo for every reachable, not-yet-visited node."""
        mgr = self.mgr
        memo = self._memo
        todo = [
            u for u in mgr.reachable(root) if u > _TRUE and u not in memo
        ]
        # Creation order is topological (children are interned first); ids
        # are not once gc has recycled slots, so sort by stamp.
        todo.sort(key=mgr.node_stamp.__getitem__)
        for u in todo:
            if mgr.node_kind[u] == "lit":
                w0, w1 = self.weights[mgr.node_var[u]]
                memo[u] = w1 if mgr.node_sign[u] else w0
            else:
                vn = mgr.node_vnode[u]
                vl, vr = mgr.v_left[vn], mgr.v_right[vn]
                acc = 0
                for p, s in mgr.node_elements[u]:
                    acc = acc + self._lift(p, vl) * self._lift(s, vr)
                memo[u] = acc

    def value(self, root: int):
        """WMC of ``root`` over *all* vtree variables."""
        self._sweep(root)
        return self._lift(root, self._root_vnode)

    def update_weights(self, changed: Mapping[str, tuple]) -> int:
        """Point-update literal weights, invalidating exactly the stale memo.

        A memoized node value depends only on the weights of variables
        under its own vtree node, so changing ``var`` can only stale the
        entries whose vtree node lies on the leaf(var)→root ancestor path
        — everything else keeps its value.  Returns the number of memo
        entries evicted; the next :meth:`value` call re-sweeps just those
        nodes (no recompilation anywhere).
        """
        mgr = self.mgr
        touched: set[int] = set()
        for var, w in changed.items():
            self.weights[var] = w
            x = mgr.leaf_of_var.get(var)
            while x is not None:
                touched.add(x)
                x = mgr.v_parent[x]
        evicted = 0
        if touched:
            memo = self._memo
            node_vnode = mgr.node_vnode
            stale = [u for u in memo if node_vnode[u] in touched]
            for u in stale:
                del memo[u]
            evicted = len(stale)
        # Subtree products and gap paths embed the old weights everywhere
        # above the touched leaves; rebuild both (linear, no node visits).
        self._rebuild_vtree_tables()
        return evicted

    def evict(self, dead_ids) -> None:
        """Drop memo entries for collected node ids (called by the
        manager's :meth:`~repro.sdd.manager.SddManager.gc`; the gap cache
        is keyed by vtree nodes, which never die)."""
        memo = self._memo
        for u in dead_ids:
            memo.pop(u, None)

    def stats(self) -> dict[str, int]:
        """Public counters for the evaluator's memo tables (the supported
        alternative to poking ``_memo`` directly)."""
        return {
            "memo_entries": len(self._memo),
            "gap_cache_entries": len(self._gap_cache),
        }


# ----------------------------------------------------------------------
# functional entry points
# ----------------------------------------------------------------------
def weighted_model_count(mgr, root: int, weights: Mapping[str, tuple]):
    """One-shot WMC; see :class:`SddWmcEvaluator` for the reusable form."""
    return SddWmcEvaluator(mgr, weights).value(root)


def model_count(mgr, root: int, scope: Sequence[str] | None = None) -> int:
    """Exact model count over the vtree variables (integer weights 1/1).

    ``scope`` may name extra variables outside the vtree; each contributes a
    free factor of 2, matching :meth:`SddManager.count_models`.
    """
    weights = {v: (1, 1) for v in mgr.vtree.variables}
    base = SddWmcEvaluator(mgr, weights).value(root)
    missing = len(set(scope) - mgr.vtree.variables) if scope is not None else 0
    return base << missing


def probability(mgr, root: int, prob: Mapping[str, float], *, exact: bool = False):
    """Probability of ``root`` under independent literal probabilities.

    ``exact=True`` computes in :class:`~fractions.Fraction` arithmetic and
    returns the exact rational; otherwise floats are used and a ``float``
    returned.
    """
    if exact:
        # Constant roots short-circuit to int 0/1; normalize the ring.
        return Fraction(weighted_model_count(mgr, root, exact_weights(prob)))
    return float(weighted_model_count(mgr, root, float_weights(prob)))
