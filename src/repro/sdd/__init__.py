"""Apply-based SDD manager and circuit-level compilation helpers."""

from .compile import compile_with_vtree, minimize_vtree_for_circuit, minimize_vtree_fresh
from .manager import SddManager, sdd_from_circuit
from .wmc import (
    SddWmcEvaluator,
    exact_weights,
    float_weights,
    model_count,
    probability,
    weighted_model_count,
)
