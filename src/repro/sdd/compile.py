"""Circuit-level SDD compilation helpers and vtree search.

The truth-table-based :func:`repro.core.vtree_search.minimize_vtree` needs
the full semantics of ``F``; lineages and other wide circuits don't have
that luxury.  This module searches vtrees *at the manager level*: each
candidate vtree gets a fresh :class:`SddManager`, the circuit is compiled
by `apply`, and the measured size drives a hill climb over the same local
operations (rotations/swaps).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .manager import SddManager
from ..circuits.circuit import Circuit
from ..core.vtree import Vtree
from ..core.vtree_search import neighbors

__all__ = ["compile_with_vtree", "minimize_vtree_for_circuit", "candidate_compilations"]


def compile_with_vtree(circuit: Circuit, vtree: Vtree) -> tuple[SddManager, int, int]:
    """Compile ``circuit`` under ``vtree``; returns (manager, root, size)."""
    mgr = SddManager(vtree)
    root = mgr.compile_circuit(circuit)
    return mgr, root, mgr.size(root)


def candidate_compilations(
    circuit: Circuit, rng: np.random.Generator | None = None, samples: int = 4
) -> list[tuple[Vtree, int]]:
    """Compile under the standard candidate vtrees; returns (vtree, size)
    pairs sorted by size."""
    vs = sorted(circuit.variables)
    out = []
    for t in Vtree.candidate_vtrees(vs, rng=rng, samples=samples):
        _, _, size = compile_with_vtree(circuit, t)
        out.append((t, size))
    out.sort(key=lambda p: p[1])
    return out


def minimize_vtree_for_circuit(
    circuit: Circuit,
    start: Vtree | None = None,
    max_rounds: int = 6,
    max_neighbors: int | None = None,
    rng: np.random.Generator | None = None,
) -> tuple[int, Vtree]:
    """Hill-climb the vtree for an apply-compiled circuit.

    ``max_neighbors`` caps how many neighbors are evaluated per round (a
    random sample when set) — compilation per candidate is the costly step
    for large circuits.
    """
    vs = sorted(circuit.variables)
    t = start if start is not None else Vtree.balanced(vs)
    _, _, best_size = compile_with_vtree(circuit, t)
    for _ in range(max_rounds):
        candidates = list(neighbors(t))
        if max_neighbors is not None and len(candidates) > max_neighbors:
            gen = rng if rng is not None else np.random.default_rng(0)
            idx = gen.choice(len(candidates), size=max_neighbors, replace=False)
            candidates = [candidates[int(i)] for i in idx]
        best_neighbor: tuple[int, Vtree] | None = None
        for cand in candidates:
            _, _, size = compile_with_vtree(circuit, cand)
            if best_neighbor is None or size < best_neighbor[0]:
                best_neighbor = (size, cand)
        if best_neighbor is not None and best_neighbor[0] < best_size:
            best_size, t = best_neighbor
        else:
            break
    return best_size, t
