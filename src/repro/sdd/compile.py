"""Circuit-level SDD compilation helpers and vtree search.

The truth-table-based :func:`repro.core.vtree_search.minimize_vtree` needs
the full semantics of ``F``; lineages and other wide circuits don't have
that luxury.  This module searches vtrees *at the manager level* — and
since the manager now supports in-place rotations and swaps
(:meth:`~repro.sdd.manager.SddManager.minimize`), the search compiles the
circuit **once** and transforms the live SDD incrementally instead of
recompiling it from scratch for every candidate neighbor.

:func:`minimize_vtree_fresh` preserves the old fresh-manager-per-neighbor
hill climb as the benchmark baseline (``benchmarks/bench_minimize.py``
measures the speedup of the in-manager search against it).
"""

from __future__ import annotations

import numpy as np

from .manager import SddManager
from ..circuits.circuit import Circuit
from ..core.vtree import Vtree
from ..core.vtree_search import neighbors

__all__ = [
    "compile_with_vtree",
    "minimize_vtree_for_circuit",
    "minimize_vtree_fresh",
    "candidate_compilations",
]


def compile_with_vtree(circuit: Circuit, vtree: Vtree) -> tuple[SddManager, int, int]:
    """Compile ``circuit`` under ``vtree``; returns (manager, root, size)."""
    mgr = SddManager(vtree)
    root = mgr.compile_circuit(circuit)
    return mgr, root, mgr.size(root)


def candidate_compilations(
    circuit: Circuit, rng: np.random.Generator | None = None, samples: int = 4
) -> list[tuple[Vtree, int]]:
    """Compile under the standard candidate vtrees; returns (vtree, size)
    pairs sorted by size."""
    vs = sorted(circuit.variables)
    out = []
    for t in Vtree.candidate_vtrees(vs, rng=rng, samples=samples):
        _, _, size = compile_with_vtree(circuit, t)
        out.append((t, size))
    out.sort(key=lambda p: p[1])
    return out


def minimize_vtree_for_circuit(
    circuit: Circuit,
    start: Vtree | None = None,
    max_rounds: int = 6,
    max_neighbors: int | None = None,
    rng: np.random.Generator | None = None,
) -> tuple[int, Vtree]:
    """Dynamic vtree search for an apply-compiled circuit — in-manager.

    One compilation, then up to ``max_rounds`` sifting rounds of live
    rotations/swaps inside the manager; each round's cost is local moves
    over the existing SDD, not ``|neighbors|`` full recompilations.

    ``max_neighbors`` caps how many vtree nodes are sifted per round (a
    random subsample when set).  One ``rng`` threads through *all* rounds
    — successive rounds draw successive samples, never the same one.
    Returns ``(best size, best vtree)`` like the fresh-manager search it
    replaces (:func:`minimize_vtree_fresh`).
    """
    vs = sorted(map(str, circuit.variables))
    t = start if start is not None else Vtree.balanced(vs)
    mgr = SddManager(t)
    root = mgr.pin(mgr.compile_circuit(circuit))
    gen = rng if rng is not None else np.random.default_rng(0)
    internal = [i for i in range(len(mgr.v_nodes)) if mgr.v_left[i] is not None]
    best = mgr.size(root)
    for _ in range(max_rounds):
        order = None
        if max_neighbors is not None and len(internal) > max_neighbors:
            idx = gen.choice(len(internal), size=max_neighbors, replace=False)
            order = [internal[int(i)] for i in idx]
        mapping = mgr.minimize(rounds=1, node_order=order)
        root = mapping.get(root, root)
        size = mgr.size(root)
        if size >= best:
            break
        best = size
    return best, mgr.vtree


def minimize_vtree_fresh(
    circuit: Circuit,
    start: Vtree | None = None,
    max_rounds: int = 6,
    max_neighbors: int | None = None,
    rng: np.random.Generator | None = None,
) -> tuple[int, Vtree]:
    """The recompile-per-neighbor hill climb (pre-dynamic-minimization).

    Every candidate neighbor costs a full compilation in a fresh
    :class:`SddManager` — O(|neighbors| × compile) per round.  Kept as the
    baseline that ``benchmarks/bench_minimize.py`` measures the in-manager
    search against; new code should use :func:`minimize_vtree_for_circuit`.

    ``max_neighbors`` samples the neighborhood from ``rng``.  The
    generator is created once and threads through every round (recreating
    it per round — the old bug — made every round sample the *same*
    neighbor indices).
    """
    vs = sorted(circuit.variables)
    t = start if start is not None else Vtree.balanced(vs)
    _, _, best_size = compile_with_vtree(circuit, t)
    gen = rng if rng is not None else np.random.default_rng(0)
    for _ in range(max_rounds):
        candidates = list(neighbors(t))
        if max_neighbors is not None and len(candidates) > max_neighbors:
            idx = gen.choice(len(candidates), size=max_neighbors, replace=False)
            candidates = [candidates[int(i)] for i in idx]
        best_neighbor: tuple[int, Vtree] | None = None
        for cand in candidates:
            _, _, size = compile_with_vtree(circuit, cand)
            if best_neighbor is None or size < best_neighbor[0]:
                best_neighbor = (size, cand)
        if best_neighbor is not None and best_neighbor[0] < best_size:
            best_size, t = best_neighbor
        else:
            break
    return best_size, t
