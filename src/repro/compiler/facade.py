"""The unified compilation front door.

One entry point for every realization of the Result-1 pipeline::

    from repro.compiler import Compiler

    compiled = Compiler(backend="apply", strategy="best-of").compile(circuit)
    compiled.size, compiled.width
    compiled.model_count()
    compiled.probability({"x1": 0.3, ...}, exact=True)
    compiled.evaluate({"x1": 1, ...})
    compiled.stats()

Backends and strategies are looked up in the registries of
:mod:`repro.compiler.backends` and :mod:`repro.compiler.strategies`; both
accept instances as well as registered names, so custom realizations plug in
without touching the facade.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..circuits.circuit import Circuit
from ..core.vtree import Vtree
from .backends import Compiled, CompilationBackend, RaceBackend, get_backend
from .strategies import VtreeChoice, VtreeStrategy, get_strategy

__all__ = ["Compiler", "compile_with"]


class Compiler:
    """A configured (backend, vtree-strategy) pair.

    ``backend`` and ``strategy`` may be registry names (``"canonical"``,
    ``"apply"``, ``"obdd"``, ``"ddnnf"``, ``"race"`` / ``"lemma1"``,
    ``"natural"``, ``"balanced"``, ``"best-of"``, ``"dynamic"``, ...) or
    objects implementing the respective protocols.  A *sequence* of backend
    names is the racing mode: ``Compiler(backend=("apply", "ddnnf"))``
    compiles every named backend on the same vtree choice and keeps the
    best result (see :class:`~repro.compiler.backends.RaceBackend`) —
    ``best-of`` then races vtrees while the backend race races
    representations.

    ``minimize`` runs in-place dynamic vtree minimization on every
    compilation result after the backend finishes: ``True`` with the
    defaults, or a mapping of keyword options forwarded to the result's
    ``minimize()`` (``budget``/``max_growth``/``rounds``).  Only backends
    whose results support in-place minimization (``apply``) accept it —
    anything else raises at construction-time use.  Prefer the
    ``"dynamic"`` *strategy* when the minimized vtree should come out of
    the strategy registry; ``minimize=`` is the post-compile hook for an
    explicitly chosen vtree or strategy.

    Note: the ``best-of`` strategy trial-compiles with the apply backend's
    manager and only ``backend="apply"`` can reuse its winning trial; other
    backends get the winning vtree but pay the race — see
    :class:`~repro.compiler.strategies.BestOfStrategy`.
    """

    def __init__(
        self,
        backend: str | CompilationBackend | Sequence[str] = "apply",
        strategy: str | VtreeStrategy = "lemma1",
        *,
        minimize: bool | Mapping[str, object] = False,
    ):
        if isinstance(backend, str):
            self.backend: CompilationBackend = get_backend(backend)
        elif isinstance(backend, (list, tuple)):
            # Racing mode: a sequence of backend names races them all.
            self.backend = RaceBackend(tuple(backend))
        else:
            self.backend = backend
        self.strategy = get_strategy(strategy) if isinstance(strategy, str) else strategy
        if minimize is False or minimize is None:
            self.minimize_options: dict[str, object] | None = None
        elif minimize is True:
            self.minimize_options = {}
        else:
            self.minimize_options = dict(minimize)

    def compile(self, circuit: Circuit, *, vtree: Vtree | None = None) -> Compiled:
        """Compile ``circuit``; an explicit ``vtree`` bypasses the strategy.

        The vtree must cover the circuit's variables (it may cover more —
        extra variables are marginalized out of counts and probabilities).
        """
        if vtree is not None:
            if not set(map(str, circuit.variables)) <= vtree.variables:
                raise ValueError("vtree does not cover the circuit's variables")
            choice = VtreeChoice(vtree, strategy="")
        else:
            choice = self.strategy(circuit)
        compiled = self.backend.compile(
            circuit,
            choice.vtree,
            decomposition_width=choice.decomposition_width,
            strategy=choice.strategy,
            trial=choice.trial,
        )
        if self.minimize_options is not None:
            minimize = getattr(compiled, "minimize", None)
            if minimize is None:
                raise ValueError(
                    f"backend {self.backend.name!r} does not support in-place "
                    "vtree minimization (its results are not manager-backed); "
                    "use backend='apply'"
                )
            minimize(**self.minimize_options)
        return compiled

    @staticmethod
    def load(path, *, use_mmap: bool = True) -> Compiled:
        """Load a ``compiled.save(path)`` artifact without recompiling.

        Returns a :class:`~repro.artifact.store.FrozenCompiled`: the same
        uniform accessors over the mmap-ed node tables, float
        probabilities bit-identical to the result that was saved.  Raises
        :class:`~repro.artifact.encoding.ArtifactError` on corrupt,
        truncated, or version-mismatched files.
        """
        from ..artifact.format import load_compiled

        return load_compiled(path, use_mmap=use_mmap)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        sname = getattr(self.strategy, "name", type(self.strategy).__name__)
        return f"Compiler(backend={self.backend.name!r}, strategy={sname!r})"


def compile_with(
    circuit: Circuit,
    *,
    backend: str | CompilationBackend | Sequence[str] = "apply",
    strategy: str | VtreeStrategy = "lemma1",
    vtree: Vtree | None = None,
    minimize: bool | Mapping[str, object] = False,
) -> Compiled:
    """One-shot convenience: ``Compiler(backend, strategy).compile(circuit)``."""
    return Compiler(backend, strategy, minimize=minimize).compile(circuit, vtree=vtree)
