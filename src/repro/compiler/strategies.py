"""Vtree strategies behind the :class:`repro.compiler.Compiler` facade.

A strategy turns a circuit into a :class:`VtreeChoice` — a vtree plus the
provenance the facade reports (decomposition width when a tree decomposition
was involved, the strategy name, and optionally a pre-compiled trial result
the apply backend can reuse).

Registered strategies:

- ``lemma1`` — the paper's Lemma-1 extraction (circuit → nice tree
  decomposition → vtree); picks the exact treewidth DP for tiny circuits and
  the min-degree/min-fill heuristics otherwise.  ``lemma1-exact`` and
  ``lemma1-heuristic`` pin the choice.
- ``natural`` — right-linear vtree over the numerically-sorted variable
  order (``x2`` before ``x10``).  For chain/ladder-shaped circuits this is
  the order the gates are wired in, and the apply fold stays tiny.
- ``balanced`` — balanced vtree over the same natural order.
- ``best-of`` — races a list of candidate strategies, trial-compiling each
  with an :class:`~repro.sdd.manager.SddManager` under a node budget and
  keeping the smallest decomposition.  A candidate that compiles to linear
  size ends the race early, and a candidate that blows up (e.g. a scrambled
  Lemma-1 leaf order on ``chain(100)``) is abandoned at its budget — see
  :class:`BestOfStrategy` for the exact rules.
- ``dynamic`` — seeds with another strategy (``best-of`` by default), then
  runs in-place dynamic vtree minimization
  (:meth:`~repro.sdd.manager.SddManager.minimize`) on the live SDD: the
  returned vtree is the *minimized* one and the minimized trial travels to
  the apply backend, so the search cost is local moves, never a recompile.

Racing is two-dimensional since the ``ddnnf`` backend landed: ``best-of``
races *vtrees* under one backend, while the ``race`` backend
(:class:`~repro.compiler.backends.RaceBackend`, or the facade's
``Compiler(backend=("apply", "ddnnf"))`` sugar) races *backends* under one
vtree choice.  They compose: ``Compiler(backend=("apply", "ddnnf"),
strategy="best-of")`` hands the winning vtree (and its apply trial, which
only the apply candidate may consume) to the backend race.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..circuits.circuit import Circuit
from ..core.vtree import Vtree
from ..sdd.manager import CompilationBudgetExceeded, SddManager

__all__ = [
    "VtreeChoice",
    "VtreeStrategy",
    "Lemma1Strategy",
    "NaturalStrategy",
    "BalancedStrategy",
    "BestOfStrategy",
    "DynamicStrategy",
    "natural_variable_order",
    "register_strategy",
    "get_strategy",
    "available_strategies",
]


@dataclass
class VtreeChoice:
    """A strategy's output: the vtree plus provenance.

    ``trial`` optionally carries ``(manager, root)`` from a strategy that
    already compiled the circuit while deciding (the ``best-of`` race); the
    apply backend reuses it instead of compiling again.
    """

    vtree: Vtree
    decomposition_width: int | None = None
    strategy: str = ""
    trial: tuple[SddManager, int] | None = field(default=None, repr=False)


# Callable protocol: a strategy maps a circuit to a VtreeChoice.
VtreeStrategy = Callable[[Circuit], VtreeChoice]

_SPLIT_DIGITS = re.compile(r"(\d+)")


def _natural_key(name: str) -> tuple:
    """Sort key: numeric components first (in order of appearance), then the
    name itself as a tiebreaker.

    Number-first ordering interleaves same-index variables from different
    groups — ``a1, b1, a2, b2, ...`` for :func:`~repro.circuits.build.ladder`
    — which is the order the gates are wired in.  A plain alphanumeric sort
    (``a1..a50, b1..b50``) separates the ladder's rails and makes the
    right-linear compilation exponential.
    """
    numbers = tuple(int(t) for t in _SPLIT_DIGITS.findall(name))
    return (numbers, name)


def natural_variable_order(circuit: Circuit) -> list[str]:
    """The circuit's variables in numeric-aware, number-first sorted order
    (``x2`` before ``x10``; ``a1, b1`` before ``a2``) — for generator-built
    families this recovers the wiring order."""
    return sorted(map(str, circuit.variables), key=_natural_key)


def _require_variables(circuit: Circuit) -> None:
    if not circuit.variables:
        raise ValueError("circuit has no variables; constants need no vtree")


class Lemma1Strategy:
    """The paper's pipeline: tree decomposition → nice form → vtree.

    ``exact=None`` auto-selects (exact DP for ≤ 12 gates); ``True``/``False``
    pin the exact DP or the elimination heuristics.
    """

    def __init__(self, exact: bool | None = None, prune_dummies: bool = True):
        self.exact = exact
        self.prune_dummies = prune_dummies
        suffix = {None: "", True: "-exact", False: "-heuristic"}[exact]
        self.name = f"lemma1{suffix}"

    def __call__(self, circuit: Circuit) -> VtreeChoice:
        from ..core.pipeline import vtree_from_circuit

        vtree, width = vtree_from_circuit(
            circuit, exact=self.exact, prune_dummies=self.prune_dummies
        )
        return VtreeChoice(vtree, decomposition_width=width, strategy=self.name)


class NaturalStrategy:
    """Right-linear vtree over the natural variable order."""

    name = "natural"

    def __call__(self, circuit: Circuit) -> VtreeChoice:
        _require_variables(circuit)
        return VtreeChoice(
            Vtree.right_linear(natural_variable_order(circuit)), strategy=self.name
        )


class BalancedStrategy:
    """Balanced vtree over the natural variable order."""

    name = "balanced"

    def __call__(self, circuit: Circuit) -> VtreeChoice:
        _require_variables(circuit)
        return VtreeChoice(
            Vtree.balanced(natural_variable_order(circuit)), strategy=self.name
        )


class BestOfStrategy:
    """Race candidate strategies; keep the smallest compiled decomposition.

    Candidates are trial-compiled in order on a fresh
    :class:`~repro.sdd.manager.SddManager`.  Two mechanisms keep the race
    cheap:

    - **Early exit.**  Result 1's regime is *linear* SDD size for bounded
      decomposition width, so once a candidate compiles to at most
      ``early_exit × n_vars`` elements the remaining candidates can only
      shave a constant — they are skipped outright.  This is what makes
      ``best-of`` ~100× faster than plain heuristic ``lemma1`` on
      ``chain(100)``: the natural order wins immediately and the scrambled
      Lemma-1 fold never starts.
    - **Node budget.**  Until a candidate succeeds, trials run under an
      absolute budget of ``max(floor, initial_per_var × n_vars)`` manager
      nodes, so one pathological candidate cannot hang the race; after the
      first success the budget tightens to ``max(slack × best_nodes,
      floor)``.  A candidate over budget is abandoned, not failed.  If
      *every* candidate aborts, the first candidate is recompiled without a
      budget (the race then costs what that strategy alone would have).

    Ranking is by compiled SDD size, then manager node count.  The winner's
    manager travels in ``VtreeChoice.trial`` so the apply backend never
    compiles twice.

    The race's cost model *is* the apply backend: trials are
    :class:`~repro.sdd.manager.SddManager` folds, and only that backend can
    reuse the winning trial.  With ``backend="canonical"`` or
    ``backend="obdd"`` the winning *vtree* still transfers (SDD size under
    a vtree is a reasonable proxy for either), but the trial work is paid
    and discarded — prefer a direct strategy (``natural``, ``lemma1``)
    there unless the vtree choice genuinely matters more than the race's
    overhead.
    """

    def __init__(
        self,
        candidates: Sequence[str] = ("natural", "balanced", "lemma1-heuristic"),
        *,
        slack: int = 2,
        floor: int = 4096,
        early_exit: int = 8,
        initial_per_var: int = 512,
    ):
        self.candidates = tuple(candidates)
        self.slack = slack
        self.floor = floor
        self.early_exit = early_exit
        self.initial_per_var = initial_per_var
        self.name = "best-of"

    def __call__(self, circuit: Circuit) -> VtreeChoice:
        _require_variables(circuit)
        n_vars = len(circuit.variables)
        linear_size = self.early_exit * n_vars
        best: VtreeChoice | None = None
        best_rank: tuple[int, int] | None = None
        budget = max(self.floor, self.initial_per_var * n_vars)
        for cand_name in self.candidates:
            # Trial ownership: exactly one trial manager survives the race
            # — the current best's, carried in ``best.trial``.  Losers (a
            # candidate that ranks worse, or a dethroned previous best) are
            # dropped before the next trial starts, so the race never holds
            # more than two managers at once and hands exactly one to the
            # apply backend (which pins its root and owns it from then on).
            mgr = None
            try:
                choice = get_strategy(cand_name)(circuit)
                mgr = SddManager(choice.vtree)
                root = mgr.compile_circuit(circuit, node_budget=budget)
            except CompilationBudgetExceeded:
                mgr = None  # abandoned trial: free its tables eagerly
                continue
            rank = (mgr.size(root), mgr.live_node_count)
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best = VtreeChoice(  # dethrones (and frees) the old best
                    choice.vtree,
                    decomposition_width=choice.decomposition_width,
                    strategy=f"{self.name}:{cand_name}",
                    trial=(mgr, root),
                )
            mgr = None  # loser (or now owned by best.trial): drop our ref
            if best_rank[0] <= linear_size:
                break
            budget = max(self.slack * best_rank[1], self.floor)
        if best is None:
            # Every candidate blew the initial budget; fall back to the
            # first one without a budget so the race always returns.
            choice = get_strategy(self.candidates[0])(circuit)
            mgr = SddManager(choice.vtree)
            root = mgr.compile_circuit(circuit)
            best = VtreeChoice(
                choice.vtree,
                decomposition_width=choice.decomposition_width,
                strategy=f"{self.name}:{self.candidates[0]}",
                trial=(mgr, root),
            )
        return best


class DynamicStrategy:
    """Seed a compilation with another strategy, then minimize in place.

    The seed (``best-of`` by default) picks and trial-compiles a starting
    vtree; :meth:`~repro.sdd.manager.SddManager.minimize` then sifts the
    live SDD with in-manager rotations/swaps — no per-candidate
    recompilation.  The :class:`VtreeChoice` carries the *minimized* vtree
    and the minimized ``(manager, root)`` trial, so the apply backend pays
    nothing extra; other backends still benefit from the better vtree but
    discard the trial (same caveat as ``best-of``).
    """

    def __init__(
        self,
        seed: str = "best-of",
        *,
        rounds: int = 2,
        budget: int | None = None,
        max_growth: float = 1.5,
    ):
        self.seed = seed
        self.rounds = rounds
        self.budget = budget
        self.max_growth = max_growth
        self.name = "dynamic"

    def __call__(self, circuit: Circuit) -> VtreeChoice:
        _require_variables(circuit)
        choice = get_strategy(self.seed)(circuit)
        if choice.trial is not None:
            mgr, root = choice.trial
        else:
            mgr = SddManager(choice.vtree)
            root = mgr.compile_circuit(circuit)
        # Pin across the search (its collections sweep the unpinned), then
        # hand the root back unpinned — exactly the state a best-of trial
        # is in when the apply backend takes ownership and pins it.
        mgr.pin(root)
        mapping = mgr.minimize(
            budget=self.budget, max_growth=self.max_growth, rounds=self.rounds
        )
        root = mapping.get(root, root)
        mgr.release(root)
        return VtreeChoice(
            mgr.vtree,
            decomposition_width=choice.decomposition_width,
            strategy=f"{self.name}:{choice.strategy or self.seed}",
            trial=(mgr, root),
        )


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_STRATEGIES: dict[str, Callable[[], VtreeStrategy]] = {}


def register_strategy(name: str, factory: Callable[[], VtreeStrategy]) -> None:
    """Register a strategy factory under ``name`` (overwrites silently)."""
    _STRATEGIES[name] = factory


def get_strategy(name: str) -> VtreeStrategy:
    try:
        factory = _STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown vtree strategy {name!r}; registered: {available_strategies()}"
        ) from None
    return factory()


def available_strategies() -> list[str]:
    return sorted(_STRATEGIES)


register_strategy("lemma1", Lemma1Strategy)
register_strategy("lemma1-exact", lambda: Lemma1Strategy(exact=True))
register_strategy("lemma1-heuristic", lambda: Lemma1Strategy(exact=False))
register_strategy("natural", NaturalStrategy)
register_strategy("balanced", BalancedStrategy)
register_strategy("best-of", BestOfStrategy)
register_strategy("dynamic", DynamicStrategy)
