"""Shared compiled-artifact cache plumbing: a stats-counting LRU store and
stable cache-key fingerprints.

Every caching layer in the system — the per-session compiled-query cache
inside :class:`repro.queries.engine.QueryEngine` and the cross-session
answer cache inside :class:`repro.service.QueryService` — needs the same
two ingredients:

- an **LRU mapping with public counters** (hits / misses / evictions /
  expiries, the numbers operators actually watch), and
- **stable keys**: a cache shared across sessions, processes, or restarts
  must key on *content*, never on object identity or ``hash()`` (which
  ``PYTHONHASHSEED`` randomizes per process).

:class:`LruStatsCache` is the store; :func:`fingerprint` hashes any
sequence of content strings into a short stable hex digest (keyed BLAKE2,
matching :func:`repro.queries.parallel.shard_of`'s conventions).  The
service composes its keys from :meth:`repro.queries.syntax.UCQ.normalized`
and :meth:`repro.queries.database.Database.fingerprint` — two queries that
differ only in atom order, and two databases with identical content, hit
the same entry.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from typing import Callable, Hashable, Iterator

__all__ = ["LruStatsCache", "fingerprint"]

# Private missing-key sentinel: ``None`` (and any other value) is a
# legitimate cached value, so lookups must never use it to mean "absent".
_MISSING = object()


def fingerprint(*parts: str, digest_size: int = 16) -> str:
    """A stable hex digest of ``parts`` — independent of
    ``PYTHONHASHSEED``, process, and platform, so fingerprints agree
    across service restarts and spawn workers.  Parts are length-prefixed
    before hashing, so ``("ab", "c")`` and ``("a", "bc")`` never collide.
    """
    h = hashlib.blake2b(digest_size=digest_size)
    for part in parts:
        data = part.encode()
        h.update(len(data).to_bytes(8, "big"))
        h.update(data)
    return h.hexdigest()


class LruStatsCache:
    """A bounded least-recently-used mapping with public counters.

    ``capacity=None`` never evicts (counters still run).  ``get`` counts a
    hit or a miss and refreshes recency; ``put`` inserts or refreshes and
    evicts the least-recently-used entries beyond ``capacity``.

    ``ttl`` (seconds, ``None`` = entries never expire) arms per-entry
    expiry: each ``put`` stamps a deadline, and a ``get``/``peek`` past
    the deadline drops the entry, counts it in ``expired`` (surfaced as
    ``cache_expired``), and reports a miss — the answer is stale, the
    caller must recompute.  ``clock`` injects the time source for
    deterministic tests (defaults to :func:`time.monotonic`).

    Not thread-safe by itself — callers that share one instance across
    workers hold their own lock (:class:`repro.service.QueryService`
    does).
    """

    def __init__(
        self,
        capacity: int | None = None,
        *,
        ttl: float | None = None,
        clock: Callable[[], float] | None = None,
    ):
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive (or None for unbounded)")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive (or None for no expiry)")
        self.capacity = capacity
        self.ttl = ttl
        self._clock = clock if clock is not None else time.monotonic
        # With a TTL, values are stored as (value, deadline) pairs; without
        # one they are stored raw (zero overhead on the common path).
        self._store: OrderedDict[Hashable, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expired = 0

    def _expire(self, key: Hashable, entry) -> bool:
        """True (and drops the entry) when it is past its deadline."""
        if self.ttl is None:
            return False
        _, deadline = entry
        if self._clock() < deadline:
            return False
        del self._store[key]
        self.expired += 1
        return True

    def get(self, key: Hashable, default=None):
        try:
            entry = self._store[key]
        except KeyError:
            self.misses += 1
            return default
        if self._expire(key, entry):
            self.misses += 1
            return default
        self._store.move_to_end(key)
        self.hits += 1
        return entry[0] if self.ttl is not None else entry

    def peek(self, key: Hashable, default=None):
        """Read without touching recency or the hit/miss counters (expiry
        still applies — a stale value is never handed out)."""
        entry = self._store.get(key, _MISSING)
        if entry is _MISSING:
            return default
        if self._expire(key, entry):
            return default
        return entry[0] if self.ttl is not None else entry

    def put(self, key: Hashable, value) -> None:
        if self.ttl is not None:
            # Lazy sweep: without it, an unbounded (capacity=None) cache
            # under a TTL grows forever — expired entries are only dropped
            # when *their own* key is looked up again, which for one-shot
            # keys is never.  Each put pays one pass over the live entries;
            # writes are the rare path in an answer cache.
            now = self._clock()
            stale = [k for k, (_, deadline) in self._store.items() if now >= deadline]
            for k in stale:
                del self._store[k]
            self.expired += len(stale)
            self._store[key] = (value, now + self.ttl)
        else:
            self._store[key] = value
        self._store.move_to_end(key)
        if self.capacity is not None:
            while len(self._store) > self.capacity:
                self._store.popitem(last=False)
                self.evictions += 1

    def pop(self, key: Hashable, default=None):
        entry = self._store.pop(key, _MISSING)
        if entry is _MISSING:
            return default
        if self.ttl is not None:
            value, deadline = entry
            if self._clock() >= deadline:
                # Already removed above; just account for the staleness and
                # refuse to hand the value out.
                self.expired += 1
                return default
            return value
        return entry

    def clear(self) -> None:
        self._store.clear()

    def __contains__(self, key: Hashable) -> bool:
        entry = self._store.get(key, _MISSING)
        if entry is _MISSING:
            return False
        return not self._expire(key, entry)

    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._store)

    def stats(self) -> dict[str, int]:
        """Public counters, prefixed for direct merging into service and
        engine ``stats()`` dictionaries."""
        return {
            "cache_entries": len(self._store),
            "cache_capacity": 0 if self.capacity is None else self.capacity,
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "cache_evictions": self.evictions,
            "cache_expired": self.expired,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LruStatsCache(entries={len(self._store)}, hits={self.hits}, "
            f"misses={self.misses}, evictions={self.evictions}, "
            f"expired={self.expired})"
        )
