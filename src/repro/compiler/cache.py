"""Shared compiled-artifact cache plumbing: a stats-counting LRU store and
stable cache-key fingerprints.

Every caching layer in the system — the per-session compiled-query cache
inside :class:`repro.queries.engine.QueryEngine` and the cross-session
answer cache inside :class:`repro.service.QueryService` — needs the same
two ingredients:

- an **LRU mapping with public counters** (hits / misses / evictions, the
  numbers operators actually watch), and
- **stable keys**: a cache shared across sessions, processes, or restarts
  must key on *content*, never on object identity or ``hash()`` (which
  ``PYTHONHASHSEED`` randomizes per process).

:class:`LruStatsCache` is the store; :func:`fingerprint` hashes any
sequence of content strings into a short stable hex digest (keyed BLAKE2,
matching :func:`repro.queries.parallel.shard_of`'s conventions).  The
service composes its keys from :meth:`repro.queries.syntax.UCQ.normalized`
and :meth:`repro.queries.database.Database.fingerprint` — two queries that
differ only in atom order, and two databases with identical content, hit
the same entry.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Hashable, Iterator

__all__ = ["LruStatsCache", "fingerprint"]


def fingerprint(*parts: str, digest_size: int = 16) -> str:
    """A stable hex digest of ``parts`` — independent of
    ``PYTHONHASHSEED``, process, and platform, so fingerprints agree
    across service restarts and spawn workers.  Parts are length-prefixed
    before hashing, so ``("ab", "c")`` and ``("a", "bc")`` never collide.
    """
    h = hashlib.blake2b(digest_size=digest_size)
    for part in parts:
        data = part.encode()
        h.update(len(data).to_bytes(8, "big"))
        h.update(data)
    return h.hexdigest()


class LruStatsCache:
    """A bounded least-recently-used mapping with public counters.

    ``capacity=None`` never evicts (counters still run).  ``get`` counts a
    hit or a miss and refreshes recency; ``put`` inserts or refreshes and
    evicts the least-recently-used entries beyond ``capacity``.  Not
    thread-safe by itself — callers that share one instance across workers
    hold their own lock (:class:`repro.service.QueryService` does).
    """

    def __init__(self, capacity: int | None = None):
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive (or None for unbounded)")
        self.capacity = capacity
        self._store: OrderedDict[Hashable, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable, default=None):
        try:
            value = self._store[key]
        except KeyError:
            self.misses += 1
            return default
        self._store.move_to_end(key)
        self.hits += 1
        return value

    def peek(self, key: Hashable, default=None):
        """Read without touching recency or the hit/miss counters."""
        return self._store.get(key, default)

    def put(self, key: Hashable, value) -> None:
        self._store[key] = value
        self._store.move_to_end(key)
        if self.capacity is not None:
            while len(self._store) > self.capacity:
                self._store.popitem(last=False)
                self.evictions += 1

    def pop(self, key: Hashable, default=None):
        return self._store.pop(key, default)

    def clear(self) -> None:
        self._store.clear()

    def __contains__(self, key: Hashable) -> bool:
        return key in self._store

    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._store)

    def stats(self) -> dict[str, int]:
        """Public counters, prefixed for direct merging into service and
        engine ``stats()`` dictionaries."""
        return {
            "cache_entries": len(self._store),
            "cache_capacity": 0 if self.capacity is None else self.capacity,
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "cache_evictions": self.evictions,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LruStatsCache(entries={len(self._store)}, hits={self.hits}, "
            f"misses={self.misses}, evictions={self.evictions})"
        )
