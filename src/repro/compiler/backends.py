"""Compilation backends behind the :class:`repro.compiler.Compiler` facade.

The Result-1 pipeline is one algorithm with several realizations.  Each
realization is a :class:`CompilationBackend`: it takes a circuit and a vtree
(or a :class:`~repro.compiler.strategies.VtreeChoice` carrying one) and
returns a :class:`Compiled` — a uniform handle exposing ``size``, ``width``,
``model_count()``, ``probability()``, ``evaluate()`` and ``stats()`` with no
cross-backend branching or bare asserts.

Registered backends:

- ``canonical`` — the paper-faithful ``S_{F,T}`` truth-table construction
  (Section 3.2.2); eager, limited to ~20 variables, but also yields the
  canonical deterministic structured NNF and the exact function.
- ``apply`` — bottom-up :class:`~repro.sdd.manager.SddManager` compilation
  over the same vtree; no truth table, scales to hundreds of variables.
- ``obdd`` — :class:`~repro.obdd.obdd.ObddManager` compilation under the
  vtree's left-to-right leaf order (OBDDs are the canonical SDDs of
  right-linear vtrees, so for linear vtrees this is the same object in the
  paper's sense).
- ``ddnnf`` — bag-by-bag d-DNNF compilation straight from a friendly tree
  decomposition of the circuit (:mod:`repro.dnnf`, arXiv 1811.02944 §5.1);
  no apply calls, no :class:`SddManager` — the only backend whose cost is
  a single ``O(2^{O(w)}·n)`` pass instead of an apply cascade.
- ``race`` — compiles several candidate backends on the same vtree choice
  and keeps the best result (:class:`RaceBackend`); the backend-level
  counterpart of the ``best-of`` *vtree* race.
"""

from __future__ import annotations

import time
from fractions import Fraction
from typing import Callable, Mapping, Protocol, Sequence, runtime_checkable

from ..circuits.circuit import Circuit
from ..core.vtree import Vtree
from ..obdd.obdd import ObddManager
from ..sdd.manager import SddManager
from ..sdd.wmc import exact_weights, float_weights

__all__ = [
    "Compiled",
    "CompilationBackend",
    "CanonicalBackend",
    "ApplyBackend",
    "ObddBackend",
    "DdnnfBackend",
    "DdnnfCompiled",
    "RaceBackend",
    "RacedCompiled",
    "register_backend",
    "get_backend",
    "available_backends",
]


def _fill_extra(
    prob: Mapping[str, float], extra: frozenset[str] | set[str]
) -> Mapping[str, float]:
    """Weights for vtree variables the circuit does not depend on: any pair
    summing to 1 marginalizes them out (``Fraction(1, 2)`` stays exact in
    both rings)."""
    missing = set(extra) - set(prob)
    if not missing:
        return prob
    return {**prob, **{v: Fraction(1, 2) for v in missing}}


@runtime_checkable
class Compiled(Protocol):
    """What every backend's compilation result exposes.

    Attributes
    ----------
    backend:
        Registry name of the backend that produced this result.
    circuit:
        The compiled circuit.
    vtree:
        The vtree the compilation respects.
    decomposition_width:
        Width of the tree decomposition the vtree came from, or ``None``
        when the vtree was supplied directly (no decomposition involved).
    strategy:
        Name of the vtree strategy used (``""`` for explicit vtrees).
    """

    backend: str
    circuit: Circuit
    vtree: Vtree
    decomposition_width: int | None
    strategy: str

    @property
    def size(self) -> int: ...

    @property
    def width(self) -> int: ...

    def model_count(self) -> int: ...

    def probability(
        self, prob: Mapping[str, float], *, exact: bool = False
    ) -> float | Fraction: ...

    def evaluate(self, assignment: Mapping[str, int]) -> bool: ...

    def stats(self) -> dict[str, int]: ...

    def save(self, path) -> None: ...


class CompilationBackend(Protocol):
    """A realization of the pipeline: ``compile(circuit, vtree) -> Compiled``."""

    name: str

    def compile(
        self,
        circuit: Circuit,
        vtree: Vtree,
        *,
        decomposition_width: int | None = None,
        strategy: str = "",
        trial: tuple[SddManager, int] | None = None,
        node_budget: int | None = None,
    ) -> Compiled: ...


class _CompiledBase:
    """Shared bookkeeping for the concrete ``Compiled`` implementations."""

    backend = ""

    def __init__(
        self,
        circuit: Circuit,
        vtree: Vtree,
        decomposition_width: int | None,
        strategy: str,
    ):
        self.circuit = circuit
        self.vtree = vtree
        self.decomposition_width = decomposition_width
        self.strategy = strategy

    @property
    def circuit_variables(self) -> set[str]:
        return set(map(str, self.circuit.variables))

    @property
    def extra_variables(self) -> set[str]:
        """Vtree variables beyond the circuit's own (e.g. unpruned Lemma-1
        dummies); the compiled function never depends on them."""
        return set(self.vtree.variables) - self.circuit_variables

    def save(self, path) -> None:
        """Save this result as a flat artifact file (node tables + meta +
        circuit); reload with :meth:`repro.compiler.Compiler.load` — the
        loaded handle answers every uniform accessor without recompiling,
        float probabilities bit-identical."""
        from ..artifact.format import save_compiled

        save_compiled(self, path)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<{type(self).__name__} backend={self.backend!r} "
            f"vars={len(self.circuit_variables)} size={self.size}>"
        )


class CanonicalCompiled(_CompiledBase):
    """Result of the ``S_{F,T}`` construction (plus the canonical NNF).

    Beyond the uniform interface this exposes ``function`` (the exact
    :class:`~repro.core.boolfunc.BooleanFunction`), ``sdd`` (the
    :class:`~repro.core.sdd_compile.CompiledSDD`) and ``nnf``.
    """

    backend = "canonical"

    def __init__(self, circuit, vtree, decomposition_width, strategy, *, function, sdd, nnf):
        super().__init__(circuit, vtree, decomposition_width, strategy)
        self.function = function
        self.sdd = sdd
        self.nnf = nnf
        self._manager_root: tuple[SddManager, int] | None = None

    @property
    def size(self) -> int:
        return self.sdd.size

    @property
    def width(self) -> int:
        return self.sdd.sdw

    def model_count(self) -> int:
        return self.function.count_models()

    def _reuse_as_manager_sdd(self) -> tuple[SddManager, int]:
        """Load the *already-compiled* canonical SDD into a manager (once),
        for exact WMC — the circuit itself is never recompiled."""
        if self._manager_root is None:
            mgr = SddManager(self.vtree)
            self._manager_root = (mgr, mgr.compile_nnf(self.sdd.root))
        return self._manager_root

    def probability(self, prob, *, exact: bool = False):
        if exact:
            mgr, root = self._reuse_as_manager_sdd()
            weights = exact_weights(_fill_extra(prob, self.vtree.variables))
            return Fraction(mgr.weighted_count(root, weights))
        return self.function.probability(prob)

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        return bool(self.function(dict(assignment)))

    def stats(self) -> dict[str, int]:
        out = {
            "sdd_gates": self.sdd.size,
            "nnf_gates": self.nnf.size,
            "truth_table_rows": 1 << len(self.function.variables),
        }
        if self._manager_root is not None:
            out.update(self._manager_root[0].stats())
        return out


class ApplyCompiled(_CompiledBase):
    """Result of bottom-up :class:`SddManager` compilation; also exposes
    ``manager`` and ``root`` for callers that want the raw handles.

    The result owns its root: the backend pins it in the manager, so
    callers that run :meth:`SddManager.gc` (directly or through a
    watermark) can never collect a compilation result out from under a
    live ``Compiled``.  Call :meth:`release` to hand the root back to the
    collector when done."""

    backend = "apply"

    def __init__(self, circuit, vtree, decomposition_width, strategy, *, manager, root):
        super().__init__(circuit, vtree, decomposition_width, strategy)
        self.manager = manager
        self.root = manager.pin(root)

    def release(self) -> None:
        """Unpin the root; the manager's next gc may collect it.  Using
        this ``Compiled`` after a post-release collection is undefined
        (the root id may be recycled — see :meth:`SddManager.pin`)."""
        self.manager.release(self.root)

    def minimize(
        self,
        *,
        budget: int | None = None,
        max_growth: float = 1.5,
        rounds: int = 2,
    ) -> dict[int, int]:
        """Run in-place dynamic vtree minimization
        (:meth:`SddManager.minimize`) on the compiled SDD and re-anchor
        this result — ``root`` and ``vtree`` track the transformation, so
        every uniform accessor keeps answering about the same function on
        the (now smaller) SDD.  Returns the move mapping for callers
        holding additional node ids of their own."""
        mapping = self.manager.minimize(
            budget=budget, max_growth=max_growth, rounds=rounds
        )
        self.root = mapping.get(self.root, self.root)
        self.vtree = self.manager.vtree
        return mapping

    @property
    def size(self) -> int:
        return self.manager.size(self.root)

    @property
    def width(self) -> int:
        return self.manager.width(self.root)

    def model_count(self) -> int:
        base = self.manager.count_models(self.root, self.circuit.variables)
        # The WMC sweep counts over all vtree variables; the circuit does
        # not depend on the extras, so each contributes an exact factor of 2.
        extra = self.manager.vtree.variables - self.circuit_variables
        return base >> len(extra)

    def probability(self, prob, *, exact: bool = False):
        from ..sdd.wmc import probability as sdd_probability

        full = _fill_extra(prob, self.manager.vtree.variables)
        return sdd_probability(self.manager, self.root, full, exact=exact)

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        return self.manager.evaluate(self.root, assignment)

    def stats(self) -> dict[str, int]:
        return self.manager.stats()


class ObddCompiled(_CompiledBase):
    """Result of OBDD compilation under the vtree's leaf order; exposes
    ``manager`` (an :class:`ObddManager`) and ``root``."""

    backend = "obdd"

    def __init__(self, circuit, vtree, decomposition_width, strategy, *, manager, root):
        super().__init__(circuit, vtree, decomposition_width, strategy)
        self.manager = manager
        self.root = root

    @property
    def size(self) -> int:
        return self.manager.size(self.root)

    @property
    def width(self) -> int:
        return self.manager.width(self.root)

    def model_count(self) -> int:
        base = self.manager.count_models(self.root)
        extra = set(self.manager.order) - self.circuit_variables
        return base >> len(extra)

    def probability(self, prob, *, exact: bool = False):
        full = _fill_extra(prob, set(self.manager.order))
        weights = exact_weights(full) if exact else float_weights(full)
        value = self.manager.weighted_count(self.root, weights)
        return Fraction(value) if exact else float(value)

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        # A reduced OBDD of the circuit never tests variables the circuit
        # does not depend on, so the circuit's assignment suffices.
        return self.manager.evaluate(self.root, assignment)

    def stats(self) -> dict[str, int]:
        return self.manager.stats()


class DdnnfCompiled(_CompiledBase):
    """Result of the bag-by-bag d-DNNF compilation; exposes ``dag``,
    ``root`` and ``result`` (the :class:`~repro.dnnf.builder.DdnnfResult`)
    for callers that want the raw handles.

    The ``vtree`` attribute is the strategy's choice, kept for protocol
    compliance only — this backend compiles from its *own* friendly tree
    decomposition of the circuit's gate graph, never from the vtree.
    """

    backend = "ddnnf"

    def __init__(self, circuit, vtree, decomposition_width, strategy, *, result):
        super().__init__(circuit, vtree, decomposition_width, strategy)
        self.result = result
        self.dag = result.dag
        self.root = result.root
        self._evaluator = None

    @property
    def size(self) -> int:
        return self.result.size

    @property
    def width(self) -> int:
        return self.result.width

    def model_count(self) -> int:
        from ..dnnf.wmc import model_count as dnnf_model_count

        # Smoothness makes the root mention exactly the circuit's
        # variables, so no extras shifting is needed (the scope argument
        # covers degenerate circuits whose output ignores some variable
        # gate — those still count free, matching the other backends).
        return dnnf_model_count(self.dag, self.root, self.circuit.variables)

    def probability(self, prob, *, exact: bool = False):
        from ..dnnf.wmc import probability as dnnf_probability

        # Variables beyond the root's scope marginalize out for free; no
        # _fill_extra needed.
        return dnnf_probability(self.dag, self.root, prob, exact=exact)

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        return self.dag.evaluate(self.root, assignment)

    def stats(self) -> dict[str, int]:
        return self.result.stats()


class RacedCompiled(_CompiledBase):
    """The winner of a backend race, plus the race log.

    Every uniform accessor delegates to the winning backend's ``Compiled``
    (available as ``winner``); :meth:`stats` merges the winner's counters
    with per-candidate ``race_size_*`` / ``race_us_*`` / ``race_won_*``
    entries so best-of race logs stay comparable across backends — all
    plain ints, per the public-stats convention.
    """

    backend = "race"

    def __init__(self, winner: Compiled, race_log: dict[str, int]):
        super().__init__(
            winner.circuit, winner.vtree, winner.decomposition_width, winner.strategy
        )
        self.winner = winner
        self.race_log = race_log

    @property
    def size(self) -> int:
        return self.winner.size

    @property
    def width(self) -> int:
        return self.winner.width

    def model_count(self) -> int:
        return self.winner.model_count()

    def probability(self, prob, *, exact: bool = False):
        return self.winner.probability(prob, exact=exact)

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        return self.winner.evaluate(assignment)

    def stats(self) -> dict[str, int]:
        out = self.winner.stats()
        out.update(self.race_log)
        return out


# ----------------------------------------------------------------------
# concrete backends
# ----------------------------------------------------------------------
class CanonicalBackend:
    name = "canonical"

    # node_budget is accepted for signature uniformity but not enforced:
    # the truth-table construction has no between-gates safepoint to
    # check it at (it is already limited to ~20 variables).
    def compile(self, circuit, vtree, *, decomposition_width=None, strategy="",
                trial=None, node_budget=None):
        from ..core.nnf_compile import compile_canonical_nnf
        from ..core.sdd_compile import compile_canonical_sdd

        f = circuit.function()
        return CanonicalCompiled(
            circuit,
            vtree,
            decomposition_width,
            strategy,
            function=f,
            sdd=compile_canonical_sdd(f, vtree),
            nnf=compile_canonical_nnf(f, vtree),
        )


class ApplyBackend:
    name = "apply"

    def compile(self, circuit, vtree, *, decomposition_width=None, strategy="",
                trial=None, node_budget=None):
        if trial is not None:
            # Ownership handoff: the best-of race already compiled the
            # winning candidate and its VtreeChoice carries the (manager,
            # root) pair of the single surviving trial (losers were dropped
            # eagerly by the strategy).  Reusing it here transfers
            # ownership to the ApplyCompiled — which pins the root — so
            # the race's work is never repeated and never duplicated.
            manager, root = trial
            if manager.vtree is vtree or manager.vtree == vtree:
                return ApplyCompiled(
                    circuit, vtree, decomposition_width, strategy,
                    manager=manager, root=root,
                )
        manager = SddManager(vtree)
        root = manager.compile_circuit(circuit, node_budget=node_budget)
        return ApplyCompiled(
            circuit, vtree, decomposition_width, strategy, manager=manager, root=root
        )


class ObddBackend:
    name = "obdd"

    # node_budget accepted for signature uniformity; the OBDD compiler has
    # no budget hook yet, so a race over this backend never abandons it.
    def compile(self, circuit, vtree, *, decomposition_width=None, strategy="",
                trial=None, node_budget=None):
        manager = ObddManager(vtree.leaf_order())
        root = manager.compile_circuit(circuit)
        return ObddCompiled(
            circuit, vtree, decomposition_width, strategy, manager=manager, root=root
        )


class DdnnfBackend:
    """Backend four: compile the circuit's gate graph bag by bag.

    Ignores the supplied vtree for compilation (it is recorded on the
    result for protocol compliance only) — the d-DNNF construction works
    on a friendly tree decomposition computed here with the same selection
    rule as the Lemma-1 pipeline (exact treewidth DP for tiny graphs,
    elimination heuristics otherwise).
    """

    name = "ddnnf"

    def compile(self, circuit, vtree, *, decomposition_width=None, strategy="",
                trial=None, node_budget=None):
        from ..dnnf.builder import build_ddnnf

        result = build_ddnnf(circuit, node_budget=node_budget)
        return DdnnfCompiled(
            circuit, vtree, decomposition_width, strategy, result=result
        )


class RaceBackend:
    """Race candidate *backends* on one vtree choice; keep the best result.

    The backend-level sibling of :class:`~repro.compiler.strategies.
    BestOfStrategy`: where best-of races vtrees under one backend, this
    races backends under one vtree.  The two compose —
    ``Compiler(backend=("apply", "ddnnf"), strategy="best-of")`` first
    races vtrees (apply-costed), then races the winning vtree across
    backends.

    Ranking is by compiled size, then wall-clock.  A losing ``apply``
    result releases its pinned root so the losing manager stays
    collectable.  The ``best-of`` trial, if any, is offered to the
    ``apply`` candidate only — exactly one owner, as in the vtree race's
    handoff rules.

    **Budgeted early abandon** (``abandon=True``, the default): once a
    front-runner has fully compiled, each later candidate runs under a
    node budget of ``max(budget_slack × best_size, budget_floor)`` — a
    candidate that blows far past the current best size cannot win on the
    (size, time) ranking, so it is cut off mid-compilation via the
    backends' ``node_budget`` hook instead of being run to completion.
    The slack is deliberately generous and the floor high: live node
    counts *during* apply compilation include intermediate gate results
    and literals far above the final compiled size, so a tight budget
    would abandon eventual winners.  An abandoned candidate logs
    ``race_abandoned_<cand> = 1`` (and its elapsed time) but no size.
    Backends without a budget hook (canonical, obdd) simply never
    abandon.
    """

    name = "race"

    def __init__(
        self,
        candidates: Sequence[str] = ("apply", "ddnnf"),
        *,
        abandon: bool = True,
        budget_slack: float = 4.0,
        budget_floor: int = 1024,
    ):
        if not candidates:
            raise ValueError("race needs at least one candidate backend")
        if budget_slack < 1.0:
            raise ValueError("budget_slack must be >= 1 (the winner must fit)")
        if budget_floor <= 0:
            raise ValueError("budget_floor must be positive")
        self.candidates = tuple(candidates)
        self.abandon = abandon
        self.budget_slack = budget_slack
        self.budget_floor = budget_floor
        for cand in self.candidates:
            if cand == self.name:
                raise ValueError("race cannot race itself")

    def compile(self, circuit, vtree, *, decomposition_width=None, strategy="",
                trial=None, node_budget=None):
        from ..sdd.manager import CompilationBudgetExceeded

        results: list[tuple[tuple[int, int], str, Compiled]] = []
        race_log: dict[str, int] = {}
        best_size: int | None = None
        for cand in self.candidates:
            backend = get_backend(cand)
            budget = node_budget
            if self.abandon and best_size is not None:
                cutoff = max(int(self.budget_slack * best_size), self.budget_floor)
                budget = cutoff if budget is None else min(budget, cutoff)
            start = time.perf_counter()
            try:
                compiled = backend.compile(
                    circuit,
                    vtree,
                    decomposition_width=decomposition_width,
                    strategy=strategy,
                    trial=trial if cand == "apply" else None,
                    node_budget=budget,
                )
            except CompilationBudgetExceeded:
                race_log[f"race_us_{cand}"] = int(
                    (time.perf_counter() - start) * 1e6
                )
                race_log[f"race_abandoned_{cand}"] = 1
                race_log[f"race_won_{cand}"] = 0
                continue
            elapsed_us = int((time.perf_counter() - start) * 1e6)
            race_log[f"race_size_{cand}"] = compiled.size
            race_log[f"race_us_{cand}"] = elapsed_us
            race_log[f"race_abandoned_{cand}"] = 0
            results.append(((compiled.size, elapsed_us), cand, compiled))
            if best_size is None or compiled.size < best_size:
                best_size = compiled.size
        if not results:
            # Every candidate hit the caller's node_budget (self-imposed
            # cutoffs always leave the front-runner standing): surface the
            # budget breach rather than inventing a winner.
            raise CompilationBudgetExceeded(
                f"all race candidates exceeded the node budget {node_budget}"
            )
        results.sort(key=lambda r: r[0])
        _, winner_name, winner = results[0]
        for _, cand, loser in results[1:]:
            race_log[f"race_won_{cand}"] = 0
            release = getattr(loser, "release", None)
            if release is not None:
                release()
        race_log[f"race_won_{winner_name}"] = 1
        return RacedCompiled(winner, race_log)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_BACKENDS: dict[str, Callable[[], CompilationBackend]] = {}


def register_backend(name: str, factory: Callable[[], CompilationBackend]) -> None:
    """Register a backend factory under ``name`` (overwrites silently so
    downstream code can swap implementations)."""
    _BACKENDS[name] = factory


def get_backend(name: str) -> CompilationBackend:
    try:
        factory = _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; registered: {available_backends()}"
        ) from None
    return factory()


def available_backends() -> list[str]:
    return sorted(_BACKENDS)


register_backend("canonical", CanonicalBackend)
register_backend("apply", ApplyBackend)
register_backend("obdd", ObddBackend)
register_backend("ddnnf", DdnnfBackend)
register_backend("race", RaceBackend)
