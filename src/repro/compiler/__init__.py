"""repro.compiler — the unified compilation facade (PR 2).

The Result-1 pipeline (circuit → vtree → tractable form) is one algorithm
with pluggable realizations.  This package is its single front door:

- :class:`Compiler` — ``Compiler(backend=..., strategy=...).compile(circuit)``;
- the **backend registry** (:mod:`~repro.compiler.backends`):
  ``canonical`` / ``apply`` / ``obdd`` / ``ddnnf`` (bag-by-bag d-DNNF,
  PR 6) / ``race`` (compile several backends, keep the best), each
  returning a uniform :class:`~repro.compiler.backends.Compiled`;
- the **vtree-strategy registry** (:mod:`~repro.compiler.strategies`):
  ``lemma1`` (± ``-exact`` / ``-heuristic``), ``natural``, ``balanced``,
  the racing ``best-of``, and ``dynamic`` (seed with ``best-of``, then
  minimize the live SDD in place with vtree rotations/swaps).

The legacy entry points (:func:`repro.core.pipeline.compile_circuit`,
:func:`repro.core.pipeline.compile_circuit_apply`) are deprecated shims over
this facade.
"""

from .backends import (
    ApplyBackend,
    CanonicalBackend,
    Compiled,
    CompilationBackend,
    DdnnfBackend,
    ObddBackend,
    RaceBackend,
    available_backends,
    get_backend,
    register_backend,
)
from .facade import Compiler, compile_with
from .strategies import (
    BalancedStrategy,
    BestOfStrategy,
    DynamicStrategy,
    Lemma1Strategy,
    NaturalStrategy,
    VtreeChoice,
    VtreeStrategy,
    available_strategies,
    get_strategy,
    natural_variable_order,
    register_strategy,
)

__all__ = [
    "Compiler",
    "compile_with",
    "Compiled",
    "CompilationBackend",
    "CanonicalBackend",
    "ApplyBackend",
    "ObddBackend",
    "DdnnfBackend",
    "RaceBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "VtreeChoice",
    "VtreeStrategy",
    "Lemma1Strategy",
    "NaturalStrategy",
    "BalancedStrategy",
    "BestOfStrategy",
    "DynamicStrategy",
    "register_strategy",
    "get_strategy",
    "available_strategies",
    "natural_variable_order",
]
