"""The always-on query service tier (PR 7).

A long-lived front door over the query-compilation engines: persistent
warm worker pools (:mod:`~repro.service.pool`), admission control and
per-session quotas (:mod:`~repro.service.admission`), the typed
picklable error hierarchy and deadline token
(:mod:`~repro.service.errors`), worker supervision — bounded restarts,
poison-task quarantine (:mod:`~repro.service.supervisor`) — with
deterministic fault injection for chaos testing
(:mod:`~repro.service.faults`), and the session-multiplexing service
itself with its shared content-keyed answer cache and degradation
policy (:mod:`~repro.service.service`).  Answers are bit-identical to a
serial :class:`~repro.queries.engine.QueryEngine` for every worker
count, execution mode, steal schedule, and crash/replay schedule — and
no submitted future is ever stranded: each resolves with a value or a
typed :class:`~repro.service.errors.ServiceError`.
"""

from .admission import AdmissionController, Session
from .errors import (
    AdmissionError,
    Deadline,
    DeadlineExceeded,
    PoolClosed,
    QuotaExceeded,
    ServiceError,
    ServiceSaturated,
    TaskPoisoned,
    WorkerRetired,
)
from .faults import FaultPlan
from .pool import TaskResult, WorkerPool
from .service import QueryService, ServiceAnswer
from .supervisor import RestartPolicy, Supervisor

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "Deadline",
    "DeadlineExceeded",
    "FaultPlan",
    "PoolClosed",
    "QuotaExceeded",
    "QueryService",
    "RestartPolicy",
    "ServiceAnswer",
    "ServiceError",
    "ServiceSaturated",
    "Session",
    "Supervisor",
    "TaskPoisoned",
    "TaskResult",
    "WorkerPool",
    "WorkerRetired",
]
