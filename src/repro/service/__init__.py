"""The always-on query service tier (PR 7).

A long-lived front door over the query-compilation engines: persistent
warm worker pools (:mod:`~repro.service.pool`), admission control and
per-session quotas (:mod:`~repro.service.admission`), and the
session-multiplexing service itself with its shared content-keyed answer
cache (:mod:`~repro.service.service`).  Answers are bit-identical to a
serial :class:`~repro.queries.engine.QueryEngine` for every worker
count, execution mode, and steal schedule.
"""

from .admission import (
    AdmissionController,
    AdmissionError,
    QuotaExceeded,
    ServiceSaturated,
    Session,
)
from .pool import TaskResult, WorkerPool
from .service import QueryService, ServiceAnswer

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "QuotaExceeded",
    "ServiceSaturated",
    "Session",
    "TaskResult",
    "WorkerPool",
    "QueryService",
    "ServiceAnswer",
]
