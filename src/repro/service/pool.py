"""Persistent per-shard worker pools with work-stealing.

The execution substrate of the always-on service tier: ``workers``
long-lived :class:`~repro.queries.engine.QueryEngine` sessions — in-process
(``mode="threads"``) or in spawn-started child processes kept alive on a
task queue (``mode="spawn"``) — all sharing one read-only base vtree.
Where :class:`~repro.queries.parallel.ParallelQueryEngine`'s classic spawn
path starts and tears down a process pool per batch (interpreter start,
imports, vtree transfer, cache warm-up — every batch), a
:class:`WorkerPool` pays those costs once: engines, hash-cons tables,
apply caches, WMC memos, and compiled-query caches all survive across
batches and sessions.

Scheduling
----------

Tasks enter per-shard FIFO queues (shard = the deterministic
:func:`~repro.queries.parallel.shard_of` assignment, so repeat queries
find the worker whose compiled-query cache already holds them).  Each
worker drains its own queue head-first; with ``steal=True`` an idle
worker takes from the **tail of the longest other queue** instead of
sleeping — classic work-stealing, so one skewed shard no longer bounds
batch latency by itself.

Determinism guarantee
---------------------

Stealing moves *where* a query is evaluated, never *what* it answers:
every worker compiles against the same base vtree, SDDs (and the
decomposition-driven d-DNNFs) are canonical, so probabilities and sizes
are bit-identical to serial evaluation for every worker count and every
steal schedule.  Results are reassembled by task id, so arrival order
never leaks into batch order.  What stealing *can* move is which worker's
``max_nodes`` budget a query is charged to — the same latitude the
shard-local budgets always had (it affects ``root`` liveness markers and
per-worker counters, never answers).
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from fractions import Fraction

from ..core.vtree import Vtree
from ..queries.database import ProbabilisticDatabase, UpdateDelta
from ..queries.engine import QueryEngine
from ..queries.syntax import UCQ

__all__ = ["WorkerPool", "TaskResult"]


@dataclass(frozen=True)
class TaskResult:
    """One evaluated query: the exact probability, the compiled size (at
    evaluation time), the root id in the executing worker's store (not
    dereferenceable for spawn workers), and which worker ran it."""

    probability: float | Fraction
    size: int
    root: int | None
    worker: int


@dataclass
class _Task:
    query: UCQ | None
    exact: bool
    # Control tasks carry a database delta instead of a query; they are
    # addressed to one specific worker and never stolen.
    control: UpdateDelta | None = None
    future: Future = field(default_factory=Future)


class _Scheduler:
    """Per-shard FIFO queues + the steal rule, under one condition var.

    ``get`` blocks until a task is available for ``worker`` (its own
    control queue first, then its own queue head, else — when stealing is
    on — the tail of the longest non-empty queue, smallest owner id
    breaking ties deterministically) or the pool closes (returns
    ``None``).  Control tasks live in separate per-worker queues because
    they must reach *that* worker's engine: stealing one would update a
    different worker twice and the target never."""

    def __init__(self, workers: int, steal: bool):
        self._queues: list[deque[_Task]] = [deque() for _ in range(workers)]
        self._controls: list[deque[_Task]] = [deque() for _ in range(workers)]
        self._cond = threading.Condition()
        self._steal = steal
        self._closed = False
        self.steals = 0
        self.tasks_queued = 0

    def put(self, shard: int, task: _Task) -> None:
        with self._cond:
            if self._closed:
                raise RuntimeError("pool is closed")
            self._queues[shard].append(task)
            self.tasks_queued += 1
            self._cond.notify_all()

    def put_control(self, worker: int, task: _Task) -> None:
        with self._cond:
            if self._closed:
                raise RuntimeError("pool is closed")
            self._controls[worker].append(task)
            self._cond.notify_all()

    def get(self, worker: int) -> _Task | None:
        with self._cond:
            while True:
                if self._closed:
                    return None
                control = self._controls[worker]
                if control:
                    return control.popleft()
                own = self._queues[worker]
                if own:
                    return own.popleft()
                if self._steal:
                    victim = max(
                        (w for w, q in enumerate(self._queues) if q and w != worker),
                        key=lambda w: (len(self._queues[w]), -w),
                        default=None,
                    )
                    if victim is not None:
                        self.steals += 1
                        return self._queues[victim].pop()
                self._cond.wait()

    def close(self) -> list[_Task]:
        """Close the intake and return (to fail) any still-queued tasks."""
        with self._cond:
            self._closed = True
            leftovers = [t for q in self._queues for t in q]
            leftovers.extend(t for q in self._controls for t in q)
            for q in self._queues:
                q.clear()
            for q in self._controls:
                q.clear()
            self._cond.notify_all()
            return leftovers


def _pool_worker_main(conn, payload) -> None:
    """A spawn worker's whole life (top-level so the child can import it):
    build one warm engine, then serve tasks off the pipe until the ``None``
    sentinel.  Engine state — vtree, manager, caches — persists across
    every task and batch the parent ever sends."""
    db, vtree_ops, max_nodes, backend, artifact_path = payload
    vtree = Vtree.from_postfix(vtree_ops) if vtree_ops is not None else None
    engine = QueryEngine(
        db,
        vtree=vtree,
        max_nodes=max_nodes,
        backend=backend,
        frozen=artifact_path,
    )
    try:
        while True:
            msg = conn.recv()
            if msg is None:
                break
            try:
                if msg[0] == "update":
                    # The child owns its private database copy (pickled at
                    # start); the delta replays the parent's mutation here,
                    # and the engine delta-patches its warm caches.
                    inc = engine.apply_update(msg[1])
                    conn.send(("ok", inc, 0, None, engine.stats()))
                    continue
                query, exact = msg[1], msg[2]
                p = engine.probability(query, exact=exact)
                size = engine.compiled_size(query)  # just answered: present
                conn.send(
                    ("ok", p, size, engine.cached_root(query), engine.stats())
                )
            except Exception as exc:  # surface, don't kill the worker
                conn.send(("err", repr(exc), 0, None, engine.stats()))
    except (EOFError, KeyboardInterrupt):  # parent died / interrupted
        pass
    finally:
        conn.close()


class WorkerPool:
    """``workers`` persistent warm engines behind a work-stealing scheduler.

    ``mode="threads"`` keeps each engine on an in-process worker thread;
    ``mode="spawn"`` keeps each engine in a long-lived spawn-started child
    process fed one task at a time over a pipe by a parent-side feeder
    thread (both modes share the scheduler, so stealing and determinism
    behave identically).  The pool starts lazily on the first
    :meth:`submit` and must eventually be :meth:`close`\\ d (workers are
    daemons, so a forgotten pool cannot hang interpreter exit).

    ``vtree`` is the shared base vtree (required for the SDD backend so
    every worker compiles canonically against the same decomposition;
    pass ``None`` for ``backend="ddnnf"``).  ``max_nodes`` is the
    per-worker session budget, as in
    :class:`~repro.queries.parallel.ParallelQueryEngine`.

    ``artifact`` warm-starts every worker from a compiled artifact base
    (a path written by :meth:`QueryEngine.save_artifact`, or a loaded
    :class:`~repro.artifact.store.FrozenSdd`): workers answer stored
    queries straight off the artifact with no per-worker recompilation.
    In spawn mode only the *path* is shipped in the start payload —
    every child mmaps the same file, so the OS shares the pages — which
    is why spawn pools need a file-backed artifact, not an in-memory
    freeze.  The artifact also supplies the shared base vtree when
    ``vtree`` is ``None``, so queries outside the base still compile
    canonically in every worker.
    """

    def __init__(
        self,
        db: ProbabilisticDatabase,
        *,
        workers: int,
        vtree: Vtree | None = None,
        max_nodes: int | None = None,
        mode: str = "threads",
        steal: bool = True,
        backend: str = "sdd",
        artifact=None,
    ):
        if workers <= 0:
            raise ValueError("workers must be positive")
        if mode not in ("threads", "spawn"):
            raise ValueError(f"unknown mode {mode!r} (threads or spawn)")
        if artifact is not None and backend != "sdd":
            raise ValueError("artifact warm start requires backend='sdd'")
        if vtree is None and backend == "sdd" and artifact is None:
            raise ValueError("the sdd backend needs a shared base vtree")
        self._artifact_obj = None
        self._artifact_path = None
        if artifact is not None:
            if hasattr(artifact, "root_named"):
                self._artifact_obj = artifact
                backing = getattr(artifact, "_artifact", None)
                self._artifact_path = getattr(backing, "path", None)
            else:
                import os

                self._artifact_path = os.fspath(artifact)
        if mode == "spawn" and artifact is not None and self._artifact_path is None:
            raise ValueError(
                "spawn pools ship artifact paths to their children; pass a "
                "file path (or a FrozenSdd loaded from one), not an "
                "in-memory freeze"
            )
        self.db = db
        self.workers = workers
        self.vtree = vtree
        self.max_nodes = max_nodes
        self.mode = mode
        self.steal = steal
        self.backend = backend
        self.batches_served = 0
        self.tasks_served = 0
        self.updates_applied = 0
        self._scheduler = _Scheduler(workers, steal)
        self._threads: list[threading.Thread] = []
        self._engines: dict[int, QueryEngine] = {}
        self._procs: list = []
        self._conns: list = []
        self._spawn_stats: dict[int, dict[str, int | str]] = {}
        self._started = False
        self._closed = False
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "WorkerPool":
        """Start the workers (idempotent; :meth:`submit` calls it)."""
        with self._lock:
            if self._started:
                return self
            if self._closed:
                raise RuntimeError("pool is closed")
            if self.mode == "spawn":
                self._start_spawn_workers()
            for w in range(self.workers):
                t = threading.Thread(
                    target=self._worker_loop,
                    args=(w,),
                    name=f"repro-pool-{self.mode}-{w}",
                    daemon=True,
                )
                t.start()
                self._threads.append(t)
            self._started = True
            return self

    def _start_spawn_workers(self) -> None:
        from multiprocessing import get_context

        ctx = get_context("spawn")
        vtree_ops = None if self.vtree is None else self.vtree.to_postfix()
        payload = (
            self.db,
            vtree_ops,
            self.max_nodes,
            self.backend,
            self._artifact_path,
        )
        for w in range(self.workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_pool_worker_main, args=(child_conn, payload), daemon=True
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)

    def close(self) -> None:
        """Shut the pool down: fail queued tasks, stop worker threads, and
        terminate spawn children (sentinel first, hard kill as backstop).
        Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for task in self._scheduler.close():
            task.future.set_exception(RuntimeError("pool closed"))
        for t in self._threads:
            t.join(timeout=30)
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker backstop
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            conn.close()

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # work
    # ------------------------------------------------------------------
    def submit(self, shard: int, query: UCQ, *, exact: bool = False) -> Future:
        """Enqueue one query on ``shard``'s queue; returns a
        :class:`concurrent.futures.Future` resolving to a
        :class:`TaskResult`.  Thread-safe; callable from any thread (the
        service's asyncio loop wraps the future)."""
        if not self._started:
            self.start()
        task = _Task(query=query, exact=exact)
        self._scheduler.put(shard % self.workers, task)
        return task.future

    def run_batch(
        self, items_per_shard: dict[int, list[tuple[int, UCQ]]], *, exact: bool = False
    ) -> dict[int, TaskResult]:
        """Evaluate one batch (``shard -> [(batch_index, query), ...]``)
        and block until every task resolves; returns ``batch_index ->
        TaskResult``.  Queries keep their per-shard order, so a worker
        that never steals sees exactly the serial LRU sequence of its
        shard."""
        futures: dict[int, Future] = {}
        for shard in sorted(items_per_shard):
            for idx, query in items_per_shard[shard]:
                futures[idx] = self.submit(shard, query, exact=exact)
        results = {idx: f.result() for idx, f in futures.items()}
        self.batches_served += 1
        return results

    # ------------------------------------------------------------------
    # live updates
    # ------------------------------------------------------------------
    def apply_update(self, delta: UpdateDelta) -> dict[str, int]:
        """Broadcast one database delta to every warm worker and block
        until all have applied it.

        The shared database is mutated once (version-gated; a caller like
        :class:`~repro.queries.parallel.ParallelQueryEngine` may already
        have applied it), the shared base vtree grows an inserted tuple's
        leaf the same way each worker's manager does, and one control
        message per worker rides the per-worker control queues — threads
        workers patch their live engine, spawn children replay the delta
        on their private database copy over the pipe.  Any update also
        drops the warm-start artifact for engines *not yet built*: the
        artifact answers for the instance it was compiled against, and a
        lazily constructed engine must not warm-start from a stale one
        (already-built engines keep their frozen base across weight-only
        updates — their own :meth:`QueryEngine.apply_update` refreshes
        its weights).

        Must not run concurrently with an in-flight batch on the same
        shard queues — the service tier quiesces before calling this.
        Returns the merged counter increments across workers
        (``updates_applied`` counts this call once).
        """
        delta.apply(self.db)
        if (
            delta.kind == "insert"
            and self.backend == "sdd"
            and self.vtree is not None
            and delta.var not in self.vtree.variables
        ):
            self.vtree = Vtree.internal_trusted(self.vtree, Vtree.leaf(delta.var))
        self._artifact_obj = None
        self._artifact_path = None
        self.updates_applied += 1
        merged = {
            "updates_applied": 1,
            "memo_invalidations": 0,
            "delta_patched_roots": 0,
            "update_recompiles": 0,
        }
        if not self._started:
            # No warm state anywhere: threads engines don't exist yet and
            # spawn children pickle the database at start().
            return merged
        tasks = []
        for w in range(self.workers):
            task = _Task(query=None, exact=False, control=delta)
            self._scheduler.put_control(w, task)
            tasks.append(task)
        for task in tasks:
            inc = task.future.result()
            for key in ("memo_invalidations", "delta_patched_roots", "update_recompiles"):
                merged[key] += inc.get(key, 0)
        return merged

    # ------------------------------------------------------------------
    # execution backends
    # ------------------------------------------------------------------
    def _threads_frozen(self):
        """The shared in-process :class:`FrozenSdd` base (loaded once, all
        threads workers read the same immutable tables); ``None`` without
        a warm-start artifact."""
        if self._artifact_obj is None and self._artifact_path is not None:
            with self._lock:
                if self._artifact_obj is None:
                    from ..artifact.store import FrozenSdd

                    self._artifact_obj = FrozenSdd.load(self._artifact_path)
        return self._artifact_obj

    def _worker_loop(self, w: int) -> None:
        while True:
            task = self._scheduler.get(w)
            if task is None:
                return
            try:
                result = self._execute(w, task)
            except BaseException as exc:  # noqa: BLE001 - routed to waiter
                task.future.set_exception(exc)
            else:
                if task.control is None:
                    self.tasks_served += 1
                task.future.set_result(result)

    def _execute(self, w: int, task: _Task):
        if task.control is not None:
            return self._execute_update(w, task.control)
        if self.mode == "threads":
            engine = self._engines.get(w)
            if engine is None:
                # Lazily built, used only by worker thread w — no locking
                # (the shared FrozenSdd is immutable; each engine keeps its
                # own WMC memo over it).
                engine = QueryEngine(
                    self.db,
                    vtree=self.vtree,
                    max_nodes=self.max_nodes,
                    backend=self.backend,
                    frozen=self._threads_frozen(),
                )
                self._engines[w] = engine
            p = engine.probability(task.query, exact=task.exact)
            size = engine.compiled_size(task.query)  # just answered: present
            return TaskResult(
                probability=p,
                size=size,
                root=engine.cached_root(task.query),
                worker=w,
            )
        # spawn: round-trip through worker w's pipe (feeder thread w is the
        # only user of conns[w], so no pipe-level locking either).
        conn = self._conns[w]
        conn.send(("task", task.query, task.exact))
        status, p, size, root, stats = conn.recv()
        self._spawn_stats[w] = stats
        if status != "ok":
            raise RuntimeError(f"spawn worker {w} failed: {p}")
        return TaskResult(probability=p, size=size, root=root, worker=w)

    def _execute_update(self, w: int, delta: UpdateDelta) -> dict[str, int]:
        """Apply one delta on worker ``w``; returns its counter increments."""
        if self.mode == "threads":
            engine = self._engines.get(w)
            if engine is None:
                # Never built: it will be constructed lazily against the
                # already-updated shared database — nothing to patch.
                return {"updates_applied": 0}
            return engine.apply_update(delta)
        conn = self._conns[w]
        conn.send(("update", delta))
        status, inc, _size, _root, stats = conn.recv()
        self._spawn_stats[w] = stats
        if status != "ok":
            raise RuntimeError(f"spawn worker {w} failed to apply update: {inc}")
        return inc

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def engines(self) -> dict[int, QueryEngine]:
        """The live per-worker engines (threads mode; spawn engines live
        in their child processes)."""
        return dict(self._engines)

    def worker_pids(self) -> list[int]:
        """Spawn worker process ids (stable across batches — that is the
        point); empty in threads mode."""
        return [p.pid for p in self._procs]

    def worker_stats(self) -> dict[int, dict[str, int | str]]:
        """Per-worker engine ``stats()`` — live for threads workers, the
        snapshot piggybacked on each result for spawn workers."""
        if self.mode == "threads":
            return {w: e.stats() for w, e in self._engines.items()}
        return dict(self._spawn_stats)

    def stats(self) -> dict[str, int | str]:
        """Pool-level counters (scheduler + lifecycle; per-engine counters
        live in :meth:`worker_stats`)."""
        return {
            "pool_mode": self.mode,
            "pool_workers": self.workers,
            "pool_started": int(self._started),
            "pool_batches_served": self.batches_served,
            "pool_tasks_served": self.tasks_served,
            "pool_tasks_queued": self._scheduler.tasks_queued,
            "pool_steals": self._scheduler.steals,
            "pool_updates_applied": self.updates_applied,
            "pool_artifact_warm": int(
                self._artifact_obj is not None or self._artifact_path is not None
            ),
        }

