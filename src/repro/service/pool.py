"""Persistent per-shard worker pools with work-stealing and supervision.

The execution substrate of the always-on service tier: ``workers``
long-lived :class:`~repro.queries.engine.QueryEngine` sessions — in-process
(``mode="threads"``) or in spawn-started child processes kept alive on a
task queue (``mode="spawn"``) — all sharing one read-only base vtree.
Where :class:`~repro.queries.parallel.ParallelQueryEngine`'s classic spawn
path starts and tears down a process pool per batch (interpreter start,
imports, vtree transfer, cache warm-up — every batch), a
:class:`WorkerPool` pays those costs once: engines, hash-cons tables,
apply caches, WMC memos, and compiled-query caches all survive across
batches and sessions.

Scheduling
----------

Tasks enter per-shard FIFO queues (shard = the deterministic
:func:`~repro.queries.parallel.shard_of` assignment, so repeat queries
find the worker whose compiled-query cache already holds them).  Each
worker drains its own queue head-first; with ``steal=True`` an idle
worker takes from the **tail of the longest other queue** instead of
sleeping — classic work-stealing, so one skewed shard no longer bounds
batch latency by itself.

Supervision
-----------

Spawn children die: the OOM killer, a segfault in a future native
extension, an operator's stray ``kill``.  Each worker slot's feeder
thread detects death three ways — the send fails, the pipe EOFs, or the
child stops answering (``is_alive()`` false, or silent past
``hang_timeout``) — and then recovers instead of stranding the caller's
future: the child is restarted **warm** (the start payload is rebuilt
from the pool's *current* database and vtree, so post-update restarts
are correct, and artifact-backed pools re-mmap the same file) and the
in-flight task is **replayed** (queries are pure functions of the
database, so re-execution is always safe — and SDD/d-DNNF canonicity
keeps replayed answers bit-identical).  Restarts are bounded per slot
with exponential backoff; a slot out of lives is *retired* and its
queue redistributed to survivors; a task that kills
``poison_threshold`` consecutive workers is quarantined with
:class:`~repro.service.errors.TaskPoisoned` instead of crash-looping
the pool (see :mod:`repro.service.supervisor` for the policy).  The
invariant the chaos suite enforces: **no future is ever stranded** —
every submitted task resolves with a value or a typed
:class:`~repro.service.errors.ServiceError`.

Fault injection (``fault_plan``) threads a deterministic
:class:`~repro.service.faults.FaultPlan` through both modes so the
recovery paths above are *tested*, not vestigial: the parent tags each
task message with a per-slot send ordinal and the plan's
``(worker, ordinal)`` entries fire exactly once each.

Deadlines
---------

``submit(..., timeout=...)`` gives one task a wall-clock budget starting
at submission (queue wait counts).  Enforcement is cooperative, at the
compilers' existing ``node_budget`` safepoints — per gate in the apply
pipeline, per bag in the d-DNNF builder — so a deadline never tears down
a worker mid-compile; the task fails with the typed
:class:`~repro.service.errors.DeadlineExceeded` and the worker (and its
warm caches) keep serving.  Spawn workers receive the *remaining*
seconds at send time, so parent/child clock bases never mix.

Determinism guarantee
---------------------

Stealing (and crash replay) moves *where* a query is evaluated, never
*what* it answers: every worker compiles against the same base vtree,
SDDs (and the decomposition-driven d-DNNFs) are canonical, so
probabilities and sizes are bit-identical to serial evaluation for every
worker count, every steal schedule, and every crash/replay schedule.
Results are reassembled by task id, so arrival order never leaks into
batch order.  What stealing *can* move is which worker's ``max_nodes``
budget a query is charged to — the same latitude the shard-local budgets
always had (it affects ``root`` liveness markers and per-worker
counters, never answers).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from fractions import Fraction

from ..core.vtree import Vtree
from ..queries.database import ProbabilisticDatabase, UpdateDelta
from ..queries.engine import QueryEngine
from ..queries.syntax import UCQ
from .errors import Deadline, DeadlineExceeded, PoolClosed, TaskPoisoned, WorkerRetired
from .supervisor import RestartPolicy, Supervisor

__all__ = ["WorkerPool", "TaskResult"]

# How often a feeder waiting on a spawn child's reply re-checks liveness,
# pool shutdown, and the hang clock.
_POLL_INTERVAL = 0.05


@dataclass(frozen=True)
class TaskResult:
    """One evaluated query: the exact probability, the compiled size (at
    evaluation time), the root id in the executing worker's store (not
    dereferenceable for spawn workers), and which worker ran it."""

    probability: float | Fraction
    size: int
    root: int | None
    worker: int


@dataclass
class _Task:
    query: UCQ | None
    exact: bool
    # Control tasks carry a database delta instead of a query; they are
    # addressed to one specific worker and never stolen.
    control: UpdateDelta | None = None
    future: Future = field(default_factory=Future)
    # Wall-clock budget (starts at submission; queue wait counts).
    deadline: Deadline | None = None
    # Consecutive worker deaths with this task in flight (poison detector).
    kills: int = 0


class _WorkerDied(Exception):
    """Internal: worker ``w`` died (or was declared dead) mid-task; the
    feeder's supervision loop decides restart/retire/poison."""

    def __init__(self, worker: int, reason: str):
        self.worker = worker
        self.reason = reason
        super().__init__(f"worker {worker} died: {reason}")


class _PoolClosing(Exception):
    """Internal: the pool closed while a reply was pending; the feeder
    fails the task with :class:`PoolClosed` and exits."""


class _Scheduler:
    """Per-shard FIFO queues + the steal rule, under one condition var.

    ``get`` blocks until a task is available for ``worker`` (its own
    control queue first, then its own queue head, else — when stealing is
    on — the tail of the longest non-empty queue, smallest owner id
    breaking ties deterministically) or the pool closes (returns
    ``None``).  Control tasks live in separate per-worker queues because
    they must reach *that* worker's engine: stealing one would update a
    different worker twice and the target never.

    Retired workers (restart budget exhausted) stay out of the routing:
    ``put`` re-homes their shards onto live workers deterministically
    (``shard % len(live)``), and :meth:`retire` drains whatever was
    queued so the feeder can redistribute or fail it."""

    def __init__(self, workers: int, steal: bool):
        self._queues: list[deque[_Task]] = [deque() for _ in range(workers)]
        self._controls: list[deque[_Task]] = [deque() for _ in range(workers)]
        self._cond = threading.Condition()
        self._steal = steal
        self._closed = False
        self._retired: set[int] = set()
        self.steals = 0
        self.tasks_queued = 0

    def live(self) -> list[int]:
        with self._cond:
            return self._live_locked()

    def _live_locked(self) -> list[int]:
        return [w for w in range(len(self._queues)) if w not in self._retired]

    def put(self, shard: int, task: _Task) -> None:
        with self._cond:
            if self._closed:
                raise PoolClosed()
            w = shard % len(self._queues)
            if w in self._retired:
                live = self._live_locked()
                if not live:
                    raise PoolClosed("every worker is retired")
                w = live[shard % len(live)]
            self._queues[w].append(task)
            self.tasks_queued += 1
            self._cond.notify_all()

    def put_front(self, worker: int, task: _Task) -> None:
        """Requeue at the head of ``worker``'s queue (replayed or
        redistributed work runs before anything queued after it)."""
        with self._cond:
            if self._closed:
                raise PoolClosed()
            self._queues[worker].appendleft(task)
            self._cond.notify_all()

    def put_control(self, worker: int, task: _Task) -> None:
        with self._cond:
            if self._closed:
                raise PoolClosed()
            self._controls[worker].append(task)
            self._cond.notify_all()

    def get(self, worker: int) -> _Task | None:
        with self._cond:
            while True:
                if self._closed:
                    return None
                control = self._controls[worker]
                if control:
                    return control.popleft()
                own = self._queues[worker]
                if own:
                    return own.popleft()
                if self._steal:
                    victim = max(
                        (w for w, q in enumerate(self._queues) if q and w != worker),
                        key=lambda w: (len(self._queues[w]), -w),
                        default=None,
                    )
                    if victim is not None:
                        self.steals += 1
                        return self._queues[victim].pop()
                self._cond.wait()

    def retire(self, worker: int) -> list[_Task]:
        """Take ``worker`` out of routing; returns its queued tasks (the
        caller redistributes them)."""
        with self._cond:
            self._retired.add(worker)
            leftovers = list(self._queues[worker])
            leftovers.extend(self._controls[worker])
            self._queues[worker].clear()
            self._controls[worker].clear()
            self._cond.notify_all()
            return leftovers

    def close(self) -> list[_Task]:
        """Close the intake and return (to fail) any still-queued tasks."""
        with self._cond:
            self._closed = True
            leftovers = [t for q in self._queues for t in q]
            leftovers.extend(t for q in self._controls for t in q)
            for q in self._queues:
                q.clear()
            for q in self._controls:
                q.clear()
            self._cond.notify_all()
            return leftovers


def _pool_worker_main(conn, payload) -> None:
    """A spawn worker's whole life (top-level so the child can import it):
    build one warm engine, then serve tasks off the pipe until the ``None``
    sentinel.  Engine state — vtree, manager, caches — persists across
    every task and batch the parent ever sends.

    Task messages arrive as ``("task", query, exact, ordinal, timeout)``
    where ``ordinal`` is the parent-side send counter for this worker
    slot (the fault plan's address) and ``timeout`` is the task's
    *remaining* deadline budget in seconds (``None`` = unbounded) —
    shipped as a duration so parent and child monotonic clocks never mix.
    Failures inside a task are shipped back *as exception objects* when
    they pickle (the typed hierarchy in :mod:`repro.service.errors`
    does), falling back to ``repr`` for foreign types, and never kill
    the worker."""
    db, vtree_ops, max_nodes, backend, artifact_path, worker_id, plan = payload
    vtree = Vtree.from_postfix(vtree_ops) if vtree_ops is not None else None
    engine = QueryEngine(
        db,
        vtree=vtree,
        max_nodes=max_nodes,
        backend=backend,
        frozen=artifact_path,
    )
    try:
        while True:
            msg = conn.recv()
            if msg is None:
                break
            try:
                if msg[0] == "update":
                    # The child owns its private database copy (pickled at
                    # start); the delta replays the parent's mutation here,
                    # and the engine delta-patches its warm caches.  A
                    # *restarted* child was built from the already-updated
                    # database, so the version gate makes this a no-op.
                    inc = engine.apply_update(msg[1])
                    conn.send(("ok", inc, 0, None, engine.stats()))
                    continue
                query, exact, ordinal, timeout = msg[1], msg[2], msg[3], msg[4]
                if plan is not None:
                    if plan.hang(worker_id, ordinal):
                        time.sleep(86400)  # wedged; only terminate() clears
                    if plan.kill_before(worker_id, ordinal):
                        import os

                        os._exit(1)  # crash mid-task, before any work
                    d = plan.delay(worker_id, ordinal)
                    if d:
                        time.sleep(d)
                p = engine.probability(query, exact=exact, timeout=timeout)
                size = engine.compiled_size(query)  # just answered: present
                if plan is not None:
                    if plan.kill_after(worker_id, ordinal):
                        import os

                        os._exit(1)  # crash after the work, before the reply
                    if plan.corrupt_reply(worker_id, ordinal):
                        conn.send(("garbage", ordinal))
                        continue
                    if plan.drop_reply(worker_id, ordinal):
                        continue  # computed, never replied: a wedged child
                conn.send(("ok", p, size, engine.cached_root(query), engine.stats()))
            except Exception as exc:  # surface, don't kill the worker
                try:
                    conn.send(("err", exc, 0, None, engine.stats()))
                except Exception:
                    # Unpicklable exception: Connection.send serializes
                    # before writing, so nothing went over the wire — fall
                    # back to the repr.
                    conn.send(("err", repr(exc), 0, None, engine.stats()))
    except (EOFError, KeyboardInterrupt):  # parent died / interrupted
        pass
    finally:
        conn.close()


class WorkerPool:
    """``workers`` persistent warm engines behind a work-stealing,
    supervised scheduler.

    ``mode="threads"`` keeps each engine on an in-process worker thread;
    ``mode="spawn"`` keeps each engine in a long-lived spawn-started child
    process fed one task at a time over a pipe by a parent-side feeder
    thread (both modes share the scheduler, so stealing and determinism
    behave identically).  The pool starts lazily on the first
    :meth:`submit` and must eventually be :meth:`close`\\ d (workers are
    daemons, so a forgotten pool cannot hang interpreter exit).

    ``vtree`` is the shared base vtree (required for the SDD backend so
    every worker compiles canonically against the same decomposition;
    pass ``None`` for ``backend="ddnnf"``).  ``max_nodes`` is the
    per-worker session budget, as in
    :class:`~repro.queries.parallel.ParallelQueryEngine`.

    ``artifact`` warm-starts every worker from a compiled artifact base
    (a path written by :meth:`QueryEngine.save_artifact`, or a loaded
    :class:`~repro.artifact.store.FrozenSdd`): workers answer stored
    queries straight off the artifact with no per-worker recompilation.
    In spawn mode only the *path* is shipped in the start payload —
    every child mmaps the same file, so the OS shares the pages — which
    is why spawn pools need a file-backed artifact, not an in-memory
    freeze.  The artifact also supplies the shared base vtree when
    ``vtree`` is ``None``, so queries outside the base still compile
    canonically in every worker.

    Fault tolerance knobs: ``restart`` is the
    :class:`~repro.service.supervisor.RestartPolicy` (restart caps,
    backoff, poison threshold); ``hang_timeout`` declares a spawn child
    dead after that many seconds of reply silence (``None`` — the
    default — trusts ``is_alive()`` alone, so a merely-slow compile is
    never shot); ``fault_plan`` injects a deterministic
    :class:`~repro.service.faults.FaultPlan` for chaos testing.
    """

    def __init__(
        self,
        db: ProbabilisticDatabase,
        *,
        workers: int,
        vtree: Vtree | None = None,
        max_nodes: int | None = None,
        mode: str = "threads",
        steal: bool = True,
        backend: str = "sdd",
        artifact=None,
        restart: RestartPolicy | None = None,
        hang_timeout: float | None = None,
        fault_plan=None,
    ):
        if workers <= 0:
            raise ValueError("workers must be positive")
        if mode not in ("threads", "spawn"):
            raise ValueError(f"unknown mode {mode!r} (threads or spawn)")
        if artifact is not None and backend != "sdd":
            raise ValueError("artifact warm start requires backend='sdd'")
        if vtree is None and backend == "sdd" and artifact is None:
            raise ValueError("the sdd backend needs a shared base vtree")
        self._artifact_obj = None
        self._artifact_path = None
        if artifact is not None:
            if hasattr(artifact, "root_named"):
                self._artifact_obj = artifact
                backing = getattr(artifact, "_artifact", None)
                self._artifact_path = getattr(backing, "path", None)
            else:
                import os

                self._artifact_path = os.fspath(artifact)
        if mode == "spawn" and artifact is not None and self._artifact_path is None:
            raise ValueError(
                "spawn pools ship artifact paths to their children; pass a "
                "file path (or a FrozenSdd loaded from one), not an "
                "in-memory freeze"
            )
        self.db = db
        self.workers = workers
        self.vtree = vtree
        self.max_nodes = max_nodes
        self.mode = mode
        self.steal = steal
        self.backend = backend
        self.hang_timeout = hang_timeout
        self.fault_plan = fault_plan
        self.batches_served = 0
        self.tasks_served = 0
        self.updates_applied = 0
        self.tasks_replayed = 0
        self.deadline_exceeded = 0
        self._supervisor = Supervisor(workers, restart)
        self._scheduler = _Scheduler(workers, steal)
        self._threads: list[threading.Thread] = []
        self._engines: dict[int, QueryEngine] = {}
        self._procs: list = []
        self._conns: list = []
        self._sent = [0] * workers  # per-slot task-send ordinals
        self._suspect_hung: set[int] = set()
        self._spawn_stats: dict[int, dict[str, int | str]] = {}
        self._started = False
        self._closed = False
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "WorkerPool":
        """Start the workers (idempotent; :meth:`submit` calls it)."""
        with self._lock:
            if self._started:
                return self
            if self._closed:
                raise PoolClosed()
            if self.mode == "spawn":
                self._start_spawn_workers()
            for w in range(self.workers):
                t = threading.Thread(
                    target=self._worker_loop,
                    args=(w,),
                    name=f"repro-pool-{self.mode}-{w}",
                    daemon=True,
                )
                t.start()
                self._threads.append(t)
            self._started = True
            return self

    def _spawn_payload(self, worker: int):
        """The start payload for one spawn child, built from the pool's
        *current* state — a restart after live updates ships the mutated
        database and grown vtree, so version-gated delta replays are
        no-ops and answers stay current."""
        vtree_ops = None if self.vtree is None else self.vtree.to_postfix()
        return (
            self.db,
            vtree_ops,
            self.max_nodes,
            self.backend,
            self._artifact_path,
            worker,
            self.fault_plan,
        )

    def _spawn_one(self, worker: int):
        from multiprocessing import get_context

        ctx = get_context("spawn")
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_pool_worker_main,
            args=(child_conn, self._spawn_payload(worker)),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return proc, parent_conn

    def _start_spawn_workers(self) -> None:
        for w in range(self.workers):
            proc, conn = self._spawn_one(w)
            self._procs.append(proc)
            self._conns.append(conn)

    def _restart_worker(self, w: int) -> bool:
        """Replace worker ``w`` with a fresh warm one; ``False`` if the
        pool is closing (the feeder then retires instead)."""
        if self._closed:
            return False
        if self.mode == "threads":
            # The fault hook (or the caller) already discarded the warm
            # engine; the next task lazily builds a fresh one against the
            # current shared database.
            self._engines.pop(w, None)
            return True
        old = self._procs[w]
        if old.is_alive():
            old.terminate()
        old.join(timeout=5)
        try:
            self._conns[w].close()
        except OSError:  # pragma: no cover - already torn down
            pass
        proc, conn = self._spawn_one(w)
        self._procs[w] = proc
        self._conns[w] = conn
        return True

    def close(self) -> None:
        """Shut the pool down: fail queued tasks with :class:`PoolClosed`,
        stop worker threads (feeders waiting on a child reply observe the
        closed flag, fail their in-flight task, and exit), and terminate
        spawn children — sentinel first, ``terminate()`` as the backstop
        for children that are mid-task or wedged.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for task in self._scheduler.close():
            task.future.set_exception(PoolClosed("pool closed"))
        for t in self._threads:
            t.join(timeout=30)
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for w, proc in enumerate(self._procs):
            # A worker whose feeder abandoned a pending reply is likely
            # wedged mid-task; don't grant it the polite drain window.
            proc.join(timeout=0.5 if w in self._suspect_hung else 10)
            if proc.is_alive():  # hung worker backstop
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            conn.close()

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # work
    # ------------------------------------------------------------------
    def submit(
        self,
        shard: int,
        query: UCQ,
        *,
        exact: bool = False,
        timeout: float | None = None,
    ) -> Future:
        """Enqueue one query on ``shard``'s queue; returns a
        :class:`concurrent.futures.Future` resolving to a
        :class:`TaskResult`.  ``timeout`` bounds the task's wall clock
        from this moment (queue wait counts; enforcement is cooperative
        at the compilation safepoints, failing the future with
        :class:`DeadlineExceeded`).  Thread-safe; callable from any
        thread (the service's asyncio loop wraps the future)."""
        if not self._started:
            self.start()
        task = _Task(
            query=query,
            exact=exact,
            deadline=None if timeout is None else Deadline(timeout),
        )
        self._scheduler.put(shard % self.workers, task)
        return task.future

    def run_batch(
        self,
        items_per_shard: dict[int, list[tuple[int, UCQ]]],
        *,
        exact: bool = False,
        timeout: float | None = None,
    ) -> dict[int, TaskResult]:
        """Evaluate one batch (``shard -> [(batch_index, query), ...]``)
        and block until every task resolves; returns ``batch_index ->
        TaskResult``.  Queries keep their per-shard order, so a worker
        that never steals sees exactly the serial LRU sequence of its
        shard.  ``timeout`` grants each task its own budget (per task,
        not per batch)."""
        futures: dict[int, Future] = {}
        for shard in sorted(items_per_shard):
            for idx, query in items_per_shard[shard]:
                futures[idx] = self.submit(shard, query, exact=exact, timeout=timeout)
        results = {idx: f.result() for idx, f in futures.items()}
        self.batches_served += 1
        return results

    # ------------------------------------------------------------------
    # live updates
    # ------------------------------------------------------------------
    def apply_update(self, delta: UpdateDelta) -> dict[str, int]:
        """Broadcast one database delta to every live warm worker and
        block until all have applied it.

        The shared database is mutated once (version-gated; a caller like
        :class:`~repro.queries.parallel.ParallelQueryEngine` may already
        have applied it), the shared base vtree grows an inserted tuple's
        leaf the same way each worker's manager does, and one control
        message per worker rides the per-worker control queues — threads
        workers patch their live engine, spawn children replay the delta
        on their private database copy over the pipe.  Any update also
        drops the warm-start artifact for engines *not yet built*: the
        artifact answers for the instance it was compiled against, and a
        lazily constructed engine must not warm-start from a stale one
        (already-built engines keep their frozen base across weight-only
        updates — their own :meth:`QueryEngine.apply_update` refreshes
        its weights).

        Must not run concurrently with an in-flight batch on the same
        shard queues — the service tier quiesces before calling this.
        Returns the merged counter increments across workers
        (``updates_applied`` counts this call once).
        """
        delta.apply(self.db)
        if (
            delta.kind == "insert"
            and self.backend == "sdd"
            and self.vtree is not None
            and delta.var not in self.vtree.variables
        ):
            self.vtree = Vtree.internal_trusted(self.vtree, Vtree.leaf(delta.var))
        self._artifact_obj = None
        self._artifact_path = None
        self.updates_applied += 1
        merged = {
            "updates_applied": 1,
            "memo_invalidations": 0,
            "delta_patched_roots": 0,
            "update_recompiles": 0,
        }
        if not self._started:
            # No warm state anywhere: threads engines don't exist yet and
            # spawn children pickle the database at start().
            return merged
        tasks = []
        for w in self._scheduler.live():
            task = _Task(query=None, exact=False, control=delta)
            self._scheduler.put_control(w, task)
            tasks.append(task)
        for task in tasks:
            inc = task.future.result()
            for key in ("memo_invalidations", "delta_patched_roots", "update_recompiles"):
                merged[key] += inc.get(key, 0)
        return merged

    # ------------------------------------------------------------------
    # execution backends
    # ------------------------------------------------------------------
    def _threads_frozen(self):
        """The shared in-process :class:`FrozenSdd` base (loaded once, all
        threads workers read the same immutable tables); ``None`` without
        a warm-start artifact."""
        if self._artifact_obj is None and self._artifact_path is not None:
            with self._lock:
                if self._artifact_obj is None:
                    from ..artifact.store import FrozenSdd

                    self._artifact_obj = FrozenSdd.load(self._artifact_path)
        return self._artifact_obj

    def _worker_loop(self, w: int) -> None:
        while True:
            task = self._scheduler.get(w)
            if task is None:
                return
            if not self._run_task(w, task):
                return  # slot retired (or pool closing): feeder exits

    def _run_task(self, w: int, task: _Task) -> bool:
        """Run one task to *resolution* — value or typed error on its
        future, surviving worker deaths by restart-and-replay.  Returns
        ``False`` when the feeder must exit (slot retired / pool closed).
        """
        while True:
            if task.deadline is not None and task.deadline.expired():
                # Expired while queued: fail fast, never occupy the worker.
                self.deadline_exceeded += 1
                task.future.set_exception(
                    DeadlineExceeded(task.deadline.timeout, "queue wait")
                )
                return True
            try:
                result = self._execute(w, task)
            except _PoolClosing:
                task.future.set_exception(
                    PoolClosed("pool closed while the task was in flight")
                )
                return False
            except _WorkerDied:
                task.kills += 1
                verdict = self._supervisor.on_death(w, task.kills)
                if verdict.poison:
                    task.future.set_exception(
                        TaskPoisoned(str(task.control or task.query), task.kills)
                    )
                    if verdict.also_restart:
                        time.sleep(verdict.backoff)
                        if self._restart_worker(w):
                            return True
                        self._supervisor.note_retired()
                    self._retire(w, None)
                    return False
                if verdict.retire:
                    self._retire(w, task)
                    return False
                time.sleep(verdict.backoff)
                if not self._restart_worker(w):
                    self._retire(w, task)
                    return False
                self.tasks_replayed += 1
                continue  # replay the same task on the fresh worker
            except DeadlineExceeded as exc:
                self.deadline_exceeded += 1
                task.future.set_exception(exc)
                return True
            except BaseException as exc:  # noqa: BLE001 - routed to waiter
                task.future.set_exception(exc)
                return True
            else:
                if task.control is None:
                    self.tasks_served += 1
                task.future.set_result(result)
                return True

    def _retire(self, w: int, in_flight: _Task | None) -> None:
        """Take slot ``w`` out of service and rehome its work: queued
        tasks (and the in-flight one, first) move to the head of live
        workers' queues round-robin; control tasks resolve as no-ops (a
        dead worker has no warm state to patch, and its replacement —
        were one ever spawned — would start from the current database);
        with no live worker left, futures fail with
        :class:`WorkerRetired`."""
        leftovers = self._scheduler.retire(w)
        if in_flight is not None:
            leftovers.insert(0, in_flight)
        live = self._scheduler.live()
        for i, t in enumerate(leftovers):
            if t.control is not None:
                t.future.set_result({"updates_applied": 0})
            elif live:
                try:
                    self._scheduler.put_front(live[i % len(live)], t)
                except PoolClosed as exc:  # raced a concurrent close()
                    t.future.set_exception(exc)
            else:
                t.future.set_exception(
                    WorkerRetired(w, self._supervisor.restarts[w])
                )

    def _next_ordinal(self, w: int) -> int:
        # Only feeder w touches slot w's counter, so no lock.  Replays
        # get fresh ordinals — a planned fault fires at most once.
        o = self._sent[w]
        self._sent[w] = o + 1
        return o

    def _execute(self, w: int, task: _Task):
        if task.control is not None:
            return self._execute_update(w, task.control)
        if self.mode == "threads":
            return self._execute_threads(w, task)
        return self._execute_spawn(w, task)

    def _execute_threads(self, w: int, task: _Task):
        plan = self.fault_plan
        ordinal = self._next_ordinal(w) if plan is not None else -1
        if plan is not None:
            # Threads analogue of a child crash: the warm engine (vtree
            # caches, WMC memos, compiled queries) is lost and the task
            # must be replayed on a fresh one.  ``hang`` maps here too —
            # there is no process to wedge in-process.
            if plan.kill_before(w, ordinal) or plan.hang(w, ordinal):
                self._engines.pop(w, None)
                raise _WorkerDied(w, f"injected kill before task (ordinal {ordinal})")
            d = plan.delay(w, ordinal)
            if d:
                time.sleep(d)
        engine = self._engines.get(w)
        if engine is None:
            # Lazily built, used only by worker thread w — no locking
            # (the shared FrozenSdd is immutable; each engine keeps its
            # own WMC memo over it).
            engine = QueryEngine(
                self.db,
                vtree=self.vtree,
                max_nodes=self.max_nodes,
                backend=self.backend,
                frozen=self._threads_frozen(),
            )
            self._engines[w] = engine
        p = engine.probability(task.query, exact=task.exact, deadline=task.deadline)
        size = engine.compiled_size(task.query)  # just answered: present
        if plan is not None and (
            plan.kill_after(w, ordinal)
            or plan.drop_reply(w, ordinal)
            or plan.corrupt_reply(w, ordinal)
        ):
            # Work done, "reply" lost: same observable outcome as a spawn
            # child dying after compute — replay on a fresh engine.
            self._engines.pop(w, None)
            raise _WorkerDied(w, f"injected kill after task (ordinal {ordinal})")
        return TaskResult(
            probability=p,
            size=size,
            root=engine.cached_root(task.query),
            worker=w,
        )

    def _execute_spawn(self, w: int, task: _Task):
        # Round-trip through worker w's pipe (feeder thread w is the only
        # user of conns[w], so no pipe-level locking).
        remaining = None
        if task.deadline is not None:
            remaining = task.deadline.remaining()
            if remaining <= 0:
                raise DeadlineExceeded(task.deadline.timeout, "queue wait")
        ordinal = self._next_ordinal(w)
        msg = ("task", task.query, task.exact, ordinal, remaining)
        status, p, size, root, stats = self._spawn_call(w, msg)
        self._spawn_stats[w] = stats
        if status != "ok":
            if isinstance(p, BaseException):
                raise p
            raise RuntimeError(f"spawn worker {w} failed: {p}")
        return TaskResult(probability=p, size=size, root=root, worker=w)

    def _execute_update(self, w: int, delta: UpdateDelta) -> dict[str, int]:
        """Apply one delta on worker ``w``; returns its counter increments."""
        if self.mode == "threads":
            engine = self._engines.get(w)
            if engine is None:
                # Never built: it will be constructed lazily against the
                # already-updated shared database — nothing to patch.
                return {"updates_applied": 0}
            return engine.apply_update(delta)
        status, inc, _size, _root, stats = self._spawn_call(w, ("update", delta))
        self._spawn_stats[w] = stats
        if status != "ok":
            if isinstance(inc, BaseException):
                raise inc
            raise RuntimeError(f"spawn worker {w} failed to apply update: {inc}")
        return inc

    def _spawn_call(self, w: int, msg):
        """Send one message to spawn worker ``w`` and await its reply,
        converting every inter-process failure mode into
        :class:`_WorkerDied` (send failed / child exited / pipe EOF /
        reply silent past ``hang_timeout`` / malformed reply) or
        :class:`_PoolClosing` (pool shut down mid-wait)."""
        conn = self._conns[w]
        proc = self._procs[w]
        try:
            conn.send(msg)
        except (BrokenPipeError, OSError) as exc:
            raise _WorkerDied(w, f"send failed: {exc!r}")
        waited = 0.0
        while True:
            try:
                ready = conn.poll(_POLL_INTERVAL)
            except (BrokenPipeError, OSError) as exc:
                raise _WorkerDied(w, f"pipe lost: {exc!r}")
            if ready:
                try:
                    reply = conn.recv()
                except (EOFError, OSError) as exc:
                    raise _WorkerDied(w, f"died mid-reply: {exc!r}")
                if (
                    not isinstance(reply, tuple)
                    or len(reply) != 5
                    or reply[0] not in ("ok", "err")
                ):
                    # Protocol corruption: the child's pipe framing can no
                    # longer be trusted — declare it dead and replace it.
                    proc.terminate()
                    proc.join(timeout=5)
                    raise _WorkerDied(w, f"corrupt reply: {reply!r:.60}")
                return reply
            if self._closed:
                self._suspect_hung.add(w)
                raise _PoolClosing()
            if not proc.is_alive():
                # One last drain: the child may have replied, then exited.
                if conn.poll(0):
                    continue
                raise _WorkerDied(w, f"exited with code {proc.exitcode}")
            waited += _POLL_INTERVAL
            if self.hang_timeout is not None and waited >= self.hang_timeout:
                proc.terminate()
                proc.join(timeout=5)
                raise _WorkerDied(w, f"silent for {waited:.2f}s (hung)")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def engines(self) -> dict[int, QueryEngine]:
        """The live per-worker engines (threads mode; spawn engines live
        in their child processes)."""
        return dict(self._engines)

    def worker_pids(self) -> list[int]:
        """Spawn worker process ids (stable across batches — that is the
        point — but a supervised restart does mint a new pid for the
        replaced slot); empty in threads mode."""
        return [p.pid for p in self._procs]

    def worker_stats(self) -> dict[int, dict[str, int | str]]:
        """Per-worker engine ``stats()`` — live for threads workers, the
        snapshot piggybacked on each result for spawn workers."""
        if self.mode == "threads":
            return {w: e.stats() for w, e in self._engines.items()}
        return dict(self._spawn_stats)

    def stats(self) -> dict[str, int | str]:
        """Pool-level counters (scheduler + lifecycle + supervision;
        per-engine counters live in :meth:`worker_stats`)."""
        out: dict[str, int | str] = {
            "pool_mode": self.mode,
            "pool_workers": self.workers,
            "pool_live_workers": len(self._scheduler.live()),
            "pool_started": int(self._started),
            "pool_batches_served": self.batches_served,
            "pool_tasks_served": self.tasks_served,
            "pool_tasks_queued": self._scheduler.tasks_queued,
            "pool_steals": self._scheduler.steals,
            "pool_updates_applied": self.updates_applied,
            "pool_tasks_replayed": self.tasks_replayed,
            "pool_deadline_exceeded": self.deadline_exceeded,
            "pool_artifact_warm": int(
                self._artifact_obj is not None or self._artifact_path is not None
            ),
        }
        out.update(self._supervisor.stats())
        return out
