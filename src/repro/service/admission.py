"""Admission control for the service tier: in-flight bounds and quotas.

Two independent guards stand between a submitted batch and the worker
pool:

- **Saturation** (:class:`AdmissionController`): the service admits at
  most ``max_in_flight`` queries at a time, all-or-nothing per batch.
  Beyond that it *rejects* with :exc:`ServiceSaturated` carrying a
  ``retry_after`` hint instead of queueing unboundedly — bounded memory,
  and the caller (not the service) owns the retry policy.  Backpressure
  by refusal, not by silent latency.
- **Quotas** (:class:`Session`): each session carries a ``max_nodes``
  budget; every answered query charges its compiled size (at evaluation
  time) against it.  A session at or over budget gets
  :exc:`QuotaExceeded` on its next submit.  Compiled sizes are canonical
  (same query + database ⇒ same SDD/d-DNNF size on every worker), so the
  charge — and therefore the exact submission at which a session starts
  being rejected — is deterministic, independent of worker count or
  steal schedule.

Everything here is plain bookkeeping under the service's lock; no
threading primitives of its own.  The exception types themselves live in
:mod:`repro.service.errors` (the consolidated picklable hierarchy) and
are re-exported here for backwards compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import AdmissionError, QuotaExceeded, ServiceSaturated

__all__ = [
    "AdmissionError",
    "ServiceSaturated",
    "QuotaExceeded",
    "AdmissionController",
    "Session",
]


@dataclass
class Session:
    """Per-session quota ledger.

    ``max_nodes=None`` means unmetered.  ``nodes_used`` accumulates the
    compiled size of every query answered for the session (cache hits
    included — a hit is still an answer the session consumed)."""

    name: str
    max_nodes: int | None = None
    nodes_used: int = 0
    queries_answered: int = 0
    queries_rejected: int = 0

    def check(self) -> None:
        """Raise :exc:`QuotaExceeded` if the budget is already spent."""
        if self.max_nodes is not None and self.nodes_used >= self.max_nodes:
            self.queries_rejected += 1
            raise QuotaExceeded(self.name, self.nodes_used, self.max_nodes)

    def charge(self, size: int) -> None:
        self.nodes_used += size
        self.queries_answered += 1


@dataclass
class AdmissionController:
    """All-or-nothing in-flight admission with a retry hint.

    ``try_admit(n)`` either reserves ``n`` slots or raises
    :exc:`ServiceSaturated` — a batch is never split across the
    admission boundary (partial admission would make which queries run
    depend on arrival interleaving).  ``release(n)`` returns slots as
    queries complete.  ``retry_after`` scales linearly with how far over
    the bound the rejected batch was — a crude but monotone hint."""

    max_in_flight: int
    retry_after_base: float = 0.05
    in_flight: int = 0
    admitted: int = 0
    rejected: int = 0
    _peak: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.max_in_flight <= 0:
            raise ValueError("max_in_flight must be positive")

    def try_admit(self, n: int) -> None:
        if n <= 0:
            raise ValueError("admission size must be positive")
        if self.in_flight + n > self.max_in_flight:
            self.rejected += n
            overflow = (self.in_flight + n) / self.max_in_flight
            raise ServiceSaturated(
                self.in_flight, self.max_in_flight, self.retry_after_base * overflow
            )
        self.in_flight += n
        self.admitted += n
        self._peak = max(self._peak, self.in_flight)

    def release(self, n: int = 1) -> None:
        if n > self.in_flight:
            raise RuntimeError("releasing more admissions than in flight")
        self.in_flight -= n

    def stats(self) -> dict[str, int]:
        return {
            "admission_in_flight": self.in_flight,
            "admission_max_in_flight": self.max_in_flight,
            "admission_peak_in_flight": self._peak,
            "admission_admitted": self.admitted,
            "admission_rejected": self.rejected,
        }
