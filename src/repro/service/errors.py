"""The service tier's typed, picklable error hierarchy.

Every failure a caller can observe through the service stack is a
:class:`ServiceError` subclass carrying structured fields — not a bare
``RuntimeError`` with a formatted string.  Two properties matter:

- **Typed**: callers branch on the class (`ServiceSaturated` → back off
  and retry, `QuotaExceeded` → stop submitting, `DeadlineExceeded` →
  degrade, `TaskPoisoned` → drop the query, `PoolClosed` → reconnect),
  and the structured fields (``retry_after``, ``timeout``, ``kills``)
  feed retry policies without parsing messages.
- **Picklable**: results cross the spawn-worker pipe as pickles, so an
  exception raised inside a child must survive a pickle round trip *as
  itself* — same type, same fields, same message — or the parent would
  be reduced to wrapping ``repr(exc)`` in a ``RuntimeError`` (exactly
  what the pool's error transport falls back to for foreign exception
  types that do not unpickle cleanly).  Subclasses with non-trivial
  constructors define ``__reduce__`` so the default
  ``cls(*args)``-reconstruction never sees a pre-formatted message.

``ServiceSaturated`` and ``QuotaExceeded`` predate this module (PR 7's
``repro.service.admission``); they keep their ``AdmissionError`` base —
now itself a :class:`ServiceError` — and their import paths
(:mod:`repro.service.admission` re-exports them), so existing callers
are untouched.  ``PoolClosed`` additionally subclasses ``RuntimeError``
because submitting to a closed pool historically raised that.
"""

from __future__ import annotations

import time

__all__ = [
    "Deadline",
    "ServiceError",
    "AdmissionError",
    "ServiceSaturated",
    "QuotaExceeded",
    "DeadlineExceeded",
    "TaskPoisoned",
    "PoolClosed",
    "WorkerRetired",
]


class Deadline:
    """A wall-clock budget: ``timeout`` seconds from construction.

    The cooperative cancellation token of the deadline machinery: the
    query tiers construct one per query, and the compilers call
    :meth:`check` at their existing ``node_budget`` safepoints (between
    gates in :meth:`~repro.sdd.manager.SddManager.compile_circuit` and
    its pairwise folds, between bags in
    :func:`~repro.dnnf.builder.build_ddnnf`).  The compilers never import
    this module — they only call ``deadline.check(where)`` on whatever
    object was passed down, and *it* raises the typed error.

    ``clock`` injects a deterministic time source for tests (it is read
    once here and the same callable is used for every later check).
    """

    __slots__ = ("timeout", "at", "_clock")

    def __init__(self, timeout: float, *, clock=time.monotonic):
        if timeout < 0:
            raise ValueError("timeout must be non-negative")
        self.timeout = timeout
        self._clock = clock
        self.at = clock() + timeout

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.at - self._clock()

    def expired(self) -> bool:
        return self._clock() > self.at

    def check(self, where: str = "compile") -> None:
        """Raise :exc:`DeadlineExceeded` if the budget is spent."""
        if self._clock() > self.at:
            raise DeadlineExceeded(self.timeout, where)


class ServiceError(Exception):
    """Base of every typed failure the service stack raises."""


class AdmissionError(ServiceError):
    """Base class for admission rejections (saturation and quotas)."""


class ServiceSaturated(AdmissionError):
    """The in-flight bound is reached; retry after ``retry_after`` seconds."""

    def __init__(self, in_flight: int, max_in_flight: int, retry_after: float):
        self.in_flight = in_flight
        self.max_in_flight = max_in_flight
        self.retry_after = retry_after
        super().__init__(
            f"service saturated ({in_flight}/{max_in_flight} queries in "
            f"flight); retry after {retry_after:g}s"
        )

    def __reduce__(self):
        return (type(self), (self.in_flight, self.max_in_flight, self.retry_after))


class QuotaExceeded(AdmissionError):
    """The session spent its compiled-node budget."""

    def __init__(self, session: str, nodes_used: int, max_nodes: int):
        self.session = session
        self.nodes_used = nodes_used
        self.max_nodes = max_nodes
        super().__init__(
            f"session {session!r} exceeded its node quota "
            f"({nodes_used}/{max_nodes} compiled nodes used)"
        )

    def __reduce__(self):
        return (type(self), (self.session, self.nodes_used, self.max_nodes))


class DeadlineExceeded(ServiceError):
    """A query's wall-clock deadline expired mid-work.

    Raised cooperatively at the compilation safepoints (between gates in
    the apply pipeline, between bags in the d-DNNF builder) — the same
    granularity as ``node_budget`` enforcement — and before dispatching
    a task whose deadline already passed while it sat in a queue.
    ``timeout`` is the budget that was granted (seconds); ``where``
    names the stage that noticed."""

    def __init__(self, timeout: float, where: str = "compile"):
        self.timeout = timeout
        self.where = where
        super().__init__(f"deadline of {timeout:g}s exceeded during {where}")

    def __reduce__(self):
        return (type(self), (self.timeout, self.where))


class TaskPoisoned(ServiceError):
    """One task killed ``kills`` consecutive workers; it is quarantined.

    The supervisor restarts crashed workers and replays their in-flight
    task (queries are pure functions of the database, so re-execution is
    always safe) — but a task that keeps killing fresh workers would
    crash-loop the pool forever.  After ``kills`` consecutive worker
    deaths with the same task in flight, the task's future gets this
    error instead of another replay, and the pool keeps serving
    everything else."""

    def __init__(self, task: str, kills: int):
        self.task = task
        self.kills = kills
        super().__init__(
            f"task {task!r} killed {kills} consecutive workers; quarantined"
        )

    def __reduce__(self):
        return (type(self), (self.task, self.kills))


class PoolClosed(ServiceError, RuntimeError):
    """The pool (or service) is closed; the work was not executed.

    Also a ``RuntimeError`` for backwards compatibility — closed-pool
    submission has raised that since PR 7."""

    def __init__(self, what: str = "pool is closed"):
        self.what = what
        super().__init__(what)

    def __reduce__(self):
        return (type(self), (self.what,))


class WorkerRetired(ServiceError):
    """A worker exhausted its restart budget and was retired.

    Raised only when the work could not be rehomed — every live worker is
    gone.  While any worker survives, a retired worker's queue is
    redistributed instead and callers never see this."""

    def __init__(self, worker: int, restarts: int):
        self.worker = worker
        self.restarts = restarts
        super().__init__(
            f"worker {worker} retired after {restarts} restarts and no "
            f"live workers remain"
        )

    def __reduce__(self):
        return (type(self), (self.worker, self.restarts))
