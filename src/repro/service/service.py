"""The always-on query service: one warm pool, many sessions.

:class:`QueryService` is the long-lived front door over the engine tier.
Where a :class:`~repro.queries.engine.QueryEngine` is one caller's
session and a :class:`~repro.queries.parallel.ParallelQueryEngine` is one
caller's batch harness, the service multiplexes *many concurrent
sessions* onto one persistent :class:`~repro.service.pool.WorkerPool`:

- **warm workers** — per-shard engines (threads or spawn-child
  processes) built once and reused for every batch of every session, so
  vtrees, hash-cons tables, apply caches, and WMC memos amortize across
  the service's whole lifetime;
- **a shared answer cache** — keyed by *content*
  (:meth:`~repro.queries.syntax.UCQ.normalized` text +
  :meth:`~repro.queries.database.Database.fingerprint` + backend +
  value ring, via :func:`~repro.compiler.cache.fingerprint`), so one
  session's work answers another session's repeat instantly, and the
  hit/miss/eviction counters surface in :meth:`stats`;
- **admission control** — a bounded in-flight window that *rejects* with
  a retry hint (:exc:`~repro.service.admission.ServiceSaturated`) rather
  than queueing unboundedly, and per-session compiled-node quotas
  (:exc:`~repro.service.admission.QuotaExceeded`) charged from the
  canonical compiled sizes — deterministic for sequential submissions,
  independent of worker count or steal schedule.

Answers are **bit-identical to a serial engine**: compilation happens on
pool workers against one shared base vtree (SDDs are canonical per
vtree; d-DNNF sizes/values are decomposition-determined), the cache only
ever stores values a worker computed, and results are matched back to
queries by id, never by arrival order.

The service is thread-safe and asyncio-friendly: :meth:`submit` is a
coroutine (futures bridged with :func:`asyncio.wrap_future`),
:meth:`submit_sync` the blocking twin.  One quota note: quota checks are
per *submission*, admission is all-or-nothing per batch — a batch
admitted under budget runs to completion even if it crosses the quota
mid-way; the *next* submission is rejected.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence

from .admission import AdmissionController, ServiceSaturated, Session
from .errors import DeadlineExceeded, PoolClosed
from .pool import WorkerPool
from .supervisor import RestartPolicy
from ..compiler.cache import LruStatsCache, fingerprint
from ..core.vtree import Vtree
from ..queries.compile import lineage_vtree
from ..queries.database import ProbabilisticDatabase, UpdateDelta
from ..queries.engine import QueryEngine
from ..queries.parallel import shard_of
from ..queries.syntax import UCQ
from ..sdd.manager import CompilationBudgetExceeded

__all__ = ["QueryService", "ServiceAnswer"]


@dataclass(frozen=True)
class ServiceAnswer:
    """One answered query: the probability, the compiled size it was
    charged at, whether it came from the shared answer cache, and (for
    freshly computed answers) the worker that ran it.  ``degraded``
    marks an answer computed by the fallback backend after the primary
    kept missing its deadlines — still exact (both backends are), but
    served outside the warm pool."""

    probability: float | Fraction
    size: int
    cached: bool
    worker: int | None
    degraded: bool = False


class QueryService:
    """Serve probabilistic queries from many sessions over one warm pool.

    ``workers``/``mode``/``steal``/``backend``/``max_nodes`` configure
    the underlying :class:`WorkerPool` (``max_nodes`` is the per-worker
    engine budget, as in the parallel tier).  ``vtree`` pins the shared
    base vtree; otherwise it is derived from the first query ever
    submitted, exactly as a serial engine would.

    ``cache_capacity`` bounds the shared answer cache (``None`` =
    unbounded); ``cache_ttl`` arms per-answer expiry (seconds; an expired
    entry is recomputed and counted in the ``cache_expired`` stat;
    ``cache_clock`` injects a deterministic time source for tests);
    ``max_in_flight`` bounds admitted-but-unanswered queries across all
    sessions; ``session_quota`` is the default per-session compiled-node
    budget (``None`` = unmetered; per-session overrides via
    :meth:`session`).

    ``artifact_dir`` makes restarts warm: when the directory holds an
    artifact for this database (``<db_fingerprint>.rpaf``, as written by
    :meth:`save_artifact`), the pool warm-starts every worker from it —
    stored queries are answered straight off the mmap-ed file with no
    per-worker recompilation, and the artifact's vtree becomes the
    shared base vtree.

    Fault tolerance: ``default_timeout`` grants every query a wall-clock
    budget (seconds; per-call ``timeout=`` overrides it) enforced
    cooperatively at the compilation safepoints; ``restart`` /
    ``hang_timeout`` / ``fault_plan`` pass through to the pool's
    supervisor (see :class:`WorkerPool`).  When queries keep missing
    their deadlines — ``degrade_after`` consecutive deadline/budget
    failures — the service *degrades* instead of failing forever: with a
    ``fallback_backend`` configured, further deadline casualties are
    answered by a serial engine on the cheaper backend (marked
    ``degraded=True``, still exact — both backends are); without one,
    the circuit breaker rejects new work with
    :exc:`~repro.service.errors.ServiceSaturated` and a ``retry_after``
    hint until the breaker window passes.  Any success resets the
    streak.

    The pool starts lazily on the first submission and must be
    :meth:`close`\\ d (or use the service as a context manager;
    :meth:`shutdown` drains gracefully first).
    """

    def __init__(
        self,
        db: ProbabilisticDatabase,
        *,
        workers: int = 2,
        mode: str = "threads",
        vtree: Vtree | None = None,
        max_nodes: int | None = None,
        backend: str = "sdd",
        steal: bool = True,
        shard_seed: int = 0,
        cache_capacity: int | None = None,
        cache_ttl: float | None = None,
        cache_clock=None,
        max_in_flight: int = 1024,
        retry_after: float = 0.05,
        session_quota: int | None = None,
        artifact_dir: str | os.PathLike | None = None,
        default_timeout: float | None = None,
        fallback_backend: str | None = None,
        degrade_after: int = 3,
        restart: RestartPolicy | None = None,
        hang_timeout: float | None = None,
        fault_plan=None,
    ):
        if backend not in QueryEngine._BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; choose from {QueryEngine._BACKENDS}"
            )
        if fallback_backend is not None:
            if fallback_backend not in QueryEngine._BACKENDS:
                raise ValueError(
                    f"unknown fallback backend {fallback_backend!r}; "
                    f"choose from {QueryEngine._BACKENDS}"
                )
            if fallback_backend == backend:
                raise ValueError("fallback_backend must differ from backend")
        if degrade_after < 1:
            raise ValueError("degrade_after must be at least 1")
        self.db = db
        self.workers = workers
        self.mode = mode
        self.max_nodes = max_nodes
        self.backend = backend
        self.steal = steal
        self.shard_seed = shard_seed
        self.session_quota = session_quota
        self._vtree = vtree
        self._db_fp = db.fingerprint()
        self._cache = LruStatsCache(cache_capacity, ttl=cache_ttl, clock=cache_clock)
        self._admission = AdmissionController(max_in_flight, retry_after)
        self._sessions: dict[str, Session] = {}
        self._pool: WorkerPool | None = None
        self._lock = threading.Lock()
        self._closed = False
        self._updating = False
        self._queries_served = 0
        self._updates_applied = 0
        self._cache_invalidated = 0
        self._artifact_dir = None if artifact_dir is None else os.fspath(artifact_dir)
        # Every distinct query ever dispatched (normalized text -> UCQ):
        # the freeze set for save_artifact.
        self._seen: dict[str, UCQ] = {}
        # Fault tolerance / degradation state.
        self.default_timeout = default_timeout
        self.fallback_backend = fallback_backend
        self.degrade_after = degrade_after
        self._restart_policy = restart
        self._hang_timeout = hang_timeout
        self._fault_plan = fault_plan
        self._deadline_exceeded = 0
        self._degraded_answers = 0
        self._degrade_streak = 0  # consecutive deadline/budget failures
        self._degraded_until = 0.0  # circuit breaker (monotonic instant)
        self._breaker_trips = 0
        self._draining = False
        self._fallback_engine: QueryEngine | None = None
        self._fallback_lock = threading.Lock()

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------
    def session(self, name: str, *, max_nodes: int | None = None) -> Session:
        """Fetch-or-create the session ``name``.  ``max_nodes`` sets its
        quota on first creation (defaulting to the service-wide
        ``session_quota``); an existing session keeps its ledger."""
        with self._lock:
            return self._session(name, max_nodes)

    def _session(self, name: str, max_nodes: int | None = None) -> Session:
        sess = self._sessions.get(name)
        if sess is None:
            quota = max_nodes if max_nodes is not None else self.session_quota
            sess = Session(name=name, max_nodes=quota)
            self._sessions[name] = sess
        return sess

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit_sync(
        self,
        queries: Iterable[UCQ],
        *,
        session: str = "default",
        exact: bool = False,
        timeout: float | None = None,
    ) -> list[ServiceAnswer]:
        """Blocking submit: admit the batch (or raise
        :exc:`ServiceSaturated` / :exc:`QuotaExceeded`), wait for every
        answer, and return them in batch order.  ``timeout`` bounds each
        query's wall clock (per query, not per batch; defaults to the
        service-wide ``default_timeout``)."""
        return [
            f.result()
            for f in self._dispatch(list(queries), session, exact, timeout)
        ]

    async def submit(
        self,
        queries: Iterable[UCQ],
        *,
        session: str = "default",
        exact: bool = False,
        timeout: float | None = None,
    ) -> list[ServiceAnswer]:
        """Asyncio submit: admission happens synchronously at call time
        (so rejections raise immediately, before any await); the answers
        are awaited without blocking the event loop."""
        futures = self._dispatch(list(queries), session, exact, timeout)
        return list(
            await asyncio.gather(*(asyncio.wrap_future(f) for f in futures))
        )

    def probability(
        self,
        query: UCQ,
        *,
        session: str = "default",
        exact: bool = False,
        timeout: float | None = None,
    ) -> float | Fraction:
        """One-query convenience wrapper over :meth:`submit_sync`."""
        return self.submit_sync(
            [query], session=session, exact=exact, timeout=timeout
        )[0].probability

    def _dispatch(
        self,
        qs: Sequence[UCQ],
        session: str,
        exact: bool,
        timeout: float | None = None,
    ) -> list[Future]:
        """Admit and route one batch; returns one client future per query
        (in batch order), each resolving to a :class:`ServiceAnswer`.

        Under the service lock: quota check (whole batch rejected if the
        session is already over), all-or-nothing admission, then per
        query either an answer-cache hit (charged and released
        immediately) or a pool submission.  Completion callbacks are
        attached *outside* the lock — a fast worker may complete the task
        before ``add_done_callback`` returns, running the callback on
        this thread, and the callback takes the lock itself.
        """
        if not qs:
            raise ValueError("empty workload")
        if timeout is None:
            timeout = self.default_timeout
        pending: list[tuple[Future, Future, str, Session, UCQ]] = []
        out: list[Future] = []
        with self._lock:
            if self._closed:
                raise PoolClosed("service is closed")
            if self._updating or self._draining:
                # A live update is quiescing the pool (or the service is
                # draining toward shutdown); refuse with the usual
                # backpressure signal so callers retry rather than queue.
                self._admission.rejected += len(qs)
                raise ServiceSaturated(
                    self._admission.in_flight,
                    self._admission.max_in_flight,
                    self._admission.retry_after_base,
                )
            breaker = self._degraded_until - time.monotonic()
            if breaker > 0:
                # Circuit breaker: the primary backend keeps blowing its
                # deadlines and no fallback is configured — shed load
                # instead of queueing more guaranteed casualties.
                self._admission.rejected += len(qs)
                raise ServiceSaturated(
                    self._admission.in_flight,
                    self._admission.max_in_flight,
                    breaker,
                )
            sess = self._session(session)
            sess.check()  # QuotaExceeded
            self._admission.try_admit(len(qs))  # ServiceSaturated
            pool = self._ensure_pool(qs[0])
            for q in qs:
                self._seen.setdefault(q.normalized(), q)
                key = self._cache_key(q, exact)
                hit = self._cache.get(key)
                client: Future = Future()
                out.append(client)
                if hit is not None:
                    p, size = hit
                    sess.charge(size)
                    self._admission.release(1)
                    self._queries_served += 1
                    client.set_result(
                        ServiceAnswer(probability=p, size=size, cached=True, worker=None)
                    )
                    continue
                task = pool.submit(
                    shard_of(q, self.workers, self.shard_seed),
                    q,
                    exact=exact,
                    timeout=timeout,
                )
                pending.append((task, client, key, sess, q))
        for task, client, key, sess, q in pending:
            task.add_done_callback(self._completion(client, key, sess, q, exact))
        return out

    def _completion(
        self, client: Future, key: str, sess: Session, query: UCQ, exact: bool
    ):
        def done(task: Future) -> None:
            try:
                r = task.result()
            except (DeadlineExceeded, CompilationBudgetExceeded) as exc:
                self._deadline_casualty(client, sess, query, exact, exc)
                return
            except BaseException as exc:  # noqa: BLE001 - routed to client
                with self._lock:
                    self._admission.release(1)
                client.set_exception(exc)
                return
            with self._lock:
                self._cache.put(key, (r.probability, r.size))
                sess.charge(r.size)
                self._admission.release(1)
                self._queries_served += 1
                self._degrade_streak = 0  # a success heals the streak
            client.set_result(
                ServiceAnswer(
                    probability=r.probability, size=r.size, cached=False, worker=r.worker
                )
            )

        return done

    def _deadline_casualty(
        self,
        client: Future,
        sess: Session,
        query: UCQ,
        exact: bool,
        exc: Exception,
    ) -> None:
        """Degradation policy for a query the primary backend could not
        answer inside its budget: count it, and once the consecutive
        streak reaches ``degrade_after`` either answer via the fallback
        backend (``degraded=True``) or trip the circuit breaker."""
        with self._lock:
            self._admission.release(1)
            if isinstance(exc, DeadlineExceeded):
                self._deadline_exceeded += 1
            self._degrade_streak += 1
            streak = self._degrade_streak
            degrade = streak >= self.degrade_after
            if degrade and self.fallback_backend is None:
                # No cheaper lane to shunt into: shed upcoming load for a
                # window that widens with the streak.
                self._degraded_until = time.monotonic() + (
                    self._admission.retry_after_base * streak
                )
                self._breaker_trips += 1
        if not degrade or self.fallback_backend is None:
            client.set_exception(exc)
            return
        try:
            p, size = self._fallback_answer(query, exact)
        except BaseException as fallback_exc:  # noqa: BLE001 - routed to client
            client.set_exception(fallback_exc)
            return
        with self._lock:
            sess.charge(size)
            self._queries_served += 1
            self._degraded_answers += 1
        client.set_result(
            ServiceAnswer(
                probability=p, size=size, cached=False, worker=None, degraded=True
            )
        )

    def _fallback_answer(self, query: UCQ, exact: bool):
        """Answer one query on the serial fallback engine (built lazily,
        serialized under its own lock — degradation is the rare path, and
        it must not hold the service lock through a compile).  The answer
        is *not* cached: the answer cache is keyed by the primary
        backend, and a healthy pool should recompute there."""
        with self._fallback_lock:
            engine = self._fallback_engine
            if engine is None:
                engine = QueryEngine(
                    self.db,
                    backend=self.fallback_backend,
                    vtree=self._vtree if self.fallback_backend == "sdd" else None,
                    max_nodes=self.max_nodes,
                )
                self._fallback_engine = engine
            p = engine.probability(query, exact=exact)
            return p, engine.compiled_size(query)

    def _cache_key(self, query: UCQ, exact: bool) -> str:
        return fingerprint(
            query.normalized(),
            self._db_fp,
            self.backend,
            "exact" if exact else "float",
        )

    def _artifact_path(self) -> str | None:
        """The canonical artifact file for this database (inside
        ``artifact_dir``), or ``None`` when no directory is configured or
        the backend cannot use one."""
        if self._artifact_dir is None or self.backend != "sdd":
            return None
        return os.path.join(self._artifact_dir, f"{self._db_fp}.rpaf")

    def _ensure_pool(self, first_query: UCQ) -> WorkerPool:
        if self._pool is None:
            artifact = self._artifact_path()
            if artifact is not None and not os.path.exists(artifact):
                artifact = None  # cold start; save_artifact can fill it
            vtree = self._vtree
            if vtree is None and self.backend == "sdd" and artifact is None:
                vtree = lineage_vtree(first_query, self.db)
                self._vtree = vtree
            self._pool = WorkerPool(
                self.db,
                workers=self.workers,
                vtree=vtree,
                max_nodes=self.max_nodes,
                mode=self.mode,
                steal=self.steal,
                backend=self.backend,
                artifact=artifact,
                restart=self._restart_policy,
                hang_timeout=self._hang_timeout,
                fault_plan=self._fault_plan,
            )
        return self._pool

    def save_artifact(self, path: str | os.PathLike | None = None) -> str:
        """Freeze every query this service has ever dispatched into one
        artifact file and return its path (default: the canonical
        ``<db_fingerprint>.rpaf`` inside ``artifact_dir``).

        A restarted service pointed at the same ``artifact_dir`` (or a
        pool handed the path) then warm-starts: stored queries are served
        off the file, bit-identical, with zero recompilation.  The freeze
        compiles the seen queries once in a throwaway engine on the
        shared base vtree — canonical SDDs make that reproduction exact —
        so no worker state is touched and the service keeps serving
        while it runs."""
        if self.backend != "sdd":
            raise ValueError("artifacts require backend='sdd'")
        with self._lock:
            if not self._seen:
                raise ValueError("no queries dispatched yet; nothing to freeze")
            if path is None:
                path = self._artifact_path()
                if path is None:
                    raise ValueError(
                        "no path given and no artifact_dir configured"
                    )
            queries = list(self._seen.values())
            vtree = self._vtree
            warm = self._artifact_path()
        frozen = None
        if warm is not None and os.path.exists(warm):
            from ..artifact.store import FrozenSdd

            frozen = FrozenSdd.load(warm)
        engine = QueryEngine(self.db, vtree=vtree, frozen=frozen)
        for q in queries:
            engine.compile(q)
        engine.save_artifact(path)
        return os.fspath(path)

    # ------------------------------------------------------------------
    # live updates
    # ------------------------------------------------------------------
    def apply_update(
        self, delta: UpdateDelta, *, drain_timeout: float = 30.0
    ) -> dict[str, int]:
        """Apply one database delta service-wide and return the merged
        counter increments.

        The protocol quiesces before touching any shared state: new
        submissions are rejected with :exc:`ServiceSaturated` (the usual
        backpressure signal — callers already know how to retry) while the
        admitted in-flight window drains to zero.  Then, under the service
        lock, the delta mutates the shared database, every answer-cache
        entry is dropped (they are keyed by the old database fingerprint,
        so they could never be *served* again — clearing just reclaims the
        memory and makes the staleness visible in ``cache_invalidated``),
        the fingerprint is recomputed, and an inserted tuple's leaf grows
        the shared base vtree.  The pool broadcast happens *outside* the
        lock: completion callbacks take the lock on worker threads, and
        the control-message barrier must not deadlock against them.

        Raises :exc:`TimeoutError` when in-flight queries do not drain
        within ``drain_timeout`` seconds.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("service is closed")
            if self._updating:
                raise RuntimeError("another update is already in progress")
            self._updating = True
        try:
            deadline = time.monotonic() + drain_timeout
            while True:
                with self._lock:
                    if self._admission.in_flight == 0:
                        break
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        "timed out draining in-flight queries before update"
                    )
                time.sleep(0.001)
            with self._lock:
                delta.apply(self.db)
                invalidated = len(self._cache)
                self._cache.clear()
                self._cache_invalidated += invalidated
                self._db_fp = self.db.fingerprint()
                if (
                    delta.kind == "insert"
                    and self.backend == "sdd"
                    and self._vtree is not None
                    and delta.var not in self._vtree.variables
                ):
                    self._vtree = Vtree.internal_trusted(
                        self._vtree, Vtree.leaf(delta.var)
                    )
                self._updates_applied += 1
                pool = self._pool
            with self._fallback_lock:
                # The fallback engine answered against the old database;
                # the next degradation rebuilds it against the new one.
                self._fallback_engine = None
            merged = {
                "updates_applied": 1,
                "cache_invalidated": invalidated,
                "memo_invalidations": 0,
                "delta_patched_roots": 0,
                "update_recompiles": 0,
            }
            if pool is not None:
                inc = pool.apply_update(delta)
                for key in (
                    "memo_invalidations",
                    "delta_patched_roots",
                    "update_recompiles",
                ):
                    merged[key] += inc.get(key, 0)
            return merged
        finally:
            with self._lock:
                self._updating = False

    # ------------------------------------------------------------------
    # lifecycle / introspection
    # ------------------------------------------------------------------
    @property
    def vtree(self) -> Vtree | None:
        """The shared base vtree (``None`` until the first SDD query)."""
        return self._vtree

    @property
    def pool(self) -> WorkerPool | None:
        """The underlying worker pool (``None`` until the first batch)."""
        return self._pool

    def close(self) -> None:
        """Refuse new submissions and shut the pool down (idempotent; any
        in-flight queries are failed by the pool)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool = self._pool
        if pool is not None:
            pool.close()

    def shutdown(self, drain_timeout: float = 30.0) -> bool:
        """Graceful :meth:`close`: refuse new submissions (with the usual
        :exc:`ServiceSaturated` backpressure signal, so load balancers
        retry elsewhere), wait up to ``drain_timeout`` seconds for the
        admitted in-flight queries to finish, then close the pool.

        Returns ``True`` when the in-flight window drained fully — every
        admitted query got its answer — and ``False`` when the timeout
        cut the drain short (stragglers are then failed by the pool with
        :exc:`~repro.service.errors.PoolClosed`, never stranded).
        Idempotent; callable from a signal handler's thread."""
        with self._lock:
            if self._closed:
                return True
            self._draining = True
        drained = False
        deadline = time.monotonic() + drain_timeout
        while time.monotonic() < deadline:
            with self._lock:
                if self._admission.in_flight == 0:
                    drained = True
                    break
            time.sleep(0.005)
        self.close()
        return drained

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> dict[str, int | str]:
        """One merged counter dictionary for operators:

        - ``service_*`` — queries served, session count;
        - ``cache_*`` — the shared answer cache (hits / misses /
          evictions / entries / capacity);
        - ``admission_*`` — in-flight window and admit/reject totals;
        - ``pool_*`` — scheduler and lifecycle counters (including
          ``pool_steals``);
        - ``engine_*`` — the pool workers' own engine counters summed
          (ints summed, strings passed through — the
          :meth:`~repro.queries.parallel.ParallelQueryEngine._merge_stats`
          convention), so the per-engine compiled-query cache counters
          stay distinguishable from the service-level answer cache.
        """
        with self._lock:
            out: dict[str, int | str] = {
                "service_queries": self._queries_served,
                "service_sessions": len(self._sessions),
                "service_seen_queries": len(self._seen),
                "service_updates_applied": self._updates_applied,
                "service_cache_invalidated": self._cache_invalidated,
                "service_deadline_exceeded": self._deadline_exceeded,
                "service_degraded_answers": self._degraded_answers,
                "service_breaker_trips": self._breaker_trips,
                "service_draining": int(self._draining),
                "db_fingerprint": self._db_fp,
            }
            out.update(self._cache.stats())
            out.update(self._admission.stats())
            pool = self._pool
        if pool is not None:
            out.update(pool.stats())
            merged: dict[str, int | str] = {}
            for stats in pool.worker_stats().values():
                for k, v in stats.items():
                    if isinstance(v, str):
                        merged[k] = v
                    else:
                        merged[k] = merged.get(k, 0) + v
            out.update({f"engine_{k}": v for k, v in merged.items()})
        return out

    def session_stats(self) -> dict[str, dict[str, int]]:
        """Per-session ledgers: nodes used, quota, answered/rejected."""
        with self._lock:
            return {
                name: {
                    "max_nodes": 0 if s.max_nodes is None else s.max_nodes,
                    "nodes_used": s.nodes_used,
                    "queries_answered": s.queries_answered,
                    "queries_rejected": s.queries_rejected,
                }
                for name, s in self._sessions.items()
            }
