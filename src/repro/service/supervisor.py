"""Worker supervision policy: restart, back off, retire, quarantine.

The pool's feeder threads detect worker deaths (a child that stopped
answering, a corrupted reply, a discarded thread-mode engine); *this*
module decides what happens next.  The split keeps the policy —
bounded restarts with exponential backoff, poison-task quarantine —
testable without processes, and keeps the pool's recovery code a
mechanical interpreter of :class:`Verdict`.

Three concerns, in priority order:

1. **Poison quarantine.**  Queries are pure functions of the database,
   so replaying a killed worker's in-flight task is always *safe* — but
   a task that deterministically crashes its host would crash-loop the
   pool forever.  Each task carries a kill counter; at
   ``poison_threshold`` consecutive worker deaths the task is
   quarantined (its future gets :class:`~repro.service.errors.TaskPoisoned`)
   instead of replayed.  The *worker* is still restarted — it did
   nothing wrong.
2. **Bounded restarts.**  Each worker slot may restart at most
   ``max_restarts`` times; one more death retires the slot.  The pool
   redistributes a retired slot's queue to the surviving workers, so
   retirement degrades capacity, not correctness.
3. **Backoff.**  Restart ``n`` of a slot waits
   ``min(backoff_base * backoff_factor**(n-1), backoff_max)`` seconds
   first, so a hard environmental failure (artifact file deleted, OOM
   killer) costs bounded churn instead of a tight fork loop.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

__all__ = ["RestartPolicy", "Supervisor", "Verdict"]


@dataclass(frozen=True)
class RestartPolicy:
    """Knobs for :class:`Supervisor`.

    Defaults suit tests and interactive service use: near-instant first
    restart, ~1 s worst-case backoff, a handful of lives per worker.
    """

    max_restarts: int = 5
    backoff_base: float = 0.02
    backoff_factor: float = 2.0
    backoff_max: float = 1.0
    poison_threshold: int = 3

    def backoff(self, restart_number: int) -> float:
        """Seconds to wait before restart ``restart_number`` (1-based)."""
        if restart_number <= 1:
            return self.backoff_base
        return min(
            self.backoff_base * self.backoff_factor ** (restart_number - 1),
            self.backoff_max,
        )


@dataclass(frozen=True)
class Verdict:
    """What the pool should do about one worker death.

    Exactly one of the flags is set.  ``restart`` verdicts carry the
    backoff to sleep first; ``poison`` means the *task* is quarantined
    (and ``also_restart`` says whether the worker still has lives left);
    ``retire`` means the slot is out of lives and its queue must be
    redistributed."""

    restart: bool = False
    poison: bool = False
    retire: bool = False
    backoff: float = 0.0
    also_restart: bool = False


class Supervisor:
    """Per-pool death bookkeeping.  Slots' restart counters are disjoint
    (each worker slot has exactly one feeder thread), but the pool-wide
    totals are shared, so verdicts are computed under one small lock."""

    def __init__(self, workers: int, policy: RestartPolicy | None = None):
        self.policy = policy or RestartPolicy()
        self.restarts = [0] * workers  # per-slot lifetime restart count
        self.total_restarts = 0
        self.total_retired = 0
        self.total_poisoned = 0
        self._lock = threading.Lock()

    def on_death(self, worker: int, task_kills: int) -> Verdict:
        """Decide the response to ``worker`` dying with a task whose
        cumulative kill count (including this death) is ``task_kills``.

        Call with ``task_kills=0`` for deaths with no task attributable
        (e.g. a corrupt control reply)."""
        p = self.policy
        with self._lock:
            if task_kills >= p.poison_threshold > 0:
                self.total_poisoned += 1
                if self.restarts[worker] < p.max_restarts:
                    self.restarts[worker] += 1
                    self.total_restarts += 1
                    return Verdict(
                        poison=True,
                        also_restart=True,
                        backoff=p.backoff(self.restarts[worker]),
                    )
                self.total_retired += 1
                return Verdict(poison=True)
            if self.restarts[worker] >= p.max_restarts:
                self.total_retired += 1
                return Verdict(retire=True)
            self.restarts[worker] += 1
            self.total_restarts += 1
            return Verdict(restart=True, backoff=p.backoff(self.restarts[worker]))

    def note_retired(self) -> None:
        """Count a retirement decided outside :meth:`on_death` (e.g. a
        restart attempt raced the pool closing)."""
        with self._lock:
            self.total_retired += 1

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "pool_restarts": self.total_restarts,
                "pool_retired_workers": self.total_retired,
                "pool_poisoned": self.total_poisoned,
            }
