"""Deterministic fault injection for the worker pool.

Chaos testing a pool of long-lived spawn children is only useful if every
run is *exactly* reproducible: a crash found at seed 17 must crash the
same worker at the same task on every re-run, or the invariant checks
("every completed batch is bit-identical to serial", "restart counts
match the plan") degenerate into flaky assertions.  So faults here are
not probabilistic coin flips inside the workers — they are a *plan*,
fixed before the pool starts, addressed by ``(worker, ordinal)`` where
the ordinal is the parent-side cumulative count of task messages sent to
that worker slot.  The parent tags each task message with its ordinal,
so a replayed task (sent again after a restart) gets a *fresh* ordinal
and each planned fault fires at most once.

Fault kinds (spawn mode — the real inter-process failure modes):

- ``kills_before`` / ``kills_after``: the child calls ``os._exit(1)``
  before / after executing the task — models a crash mid-compile vs. a
  crash after the work is done but before the reply is written.  Either
  way the parent sees a dead child and must replay.
- ``dropped_replies``: the child executes the task but never replies —
  models a wedged child.  The parent's hang detection must fire.
- ``corrupt_replies``: the child replies with a malformed message —
  models pipe corruption / protocol skew.  The parent must not crash
  the feeder; it treats the worker as dead.
- ``delays``: the child sleeps before replying — models stragglers;
  no recovery needed, just latency.
- ``hangs``: the child sleeps effectively forever *before* executing —
  models a hard wedge that only ``terminate()`` clears (exercises the
  ``close()`` backstop).

In threads mode there is no child to kill, so kill/drop/corrupt all map
to the closest analogue: the worker's warm engine is discarded and the
task is replayed on a fresh engine — the "lost warm state, work
re-executed" half of the failure without the process machinery.

The plan is a frozen, picklable value: the parent ships it to every
spawn child inside the worker payload, and each child consults only the
entries for its own worker id.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import FrozenSet, Mapping, Tuple

__all__ = ["FaultPlan"]

_Key = Tuple[int, int]  # (worker slot, parent-side send ordinal)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of faults addressed by ``(worker, ordinal)``."""

    kills_before: FrozenSet[_Key] = frozenset()
    kills_after: FrozenSet[_Key] = frozenset()
    dropped_replies: FrozenSet[_Key] = frozenset()
    corrupt_replies: FrozenSet[_Key] = frozenset()
    hangs: FrozenSet[_Key] = frozenset()
    delays: Mapping[_Key, float] = field(default_factory=dict)

    # -- queries (called on the hot path; all O(1)) --------------------
    def kill_before(self, worker: int, ordinal: int) -> bool:
        return (worker, ordinal) in self.kills_before

    def kill_after(self, worker: int, ordinal: int) -> bool:
        return (worker, ordinal) in self.kills_after

    def drop_reply(self, worker: int, ordinal: int) -> bool:
        return (worker, ordinal) in self.dropped_replies

    def corrupt_reply(self, worker: int, ordinal: int) -> bool:
        return (worker, ordinal) in self.corrupt_replies

    def hang(self, worker: int, ordinal: int) -> bool:
        return (worker, ordinal) in self.hangs

    def delay(self, worker: int, ordinal: int) -> float:
        return self.delays.get((worker, ordinal), 0.0)

    def any_fault(self) -> bool:
        return bool(
            self.kills_before
            or self.kills_after
            or self.dropped_replies
            or self.corrupt_replies
            or self.hangs
            or self.delays
        )

    def expected_restarts(self) -> int:
        """Worker restarts this plan forces, assuming every planned
        ordinal is actually reached (each fault fires at most once, and
        kill/drop/corrupt each cost exactly one restart)."""
        return (
            len(self.kills_before)
            + len(self.kills_after)
            + len(self.dropped_replies)
            + len(self.corrupt_replies)
        )

    # -- constructors --------------------------------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        *,
        workers: int,
        tasks: int,
        kills: int = 1,
        drops: int = 0,
        corruptions: int = 0,
        delayed: int = 0,
        max_delay: float = 0.05,
    ) -> "FaultPlan":
        """A reproducible plan drawn from ``random.Random(seed)``.

        Picks ``kills + drops + corruptions + delayed`` *distinct*
        ``(worker, ordinal)`` slots with ordinals below ``tasks`` (so a
        driver that sends ``tasks`` messages per worker is guaranteed to
        reach every planned fault) and deals them out: kills split
        between before/after, then drops, corruptions, and delays.
        """
        rng = random.Random(seed)
        want = kills + drops + corruptions + delayed
        universe = [(w, o) for w in range(workers) for o in range(tasks)]
        if want > len(universe):
            raise ValueError(
                f"plan wants {want} faulted slots but only "
                f"{len(universe)} (worker, ordinal) slots exist"
            )
        slots = rng.sample(universe, want)
        kill_slots, slots = slots[:kills], slots[kills:]
        before = frozenset(s for s in kill_slots if rng.random() < 0.5)
        after = frozenset(s for s in kill_slots if s not in before)
        drop_slots, slots = frozenset(slots[:drops]), slots[drops:]
        corrupt_slots, slots = frozenset(slots[:corruptions]), slots[corruptions:]
        delay_slots = {s: rng.uniform(0.0, max_delay) for s in slots}
        return cls(
            kills_before=before,
            kills_after=after,
            dropped_replies=drop_slots,
            corrupt_replies=corrupt_slots,
            delays=delay_slots,
        )
