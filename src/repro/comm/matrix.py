"""Communication matrices and exact rank (Section 2.2).

``cm(F, X1, X2)`` is the 0/1 matrix indexed by assignments of the two blocks
whose entry is ``F(b1 ∪ b2)``; Theorem 2 lower-bounds disjoint rectangle
covers by its rank *over the reals*.  Because these ranks serve as lower
bounds, they are computed exactly: integer fraction-free Gaussian
elimination (Bareiss), no floating point.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..core.boolfunc import BooleanFunction

__all__ = ["communication_matrix", "exact_rank", "cm_rank", "disjointness_rank"]


def communication_matrix(
    f: BooleanFunction, block1: Iterable[str], block2: Iterable[str]
) -> np.ndarray:
    """``cm(F, X1, X2)`` — rows indexed by assignments of ``X1`` (little-
    endian over sorted ``X1``), columns by assignments of ``X2``."""
    b1 = tuple(sorted(set(block1)))
    b2 = tuple(sorted(set(block2)))
    if set(b1) & set(b2):
        raise ValueError("blocks must be disjoint")
    if set(b1) | set(b2) != set(f.variables):
        raise ValueError("blocks must partition the function's variables")
    rows = f._cofactor_rows(b1)  # (2^|b1|, 2^|b2|), columns little-endian on b2-sorted
    return rows.astype(np.int64)


def exact_rank(matrix: np.ndarray | Sequence[Sequence[int]]) -> int:
    """Rank over the rationals via fraction-free (Bareiss-style) elimination
    with exact Python integers."""
    rows = [list(map(int, r)) for r in np.asarray(matrix)]
    if not rows:
        return 0
    n_cols = len(rows[0])
    rank = 0
    row = 0
    for col in range(n_cols):
        pivot = None
        for r in range(row, len(rows)):
            if rows[r][col] != 0:
                pivot = r
                break
        if pivot is None:
            continue
        rows[row], rows[pivot] = rows[pivot], rows[row]
        pv = rows[row][col]
        for r in range(row + 1, len(rows)):
            factor = rows[r][col]
            if factor == 0:
                continue
            rr = rows[r]
            top = rows[row]
            for c in range(col, n_cols):
                rr[c] = rr[c] * pv - top[c] * factor
        row += 1
        rank += 1
        if row == len(rows):
            break
    return rank


def cm_rank(f: BooleanFunction, block1: Iterable[str], block2: Iterable[str]) -> int:
    """``rank(cm(F, X1, X2))`` — the Theorem-2 lower bound on disjoint
    rectangle covers with underlying partition ``(X1, X2)``."""
    return exact_rank(communication_matrix(f, block1, block2))


def disjointness_rank(n: int) -> int:
    """``rank(cm(D_n, X_n, Y_n))`` — folklore equation (8) says ``2^n``."""
    from ..circuits.build import disjointness

    f = disjointness(n).function()
    xs = [f"x{i}" for i in range(1, n + 1)]
    ys = [f"y{i}" for i in range(1, n + 1)]
    return cm_rank(f, xs, ys)
