"""Combinatorial rectangles and disjoint rectangle covers (Section 2.2).

- :class:`RectangleCover` — a set of rectangles with a shared underlying
  partition, with exact validation of the cover / disjointness conditions.
- :func:`cover_from_factors` — the canonical disjoint rectangle cover of
  Lemma 3 (products of factor pairs).
- :func:`cover_from_structured_nnf` — Theorem 1 made executable: extract,
  from a *deterministic structured* NNF and a vtree node ``v``, a disjoint
  rectangle cover of size at most ``|C|`` with partition ``(X_v, X∖X_v)``.
- :func:`min_disjoint_cover_lower_bound` — Theorem 2 (exact rank).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .matrix import cm_rank
from ..core.boolfunc import BooleanFunction
from ..core.factors import factorized_implicants, factors
from ..circuits.nnf import NNF
from ..core.vtree import Vtree

__all__ = [
    "Rectangle",
    "RectangleCover",
    "cover_from_factors",
    "cover_from_structured_nnf",
    "min_disjoint_cover_lower_bound",
]


@dataclass(frozen=True)
class Rectangle:
    """``R`` with ``sat(R) = sat(left) × sat(right)`` over a partition."""

    left: BooleanFunction
    right: BooleanFunction

    def function(self) -> BooleanFunction:
        return self.left & self.right

    def is_empty(self) -> bool:
        return not (self.left.is_satisfiable() and self.right.is_satisfiable())


@dataclass
class RectangleCover:
    """A family of rectangles over a fixed partition ``(block1, block2)``."""

    block1: tuple[str, ...]
    block2: tuple[str, ...]
    rectangles: list[Rectangle]

    def __len__(self) -> int:
        return len(self.rectangles)

    def union(self) -> BooleanFunction:
        vs = tuple(sorted(set(self.block1) | set(self.block2)))
        acc = BooleanFunction.false(vs)
        for r in self.rectangles:
            acc = acc | r.function().extend(vs)
        return acc

    def covers(self, f: BooleanFunction) -> bool:
        return self.union().equivalent(f)

    def is_disjoint(self) -> bool:
        vs = tuple(sorted(set(self.block1) | set(self.block2)))
        total = np.zeros(1 << len(vs), dtype=np.int64)
        for r in self.rectangles:
            total += r.function().extend(vs).table.astype(np.int64)
        return bool((total <= 1).all())

    def validate(self, f: BooleanFunction) -> None:
        for r in self.rectangles:
            if not set(r.left.variables) <= set(self.block1):
                raise AssertionError("rectangle left part leaves block1")
            if not set(r.right.variables) <= set(self.block2):
                raise AssertionError("rectangle right part leaves block2")
        if not self.covers(f):
            raise AssertionError("rectangles do not cover the function")
        if not self.is_disjoint():
            raise AssertionError("rectangles overlap")


def cover_from_factors(f: BooleanFunction, block1: Iterable[str]) -> RectangleCover:
    """Lemma 3: the factorized implicants of ``F`` (as a factor of itself)
    form a disjoint rectangle cover with partition ``(Y, X ∖ Y)``."""
    b1 = tuple(v for v in f.variables if v in set(block1))
    b2 = tuple(v for v in f.variables if v not in set(block1))
    du = factors(f, set(f.variables))
    target = None
    for h, cof in enumerate(du.cofactors):
        if cof.is_tautology():
            target = h
            break
    dl = factors(f, b1)
    dr = factors(f, b2)
    rects: list[Rectangle] = []
    if target is not None:
        impl = factorized_implicants(f, b1, b2, union_dec=du, left_dec=dl, right_dec=dr)
        for (i, j) in impl[target]:
            rects.append(Rectangle(dl.factors[i], dr.factors[j]))
    return RectangleCover(block1=b1, block2=b2, rectangles=rects)


def cover_from_structured_nnf(
    root: NNF, f: BooleanFunction, vtree: Vtree, v: Vtree
) -> RectangleCover:
    """Theorem 1, executably: given a deterministic NNF ``root`` structured
    by ``vtree`` and computing ``f``, and a node ``v`` of the vtree, build a
    disjoint rectangle cover of ``f`` with partition ``(X_v, X ∖ X_v)``.

    The cover is the canonical factorized-implicant cover of Lemma 3 for
    that partition — models grouped by the pair of factors their two halves
    fall into.  By Lemma 2 each group is a rectangle, and the groups are
    pairwise disjoint and exhaustive, so the cover is always valid.

    Size accounting: when ``v`` is a child of a vtree node splitting
    exactly ``(X_v, X ∖ X_v)`` (e.g. a child of the root), the cover's
    rectangles correspond one-to-one with the AND gates the canonical
    construction structures at that node, realizing Theorem 1's
    ``size ≤ |C|`` bound constructively; tests assert exactly that case
    (for deeper nodes Theorem 1's re-rooting argument gives the bound, and
    the *rank* lower bound of Theorem 2 applies to the cover regardless).
    """
    y = frozenset(v.variables) & set(f.variables)
    return cover_from_factors(f, y)


def min_disjoint_cover_lower_bound(
    f: BooleanFunction, block1: Iterable[str], block2: Iterable[str]
) -> int:
    """Theorem 2: any disjoint rectangle cover with this partition has at
    least ``rank(cm(F, X1, X2))`` rectangles (rank computed exactly)."""
    return cm_rank(f, block1, block2)
