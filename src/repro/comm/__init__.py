"""Communication complexity: exact ranks, rectangle covers, Lemma 8."""

from .lowerbounds import analyze_vtree_for_h, balanced_node, theorem5_bound
from .matrix import cm_rank, communication_matrix, disjointness_rank, exact_rank
from .rectangles import RectangleCover, cover_from_factors, min_disjoint_cover_lower_bound
