"""The Theorem 5 / Lemma 8 lower-bound machinery (Section 4.1).

Given any vtree ``T`` over the variables ``X ∪ Y ∪ Z`` of the inversion
functions ``H^i_{k,n}``, Lemma 8 finds an index ``i`` such that any
deterministic structured NNF for ``H^i`` respecting ``T`` has size
``2^{Ω(n/k)}``:

- Claim 2: find a node ``v`` with ``2n/5 ≤ |X_v ∪ Y_v| ≤ 4n/5``;
- Claim 3: if some column ``j`` has all its ``z^1_{i,j}`` outside ``T_v``,
  then ``C_0`` needs ``2^{n_x} − 1`` rectangles (disjointness rank);
- Claim 4: otherwise a pigeonhole over the levels pins some ``C_p`` at
  ``2^{|S|/k} − 1``.

Everything here returns *certified* numbers: the rectangle-count bounds
come from exact ranks on explicitly constructed disjointness instances (or
the closed-form ``2^r − 1`` once the instance is literally the complement
of ``D_r``, equation (8) + Theorem 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..circuits.build import xvar, yvar, zvar
from ..core.vtree import Vtree

__all__ = ["balanced_node", "Lemma8Analysis", "analyze_vtree_for_h", "theorem5_bound"]


def balanced_node(vtree: Vtree, weight_vars: frozenset[str]) -> Vtree:
    """Claim 2: a node ``v`` with ``M/5 < |vars(v) ∩ W| ≤ 2M/5`` where
    ``M = |W|`` — hence ``2n/5 ≤ |X_v ∪ Y_v| ≤ 4n/5`` in the Lemma-8 setting
    (``M = 2n``).  Follows the root-leaf walk of the proof."""
    m = len(weight_vars & vtree.variables)
    if m == 0:
        raise ValueError("no weight variables in the vtree")

    def weight(v: Vtree) -> int:
        return len(v.variables & weight_vars)

    node = vtree
    # Walk towards the heavier child; stop just above weight <= M/5.
    while True:
        if node.is_leaf:
            return node
        assert node.left is not None and node.right is not None
        child = max((node.left, node.right), key=weight)
        if weight(child) * 5 <= m:
            # child dropped to <= M/5; node is the last with weight > M/5,
            # and by the halving argument weight(node) <= 2*weight(child)*?
            return node if weight(node) * 5 <= 2 * m else child
        node = child


@dataclass
class Lemma8Analysis:
    """Outcome of applying Lemma 8's case analysis to a concrete vtree."""

    node: Vtree
    case: str  # "claim3" or "claim4"
    hard_index: int  # which H^i carries the bound (0..k)
    bound: int  # certified lower bound on |C_i| (rectangle count)
    nx: int
    ny: int
    details: dict


def _h_variable_sets(k: int, n: int) -> tuple[set[str], set[str], dict[int, set[str]]]:
    xs = {xvar(l) for l in range(1, n + 1)}
    ys = {yvar(m) for m in range(1, n + 1)}
    zs = {i: {zvar(i, l, m) for l in range(1, n + 1) for m in range(1, n + 1)} for i in range(1, k + 1)}
    return xs, ys, zs


def analyze_vtree_for_h(vtree: Vtree, k: int, n: int) -> Lemma8Analysis:
    """Run the Lemma 8 case analysis for the family ``H^0..H^k`` (parameters
    ``k, n``) against a concrete vtree over ``X ∪ Y ∪ Z``.

    Returns which circuit index ``i`` is pinned and the certified lower
    bound on the number of rectangles (hence on the size of any
    deterministic structured NNF for ``H^i`` respecting this vtree,
    via Theorem 1 + Theorem 2).
    """
    xs, ys, zs = _h_variable_sets(k, n)
    needed = xs | ys | set().union(*zs.values())
    if not needed <= vtree.variables:
        raise ValueError("vtree must cover X ∪ Y ∪ Z")
    v = balanced_node(vtree, frozenset(xs | ys))
    inside = v.variables
    x_in = xs & inside
    y_in = ys & inside
    nx, ny = len(x_in), len(y_in)
    # WLOG in the paper nx >= ny; otherwise the symmetric argument swaps the
    # roles of X/Y and z^1/z^k.  We implement both orientations.
    if nx >= ny:
        side_vars = x_in
        first_level = 1
        levels = list(range(1, k + 1))
        var_first = lambda l, j: zvar(1, l, j)  # noqa: E731
        index_of = lambda name: int(name[1:])  # noqa: E731  x{l}
        outer_count = ny
        hard_first = 0
    else:
        side_vars = y_in
        first_level = k
        levels = list(range(k, 0, -1))
        var_first = lambda m, j: zvar(k, j, m)  # noqa: E731  z^k_{j,m} pairs with y_m
        index_of = lambda name: int(name[1:])  # noqa: E731  y{m}
        outer_count = nx
        hard_first = k
    side_idx = sorted(index_of(s) for s in side_vars)
    # --- Claim 3: a column j with all first-level partners outside T_v ----
    for j in range(1, n + 1):
        if all(var_first(l, j) not in inside for l in side_idx):
            bound = 2 ** len(side_idx) - 1
            return Lemma8Analysis(
                node=v,
                case="claim3",
                hard_index=hard_first,
                bound=bound,
                nx=nx,
                ny=ny,
                details={"column": j, "pairs": len(side_idx)},
            )
    # --- Claim 4: pigeonhole across the k levels --------------------------
    # S: for each j whose y_j (resp. x_j) lies outside T_v, pick a partner
    # i with the first-level z inside T_v.
    if nx >= ny:
        outside_other = [m for m in range(1, n + 1) if yvar(m) not in inside]
        s_pairs: list[tuple[int, int]] = []
        for j in outside_other:
            for i in side_idx:
                if zvar(1, i, j) in inside:
                    s_pairs.append((i, j))
                    break
        chain = lambda p, i, j: zvar(p, i, j)  # noqa: E731
    else:
        outside_other = [l for l in range(1, n + 1) if xvar(l) not in inside]
        s_pairs = []
        for j in outside_other:
            for i in side_idx:
                if zvar(k, j, i) in inside:
                    s_pairs.append((i, j))
                    break
        chain = lambda p, i, j: zvar(p, j, i)  # noqa: E731
    r_levels: dict[int, list[tuple[int, int]]] = {p: [] for p in range(1, k + 1)}
    if nx >= ny:
        for (i, j) in s_pairs:
            placed = False
            for p in range(1, k):
                if all(zvar(q, i, j) in inside for q in range(1, p + 1)) and zvar(p + 1, i, j) not in inside:
                    r_levels[p].append((i, j))
                    placed = True
                    break
            if not placed:
                r_levels[k].append((i, j))
    else:
        for (i, j) in s_pairs:
            placed = False
            for p in range(k, 1, -1):
                if all(zvar(q, j, i) in inside for q in range(p, k + 1)) and zvar(p - 1, j, i) not in inside:
                    r_levels[p].append((i, j))
                    placed = True
                    break
            if not placed:
                r_levels[1].append((i, j))
    best_p, best_pairs = max(r_levels.items(), key=lambda kv: len(kv[1]))
    bound = 2 ** len(best_pairs) - 1
    if nx >= ny:
        hard_index = best_p  # C_p reads (z^p, z^{p+1}); for p == k it is H^k
    else:
        hard_index = best_p - 1 if best_p > 1 else 0
    return Lemma8Analysis(
        node=v,
        case="claim4",
        hard_index=hard_index,
        bound=bound,
        nx=nx,
        ny=ny,
        details={"S": len(s_pairs), "levels": {p: len(q) for p, q in r_levels.items()}},
    )


def theorem5_bound(k: int, n: int) -> int:
    """The closed-form Theorem 5 floor: some ``C_i`` has at least
    ``2^{n/(5k)} − 1`` elements, whatever the vtree."""
    return max(int(2 ** (n / (5 * k))) - 1, 1)
