"""A small formula parser producing :class:`~repro.circuits.circuit.Circuit`.

Grammar (precedence low to high):

    formula := iff
    iff     := implies ('<->' implies)*
    implies := or ('->' or)*          (right associative)
    or      := and ('|' and)*
    and     := unary ('&' unary)*
    unary   := '~' unary | atom
    atom    := NAME | '0' | '1' | '(' formula ')'

Variable names match ``[A-Za-z_][A-Za-z0-9_,()']*`` minus the reserved
constants, so tuple-style names like ``R(1,2)`` work unquoted.
"""

from __future__ import annotations

import re

from .circuit import Circuit

__all__ = ["parse_formula", "formula_to_circuit"]

_TOKEN = re.compile(
    r"\s*(?:(?P<lparen>\()|(?P<rparen>\))|(?P<iff><->)|(?P<implies>->)|"
    r"(?P<or>\|)|(?P<and>&)|(?P<not>~|!)|(?P<const>[01](?![\w]))|"
    r"(?P<name>[A-Za-z_][A-Za-z0-9_']*(?:\([A-Za-z0-9_,]*\))?))"
)


class _Parser:
    def __init__(self, text: str):
        self.tokens: list[tuple[str, str]] = []
        pos = 0
        while pos < len(text):
            m = _TOKEN.match(text, pos)
            if m is None:
                if text[pos:].strip():
                    raise SyntaxError(f"cannot tokenize at: {text[pos:]!r}")
                break
            pos = m.end()
            for kind, val in m.groupdict().items():
                if val is not None:
                    self.tokens.append((kind, val))
                    break
        self.i = 0
        self.circuit = Circuit()

    def peek(self) -> tuple[str, str] | None:
        return self.tokens[self.i] if self.i < len(self.tokens) else None

    def eat(self, kind: str) -> str:
        tok = self.peek()
        if tok is None or tok[0] != kind:
            raise SyntaxError(f"expected {kind}, got {tok}")
        self.i += 1
        return tok[1]

    def parse(self) -> Circuit:
        root = self.iff()
        if self.peek() is not None:
            raise SyntaxError(f"trailing tokens: {self.tokens[self.i:]}")
        self.circuit.set_output(root)
        return self.circuit

    def iff(self) -> int:
        left = self.implies()
        while self.peek() and self.peek()[0] == "iff":  # type: ignore[index]
            self.eat("iff")
            right = self.implies()
            c = self.circuit
            left = c.add_or(c.add_and(left, right), c.add_and(c.add_not(left), c.add_not(right)))
        return left

    def implies(self) -> int:
        left = self.or_()
        if self.peek() and self.peek()[0] == "implies":  # type: ignore[index]
            self.eat("implies")
            right = self.implies()  # right associative
            return self.circuit.add_or(self.circuit.add_not(left), right)
        return left

    def or_(self) -> int:
        parts = [self.and_()]
        while self.peek() and self.peek()[0] == "or":  # type: ignore[index]
            self.eat("or")
            parts.append(self.and_())
        return parts[0] if len(parts) == 1 else self.circuit.add_or(*parts)

    def and_(self) -> int:
        parts = [self.unary()]
        while self.peek() and self.peek()[0] == "and":  # type: ignore[index]
            self.eat("and")
            parts.append(self.unary())
        return parts[0] if len(parts) == 1 else self.circuit.add_and(*parts)

    def unary(self) -> int:
        tok = self.peek()
        if tok and tok[0] == "not":
            self.eat("not")
            return self.circuit.add_not(self.unary())
        return self.atom()

    def atom(self) -> int:
        tok = self.peek()
        if tok is None:
            raise SyntaxError("unexpected end of formula")
        kind, val = tok
        if kind == "lparen":
            self.eat("lparen")
            node = self.iff()
            self.eat("rparen")
            return node
        if kind == "const":
            self.eat("const")
            return self.circuit.add_const(val == "1")
        if kind == "name":
            self.eat("name")
            return self.circuit.add_var(val)
        raise SyntaxError(f"unexpected token {tok}")


def parse_formula(text: str) -> Circuit:
    """Parse a propositional formula into a circuit."""
    return _Parser(text).parse()


def formula_to_circuit(text: str) -> Circuit:
    """Alias for :func:`parse_formula`."""
    return parse_formula(text)
