"""Serialization of NNF DAGs and circuits (JSON-compatible dicts).

Compiled artifacts are expensive; this module lets users persist them.
DAG sharing survives the round trip (nodes serialized once, by id).

The dict codecs here are the structural source of truth; the *framing*
has moved to the shared artifact container
(:mod:`repro.artifact.encoding` — one magic/version/CRC header, one
varint codec for every on-disk format).  Persist NNF DAGs and circuits
with :func:`repro.artifact.format.nnf_to_bytes` /
:func:`~repro.artifact.format.nnf_from_bytes` (and the ``circuit_*``
twins), which add corruption detection the bare JSON strings never had;
the old ad-hoc string framing (:func:`nnf_dumps` / :func:`nnf_loads`)
survives as a deprecated shim.
"""

from __future__ import annotations

import json
import warnings
from typing import Any

from .circuit import AND, CONST, NOT, OR, VAR, Circuit, Gate
from .nnf import NNF, false_node, lit, true_node

__all__ = ["nnf_to_dict", "nnf_from_dict", "nnf_dumps", "nnf_loads",
           "circuit_to_dict", "circuit_from_dict"]


def nnf_to_dict(root: NNF) -> dict[str, Any]:
    """Serialize an NNF DAG; node order is children-first so loading is a
    single pass."""
    nodes = root.nodes()
    index = {id(n): i for i, n in enumerate(nodes)}
    out_nodes = []
    for n in nodes:
        if n.kind == "lit":
            out_nodes.append({"kind": "lit", "var": n.var, "sign": bool(n.sign)})
        elif n.kind in ("true", "false"):
            out_nodes.append({"kind": n.kind})
        else:
            out_nodes.append(
                {"kind": n.kind, "children": [index[id(c)] for c in n.children]}
            )
    return {"format": "repro-nnf-v1", "root": index[id(root)], "nodes": out_nodes}


def nnf_from_dict(data: dict[str, Any]) -> NNF:
    if data.get("format") != "repro-nnf-v1":
        raise ValueError("not a repro NNF payload")
    built: list[NNF] = []
    for spec in data["nodes"]:
        kind = spec["kind"]
        if kind == "true":
            built.append(true_node())
        elif kind == "false":
            built.append(false_node())
        elif kind == "lit":
            built.append(lit(spec["var"], bool(spec["sign"])))
        elif kind in ("and", "or"):
            children = tuple(built[i] for i in spec["children"])
            built.append(NNF(kind, children=children))
        else:
            raise ValueError(f"bad node kind {kind!r}")
    return built[data["root"]]


def nnf_dumps(root: NNF) -> str:
    """Deprecated: use :func:`repro.artifact.format.nnf_to_bytes` (the
    shared artifact container adds a version header and CRC)."""
    warnings.warn(
        "nnf_dumps is deprecated; use repro.artifact.format.nnf_to_bytes "
        "(versioned, CRC-checked container framing)",
        DeprecationWarning,
        stacklevel=2,
    )
    return json.dumps(nnf_to_dict(root))


def nnf_loads(text: str) -> NNF:
    """Deprecated: use :func:`repro.artifact.format.nnf_from_bytes`."""
    warnings.warn(
        "nnf_loads is deprecated; use repro.artifact.format.nnf_from_bytes "
        "(versioned, CRC-checked container framing)",
        DeprecationWarning,
        stacklevel=2,
    )
    return nnf_from_dict(json.loads(text))


def circuit_to_dict(circuit: Circuit) -> dict[str, Any]:
    gates = []
    for g in circuit.gates:
        gates.append({"kind": g.kind, "inputs": list(g.inputs), "payload": g.payload})
    return {"format": "repro-circuit-v1", "output": circuit.output, "gates": gates}


def circuit_from_dict(data: dict[str, Any]) -> Circuit:
    if data.get("format") != "repro-circuit-v1":
        raise ValueError("not a repro circuit payload")
    c = Circuit()
    for spec in data["gates"]:
        payload = spec["payload"]
        if spec["kind"] == CONST:
            payload = bool(payload)
        gate = Gate(spec["kind"], tuple(spec["inputs"]), payload)
        c.gates.append(gate)
        if gate.kind == VAR:
            c._var_ids[gate.payload] = len(c.gates) - 1  # type: ignore[index]
        if gate.kind == CONST:
            c._const_ids[bool(gate.payload)] = len(c.gates) - 1
    if data["output"] is not None:
        c.set_output(data["output"])
    return c
