"""Circuit substrate: DAG circuits, parser, families, CNF/Tseitin, NNF."""

from .circuit import Circuit
from .nnf import NNF, conj, disj, false_node, lit, true_node
from .parse import parse_formula
