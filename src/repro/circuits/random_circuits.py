"""Seeded random circuit generation, for fuzzing the whole pipeline.

Used by property tests to validate the complete chain — random circuit →
(tree decomposition, vtree, canonical compile, SDD/OBDD managers, Tseitin)
— against the exact semantics, and by benches needing workload variety.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .circuit import Circuit

__all__ = ["random_circuit", "random_monotone_circuit"]


def random_circuit(
    rng: np.random.Generator,
    n_vars: int = 4,
    n_gates: int = 10,
    p_not: float = 0.2,
    max_fanin: int = 3,
) -> Circuit:
    """A random circuit: ``n_vars`` variables, then ``n_gates`` internal
    gates each wired to earlier nodes; the output is the last gate.

    Connectivity is not enforced gate-by-gate (dead gates contribute to the
    underlying graph exactly as the paper's definitions allow) but the
    output always depends on the full prefix chain, keeping functions
    non-trivial.
    """
    if n_vars < 1 or n_gates < 1:
        raise ValueError("need at least one variable and one gate")
    c = Circuit()
    pool = [c.add_var(f"v{i}") for i in range(n_vars)]
    for _ in range(n_gates):
        r = rng.random()
        if r < p_not:
            src = int(rng.integers(0, len(pool)))
            pool.append(c.add_not(pool[src]))
            continue
        fanin = int(rng.integers(2, max_fanin + 1))
        fanin = min(fanin, len(pool))
        srcs = rng.choice(len(pool), size=fanin, replace=False)
        gates = [pool[int(s)] for s in srcs]
        # bias towards including the most recent gate to keep depth growing
        if pool[-1] not in gates:
            gates[-1] = pool[-1]
        if rng.random() < 0.5:
            pool.append(c.add_and(*gates))
        else:
            pool.append(c.add_or(*gates))
    c.set_output(pool[-1])
    return c


def random_monotone_circuit(
    rng: np.random.Generator, n_vars: int = 4, n_gates: int = 8, max_fanin: int = 3
) -> Circuit:
    """Random NOT-free circuit (monotone — like every query lineage)."""
    return random_circuit(rng, n_vars, n_gates, p_not=0.0, max_fanin=max_fanin)
