"""Implicants, prime implicants (IP), and DNF forms.

Result 3's aftermath (Section 1, "Contribution") observes that the
inversion lower bound *also* separates DNFs — and even prime-implicant
forms (IPs) — from deterministic structured NNFs: the hard lineages have
polynomially many terms/prime implicants yet need exponential structured
deterministic size.  This module supplies the DNF/IP side:

- :func:`prime_implicants` — Quine–McCluskey style exact computation;
- :func:`minimal_dnf_size` — a greedy set-cover upper bound plus the exact
  brute-force minimum for small instances;
- :class:`Implicant` — partial assignments with the usual subsumption
  order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..core.boolfunc import BooleanFunction
from .circuit import Circuit
from .nnf import NNF, conj, disj, false_node, lit

__all__ = [
    "Implicant",
    "prime_implicants",
    "is_implicant",
    "ip_nnf",
    "dnf_term_count",
    "minimal_dnf_size",
]


@dataclass(frozen=True)
class Implicant:
    """A term: a partial assignment ``var -> bool`` (conjunction of
    literals).  The empty implicant is the constant ``⊤``."""

    literals: tuple[tuple[str, bool], ...]  # sorted by variable

    @classmethod
    def of(cls, assignment: dict[str, bool] | dict[str, int]) -> "Implicant":
        return cls(tuple(sorted((v, bool(b)) for v, b in assignment.items())))

    @property
    def width(self) -> int:
        return len(self.literals)

    def as_dict(self) -> dict[str, bool]:
        return dict(self.literals)

    def subsumes(self, other: "Implicant") -> bool:
        """``self`` subsumes ``other`` iff self's literals ⊆ other's
        (a shorter term covering at least as much)."""
        return set(self.literals) <= set(other.literals)

    def function(self, variables: Sequence[str]) -> BooleanFunction:
        f = BooleanFunction.true(variables)
        for v, b in self.literals:
            f = f & BooleanFunction.literal(v, b, variables)
        return f

    def to_nnf(self) -> NNF:
        if not self.literals:
            from .nnf import true_node

            return true_node()
        return conj([lit(v, b) for v, b in self.literals])

    def __str__(self) -> str:
        if not self.literals:
            return "⊤"
        return "".join(v if b else f"~{v}" for v, b in self.literals)


def is_implicant(term: Implicant, f: BooleanFunction) -> bool:
    """``term |= F``?"""
    return term.function(f.variables).implies(f)


def is_monotone(f: BooleanFunction) -> bool:
    """Is ``F`` monotone (flipping any 0 to 1 never destroys a model)?
    Query lineages are always monotone."""
    n = f.arity
    table = f.table
    idx = np.arange(1 << n)
    for i in range(n):
        lo_idx = idx[(idx >> i) & 1 == 0]
        hi_idx = lo_idx | (1 << i)
        if bool((table[lo_idx] & ~table[hi_idx]).any()):
            return False
    return True


def _monotone_primes(f: BooleanFunction) -> list[Implicant]:
    """For monotone functions the prime implicants are exactly the minimal
    models, as positive terms — linear in the model count."""
    vs = f.variables
    idx = np.flatnonzero(f.table)
    models = sorted((int(i) for i in idx), key=lambda i: (bin(i).count("1"), i))
    minimal: list[int] = []
    for m in models:
        if not any((m & p) == p for p in minimal):
            minimal.append(m)
    out = []
    for m in minimal:
        out.append(Implicant(tuple((vs[i], True) for i in range(len(vs)) if (m >> i) & 1)))
    return sorted(out, key=lambda t: (t.width, t.literals))


def prime_implicants(f: BooleanFunction) -> list[Implicant]:
    """All prime implicants of ``F``.

    Monotone functions (every query lineage) take the linear minimal-model
    route; the general case is Quine–McCluskey consensus/absorption
    (exponential in the worst case, intended for ≤ ~12 variables).
    """
    vs = f.variables
    if f.is_tautology():
        return [Implicant(())]
    if not f.is_satisfiable():
        return []
    if is_monotone(f):
        return _monotone_primes(f)
    # Start from the minterms; iteratively merge terms differing in one
    # literal; primes are the terms never merged.
    current: set[tuple[tuple[str, bool], ...]] = {
        tuple(sorted((v, bool(b)) for v, b in m.items())) for m in f.models()
    }
    primes: set[tuple[tuple[str, bool], ...]] = set()
    while current:
        merged: set[tuple[tuple[str, bool], ...]] = set()
        used: set[tuple[tuple[str, bool], ...]] = set()
        grouped: dict[tuple[str, ...], list[tuple[tuple[str, bool], ...]]] = {}
        for term in current:
            grouped.setdefault(tuple(v for v, _ in term), []).append(term)
        for terms in grouped.values():
            for a, b in itertools.combinations(terms, 2):
                diff = [i for i in range(len(a)) if a[i][1] != b[i][1]]
                if len(diff) == 1:
                    new = tuple(t for i, t in enumerate(a) if i != diff[0])
                    merged.add(new)
                    used.add(a)
                    used.add(b)
        primes |= current - used
        current = merged
    return sorted((Implicant(p) for p in primes), key=lambda t: (t.width, t.literals))


def ip_nnf(f: BooleanFunction) -> NNF:
    """The IP form: disjunction of all prime implicants."""
    primes = prime_implicants(f)
    if not primes:
        return false_node()
    return disj([p.to_nnf() for p in primes])


def dnf_term_count(f: BooleanFunction) -> int:
    """Number of prime implicants (the IP size in terms)."""
    return len(prime_implicants(f))


def minimal_dnf_size(f: BooleanFunction, exact_limit: int = 12) -> int:
    """The minimum number of prime implicants covering ``F``.

    Exact (branch-and-bound over the prime cover) when the prime count is
    ≤ ``exact_limit``; greedy set-cover upper bound otherwise.
    """
    primes = prime_implicants(f)
    if not primes:
        return 0
    vs = f.variables
    model_sets = []
    target = frozenset(int(i) for i in np.flatnonzero(f.table))
    for p in primes:
        model_sets.append(
            frozenset(int(i) for i in np.flatnonzero(p.function(vs).table))
        )
    if len(primes) <= exact_limit:
        best = len(primes)
        for r in range(1, len(primes) + 1):
            if r >= best:
                break
            for combo in itertools.combinations(range(len(primes)), r):
                covered: set[int] = set()
                for i in combo:
                    covered |= model_sets[i]
                if covered == set(target):
                    best = r
                    break
            else:
                continue
            break
        return best
    # greedy fallback
    uncovered = set(target)
    count = 0
    while uncovered:
        gain, pick = max(
            ((len(model_sets[i] & uncovered), i) for i in range(len(primes))),
        )
        if gain == 0:
            break
        uncovered -= model_sets[pick]
        count += 1
    return count
