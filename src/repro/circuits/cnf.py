"""CNF formulas, the Tseitin transform, and the Petke–Razgon-style baseline.

The paper contrasts its direct compilation (size ``O(f(k)·n)``, eq. (4))
with the indirect route of Petke & Razgon (size ``O(g(k)·m)``, eq. (3)):
Tseitin-encode the circuit, compile the CNF to a decomposable form, then
existentially quantify the gate variables.  :func:`petke_razgon_baseline`
implements that route on our OBDD engine (see DESIGN.md §4 for the
substitution note); its measured size scales with the circuit size ``m``,
which is exactly the defect the paper's construction removes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import networkx as nx

from .circuit import AND, CONST, NOT, OR, VAR, Circuit
from ..obdd.obdd import ObddManager

__all__ = ["CNF", "tseitin", "petke_razgon_baseline", "BaselineResult"]

Literal = tuple[str, bool]


@dataclass
class CNF:
    """A CNF formula: a list of clauses, each a tuple of literals."""

    clauses: list[tuple[Literal, ...]] = field(default_factory=list)

    def add_clause(self, *literals: Literal) -> None:
        self.clauses.append(tuple(literals))

    @property
    def variables(self) -> tuple[str, ...]:
        out: set[str] = set()
        for clause in self.clauses:
            for var, _ in clause:
                out.add(var)
        return tuple(sorted(out))

    @property
    def size(self) -> int:
        return len(self.clauses)

    def to_circuit(self) -> Circuit:
        c = Circuit()
        clause_ids = []
        for clause in self.clauses:
            lits = []
            for var, sign in clause:
                vid = c.add_var(var)
                lits.append(vid if sign else c.add_not(vid))
            clause_ids.append(c.add_or(*lits) if lits else c.add_const(False))
        c.set_output(c.add_and(*clause_ids) if clause_ids else c.add_const(True))
        return c

    def primal_graph(self) -> nx.Graph:
        """Variables adjacent iff they co-occur in a clause."""
        g = nx.Graph()
        g.add_nodes_from(self.variables)
        for clause in self.clauses:
            vs = [var for var, _ in clause]
            for i in range(len(vs)):
                for j in range(i + 1, len(vs)):
                    g.add_edge(vs[i], vs[j])
        return g

    def evaluate(self, assignment) -> bool:
        for clause in self.clauses:
            if not any(bool(assignment[var]) == sign for var, sign in clause):
                return False
        return True


def tseitin(circuit: Circuit, gate_prefix: str = "_g") -> tuple[CNF, list[str]]:
    """The Tseitin CNF ``T(X, Z)`` of a circuit: one fresh variable per
    internal gate, equivalence clauses per gate, and a unit clause asserting
    the output.  Returns ``(cnf, gate_variables)``."""
    if circuit.output is None:
        raise ValueError("circuit has no output")
    cnf = CNF()
    gate_vars: list[str] = []
    name_of: dict[int, Literal] = {}
    for gid, gate in enumerate(circuit.gates):
        if gate.kind == VAR:
            name_of[gid] = (str(gate.payload), True)
        elif gate.kind == CONST:
            fresh = f"{gate_prefix}{gid}"
            gate_vars.append(fresh)
            name_of[gid] = (fresh, True)
            cnf.add_clause((fresh, bool(gate.payload)))
        else:
            fresh = f"{gate_prefix}{gid}"
            gate_vars.append(fresh)
            name_of[gid] = (fresh, True)
    for gid, gate in enumerate(circuit.gates):
        if gate.kind in (VAR, CONST):
            continue
        g, _ = name_of[gid]
        ins = [name_of[i] for i in gate.inputs]
        if gate.kind == NOT:
            (a, sa) = ins[0]
            # g <-> ~a
            cnf.add_clause((g, False), (a, not sa))
            cnf.add_clause((g, True), (a, sa))
        elif gate.kind == AND:
            # g -> each input; all inputs -> g
            for (a, sa) in ins:
                cnf.add_clause((g, False), (a, sa))
            cnf.add_clause((g, True), *[(a, not sa) for (a, sa) in ins])
        else:  # OR
            for (a, sa) in ins:
                cnf.add_clause((g, True), (a, not sa))
            cnf.add_clause((g, False), *[(a, sa) for (a, sa) in ins])
    out_var, out_sign = name_of[circuit.output]
    cnf.add_clause((out_var, out_sign))
    return cnf, gate_vars


@dataclass
class BaselineResult:
    """Petke–Razgon-style compilation outcome."""

    manager: ObddManager
    root: int
    peak_size: int  # size of the decomposable form *before* quantification
    final_size: int
    tseitin_variables: int
    circuit_size: int


def petke_razgon_baseline(circuit: Circuit, order: Sequence[str] | None = None) -> BaselineResult:
    """Compile ``C(X)`` via ``(∃Z) D_T(X, Z)`` (the eq.-(3) route).

    The intermediate decomposable form is an OBDD of the Tseitin CNF under a
    min-fill-informed order (gate variables interleaved where the heuristic
    puts them); its size — the quantity eq. (3) bounds by ``O(g(k)·m)`` —
    depends on the *circuit size* ``m``, not just on ``n``.
    """
    cnf, gate_vars = tseitin(circuit)
    if order is None:
        from ..graphs.elimination import min_fill_order

        graph = cnf.primal_graph()
        order = list(min_fill_order(graph))
    mgr = ObddManager(order)
    root = mgr.compile_circuit(cnf.to_circuit())
    peak = mgr.size(root)
    quantified = mgr.exists(root, gate_vars)
    return BaselineResult(
        manager=mgr,
        root=quantified,
        peak_size=peak,
        final_size=mgr.size(quantified),
        tseitin_variables=len(cnf.variables),
        circuit_size=circuit.size,
    )
