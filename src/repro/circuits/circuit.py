"""General Boolean circuits over the standard basis (Section 2.1).

Circuits are DAGs whose internal gates are unbounded-fanin AND/OR and fanin-1
NOT, and whose inputs are pairwise-distinct variables or constants.  The
*size* of a circuit is its number of gates; its *treewidth* is the treewidth
of the undirected graph underlying the DAG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

import networkx as nx
import numpy as np

from ..core.boolfunc import BooleanFunction

__all__ = ["Gate", "Circuit", "AND", "OR", "NOT", "VAR", "CONST"]

VAR = "var"
CONST = "const"
AND = "and"
OR = "or"
NOT = "not"

_KINDS = {VAR, CONST, AND, OR, NOT}


@dataclass(frozen=True)
class Gate:
    """A single gate: ``kind`` in {var, const, and, or, not}.

    ``payload`` is the variable name for VAR gates, the Boolean value for
    CONST gates, and ``None`` otherwise.
    """

    kind: str
    inputs: tuple[int, ...]
    payload: str | bool | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown gate kind {self.kind!r}")
        if self.kind == VAR and not isinstance(self.payload, str):
            raise ValueError("var gate needs a variable name payload")
        if self.kind == CONST and not isinstance(self.payload, bool):
            raise ValueError("const gate needs a bool payload")
        if self.kind == NOT and len(self.inputs) != 1:
            raise ValueError("not gate has fanin exactly 1")
        if self.kind in (VAR, CONST) and self.inputs:
            raise ValueError("input gates have no wires in")


class Circuit:
    """A mutable Boolean circuit builder / immutable-ish evaluator.

    Gates are referenced by integer ids (their index in ``gates``).  Variable
    gates are deduplicated by name, matching the paper's requirement that
    input gates are pairwise distinct variables.
    """

    def __init__(self) -> None:
        self.gates: list[Gate] = []
        self._var_ids: dict[str, int] = {}
        self._const_ids: dict[bool, int] = {}
        self.output: int | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _add(self, gate: Gate) -> int:
        self.gates.append(gate)
        return len(self.gates) - 1

    def add_var(self, name: str) -> int:
        if name in self._var_ids:
            return self._var_ids[name]
        gid = self._add(Gate(VAR, (), name))
        self._var_ids[name] = gid
        return gid

    def add_const(self, value: bool) -> int:
        value = bool(value)
        if value in self._const_ids:
            return self._const_ids[value]
        gid = self._add(Gate(CONST, (), value))
        self._const_ids[value] = gid
        return gid

    def add_and(self, *inputs: int) -> int:
        self._check_ids(inputs)
        return self._add(Gate(AND, tuple(inputs)))

    def add_or(self, *inputs: int) -> int:
        self._check_ids(inputs)
        return self._add(Gate(OR, tuple(inputs)))

    def add_not(self, input_id: int) -> int:
        self._check_ids((input_id,))
        return self._add(Gate(NOT, (input_id,)))

    def set_output(self, gid: int) -> None:
        self._check_ids((gid,))
        self.output = gid

    def _check_ids(self, ids: Iterable[int]) -> None:
        n = len(self.gates)
        for i in ids:
            if not (0 <= i < n):
                raise ValueError(f"gate id {i} out of range (have {n} gates)")

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of gates (the paper's ``|C|``)."""
        return len(self.gates)

    @property
    def variables(self) -> tuple[str, ...]:
        return tuple(sorted(self._var_ids))

    def gate_variables(self, gid: int) -> frozenset[str]:
        """``var(C_g)`` — variables feeding the subcircuit rooted at ``gid``."""
        seen: set[int] = set()
        out: set[str] = set()
        stack = [gid]
        while stack:
            g = stack.pop()
            if g in seen:
                continue
            seen.add(g)
            gate = self.gates[g]
            if gate.kind == VAR:
                out.add(gate.payload)  # type: ignore[arg-type]
            stack.extend(gate.inputs)
        return frozenset(out)

    def topological_order(self) -> list[int]:
        """Gate ids, inputs before outputs (gates are appended post-inputs,
        so index order is already topological)."""
        return list(range(len(self.gates)))

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------
    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        if self.output is None:
            raise ValueError("circuit has no output gate")
        vals: list[bool] = [False] * len(self.gates)
        for gid in self.topological_order():
            gate = self.gates[gid]
            if gate.kind == VAR:
                vals[gid] = bool(assignment[gate.payload])  # type: ignore[index]
            elif gate.kind == CONST:
                vals[gid] = bool(gate.payload)
            elif gate.kind == NOT:
                vals[gid] = not vals[gate.inputs[0]]
            elif gate.kind == AND:
                vals[gid] = all(vals[i] for i in gate.inputs)
            else:
                vals[gid] = any(vals[i] for i in gate.inputs)
        return vals[self.output]

    def function(self, variables: Sequence[str] | None = None) -> BooleanFunction:
        """The Boolean function ``F_C`` computed by the circuit, as an exact
        truth table over ``variables`` (default: the circuit's variables).

        Vectorized: every gate computes a length-``2**n`` bool array.
        """
        if self.output is None:
            raise ValueError("circuit has no output gate")
        vs = tuple(sorted(set(variables) if variables is not None else self._var_ids))
        missing = set(self._var_ids) - set(vs)
        if missing:
            raise ValueError(f"circuit uses variables outside the requested set: {missing}")
        n = len(vs)
        idx = np.arange(1 << n)
        vals: list[np.ndarray | None] = [None] * len(self.gates)
        # Only evaluate gates reachable from the output.
        needed = self._reachable(self.output)
        for gid in self.topological_order():
            if gid not in needed:
                continue
            gate = self.gates[gid]
            if gate.kind == VAR:
                i = vs.index(gate.payload)  # type: ignore[arg-type]
                vals[gid] = ((idx >> i) & 1).astype(bool)
            elif gate.kind == CONST:
                vals[gid] = np.full(1 << n, bool(gate.payload), dtype=bool)
            elif gate.kind == NOT:
                vals[gid] = ~vals[gate.inputs[0]]  # type: ignore[operator]
            elif gate.kind == AND:
                acc = np.ones(1 << n, dtype=bool)
                for i in gate.inputs:
                    acc &= vals[i]  # type: ignore[arg-type]
                vals[gid] = acc
            else:
                acc = np.zeros(1 << n, dtype=bool)
                for i in gate.inputs:
                    acc |= vals[i]  # type: ignore[arg-type]
                vals[gid] = acc
        return BooleanFunction(vs, vals[self.output])  # type: ignore[arg-type]

    def _reachable(self, root: int) -> set[int]:
        seen: set[int] = set()
        stack = [root]
        while stack:
            g = stack.pop()
            if g in seen:
                continue
            seen.add(g)
            stack.extend(self.gates[g].inputs)
        return seen

    # ------------------------------------------------------------------
    # graphs
    # ------------------------------------------------------------------
    def digraph(self) -> nx.DiGraph:
        g = nx.DiGraph()
        g.add_nodes_from(range(len(self.gates)))
        for gid, gate in enumerate(self.gates):
            for i in gate.inputs:
                g.add_edge(i, gid)
        return g

    def graph(self) -> nx.Graph:
        """The undirected graph underlying the DAG (treewidth is taken of
        this graph, per Definition of circuit treewidth)."""
        return nx.Graph(self.digraph())

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def trim(self) -> "Circuit":
        """Drop gates unreachable from the output (renumbering ids)."""
        if self.output is None:
            raise ValueError("circuit has no output gate")
        keep = sorted(self._reachable(self.output))
        remap = {old: new for new, old in enumerate(keep)}
        out = Circuit()
        for old in keep:
            gate = self.gates[old]
            new_gate = Gate(gate.kind, tuple(remap[i] for i in gate.inputs), gate.payload)
            out.gates.append(new_gate)
            if gate.kind == VAR:
                out._var_ids[gate.payload] = remap[old]  # type: ignore[index]
            if gate.kind == CONST:
                out._const_ids[bool(gate.payload)] = remap[old]
        out.output = remap[self.output]
        return out

    def binarize(self) -> "Circuit":
        """Split unbounded-fanin AND/OR gates into fanin-2 chains."""
        out = Circuit()
        remap: dict[int, int] = {}
        for gid, gate in enumerate(self.gates):
            if gate.kind == VAR:
                remap[gid] = out.add_var(gate.payload)  # type: ignore[arg-type]
            elif gate.kind == CONST:
                remap[gid] = out.add_const(bool(gate.payload))
            elif gate.kind == NOT:
                remap[gid] = out.add_not(remap[gate.inputs[0]])
            else:
                ins = [remap[i] for i in gate.inputs]
                if not ins:
                    remap[gid] = out.add_const(gate.kind == AND)
                    continue
                acc = ins[0]
                for nxt in ins[1:]:
                    acc = out.add_and(acc, nxt) if gate.kind == AND else out.add_or(acc, nxt)
                remap[gid] = acc
        if self.output is not None:
            out.set_output(remap[self.output])
        return out

    def pad_with_redundant_gates(self, extra: int) -> "Circuit":
        """Append ``extra`` semantically-idle gates (double negations feeding
        nothing new), growing ``m`` while keeping ``n`` and the function fixed.
        Used by the eq.(3)-vs-eq.(4) experiment (size-in-m vs size-in-n)."""
        if self.output is None:
            raise ValueError("circuit has no output gate")
        out = self.copy()
        anchor = out.output
        assert anchor is not None
        cur = anchor
        for _ in range(extra // 2):
            n1 = out.add_not(cur)
            cur = out.add_not(n1)
        # AND with the double-negated output: same function, more gates.
        final = out.add_and(anchor, cur) if extra else anchor
        out.set_output(final)
        return out

    def copy(self) -> "Circuit":
        out = Circuit()
        out.gates = list(self.gates)
        out._var_ids = dict(self._var_ids)
        out._const_ids = dict(self._const_ids)
        out.output = self.output
        return out

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Circuit(size={self.size}, vars={len(self._var_ids)}, output={self.output})"

    @classmethod
    def from_function_dnf(cls, f: BooleanFunction) -> "Circuit":
        """The DNF circuit whose terms are exactly the models of ``f``
        (used by Proposition 1 as a trivial treewidth upper bound)."""
        c = cls()
        terms: list[int] = []
        for model in f.models():
            lits = []
            for v, b in sorted(model.items()):
                vid = c.add_var(v)
                lits.append(vid if b else c.add_not(vid))
            terms.append(c.add_and(*lits) if lits else c.add_const(True))
        c.set_output(c.add_or(*terms) if terms else c.add_const(False))
        return c
