"""The knowledge compilation map, executable (Darwiche & Marquis [14]).

The paper situates its results inside the knowledge compilation map:
SDDs and OBDDs are deterministic structured NNFs; deterministic
decomposable NNFs (d-DNNF) support linear-time counting; DNNFs support
clausal entailment and forgetting but not counting; DNFs/IPs sit at the
bottom.  This module classifies a given NNF into the map's languages and
exposes the map's *queries* with the right complexity characteristics:

- CO (consistency), VA (validity), CE (clausal entailment),
- CT (model counting), ME (model enumeration), EQ (equivalence),

each implemented by the polynomial algorithm when the language supports
it, with brute-force fallbacks clearly flagged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..core.boolfunc import BooleanFunction
from ..core.vtree import Vtree
from .nnf import NNF, conj, disj, false_node, lit, true_node

__all__ = ["LanguageReport", "classify", "consistency", "validity", "clausal_entailment",
           "model_count", "enumerate_models", "equivalent"]


@dataclass
class LanguageReport:
    """Membership of an NNF in the compilation map's languages."""

    is_nnf: bool
    is_dnnf: bool
    is_deterministic: bool
    is_d_dnnf: bool
    is_smooth: bool
    is_dnf: bool
    is_cnf: bool
    is_term: bool
    is_clause: bool
    structured_vtree: Vtree | None

    @property
    def is_structured(self) -> bool:
        return self.structured_vtree is not None

    def languages(self) -> list[str]:
        out = ["NNF"]
        if self.is_dnnf:
            out.append("DNNF")
        if self.is_d_dnnf:
            out.append("d-DNNF")
        if self.is_structured and self.is_dnnf:
            out.append("structured DNNF")
        if self.is_structured and self.is_d_dnnf:
            out.append("det. structured NNF")
        if self.is_dnf:
            out.append("DNF")
        if self.is_cnf:
            out.append("CNF")
        if self.is_term:
            out.append("term")
        if self.is_clause:
            out.append("clause")
        return out


def _is_flat_dnf(root: NNF) -> bool:
    if root.kind in ("true", "false", "lit"):
        return True
    if root.kind == "and":
        return all(c.kind == "lit" for c in root.children)
    if root.kind != "or":
        return False
    for c in root.children:
        if c.kind == "lit":
            continue
        if c.kind == "and" and all(g.kind == "lit" for g in c.children):
            continue
        return False
    return True


def _is_flat_cnf(root: NNF) -> bool:
    if root.kind in ("true", "false", "lit"):
        return True
    if root.kind == "or":
        return all(c.kind == "lit" for c in root.children)
    if root.kind != "and":
        return False
    for c in root.children:
        if c.kind == "lit":
            continue
        if c.kind == "or" and all(g.kind == "lit" for g in c.children):
            continue
        return False
    return True


def classify(root: NNF, candidate_vtrees: Iterable[Vtree] | None = None) -> LanguageReport:
    """Classify ``root`` in the knowledge compilation map.

    Structuredness is searched over ``candidate_vtrees`` (default: all
    vtrees over the variables, for ≤ 6 variables)."""
    dec = root.is_decomposable()
    det = root.is_deterministic()
    structured: Vtree | None = None
    cands = candidate_vtrees
    if cands is None and len(root.variables) <= 6 and root.variables:
        cands = Vtree.enumerate_all(sorted(root.variables))
    if cands is not None:
        for t in cands:
            if root.is_structured_by(t):
                structured = t
                break
    return LanguageReport(
        is_nnf=True,
        is_dnnf=dec,
        is_deterministic=det,
        is_d_dnnf=dec and det,
        is_smooth=root.is_smooth(),
        is_dnf=_is_flat_dnf(root),
        is_cnf=_is_flat_cnf(root),
        is_term=root.kind in ("true", "false", "lit")
        or (root.kind == "and" and all(c.kind == "lit" for c in root.children)),
        is_clause=root.kind in ("true", "false", "lit")
        or (root.kind == "or" and all(c.kind == "lit" for c in root.children)),
        structured_vtree=structured,
    )


# ----------------------------------------------------------------------
# queries
# ----------------------------------------------------------------------
def consistency(root: NNF) -> bool:
    """CO.  Linear on DNNF (decomposability ⇒ satisfiability distributes
    over AND); brute-force fallback otherwise."""
    if root.is_decomposable():
        memo: dict[int, bool] = {}
        for node in root.nodes():
            if node.kind == "true":
                v = True
            elif node.kind == "false":
                v = False
            elif node.kind == "lit":
                v = True
            elif node.kind == "and":
                v = all(memo[id(c)] for c in node.children)
            else:
                v = any(memo[id(c)] for c in node.children)
            memo[id(node)] = v
        return memo[id(root)]
    return root.function(sorted(root.variables)).is_satisfiable()


def validity(root: NNF) -> bool:
    """VA.  Linear when the negation problem reduces (d-DNNF via counting);
    brute-force fallback otherwise."""
    vs = sorted(root.variables)
    if root.is_decomposable() and root.is_deterministic():
        return root.model_count(vs) == (1 << len(vs))
    return root.function(vs).is_tautology()


def clausal_entailment(root: NNF, clause: Sequence[tuple[str, bool]]) -> bool:
    """CE: does the circuit entail the clause?  On DNNF: condition on the
    negated clause and test consistency (linear)."""
    assignment = {v: (0 if sign else 1) for v, sign in clause}
    conditioned = root.condition(assignment)
    if conditioned.is_decomposable():
        return not consistency(conditioned)
    vs = sorted(root.variables)
    return not conditioned.function(vs).is_satisfiable()


def model_count(root: NNF, scope: Iterable[str] | None = None) -> int:
    """CT.  Linear on d-DNNF; brute force (with a flagging docstring)
    otherwise."""
    if root.is_decomposable() and root.is_deterministic():
        return root.model_count(scope)
    vs = sorted(set(scope) if scope is not None else root.variables)
    return root.function(vs).count_models()


def enumerate_models(root: NNF, scope: Sequence[str] | None = None) -> Iterator[dict[str, int]]:
    """ME: enumerate models (polynomial delay on DNNF via conditioning)."""
    vs = sorted(set(scope) if scope is not None else root.variables)

    def rec(node: NNF, remaining: list[str], partial: dict[str, int]) -> Iterator[dict[str, int]]:
        if not remaining:
            if node.evaluate(partial) if node.variables else node.kind != "false":
                yield dict(partial)
            return
        if node.kind == "false":
            return
        v = remaining[0]
        for b in (0, 1):
            partial[v] = b
            sub = node.condition({v: b})
            if sub.kind != "false" and (not sub.is_decomposable() or consistency(sub)):
                yield from rec(sub, remaining[1:], partial)
            del partial[v]

    yield from rec(root, vs, {})


def equivalent(a: NNF, b: NNF) -> bool:
    """EQ — via exact semantics (the map lists EQ as hard in general;
    here functions are materialized exactly, so applicable at small
    arity only)."""
    return a.equivalent(b)
