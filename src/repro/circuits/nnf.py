"""Negation normal form (NNF) DAGs and the knowledge-compilation map checks.

The paper's compilation targets are subclasses of NNF: decomposable NNFs
(DNNF), deterministic DNNFs (d-DNNF), *structured* deterministic NNFs, SDDs
and OBDDs.  This module provides the NNF DAG representation and the exact
*semantic* checks for each property:

- :meth:`NNF.is_decomposable` — AND gates split variables (Darwiche).
- :meth:`NNF.is_deterministic` — OR gates have pairwise-disjoint models.
- :meth:`NNF.is_structured_by` — AND gates respect a vtree (Pipatsrisawat &
  Darwiche; Section 2.1 of the paper).
- model counting / weighted model counting in one pass on d-DNNFs
  (probability computation on lineages: the whole point of query
  compilation).
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from ..core.boolfunc import BooleanFunction
from ..core.vtree import Vtree

__all__ = ["NNF", "true_node", "false_node", "lit", "conj", "disj"]


class NNF:
    """A node of an NNF DAG.

    Nodes are immutable; DAG sharing is by object identity.  ``kind`` is one
    of ``"true" | "false" | "lit" | "and" | "or"``.
    """

    __slots__ = ("kind", "var", "sign", "children", "_vars", "_key")

    def __init__(
        self,
        kind: str,
        var: str | None = None,
        sign: bool | None = None,
        children: tuple["NNF", ...] = (),
    ):
        if kind not in ("true", "false", "lit", "and", "or"):
            raise ValueError(f"bad NNF kind {kind!r}")
        if kind == "lit" and (var is None or sign is None):
            raise ValueError("literal needs var and sign")
        self.kind = kind
        self.var = var
        self.sign = sign
        self.children = children
        if kind == "lit":
            self._vars: frozenset[str] | None = frozenset({var})
        elif children:
            # Variable sets of internal gates are *lazy* (see ``variables``):
            # eagerly unioning per node costs Θ(n²) time and memory on the
            # 10k-variable chain NNFs that ``SddManager.to_nnf`` exports.
            self._vars = None
        else:
            self._vars = frozenset()
        self._key: object = None

    # ------------------------------------------------------------------
    # basic structure
    # ------------------------------------------------------------------
    @property
    def variables(self) -> frozenset[str]:
        """``var(C_g)`` — variables below this node.

        Materialized on first access (one O(subtree) walk reusing any
        cached descendant sets, DAG-aware) and cached on this node only —
        the :class:`~repro.core.vtree.Vtree` laziness idiom.
        """
        got = self._vars
        if got is None:
            vs: set[str] = set()
            seen: set[int] = set()
            stack: list[NNF] = [self]
            while stack:
                node = stack.pop()
                if id(node) in seen:
                    continue
                seen.add(id(node))
                cached = node._vars
                if cached is not None:
                    vs |= cached
                else:
                    stack.extend(node.children)
            got = frozenset(vs)
            self._vars = got
        return got

    def nodes(self) -> list["NNF"]:
        """All distinct nodes (by identity), children before parents."""
        seen: set[int] = set()
        order: list[NNF] = []

        stack: list[tuple[NNF, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for c in node.children:
                stack.append((c, False))
        return order

    @property
    def size(self) -> int:
        """Number of gates (the paper's ``|C|``: distinct DAG nodes)."""
        return len(self.nodes())

    @property
    def edge_count(self) -> int:
        return sum(len(n.children) for n in self.nodes())

    def and_gates(self) -> list["NNF"]:
        return [n for n in self.nodes() if n.kind == "and"]

    def or_gates(self) -> list["NNF"]:
        return [n for n in self.nodes() if n.kind == "or"]

    def structural_key(self):
        """A canonical recursive key: equal keys <=> syntactically equal DAGs
        (Theorem 3 / Lemma 6 canonicity is *syntactic* equality)."""
        if self._key is not None:
            return self._key
        memo: dict[int, object] = {}
        for node in self.nodes():
            if node.kind == "lit":
                k: object = ("lit", node.var, node.sign)
            elif node.kind in ("true", "false"):
                k = (node.kind,)
            else:
                k = (node.kind, tuple(memo[id(c)] for c in node.children))
            memo[id(node)] = k
            node._key = k
        return self._key

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------
    def function(self, variables: Sequence[str] | None = None) -> BooleanFunction:
        """Exact function over ``variables`` (default: the node's variables)."""
        vs = tuple(sorted(set(variables) if variables is not None else self.variables))
        if not self.variables <= set(vs):
            raise ValueError("requested variable set misses NNF variables")
        n = len(vs)
        idx = np.arange(1 << n)
        memo: dict[int, np.ndarray] = {}
        for node in self.nodes():
            if node.kind == "true":
                val = np.ones(1 << n, dtype=bool)
            elif node.kind == "false":
                val = np.zeros(1 << n, dtype=bool)
            elif node.kind == "lit":
                i = vs.index(node.var)  # type: ignore[arg-type]
                bit = ((idx >> i) & 1).astype(bool)
                val = bit if node.sign else ~bit
            elif node.kind == "and":
                val = np.ones(1 << n, dtype=bool)
                for c in node.children:
                    val = val & memo[id(c)]
            else:
                val = np.zeros(1 << n, dtype=bool)
                for c in node.children:
                    val = val | memo[id(c)]
            memo[id(node)] = val
        return BooleanFunction(vs, memo[id(self)])

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        memo: dict[int, bool] = {}
        for node in self.nodes():
            if node.kind == "true":
                v = True
            elif node.kind == "false":
                v = False
            elif node.kind == "lit":
                b = bool(assignment[node.var])  # type: ignore[index]
                v = b if node.sign else not b
            elif node.kind == "and":
                v = all(memo[id(c)] for c in node.children)
            else:
                v = any(memo[id(c)] for c in node.children)
            memo[id(node)] = v
        return memo[id(self)]

    def equivalent(self, other: "NNF") -> bool:
        vs = sorted(self.variables | other.variables)
        return self.function(vs) == other.function(vs)

    # ------------------------------------------------------------------
    # knowledge compilation map: language membership
    # ------------------------------------------------------------------
    def is_decomposable(self) -> bool:
        """Every AND gate's children have pairwise disjoint variable sets."""
        for node in self.and_gates():
            for a, b in itertools.combinations(node.children, 2):
                if a.variables & b.variables:
                    return False
        return True

    def is_deterministic(self) -> bool:
        """Every OR gate's children have pairwise disjoint model sets
        (checked exactly over the union of the children's variables)."""
        for node in self.or_gates():
            if len(node.children) < 2:
                continue
            vs = sorted(node.variables)
            tables = [c.function(vs).table for c in node.children]
            for a, b in itertools.combinations(tables, 2):
                if bool((a & b).any()):
                    return False
        return True

    def is_structured_by(self, vtree: Vtree) -> bool:
        """Every AND gate has fanin 2 and is structured by some vtree node
        (``var(left) ⊆ Y_{v_l}`` and ``var(right) ⊆ Y_{v_r}``)."""
        if not self.variables <= vtree.variables:
            return False
        for node in self.and_gates():
            if len(node.children) != 2:
                return False
            l, r = node.children
            if vtree.find_structuring_node(l.variables, r.variables) is None:
                return False
        return True

    def is_structured(self, candidate_vtrees: Iterable[Vtree] | None = None) -> bool:
        """Structured by *some* vtree.  With no candidates given, tries all
        vtrees over the variables (tiny variable sets only)."""
        cands = candidate_vtrees
        if cands is None:
            cands = Vtree.enumerate_all(sorted(self.variables))
        return any(self.is_structured_by(t) for t in cands)

    def is_smooth(self) -> bool:
        """Every OR gate's children mention the same variables."""
        for node in self.or_gates():
            if len({c.variables for c in node.children}) > 1:
                return False
        return True

    def structuring_map(self, vtree: Vtree) -> dict[int, Vtree]:
        """For each AND gate id, the (first, deepest-postorder) vtree node
        structuring it.  Raises if some AND gate is unstructured."""
        out: dict[int, Vtree] = {}
        for node in self.and_gates():
            if len(node.children) != 2:
                raise ValueError("structured circuits need fanin-2 AND gates")
            l, r = node.children
            v = vtree.find_structuring_node(l.variables, r.variables)
            if v is None:
                raise ValueError("AND gate not structured by the vtree")
            out[id(node)] = v
        return out

    # ------------------------------------------------------------------
    # counting / probability (valid on deterministic decomposable NNFs)
    # ------------------------------------------------------------------
    def model_count(self, scope: Iterable[str] | None = None) -> int:
        """Exact model count over ``scope`` (default: the node's variables).

        Linear-time on d-DNNFs: OR children are scaled by ``2**missing`` to
        account for non-smoothness, AND children multiply.
        """
        scope_set = frozenset(scope) if scope is not None else self.variables
        if not self.variables <= scope_set:
            raise ValueError("scope misses NNF variables")
        memo: dict[int, int] = {}
        for node in self.nodes():
            if node.kind == "true":
                c = 1
            elif node.kind == "false":
                c = 0
            elif node.kind == "lit":
                c = 1
            elif node.kind == "and":
                c = 1
                for ch in node.children:
                    c *= memo[id(ch)]
            else:
                c = 0
                for ch in node.children:
                    c += memo[id(ch)] << (len(node.variables) - len(ch.variables))
            memo[id(node)] = c
        return memo[id(self)] << (len(scope_set) - len(self.variables))

    def weighted_model_count(
        self, weights: Mapping[str, tuple[float, float]], scope: Iterable[str] | None = None
    ):
        """WMC with per-variable weights ``(w_negative, w_positive)``.

        With ``(1-p, p)`` weights this is exactly the probability of the
        lineage under a tuple-independent database; weights may be floats or
        :class:`fractions.Fraction` for exact arithmetic.
        """
        scope_set = frozenset(scope) if scope is not None else self.variables
        if not self.variables <= scope_set:
            raise ValueError("scope misses NNF variables")

        def missing_factor(vars_out: frozenset[str]):
            f = 1
            for v in vars_out:
                w0, w1 = weights[v]
                f = f * (w0 + w1)
            return f

        memo: dict[int, object] = {}
        for node in self.nodes():
            if node.kind == "true":
                w: object = 1
            elif node.kind == "false":
                w = 0
            elif node.kind == "lit":
                w0, w1 = weights[node.var]  # type: ignore[index]
                w = w1 if node.sign else w0
            elif node.kind == "and":
                w = 1
                for ch in node.children:
                    w = w * memo[id(ch)]  # type: ignore[operator]
            else:
                w = 0
                for ch in node.children:
                    w = w + memo[id(ch)] * missing_factor(node.variables - ch.variables)  # type: ignore[operator]
            memo[id(node)] = w
        return memo[id(self)] * missing_factor(frozenset(scope_set) - self.variables)

    def probability(self, prob: Mapping[str, float], scope: Iterable[str] | None = None) -> float:
        """Probability of the computed function under independent variables
        with ``P(v=1) = prob[v]`` (d-DNNF linear-time evaluation)."""
        weights = {v: (1.0 - float(p), float(p)) for v, p in prob.items()}
        return float(self.weighted_model_count(weights, scope))

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def condition(self, assignment: Mapping[str, int]) -> "NNF":
        """Replace assigned literals by constants and simplify.

        Conditioning preserves determinism and structuredness (used in the
        Theorem 5 lower-bound argument, citing [27])."""
        memo: dict[int, NNF] = {}
        for node in self.nodes():
            if node.kind == "lit" and node.var in assignment:
                val = bool(assignment[node.var])
                res = true_node() if (val == node.sign) else false_node()
            elif node.kind == "and":
                res = conj([memo[id(c)] for c in node.children])
            elif node.kind == "or":
                res = disj([memo[id(c)] for c in node.children])
            else:
                res = node
            memo[id(node)] = res
        return memo[id(self)]

    def forget(self, variables: Iterable[str]) -> "NNF":
        """Existential quantification by replacing literals with ``true`` —
        sound on *decomposable* NNFs (Darwiche 2001); raises otherwise."""
        if not self.is_decomposable():
            raise ValueError("forgetting by literal substitution requires a DNNF")
        drop = set(variables)
        memo: dict[int, NNF] = {}
        for node in self.nodes():
            if node.kind == "lit" and node.var in drop:
                res = true_node()
            elif node.kind == "and":
                res = conj([memo[id(c)] for c in node.children])
            elif node.kind == "or":
                res = disj([memo[id(c)] for c in node.children])
            else:
                res = node
            memo[id(node)] = res
        return memo[id(self)]

    def smooth(self) -> "NNF":
        """Return an equivalent smooth NNF (pads OR children with tautologies
        on missing variables).  Preserves determinism and decomposability but
        not structuredness in general."""
        memo: dict[int, NNF] = {}

        def pad(node: NNF, target: frozenset[str]) -> NNF:
            missing = target - node.variables
            if not missing:
                return node
            fills = [disj([lit(v, True), lit(v, False)]) for v in sorted(missing)]
            return conj([node, *fills])

        for node in self.nodes():
            if node.kind == "and":
                res = conj([memo[id(c)] for c in node.children])
            elif node.kind == "or":
                kids = [memo[id(c)] for c in node.children]
                target = frozenset().union(*[k.variables for k in kids]) if kids else frozenset()
                res = disj([pad(k, target) for k in kids])
            else:
                res = node
            memo[id(node)] = res
        return memo[id(self)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.kind == "lit":
            return f"NNF({'' if self.sign else '~'}{self.var})"
        return f"NNF({self.kind}, size={self.size})"


# ----------------------------------------------------------------------
# constructors with light simplification
# ----------------------------------------------------------------------
_TRUE = NNF("true")
_FALSE = NNF("false")


def true_node() -> NNF:
    return _TRUE


def false_node() -> NNF:
    return _FALSE


def lit(var: str, sign: bool) -> NNF:
    return NNF("lit", var=var, sign=bool(sign))


def conj(children: Sequence[NNF]) -> NNF:
    """AND with constant simplification (``⊥`` absorbs, ``⊤`` drops)."""
    kids: list[NNF] = []
    for c in children:
        if c.kind == "false":
            return _FALSE
        if c.kind == "true":
            continue
        kids.append(c)
    if not kids:
        return _TRUE
    if len(kids) == 1:
        return kids[0]
    return NNF("and", children=tuple(kids))


def disj(children: Sequence[NNF]) -> NNF:
    """OR with constant simplification (``⊤`` absorbs, ``⊥`` drops)."""
    kids: list[NNF] = []
    for c in children:
        if c.kind == "true":
            return _TRUE
        if c.kind == "false":
            continue
        kids.append(c)
    if not kids:
        return _FALSE
    if len(kids) == 1:
        return kids[0]
    return NNF("or", children=tuple(kids))
