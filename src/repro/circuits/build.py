"""Circuit and function families used throughout the paper.

Includes the paper's named functions:

- :func:`implication` — Examples 1–4 (``x -> y``).
- :func:`disjointness` — equation (7), ``D_n(X_n, Y_n)``.
- :func:`h0`, :func:`hi`, :func:`hk`, :func:`h_family` — the inversion
  functions ``H^i_{k,n}`` of Section 4.1.
- bounded-treewidth / bounded-pathwidth families for the Result-1 and
  equation-(2) experiments (chains, ladders, and/or trees).
"""

from __future__ import annotations

from typing import Sequence

from .circuit import Circuit
from ..core.boolfunc import BooleanFunction

__all__ = [
    "implication",
    "disjointness",
    "disjointness_function",
    "xvar",
    "yvar",
    "zvar",
    "h0",
    "hi",
    "hk",
    "h_family",
    "h_function",
    "parity",
    "chain_and_or",
    "path_match",
    "and_or_tree",
    "ladder",
    "grid",
    "cnf_chain",
]


# ----------------------------------------------------------------------
# small named functions
# ----------------------------------------------------------------------
def implication() -> Circuit:
    """``F(x, y) = x -> y`` (the running example of Section 3.1)."""
    c = Circuit()
    x, y = c.add_var("x"), c.add_var("y")
    c.set_output(c.add_or(c.add_not(x), y))
    return c


def disjointness(n: int) -> Circuit:
    """``D_n(X, Y) = AND_i (¬x_i ∨ ¬y_i)`` — equation (7)."""
    if n < 1:
        raise ValueError("n >= 1")
    c = Circuit()
    clauses = []
    for i in range(1, n + 1):
        xi, yi = c.add_var(f"x{i}"), c.add_var(f"y{i}")
        clauses.append(c.add_or(c.add_not(xi), c.add_not(yi)))
    c.set_output(c.add_and(*clauses))
    return c


def disjointness_function(n: int) -> BooleanFunction:
    return disjointness(n).function()


# ----------------------------------------------------------------------
# the inversion functions H^i_{k,n} (Section 4.1)
# ----------------------------------------------------------------------
def xvar(l: int) -> str:
    return f"x{l}"


def yvar(m: int) -> str:
    return f"y{m}"


def zvar(i: int, l: int, m: int) -> str:
    """``z^i_{l,m}`` — level ``i`` in 1..k, indices ``l, m`` in 1..n."""
    return f"z{i}_{l}_{m}"


def h0(k: int, n: int) -> Circuit:
    """``H^0_{k,n}(X, Z^1) = OR_{l,m} (x_l ∧ z^1_{l,m})``."""
    c = Circuit()
    terms = []
    for l in range(1, n + 1):
        xl = c.add_var(xvar(l))
        for m in range(1, n + 1):
            terms.append(c.add_and(xl, c.add_var(zvar(1, l, m))))
    c.set_output(c.add_or(*terms))
    return c


def hi(k: int, n: int, i: int) -> Circuit:
    """``H^i_{k,n}(Z^i, Z^{i+1}) = OR_{l,m} (z^i_{l,m} ∧ z^{i+1}_{l,m})``
    for ``1 <= i <= k-1``."""
    if not (1 <= i <= k - 1):
        raise ValueError("need 1 <= i <= k-1")
    c = Circuit()
    terms = []
    for l in range(1, n + 1):
        for m in range(1, n + 1):
            terms.append(c.add_and(c.add_var(zvar(i, l, m)), c.add_var(zvar(i + 1, l, m))))
    c.set_output(c.add_or(*terms))
    return c


def hk(k: int, n: int) -> Circuit:
    """``H^k_{k,n}(Z^k, Y) = OR_{l,m} (z^k_{l,m} ∧ y_m)``."""
    c = Circuit()
    terms = []
    for m in range(1, n + 1):
        ym = c.add_var(yvar(m))
        for l in range(1, n + 1):
            terms.append(c.add_and(c.add_var(zvar(k, l, m)), ym))
    c.set_output(c.add_or(*terms))
    return c


def h_family(k: int, n: int) -> list[Circuit]:
    """``[H^0, H^1, ..., H^k]`` for given ``k, n``."""
    out = [h0(k, n)]
    for i in range(1, k):
        out.append(hi(k, n, i))
    out.append(hk(k, n))
    return out


def h_function(k: int, n: int, i: int) -> BooleanFunction:
    """``H^i_{k,n}`` as an exact function."""
    if i == 0:
        return h0(k, n).function()
    if i == k:
        return hk(k, n).function()
    return hi(k, n, i).function()


# ----------------------------------------------------------------------
# structured families for the width experiments
# ----------------------------------------------------------------------
def parity(n: int) -> Circuit:
    """XOR chain — constant pathwidth, constant OBDD width (a CPW(O(1)) witness)."""
    c = Circuit()
    acc = c.add_var("x1")
    for i in range(2, n + 1):
        xi = c.add_var(f"x{i}")
        # acc XOR xi = (acc ∧ ¬xi) ∨ (¬acc ∧ xi)
        acc = c.add_or(c.add_and(acc, c.add_not(xi)), c.add_and(c.add_not(acc), xi))
    c.set_output(acc)
    return c


def chain_and_or(n: int) -> Circuit:
    """``(x1 ∧ x2) ∨ (x2 ∧ x3) ∨ ... ∨ (x_{n-1} ∧ x_n)`` as a *chain-shaped*
    circuit (OR gates chained) — pathwidth O(1)."""
    if n < 2:
        raise ValueError("n >= 2")
    c = Circuit()
    xs = [c.add_var(f"x{i}") for i in range(1, n + 1)]
    acc = c.add_and(xs[0], xs[1])
    for i in range(1, n - 1):
        acc = c.add_or(acc, c.add_and(xs[i], xs[i + 1]))
    c.set_output(acc)
    return c


def path_match(n: int) -> BooleanFunction:
    """The function of :func:`chain_and_or` (two adjacent true variables)."""
    return chain_and_or(n).function()


def and_or_tree(depth: int, prefix: str = "x") -> Circuit:
    """Alternating AND/OR complete binary tree on ``2**depth`` fresh leaves.

    The circuit is a tree, hence treewidth 1, but its natural pathwidth grows
    with depth — the CTW(O(1)) vs CPW(O(1)) contrast family of Figure 1.
    """
    c = Circuit()
    counter = [0]

    def build(d: int, use_and: bool) -> int:
        if d == 0:
            counter[0] += 1
            return c.add_var(f"{prefix}{counter[0]}")
        l = build(d - 1, not use_and)
        r = build(d - 1, not use_and)
        return c.add_and(l, r) if use_and else c.add_or(l, r)

    c.set_output(build(depth, True))
    return c


def ladder(n: int) -> Circuit:
    """A ladder-shaped circuit (treewidth ≤ 3, not a tree): rails of AND/OR
    with rungs.  ``2n`` variables."""
    if n < 1:
        raise ValueError("n >= 1")
    c = Circuit()
    a_prev = c.add_var("a1")
    b_prev = c.add_var("b1")
    rail = c.add_and(a_prev, b_prev)
    for i in range(2, n + 1):
        ai = c.add_var(f"a{i}")
        bi = c.add_var(f"b{i}")
        rung = c.add_and(ai, bi)
        cross = c.add_or(c.add_and(a_prev, bi), c.add_and(b_prev, ai))
        rail = c.add_or(rail, rung, cross)
        a_prev, b_prev = ai, bi
    c.set_output(rail)
    return c


def grid(rows: int, cols: int) -> Circuit:
    """A grid-shaped circuit (treewidth ~ ``min(rows, cols)``): one variable
    per cell, one AND per grid edge, ORs accumulated row-major.

    ``rows × cols`` variables named ``g{i}_{j}``; the function is "some two
    adjacent cells are both true" — the 2-dimensional analogue of
    :func:`chain_and_or` (``grid(1, n)`` is the same function).
    """
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise ValueError("need at least two cells")
    c = Circuit()
    xs = [
        [c.add_var(f"g{i}_{j}") for j in range(1, cols + 1)]
        for i in range(1, rows + 1)
    ]
    acc = None
    for i in range(rows):
        for j in range(cols):
            for di, dj in ((0, 1), (1, 0)):
                ni, nj = i + di, j + dj
                if ni < rows and nj < cols:
                    edge = c.add_and(xs[i][j], xs[ni][nj])
                    acc = edge if acc is None else c.add_or(acc, edge)
    assert acc is not None
    c.set_output(acc)
    return c


def cnf_chain(n: int, clause_width: int = 2) -> Circuit:
    """CNF over ``x1..xn`` with clauses on consecutive windows — primal
    pathwidth ``clause_width - 1``."""
    if n < clause_width:
        raise ValueError("need n >= clause_width")
    c = Circuit()
    xs = [c.add_var(f"x{i}") for i in range(1, n + 1)]
    clauses = []
    for i in range(n - clause_width + 1):
        lits = []
        for j in range(clause_width):
            lit = xs[i + j]
            if (i + j) % 2 == 1:
                lit = c.add_not(lit)
            lits.append(lit)
        clauses.append(c.add_or(*lits))
    c.set_output(c.add_and(*clauses))
    return c
