"""Tree decompositions and *nice* tree decompositions.

Lemma 1's proof consumes a nice tree decomposition of the circuit whose root
bag is empty, so every input gate (variable) is *forgotten exactly once*;
:class:`NiceTreeDecomposition` guarantees exactly that shape.
"""

from __future__ import annotations

import itertools
from collections import Counter
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator, Sequence

import networkx as nx

__all__ = [
    "TreeDecomposition",
    "NiceNode",
    "NiceTreeDecomposition",
    "FriendlyTreeDecomposition",
]


class TreeDecomposition:
    """A tree decomposition: a tree whose nodes carry bags of graph vertices.

    ``tree`` is an undirected :class:`networkx.Graph` on integer node ids;
    ``bags`` maps node id to a frozenset of vertices.
    """

    def __init__(self, tree: nx.Graph, bags: dict[int, frozenset]):
        self.tree = tree
        self.bags = {n: frozenset(b) for n, b in bags.items()}
        if set(tree.nodes) != set(self.bags):
            raise ValueError("tree nodes and bag keys differ")

    @property
    def width(self) -> int:
        """Max bag size minus one (``-1`` for the empty decomposition)."""
        if not self.bags:
            return -1
        return max(len(b) for b in self.bags.values()) - 1

    def vertices(self) -> set:
        out: set = set()
        for b in self.bags.values():
            out |= b
        return out

    def validate(self, graph: nx.Graph) -> None:
        """Raise AssertionError unless this is a valid tree decomposition of
        ``graph`` (coverage of vertices and edges + connectivity).

        Runs in ``O(Σ|bag|)`` — one pass to index vertices, one pass over
        tree edges for connectivity — so validation stays cheap even for
        the thousands-of-bags decompositions of large circuits.
        """
        if self.tree.number_of_nodes() and not nx.is_tree(self.tree):
            raise AssertionError("decomposition tree is not a tree")
        occurrences: dict = {}  # vertex -> set of tree nodes whose bag has it
        for n, b in self.bags.items():
            for x in b:
                occurrences.setdefault(x, set()).add(n)
        covered = set(occurrences)
        if set(graph.nodes) - covered:
            raise AssertionError(f"vertices not covered: {set(graph.nodes) - covered}")
        for u, v in graph.edges:
            if u == v:
                continue
            if not (occurrences[u] & occurrences[v]):
                raise AssertionError(f"edge {(u, v)} not covered")
        # Connectivity: the tree nodes containing x induce a forest; they
        # form one component iff #nodes - #induced-edges == 1.
        induced_edges: dict = {x: 0 for x in covered}
        for n1, n2 in self.tree.edges:
            for x in self.bags[n1] & self.bags[n2]:
                induced_edges[x] += 1
        for x, occ in occurrences.items():
            if len(occ) - induced_edges[x] != 1:
                raise AssertionError(f"bags containing {x!r} are not connected")

    # ------------------------------------------------------------------
    def make_nice(self, root: int | None = None) -> "NiceTreeDecomposition":
        """Convert to a nice tree decomposition with an *empty root bag*.

        Node types: ``leaf`` (empty bag), ``introduce`` (adds one vertex),
        ``forget`` (removes one vertex), ``join`` (two children, equal bags).
        """
        if self.tree.number_of_nodes() == 0:
            return NiceTreeDecomposition(root=NiceNode("leaf", frozenset(), ()))
        if root is None:
            root = next(iter(self.tree.nodes))
        built = self._build_nice(root, parent=None)
        # Forget everything remaining on top so the root bag is empty.
        for v in sorted(built.bag, key=repr):
            built = NiceNode("forget", built.bag - {v}, (built,), vertex=v)
        return NiceTreeDecomposition(root=built)

    def make_friendly(self, root: int | None = None) -> "FriendlyTreeDecomposition":
        """Convert to a *friendly* tree decomposition (the shape the
        bag-by-bag d-DNNF builder of :mod:`repro.dnnf` consumes).

        A friendly decomposition is a nice tree decomposition with an empty
        root bag in which every vertex is forgotten exactly once; the forget
        node of a vertex is its *responsible bag* in the terminology of
        provsql / arXiv 1811.02944 §5.1 — the unique place where the vertex
        leaves the bags for good, with all its incident edges already
        covered below.  Width never increases: every friendly bag is a
        subset of one of the original bags.
        """
        return FriendlyTreeDecomposition(self.make_nice(root).root)

    def _build_nice(self, node: int, parent: int | None) -> "NiceNode":
        # Iterative bottom-up construction (an explicit DFS preorder,
        # consumed in reverse): deep decompositions of large circuits blow
        # Python's recursion limit otherwise.
        preorder: list[tuple[int, int | None]] = []
        stack: list[tuple[int, int | None]] = [(node, parent)]
        while stack:
            n, par = stack.pop()
            preorder.append((n, par))
            stack.extend((c, n) for c in self.tree.neighbors(n) if c != par)
        built: dict[int, NiceNode] = {}
        for n, par in reversed(preorder):
            bag = self.bags[n]
            children = [c for c in self.tree.neighbors(n) if c != par]
            if not children:
                built[n] = _chain_from_empty(bag)
                continue
            sub = [self._adapt(built[c], bag) for c in children]
            # Binarize joins.
            while len(sub) > 1:
                merged: list[NiceNode] = []
                for i in range(0, len(sub) - 1, 2):
                    merged.append(NiceNode("join", bag, (sub[i], sub[i + 1])))
                if len(sub) % 2 == 1:
                    merged.append(sub[-1])
                sub = merged
            built[n] = sub[0]
        return built[node]

    @staticmethod
    def _adapt(child: "NiceNode", target_bag: frozenset) -> "NiceNode":
        """Insert forget/introduce chains turning ``child.bag`` into
        ``target_bag``."""
        node = child
        for v in sorted(child.bag - target_bag, key=repr):
            node = NiceNode("forget", node.bag - {v}, (node,), vertex=v)
        for v in sorted(target_bag - node.bag, key=repr):
            node = NiceNode("introduce", node.bag | {v}, (node,), vertex=v)
        return node

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TreeDecomposition(nodes={self.tree.number_of_nodes()}, width={self.width})"


def _chain_from_empty(bag: frozenset) -> "NiceNode":
    node = NiceNode("leaf", frozenset(), ())
    for v in sorted(bag, key=repr):
        node = NiceNode("introduce", node.bag | {v}, (node,), vertex=v)
    return node


@dataclass(frozen=True)
class NiceNode:
    """A node of a nice tree decomposition."""

    kind: str  # leaf | introduce | forget | join
    bag: frozenset
    children: tuple["NiceNode", ...]
    vertex: Hashable | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("leaf", "introduce", "forget", "join"):
            raise ValueError(f"bad nice node kind {self.kind!r}")
        if self.kind == "leaf" and (self.children or self.bag):
            raise ValueError("leaf nodes have empty bags and no children")
        if self.kind in ("introduce", "forget") and len(self.children) != 1:
            raise ValueError(f"{self.kind} nodes have exactly one child")
        if self.kind == "join" and len(self.children) != 2:
            raise ValueError("join nodes have exactly two children")

    def nodes(self) -> Iterator["NiceNode"]:
        """Postorder traversal, iterative (nice trees get very deep)."""
        stack: list[tuple["NiceNode", bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                yield node
                continue
            stack.append((node, True))
            for c in reversed(node.children):
                stack.append((c, False))


class NiceTreeDecomposition:
    """A nice tree decomposition with empty root bag.

    Guarantees (checked by :meth:`validate`): the root bag is empty, and
    every vertex is forgotten exactly once — the exact preconditions of the
    Lemma 1 vtree extraction.
    """

    def __init__(self, root: NiceNode):
        self.root = root

    @property
    def width(self) -> int:
        return max((len(n.bag) for n in self.root.nodes()), default=0) - 1

    def nodes(self) -> Iterator[NiceNode]:
        return self.root.nodes()

    def forget_nodes(self) -> list[NiceNode]:
        return [n for n in self.nodes() if n.kind == "forget"]

    def leaves(self) -> list[NiceNode]:
        return [n for n in self.nodes() if n.kind == "leaf"]

    def vertices(self) -> set:
        out: set = set()
        for n in self.nodes():
            out |= n.bag
        return out

    def validate(self, graph: nx.Graph) -> None:
        if self.root.bag:
            raise AssertionError("root bag is not empty")
        # Rebuild a plain decomposition and validate it (iteratively —
        # nice trees are deep).
        tree = nx.Graph()
        bags: dict[int, frozenset] = {}
        counter = itertools.count()
        stack: list[tuple[NiceNode, int | None]] = [(self.root, None)]
        while stack:
            n, pid = stack.pop()
            nid = next(counter)
            bags[nid] = n.bag
            tree.add_node(nid)
            if pid is not None:
                tree.add_edge(pid, nid)
            stack.extend((c, nid) for c in n.children)
        TreeDecomposition(tree, bags).validate(graph)
        # Every vertex forgotten exactly once.
        forgotten = [n.vertex for n in self.forget_nodes()]
        if len(forgotten) != len(set(forgotten)):
            raise AssertionError("some vertex forgotten more than once")
        if set(forgotten) != self.vertices():
            raise AssertionError("some vertex never forgotten")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"NiceTreeDecomposition(width={self.width})"


class FriendlyTreeDecomposition(NiceTreeDecomposition):
    """A nice tree decomposition annotated for bag-by-bag d-DNNF building.

    Beyond :class:`NiceTreeDecomposition`'s guarantees (empty root bag,
    every vertex forgotten exactly once) this indexes the *responsible bag*
    of every vertex: ``responsible[v]`` is the unique forget node of ``v``.
    By connectivity, every edge incident to ``v`` is covered strictly below
    that node — which is exactly what lets the d-DNNF builder commit the
    literal of a variable gate (or discharge a gate's justification
    obligations) at its responsible bag and never look at the vertex again.
    """

    def __init__(self, root: NiceNode):
        super().__init__(root)
        responsible: dict[Hashable, NiceNode] = {}
        counts: Counter[str] = Counter()
        for n in self.nodes():
            counts[n.kind] += 1
            if n.kind == "forget":
                if n.vertex in responsible:
                    raise ValueError(
                        f"vertex {n.vertex!r} forgotten more than once; "
                        "not a friendly decomposition"
                    )
                responsible[n.vertex] = n
        if responsible.keys() != self.vertices():
            never = self.vertices() - responsible.keys()
            raise ValueError(f"vertices never forgotten: {sorted(never, key=repr)[:5]}")
        self.responsible = responsible
        self._kind_counts = dict(counts)

    def kind_counts(self) -> dict[str, int]:
        """Number of nodes per bag shape (``leaf``/``introduce``/``forget``/
        ``join``) — public counters for stats and tests."""
        return dict(self._kind_counts)

    def responsible_bag(self, vertex: Hashable) -> NiceNode:
        """The forget node of ``vertex`` (raises KeyError if unknown)."""
        return self.responsible[vertex]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FriendlyTreeDecomposition(width={self.width}, "
            f"vertices={len(self.responsible)})"
        )
