"""Exact treewidth via dynamic programming over vertex subsets.

Implements the classic elimination-ordering DP (Bodlaender et al.):

    tw(G) = f(V),   f(S) = min_{v in S} max( f(S \\ {v}), q(S \\ {v}, v) )

where ``q(S, v)`` counts the vertices of ``V \\ S \\ {v}`` reachable from
``v`` through internal vertices in ``S``.  Exponential in ``|V|`` but exact;
practical to ~16 vertices, which covers every circuit the tests and benches
measure exactly.  Larger graphs fall back to heuristics via
:func:`treewidth`.
"""

from __future__ import annotations

import networkx as nx

from .elimination import heuristic_tree_decomposition, order_to_tree_decomposition
from .treedecomp import TreeDecomposition

__all__ = ["exact_treewidth", "treewidth", "exact_tree_decomposition"]

_DEFAULT_EXACT_LIMIT = 16


def _bit_adjacency(graph: nx.Graph) -> tuple[list, list[int]]:
    nodes = sorted(graph.nodes, key=repr)
    index = {v: i for i, v in enumerate(nodes)}
    adj = [0] * len(nodes)
    for u, v in graph.edges:
        if u == v:
            continue
        adj[index[u]] |= 1 << index[v]
        adj[index[v]] |= 1 << index[u]
    return nodes, adj


def _q(adj: list[int], n: int, s_mask: int, v: int) -> int:
    """``|{w ∉ S ∪ {v} : path v → w with internals in S}|`` via BFS."""
    seen = 1 << v
    frontier = adj[v]
    reach_out = frontier & ~s_mask & ~seen
    frontier &= s_mask & ~seen
    while frontier:
        seen |= frontier
        nxt = 0
        f = frontier
        while f:
            low = f & -f
            nxt |= adj[low.bit_length() - 1]
            f ^= low
        nxt &= ~seen
        reach_out |= nxt & ~s_mask
        frontier = nxt & s_mask
    reach_out &= ~(1 << v)
    return bin(reach_out).count("1")


def exact_treewidth(graph: nx.Graph, limit: int = _DEFAULT_EXACT_LIMIT) -> int:
    """Exact treewidth (raises ``ValueError`` beyond ``limit`` vertices)."""
    g = nx.Graph(graph)
    g.remove_edges_from(nx.selfloop_edges(g))
    n = g.number_of_nodes()
    if n == 0:
        return -1
    if n > limit:
        raise ValueError(f"exact treewidth limited to {limit} vertices (got {n})")
    nodes, adj = _bit_adjacency(g)
    full = (1 << n) - 1
    # f over subsets, iterated by popcount so dependencies are ready.
    f = [0] * (1 << n)
    subsets_by_size: list[list[int]] = [[] for _ in range(n + 1)]
    for s in range(1 << n):
        subsets_by_size[bin(s).count("1")].append(s)
    for size in range(1, n + 1):
        for s in subsets_by_size[size]:
            best = n  # upper bound
            rem = s
            while rem:
                low = rem & -rem
                v = low.bit_length() - 1
                rem ^= low
                prev = s ^ low
                cost = max(f[prev], _q(adj, n, prev, v))
                if cost < best:
                    best = cost
            f[s] = best
    return f[full]


def exact_tree_decomposition(graph: nx.Graph, limit: int = _DEFAULT_EXACT_LIMIT) -> TreeDecomposition:
    """A width-optimal tree decomposition, reconstructed from the DP."""
    g = nx.Graph(graph)
    g.remove_edges_from(nx.selfloop_edges(g))
    n = g.number_of_nodes()
    if n == 0:
        return TreeDecomposition(nx.Graph(), {})
    if n > limit:
        raise ValueError(f"exact treewidth limited to {limit} vertices (got {n})")
    target = exact_treewidth(g, limit)
    nodes, adj = _bit_adjacency(g)
    # Greedy reconstruction of an optimal elimination order (reverse DP):
    # repeatedly pick a vertex whose elimination keeps the bound.
    order: list = []
    f_cache: dict[int, int] = {0: 0}

    def f(s: int) -> int:
        if s in f_cache:
            return f_cache[s]
        best = n
        rem = s
        while rem:
            low = rem & -rem
            v = low.bit_length() - 1
            rem ^= low
            prev = s ^ low
            cost = max(f(prev), _q(adj, n, prev, v))
            if cost < best:
                best = cost
        f_cache[s] = best
        return best

    s = (1 << n) - 1
    while s:
        rem = s
        chosen = None
        while rem:
            low = rem & -rem
            v = low.bit_length() - 1
            rem ^= low
            prev = s ^ low
            if max(f(prev), _q(adj, n, prev, v)) <= target:
                chosen = v
                break
        assert chosen is not None
        order.append(nodes[chosen])
        s ^= 1 << chosen
    order.reverse()  # DP eliminates last-first; elimination order is reversed
    td = order_to_tree_decomposition(g, order)
    assert td.width == target, (td.width, target)
    return td


def treewidth(graph: nx.Graph, exact_limit: int = _DEFAULT_EXACT_LIMIT) -> int:
    """Exact when small enough, heuristic upper bound otherwise."""
    g = nx.Graph(graph)
    g.remove_edges_from(nx.selfloop_edges(g))
    if g.number_of_nodes() <= exact_limit:
        return exact_treewidth(g, exact_limit)
    return heuristic_tree_decomposition(g).width
