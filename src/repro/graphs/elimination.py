"""Elimination orderings and the heuristic treewidth upper bounds.

A perfect elimination ordering of a triangulation gives a tree decomposition
whose width is the max back-degree.  ``min_degree`` and ``min_fill`` are the
standard greedy heuristics; both return valid tree decompositions (validated
in tests against :meth:`TreeDecomposition.validate`).
"""

from __future__ import annotations

from typing import Hashable, Sequence

import networkx as nx

from .treedecomp import TreeDecomposition

__all__ = [
    "min_degree_order",
    "min_fill_order",
    "order_to_tree_decomposition",
    "heuristic_tree_decomposition",
    "treewidth_upper_bound",
]


def _eliminate(g: nx.Graph, v: Hashable) -> None:
    neigh = list(g.neighbors(v))
    for i in range(len(neigh)):
        for j in range(i + 1, len(neigh)):
            g.add_edge(neigh[i], neigh[j])
    g.remove_node(v)


def min_degree_order(graph: nx.Graph) -> list:
    """Greedy minimum-degree elimination order."""
    g = nx.Graph(graph)
    g.remove_edges_from(nx.selfloop_edges(g))
    order = []
    while g.number_of_nodes():
        v = min(g.nodes, key=lambda u: (g.degree(u), repr(u)))
        order.append(v)
        _eliminate(g, v)
    return order


def _fill_in(g: nx.Graph, v: Hashable) -> int:
    neigh = list(g.neighbors(v))
    missing = 0
    for i in range(len(neigh)):
        for j in range(i + 1, len(neigh)):
            if not g.has_edge(neigh[i], neigh[j]):
                missing += 1
    return missing


def min_fill_order(graph: nx.Graph) -> list:
    """Greedy minimum-fill-in elimination order."""
    g = nx.Graph(graph)
    g.remove_edges_from(nx.selfloop_edges(g))
    order = []
    while g.number_of_nodes():
        v = min(g.nodes, key=lambda u: (_fill_in(g, u), g.degree(u), repr(u)))
        order.append(v)
        _eliminate(g, v)
    return order


def order_to_tree_decomposition(graph: nx.Graph, order: Sequence) -> TreeDecomposition:
    """The tree decomposition induced by an elimination order.

    Bag of ``v`` = ``{v} ∪ (neighbors of v at elimination time)``; each bag
    attaches to the bag of the earliest-eliminated vertex in it after ``v``.
    """
    g = nx.Graph(graph)
    g.remove_edges_from(nx.selfloop_edges(g))
    if set(order) != set(g.nodes):
        raise ValueError("order must enumerate exactly the graph vertices")
    position = {v: i for i, v in enumerate(order)}
    bags: dict[int, frozenset] = {}
    bag_neighbors: dict[int, set] = {}
    for i, v in enumerate(order):
        neigh = set(g.neighbors(v))
        bags[i] = frozenset({v} | neigh)
        bag_neighbors[i] = neigh
        _eliminate(g, v)
    tree = nx.Graph()
    tree.add_nodes_from(bags)
    for i, v in enumerate(order):
        later = [u for u in bag_neighbors[i] if position[u] > i]
        if later:
            parent = min(later, key=lambda u: position[u])
            tree.add_edge(i, position[parent])
        elif i + 1 < len(order):
            # Disconnected remainder: attach anywhere to keep a tree.
            tree.add_edge(i, i + 1)
    return TreeDecomposition(tree, bags)


def heuristic_tree_decomposition(graph: nx.Graph) -> TreeDecomposition:
    """Best of min-degree and min-fill."""
    if graph.number_of_nodes() == 0:
        return TreeDecomposition(nx.Graph(), {})
    candidates = [
        order_to_tree_decomposition(graph, min_degree_order(graph)),
        order_to_tree_decomposition(graph, min_fill_order(graph)),
    ]
    return min(candidates, key=lambda td: td.width)


def treewidth_upper_bound(graph: nx.Graph) -> int:
    return heuristic_tree_decomposition(graph).width
