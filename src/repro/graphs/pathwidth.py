"""Pathwidth via the vertex-separation dynamic program.

Pathwidth equals vertex separation: minimize over linear orders the maximum
boundary size ``|{u ≤ i : u has a neighbor > i}|``.  The subset DP

    g(S) = min_{v in S} max( g(S \\ {v}), b(S) ),
    b(S) = |{u in S : N(u) ⊄ S}|

is exact; a min-degree-style greedy gives the heuristic fallback.  The
paper's equation (2) discussion (circuit pathwidth vs OBDD width) is
exercised against these routines.
"""

from __future__ import annotations

import networkx as nx

from .treedecomp import TreeDecomposition

__all__ = ["exact_pathwidth", "pathwidth", "order_to_path_decomposition", "heuristic_pathwidth"]

_DEFAULT_EXACT_LIMIT = 18


def _bit_adjacency(graph: nx.Graph) -> tuple[list, list[int]]:
    nodes = sorted(graph.nodes, key=repr)
    index = {v: i for i, v in enumerate(nodes)}
    adj = [0] * len(nodes)
    for u, v in graph.edges:
        if u == v:
            continue
        adj[index[u]] |= 1 << index[v]
        adj[index[v]] |= 1 << index[u]
    return nodes, adj


def _boundary_size(adj: list[int], s: int) -> int:
    count = 0
    rem = s
    while rem:
        low = rem & -rem
        u = low.bit_length() - 1
        rem ^= low
        if adj[u] & ~s:
            count += 1
    return count


def exact_pathwidth(graph: nx.Graph, limit: int = _DEFAULT_EXACT_LIMIT) -> int:
    """Exact pathwidth (vertex separation number)."""
    g = nx.Graph(graph)
    g.remove_edges_from(nx.selfloop_edges(g))
    n = g.number_of_nodes()
    if n == 0:
        return -1
    if n > limit:
        raise ValueError(f"exact pathwidth limited to {limit} vertices (got {n})")
    nodes, adj = _bit_adjacency(g)
    size = 1 << n
    INF = n + 1
    gdp = [INF] * size
    gdp[0] = 0
    # Iterate masks in increasing numeric order: all submasks precede.
    for s in range(1, size):
        b = _boundary_size(adj, s)
        best = INF
        rem = s
        while rem:
            low = rem & -rem
            rem ^= low
            prev = gdp[s ^ low]
            cost = prev if prev >= b else b
            if cost < best:
                best = cost
        gdp[s] = best
    return gdp[size - 1]


def exact_vertex_order(graph: nx.Graph, limit: int = _DEFAULT_EXACT_LIMIT) -> list:
    """An order witnessing the exact pathwidth."""
    g = nx.Graph(graph)
    g.remove_edges_from(nx.selfloop_edges(g))
    n = g.number_of_nodes()
    if n == 0:
        return []
    target = exact_pathwidth(g, limit)
    nodes, adj = _bit_adjacency(g)

    cache: dict[int, int] = {0: 0}

    def gdp(s: int) -> int:
        if s in cache:
            return cache[s]
        b = _boundary_size(adj, s)
        best = n + 1
        rem = s
        while rem:
            low = rem & -rem
            rem ^= low
            best = min(best, max(gdp(s ^ low), b))
        cache[s] = best
        return best

    order: list = []
    s = (1 << n) - 1
    while s:
        b = _boundary_size(adj, s)
        rem = s
        chosen = None
        while rem:
            low = rem & -rem
            v = low.bit_length() - 1
            rem ^= low
            if max(gdp(s ^ low), b) <= target:
                chosen = v
                break
        assert chosen is not None
        order.append(nodes[chosen])
        s ^= 1 << chosen
    order.reverse()
    return order


def order_to_path_decomposition(graph: nx.Graph, order: list) -> TreeDecomposition:
    """The path decomposition induced by a vertex order: bag ``i`` holds
    ``order[i]`` plus all earlier vertices with a neighbor at or after ``i``."""
    g = nx.Graph(graph)
    g.remove_edges_from(nx.selfloop_edges(g))
    position = {v: i for i, v in enumerate(order)}
    n = len(order)
    bags: dict[int, frozenset] = {}
    for i in range(n):
        bag = {order[i]}
        for u in order[: i + 1]:
            if any(position[w] >= i for w in g.neighbors(u)):
                bag.add(u)
        bags[i] = frozenset(bag)
    tree = nx.Graph()
    tree.add_nodes_from(range(n))
    tree.add_edges_from((i, i + 1) for i in range(n - 1))
    return TreeDecomposition(tree, bags)


def heuristic_pathwidth(graph: nx.Graph) -> int:
    """Greedy upper bound: repeatedly place the vertex minimizing the
    resulting boundary."""
    g = nx.Graph(graph)
    g.remove_edges_from(nx.selfloop_edges(g))
    nodes, adj = _bit_adjacency(g)
    n = len(nodes)
    placed = 0
    best_width = 0
    remaining = set(range(n))
    while remaining:
        v = min(
            remaining,
            key=lambda u: (_boundary_size(adj, placed | (1 << u)), repr(nodes[u])),
        )
        placed |= 1 << v
        remaining.remove(v)
        best_width = max(best_width, _boundary_size(adj, placed))
    return best_width


def pathwidth(graph: nx.Graph, exact_limit: int = _DEFAULT_EXACT_LIMIT) -> int:
    """Exact when small enough, heuristic upper bound otherwise."""
    g = nx.Graph(graph)
    g.remove_edges_from(nx.selfloop_edges(g))
    if g.number_of_nodes() <= exact_limit:
        return exact_pathwidth(g, exact_limit)
    return heuristic_pathwidth(g)
