"""Treewidth/pathwidth substrate: decompositions, exact DPs, heuristics."""

from .exact_tw import exact_tree_decomposition, exact_treewidth, treewidth
from .pathwidth import exact_pathwidth, pathwidth
from .treedecomp import NiceTreeDecomposition, TreeDecomposition
