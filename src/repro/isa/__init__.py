"""Appendix A: the indirect storage access function and its small SDD."""

from .isa import isa_function, isa_n, isa_parameters, isa_vtree
from .sdd_construction import IsaSdd, build_isa_sdd
