"""The indirect storage access function ``ISA_n`` (Appendix A).

``ISA_n`` has ``n = k + 2^k·m`` variables where ``2^k·m = 2^m``:
``y_1..y_k`` (address bits) and ``z_1..z_{2^m}`` (memory).  The address
selects word ``i`` (the ``i``-th block of ``m`` consecutive ``z``
variables); the word's value selects a cell ``z_j``; the function accepts
iff ``z_j = 1``.  Bit strings are read most-significant-first, matching the
paper's examples.

Valid parameter pairs ``(k, m)`` satisfy ``m · 2^k = 2^m``:
``(1,1) → n=3``, ``(1,2) → n=5`` (Figure 4), ``(2,4) → n=18``
(Examples 5–7), ``(5,8) → n=261``.
"""

from __future__ import annotations

import numpy as np

from ..core.boolfunc import BooleanFunction
from ..core.vtree import Vtree

__all__ = [
    "isa_parameters",
    "isa_n",
    "yvars",
    "zvars",
    "word_positions",
    "isa_accepts",
    "isa_function",
    "isa_vtree",
]


def isa_parameters(max_m: int = 10) -> list[tuple[int, int]]:
    """All ``(k, m)`` with ``m · 2^k = 2^m`` and ``m ≤ max_m``."""
    out = []
    for m in range(1, max_m + 1):
        k = 0
        while m * (1 << k) < (1 << m):
            k += 1
        if m * (1 << k) == (1 << m):
            out.append((k, m))
    return out


def isa_n(k: int, m: int) -> int:
    _check(k, m)
    return k + (1 << k) * m


def _check(k: int, m: int) -> None:
    if m * (1 << k) != (1 << m):
        raise ValueError(f"need m·2^k == 2^m; got k={k}, m={m}")


def yvars(k: int) -> list[str]:
    return [f"y{i}" for i in range(1, k + 1)]


def zvars(m: int) -> list[str]:
    return [f"z{j}" for j in range(1, (1 << m) + 1)]


def word_positions(k: int, m: int, word: int) -> list[int]:
    """1-based ``z`` positions of word ``word`` (1-based): the contiguous
    block ``(word-1)·m + 1 .. word·m``."""
    _check(k, m)
    if not (1 <= word <= (1 << k)):
        raise ValueError("word out of range")
    start = (word - 1) * m + 1
    return list(range(start, start + m))


def isa_accepts(k: int, m: int, assignment: dict[str, int]) -> bool:
    """Direct semantics (specification for tests)."""
    _check(k, m)
    a = [assignment[f"y{i}"] for i in range(1, k + 1)]
    i = int("".join(map(str, a)), 2) + 1 if k else 1  # MSB-first
    bits = [assignment[f"z{p}"] for p in word_positions(k, m, i)]
    j = int("".join(map(str, bits)), 2) + 1
    return bool(assignment[f"z{j}"])


def isa_function(k: int, m: int) -> BooleanFunction:
    """Exact ``ISA_n`` truth table (vectorized; feasible for n ≤ 20)."""
    _check(k, m)
    n = isa_n(k, m)
    if n > 20:
        raise ValueError("truth table infeasible beyond 20 variables")
    vs = tuple(sorted(yvars(k) + zvars(m)))
    pos = {v: i for i, v in enumerate(vs)}
    idx = np.arange(1 << n, dtype=np.int64)

    def bit(var: str) -> np.ndarray:
        return (idx >> pos[var]) & 1

    # word index i-1 from y bits, MSB-first
    word = np.zeros(1 << n, dtype=np.int64)
    for t in range(1, k + 1):
        word = (word << 1) | bit(f"y{t}")
    # word value j-1 from the selected word's bits, MSB-first
    j = np.zeros(1 << n, dtype=np.int64)
    for t in range(m):
        # position of bit t (0-based, MSB-first) of word i: (i-1)*m + t + 1
        zpos = word * m + t + 1
        # gather bit of z_{zpos}
        zbit = np.zeros(1 << n, dtype=np.int64)
        for p in range(1, (1 << m) + 1):
            mask = zpos == p
            if mask.any():
                zbit[mask] = ((idx[mask] >> pos[f"z{p}"]) & 1)
        j = (j << 1) | zbit
    # accept iff z_{j+1} is one
    out = np.zeros(1 << n, dtype=bool)
    for p in range(1, (1 << m) + 1):
        mask = (j + 1) == p
        if mask.any():
            out[mask] = ((idx[mask] >> pos[f"z{p}"]) & 1).astype(bool)
    return BooleanFunction(vs, out)


def isa_vtree(k: int, m: int) -> Vtree:
    """The Appendix-A vtree ``T_n``: right-linear over ``y_1..y_k``, whose
    unique right leaf is the root of a *left-linear* subtree over
    ``z_1..z_{2^m}`` (``v_j`` has right child ``z_j``).  ``T_5`` reproduces
    Figure 4."""
    _check(k, m)
    z_part = Vtree.left_linear(zvars(m))
    node = z_part
    for y in reversed(yvars(k)):
        node = Vtree.internal(Vtree.leaf(y), node)
    return node
