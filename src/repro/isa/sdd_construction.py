"""The explicit Appendix-A SDD for ``ISA_n`` (Proposition 3).

Follows the proof structure literally:

- the upper part is an OBDD over ``y_1..y_k`` (a complete binary decision
  tree with hash-consing) whose ``2^k`` sources are the cofactors
  ``ISA_n(a, z_1..z_{2^m})``;
- each cofactor is a sentential decision at ``v_{2^m}`` whose primes are
  *small terms* on ``Z`` (≤ ``m+1`` variables) and whose subs are constants
  or literals on ``z_{2^m}`` (Claim 5), including the "orbit" analysis when
  the addressed word contains ``z_{2^m}`` itself;
- small terms recursively decompose at ``v_{j_l}`` by enumerating all sign
  patterns over their non-maximal variables (Claim 6) — the sub is the
  maximal literal for the matching pattern and ``⊥`` otherwise.

All AND gates are hash-consed on ``(prime, sub)`` pairs, so the number of
distinct gates matches the counting argument (≤ #small-terms × #inputs =
``O(n^{8/5} · n) = O(n^{13/5})``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from .isa import isa_n, isa_vtree, word_positions, yvars, zvars
from ..circuits.nnf import NNF, false_node, lit, true_node

__all__ = ["IsaSdd", "build_isa_sdd", "small_term_count_bound"]

Term = tuple[tuple[int, bool], ...]  # ((z-index, sign), ...) sorted by index


def small_term_count_bound(k: int, m: int) -> int:
    """Equation (38): the number of small terms on ``Z_m`` is ``3^{m+1}+1``."""
    return 3 ** (m + 1) + 1


@dataclass
class IsaSdd:
    """The constructed SDD with its accounting."""

    root: NNF
    k: int
    m: int
    n: int
    and_gate_count: int
    distinct_terms: int

    @property
    def size(self) -> int:
        return self.root.size

    def prop3_bound(self, constant: float = 1.0) -> float:
        """``C · n^{13/5}`` for shape comparison."""
        return constant * self.n ** 2.6


class _Builder:
    def __init__(self, k: int, m: int):
        self.k = k
        self.m = m
        self.M = 1 << m
        self._and_cache: dict[tuple, NNF] = {}
        self._or_cache: dict[tuple, NNF] = {}
        self._term_cache: dict[Term, NNF] = {}
        self._lit_cache: dict[tuple[str, bool], NNF] = {}

    # ------------------------------------------------------------------
    def lit(self, var: str, sign: bool) -> NNF:
        key = (var, sign)
        node = self._lit_cache.get(key)
        if node is None:
            node = lit(var, sign)
            self._lit_cache[key] = node
        return node

    def zlit(self, j: int, sign: bool) -> NNF:
        return self.lit(f"z{j}", sign)

    def and_node(self, left: NNF, right: NNF) -> NNF:
        key = (id(left), id(right))
        node = self._and_cache.get(key)
        if node is None:
            node = NNF("and", children=(left, right))
            self._and_cache[key] = node
        return node

    def or_node(self, parts: list[NNF]) -> NNF:
        if len(parts) == 1:
            return parts[0]
        key = tuple(id(p) for p in parts)
        node = self._or_cache.get(key)
        if node is None:
            node = NNF("or", children=tuple(parts))
            self._or_cache[key] = node
        return node

    # ------------------------------------------------------------------
    # Claim 6: small-term SDDs
    # ------------------------------------------------------------------
    def term_sdd(self, term: Term) -> NNF:
        node = self._term_cache.get(term)
        if node is not None:
            return node
        if len(term) == 1:
            j, s = term[0]
            node = self.zlit(j, s)
        else:
            prefix_vars = tuple(j for j, _ in term[:-1])
            jl, sl = term[-1]
            target = term[:-1]
            parts: list[NNF] = []
            for signs in itertools.product((False, True), repeat=len(prefix_vars)):
                pattern: Term = tuple(zip(prefix_vars, signs))
                sub = self.zlit(jl, sl) if pattern == target else false_node()
                parts.append(self.and_node(self.term_sdd(pattern), sub))
            node = self.or_node(parts)
        self._term_cache[term] = node
        return node

    # ------------------------------------------------------------------
    # Claim 5: address cofactors as sentential decisions at v_{2^m}
    # ------------------------------------------------------------------
    def cofactor_sdd(self, address: tuple[int, ...]) -> NNF:
        i = int("".join(map(str, address)), 2) + 1 if address else 1
        if i < (1 << self.k) or self.k == 0:
            return self._plain_cofactor(i)
        return self._orbit_cofactor()

    def _word_term(self, word: int, value: int) -> Term:
        """``word = value+1 in binary`` as a term (MSB-first positions)."""
        wp = word_positions(self.k, self.m, word)
        bits = format(value, f"0{self.m}b")
        return tuple(sorted((wp[t], bits[t] == "1") for t in range(self.m)))

    def _plain_cofactor(self, i: int) -> NNF:
        wp = set(word_positions(self.k, self.m, i))
        parts: list[NNF] = []
        for j in range(1, self.M):
            t_ij = self._word_term(i, j - 1)
            fixed = dict(t_ij)
            if j in wp:
                sub = true_node() if fixed[j] else false_node()
                parts.append(self.and_node(self.term_sdd(t_ij), sub))
            else:
                pos_term = tuple(sorted(t_ij + ((j, True),)))
                neg_term = tuple(sorted(t_ij + ((j, False),)))
                parts.append(self.and_node(self.term_sdd(pos_term), true_node()))
                parts.append(self.and_node(self.term_sdd(neg_term), false_node()))
        # j = 2^m: the sub is the literal z_{2^m}
        t_last = self._word_term(i, self.M - 1)
        parts.append(self.and_node(self.term_sdd(t_last), self.zlit(self.M, True)))
        return self.or_node(parts)

    def _orbit_cofactor(self) -> NNF:
        """The all-ones address: the word is the last ``m`` positions,
        including ``z_{2^m}`` itself (the paper's orbit analysis)."""
        wp = word_positions(self.k, self.m, 1 << self.k)
        head = wp[:-1]  # the m-1 word bits on the prime side
        assert wp[-1] == self.M
        parts: list[NNF] = []
        for signs in itertools.product((False, True), repeat=len(head)):
            p_term: Term = tuple(zip(head, signs))
            val_a = int("".join("1" if s else "0" for s in signs), 2) if head else 0
            j0 = 2 * val_a + 1  # cell read when z_M = 0
            j1 = 2 * val_a + 2  # cell read when z_M = 1
            fixed = dict(p_term)
            free = [j for j in (j0, j1) if j not in fixed and j != self.M]
            free = sorted(set(free))
            for q_signs in itertools.product((False, True), repeat=len(free)):
                q = dict(zip(free, q_signs))
                env = {**fixed, **q}
                v0 = env[j0]  # j0 < M always (odd)
                v1 = True if j1 == self.M else env[j1]
                if v0 and v1:
                    sub = true_node()
                elif not v0 and not v1:
                    sub = false_node()
                elif v1:
                    sub = self.zlit(self.M, True)
                else:
                    sub = self.zlit(self.M, False)
                prime: Term = tuple(sorted(env.items()))
                parts.append(self.and_node(self.term_sdd(prime), sub))
        return self.or_node(parts)

    # ------------------------------------------------------------------
    # the upper OBDD over y
    # ------------------------------------------------------------------
    def build(self) -> NNF:
        cof_cache: dict[tuple[int, ...], NNF] = {}

        def upper(prefix: tuple[int, ...]) -> NNF:
            if len(prefix) == self.k:
                got = cof_cache.get(prefix)
                if got is None:
                    got = self.cofactor_sdd(prefix)
                    cof_cache[prefix] = got
                return got
            y = f"y{len(prefix) + 1}"
            low = upper(prefix + (0,))
            high = upper(prefix + (1,))
            return self.or_node(
                [
                    self.and_node(self.lit(y, False), low),
                    self.and_node(self.lit(y, True), high),
                ]
            )

        return upper(())


def build_isa_sdd(k: int, m: int) -> IsaSdd:
    """Construct the Proposition-3 SDD for ``ISA_{k + 2^k m}``."""
    builder = _Builder(k, m)
    root = builder.build()
    return IsaSdd(
        root=root,
        k=k,
        m=m,
        n=isa_n(k, m),
        and_gate_count=len(builder._and_cache),
        distinct_terms=len(builder._term_cache),
    )
