"""repro — a reproduction of Bova & Szeider, *Circuit Treewidth, Sentential
Decision, and Query Compilation* (PODS 2017).

Public API highlights
---------------------
- :class:`repro.Compiler` — **the** compilation entry point:
  ``Compiler(backend="apply", strategy="best-of").compile(circuit)`` with
  pluggable backends (``canonical``/``apply``/``obdd``) and vtree
  strategies (``lemma1``/``natural``/``balanced``/``best-of``).
- :class:`repro.QueryEngine` — **the** query-evaluation entry point: one
  database, one vtree/manager/WMC-memo, any number of queries.
- :class:`repro.ParallelQueryEngine` — sharded batch evaluation: N worker
  engines over one read-only base vtree, results bit-identical to serial.
- :class:`repro.BooleanFunction` — exact Boolean functions.
- :class:`repro.Vtree` — variable trees.
- :func:`repro.factors` — the paper's factor decompositions (Definition 1).
- :func:`repro.compile_canonical_nnf` / :func:`repro.compile_canonical_sdd`
  — the Section-3.2 canonical constructions ``C_{F,T}`` and ``S_{F,T}``.
- :func:`repro.compile_circuit` / :func:`repro.compile_circuit_apply` —
  deprecated shims over the facade (kept for compatibility).
- :class:`repro.ObddManager` / :class:`repro.SddManager` — decision-diagram
  engines with weighted model counting.
- :mod:`repro.queries` — UCQ (+inequality) syntax, lineage, inversion
  analysis, probabilistic evaluation.
- :mod:`repro.comm` — communication matrices, exact ranks, rectangle covers
  (Theorems 1–2, Lemma 8).
- :mod:`repro.isa` — the Appendix-A ``ISA`` construction (Proposition 3).
"""

from .core.boolfunc import BooleanFunction
from .core.factors import (
    FactorDecomposition,
    factorized_implicants,
    factors,
    sentential_decomposition,
)
from .core.nnf_compile import CompiledNNF, compile_canonical_nnf
from .core.pipeline import (
    PipelineResult,
    compile_circuit,
    compile_circuit_apply,
    vtree_from_circuit,
)
from .core.sdd_compile import CompiledSDD, compile_canonical_sdd
from .core.vtree import Vtree
from .core.widths import (
    factor_width,
    fiw,
    lemma1_bound,
    min_factor_width,
    min_fiw,
    min_sdw,
    sdw,
)
from .circuits.circuit import Circuit
from .circuits.nnf import NNF, conj, disj, false_node, lit, true_node
from .circuits.parse import parse_formula
from .compiler import Compiled, Compiler, compile_with
from .obdd.obdd import ObddManager, obdd_from_function
from .sdd.manager import SddManager, sdd_from_circuit
from .queries.engine import QueryEngine
from .queries.parallel import ParallelQueryEngine
from .queries.syntax import UCQ, ConjunctiveQuery, parse_cq, parse_ucq
from .queries.database import Database, ProbabilisticDatabase, complete_database

__version__ = "1.0.0"

__all__ = [
    "Compiler",
    "Compiled",
    "compile_with",
    "QueryEngine",
    "ParallelQueryEngine",
    "BooleanFunction",
    "Vtree",
    "FactorDecomposition",
    "factors",
    "factorized_implicants",
    "sentential_decomposition",
    "CompiledNNF",
    "compile_canonical_nnf",
    "CompiledSDD",
    "compile_canonical_sdd",
    "PipelineResult",
    "compile_circuit",
    "compile_circuit_apply",
    "vtree_from_circuit",
    "factor_width",
    "fiw",
    "sdw",
    "min_factor_width",
    "min_fiw",
    "min_sdw",
    "lemma1_bound",
    "Circuit",
    "NNF",
    "conj",
    "disj",
    "lit",
    "true_node",
    "false_node",
    "parse_formula",
    "ObddManager",
    "obdd_from_function",
    "SddManager",
    "sdd_from_circuit",
    "UCQ",
    "ConjunctiveQuery",
    "parse_cq",
    "parse_ucq",
    "Database",
    "ProbabilisticDatabase",
    "complete_database",
]
