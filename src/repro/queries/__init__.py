"""Query compilation over tuple-independent probabilistic databases."""

from .analysis import find_inversion, is_hierarchical, is_inversion_free
from .compile import (
    compile_lineage_ddnnf,
    compile_lineage_obdd,
    compile_lineage_sdd,
    lineage_vtree,
)
from .database import Database, ProbabilisticDatabase, complete_database
from .engine import QueryEngine
from .evaluate import (
    BatchEvaluation,
    evaluate_many,
    probability_brute_force,
    probability_via_ddnnf,
    probability_via_obdd,
    probability_via_sdd,
)
from .lineage import lineage_circuit, lineage_function
from .parallel import ParallelBatchEvaluation, ParallelQueryEngine, shard_of
from .syntax import UCQ, ConjunctiveQuery, parse_cq, parse_ucq
