"""Query compilation over tuple-independent probabilistic databases."""

from .analysis import find_inversion, is_hierarchical, is_inversion_free
from .database import Database, ProbabilisticDatabase, complete_database
from .evaluate import probability_brute_force, probability_via_obdd, probability_via_sdd
from .lineage import lineage_circuit, lineage_function
from .syntax import UCQ, ConjunctiveQuery, parse_cq, parse_ucq
