"""A query-evaluation session: one database, one vtree, one manager.

:class:`QueryEngine` is the stateful front door for probabilistic query
evaluation.  Where the functional helpers (`probability_via_sdd`,
`evaluate_many`) build their sharing per call, an engine owns it for its
whole lifetime:

- **one vtree** — built from the first query's hierarchy order and covering
  *every* tuple variable of the database, so any later query against the
  same database fits;
- **one** :class:`~repro.sdd.manager.SddManager` — hash-cons tables and
  apply caches accumulate across queries, so a sub-lineage two queries
  share is compiled once, whenever the queries arrive;
- **one WMC memo per weight ring** — the
  :class:`~repro.sdd.wmc.SddWmcEvaluator` memo is keyed by node id, so
  shared SDD nodes are counted once across the session;
- **a compiled-query cache** — asking for the same query twice is a
  dictionary hit.

Example::

    engine = QueryEngine(db)
    engine.probability(parse_ucq("R(x),S(x,y)"))
    engine.probability(parse_ucq("S(x,y)"), exact=True)
    batch = engine.evaluate(queries, exact=True)
    engine.stats()                     # public counters, no private pokes
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence

from .compile import compile_lineage_sdd, lineage_vtree
from .database import ProbabilisticDatabase
from .syntax import UCQ
from ..core.vtree import Vtree
from ..sdd.manager import SddManager
from ..sdd.wmc import SddWmcEvaluator, exact_weights, float_weights

__all__ = ["QueryEngine"]


class QueryEngine:
    """Exact probabilistic query evaluation with session-wide sharing.

    ``vtree`` may be supplied to pin the decomposition shape (e.g. a
    balanced vtree from :func:`~repro.queries.compile.lineage_vtree`);
    otherwise the engine derives a right-linear vtree over the hierarchy
    order of the first query it sees.
    """

    def __init__(self, db: ProbabilisticDatabase, *, vtree: Vtree | None = None):
        self.db = db
        self._vtree = vtree
        self._manager: SddManager | None = SddManager(vtree) if vtree is not None else None
        self._roots: dict[UCQ, int] = {}
        self._evaluators: dict[bool, SddWmcEvaluator] = {}

    # ------------------------------------------------------------------
    # session resources
    # ------------------------------------------------------------------
    @property
    def vtree(self) -> Vtree | None:
        """The session vtree (``None`` until the first query arrives)."""
        return self._vtree

    @property
    def manager(self) -> SddManager | None:
        """The shared manager (``None`` until the first query arrives)."""
        return self._manager

    def _ensure_manager(self, query: UCQ) -> SddManager:
        if self._manager is None:
            if self._vtree is None:
                self._vtree = lineage_vtree(query, self.db)
            self._manager = SddManager(self._vtree)
        return self._manager

    def _evaluator(self, exact: bool) -> SddWmcEvaluator:
        assert self._manager is not None, "compile a query first"
        ev = self._evaluators.get(exact)
        if ev is None:
            prob = self.db.probability_map()
            weights = exact_weights(prob) if exact else float_weights(prob)
            missing = self._manager.vtree.variables - set(weights)
            if missing:
                # Vtree variables without a tuple probability (possible with
                # a hand-built vtree): weight pairs summing to 1 marginalize
                # them out of every query.
                half = Fraction(1, 2) if exact else 0.5
                weights.update({v: (half, half) for v in missing})
            ev = SddWmcEvaluator(self._manager, weights)
            self._evaluators[exact] = ev
        return ev

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def compile(self, query: UCQ) -> int:
        """Compile ``query``'s lineage into the shared manager (cached);
        returns the root node id."""
        root = self._roots.get(query)
        if root is None:
            mgr = self._ensure_manager(query)
            _, root = compile_lineage_sdd(query, self.db, manager=mgr)
            self._roots[query] = root
        return root

    def probability(self, query: UCQ, *, exact: bool = False) -> float | Fraction:
        """Exact probability of ``query`` under the tuple-independence
        semantics; ``exact=True`` stays in :class:`~fractions.Fraction`."""
        root = self.compile(query)
        value = self._evaluator(exact).value(root)
        # Constant roots short-circuit to int 0/1; normalize the ring.
        return Fraction(value) if exact else float(value)

    def lineage_size(self, query: UCQ) -> int:
        """SDD size of the compiled lineage of ``query``."""
        mgr = self._ensure_manager(query)
        return mgr.size(self.compile(query))

    def evaluate(self, queries: Iterable[UCQ], *, exact: bool = False):
        """Evaluate a workload; returns a
        :class:`~repro.queries.evaluate.BatchEvaluation` (the same result
        type :func:`~repro.queries.evaluate.evaluate_many` returns)."""
        from .evaluate import BatchEvaluation

        qs: Sequence[UCQ] = list(queries)
        if not qs:
            raise ValueError("empty workload")
        probabilities = [self.probability(q, exact=exact) for q in qs]
        mgr = self._manager
        assert mgr is not None
        roots = [self._roots[q] for q in qs]
        return BatchEvaluation(
            queries=list(qs),
            probabilities=probabilities,
            roots=roots,
            sizes=[mgr.size(r) for r in roots],
            manager=mgr,
            vtree=self._vtree,
            stats=self.stats(),
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Public counters for the session's shared state.

        Includes the manager's table/cache sizes (prefixed as reported by
        :meth:`SddManager.stats`) and the combined WMC memo size; use this
        instead of reading private ``_and_cache`` / ``_memo`` attributes.
        """
        out: dict[str, int] = {
            "queries_compiled": len(self._roots),
            "tuples": self.db.size,
        }
        if self._manager is not None:
            m = self._manager.stats()
            out["manager_nodes"] = m["nodes"]
            out["apply_cache_entries"] = m["apply_cache_entries"]
            out["manager_decision_nodes"] = m["decision_nodes"]
        out["wmc_memo_entries"] = sum(
            ev.stats()["memo_entries"] for ev in self._evaluators.values()
        )
        return out
