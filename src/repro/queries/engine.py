"""A query-evaluation session: one database, one vtree, one manager.

:class:`QueryEngine` is the stateful front door for probabilistic query
evaluation.  Where the functional helpers (`probability_via_sdd`,
`evaluate_many`) build their sharing per call, an engine owns it for its
whole lifetime:

- **one vtree** — built from the first query's hierarchy order and covering
  *every* tuple variable of the database, so any later query against the
  same database fits;
- **one** :class:`~repro.sdd.manager.SddManager` — hash-cons tables and
  apply caches accumulate across queries, so a sub-lineage two queries
  share is compiled once, whenever the queries arrive;
- **one WMC memo per weight ring** — the
  :class:`~repro.sdd.wmc.SddWmcEvaluator` memo is keyed by node id, so
  shared SDD nodes are counted once across the session;
- **a compiled-query cache** — asking for the same query twice is a
  dictionary hit.

The engine is also the *policy home* for the manager's garbage collector:
every compiled root is pinned, :meth:`forget` releases one, and a
``max_nodes`` session budget evicts compiled queries and collects whenever
the manager outgrows it — so a session can serve an unbounded stream of
queries in bounded memory.  Victims are picked size-aware by default
(exclusive node footprint × staleness, so one huge cold lineage goes
before five small warm ones); ``eviction_policy="lru"`` restores the pure
recency order.

It is the policy home for dynamic vtree minimization too:
:meth:`minimize` runs the manager's in-place rotation/swap search and
re-anchors every cached query root across the transformation, and
``auto_minimize_nodes`` arms the same search as a watermark after
compilations.

Example::

    engine = QueryEngine(db, max_nodes=50_000, auto_minimize_nodes=30_000)
    engine.probability(parse_ucq("R(x),S(x,y)"))
    engine.probability(parse_ucq("S(x,y)"), exact=True)
    batch = engine.evaluate(queries, exact=True)
    engine.minimize()                  # sift the vtree under the session
    engine.forget(old_query)           # release one pinned lineage
    engine.gc()                        # collect everything unpinned now
    engine.stats()                     # public counters, no private pokes
"""

from __future__ import annotations

from collections import OrderedDict
from fractions import Fraction
from typing import Iterable, Sequence

from .compile import compile_lineage_sdd, lineage_vtree
from .database import ProbabilisticDatabase, UpdateDelta
from .lineage import lineage_circuit, lineage_terms, terms_circuit
from .syntax import UCQ
from ..core.vtree import Vtree
from ..sdd.manager import SddManager
from ..sdd.wmc import SddWmcEvaluator, exact_weights, float_weights

__all__ = ["QueryEngine"]


class QueryEngine:
    """Exact probabilistic query evaluation with session-wide sharing.

    ``vtree`` may be supplied to pin the decomposition shape (e.g. a
    balanced vtree from :func:`~repro.queries.compile.lineage_vtree`);
    otherwise the engine derives a right-linear vtree over the hierarchy
    order of the first query it sees.

    ``max_nodes`` bounds the session: after each compilation, if the
    manager's live node count exceeds it, compiled queries are forgotten
    (their roots released) and the manager collected until the budget
    holds again — the query just asked for is never evicted.  ``None``
    (the default) keeps every query forever, the pre-GC behaviour.
    ``eviction_policy`` picks the victims: ``"size-lru"`` (default) scores
    each cached query by its exclusive node footprint × staleness and
    evicts the most-expensive-least-recent first; ``"lru"`` is pure
    recency order.

    ``auto_minimize_nodes`` arms dynamic vtree minimization as a session
    watermark: when a compilation leaves the manager above it, the engine
    runs one :meth:`minimize` round (with 2× hysteresis).  Set it below
    ``max_nodes`` so the vtree gets repaired before eviction starts
    paying for it.

    ``backend`` picks the compiled representation: ``"sdd"`` (default) is
    the apply-based :class:`SddManager` path described above; ``"ddnnf"``
    compiles each lineage bag-by-bag into a d-DNNF instead
    (:func:`~repro.queries.compile.compile_lineage_ddnnf` — no manager,
    no vtree).  d-DNNF roots participate in the compiled-query cache and
    the ``max_nodes`` budget exactly like SDD roots: the budget bounds
    the total d-DNNF nodes of all cached queries and evicts with the same
    ``eviction_policy`` scoring (each query's footprint is exclusive —
    separate DAGs share nothing).  Manager-specific services
    (``auto_minimize_nodes``, :meth:`minimize`, explicit ``vtree``) do
    not apply to ``"ddnnf"`` and raise at construction.

    ``frozen`` preloads a compiled artifact base (a
    :class:`~repro.artifact.store.FrozenSdd` or a path to one written by
    :meth:`save_artifact`) for the SDD backend: queries whose normalized
    text matches a stored root are answered straight off the mmap-ed node
    tables — no manager, no compilation, bit-identical probabilities —
    and count as ``frozen_hits`` rather than cache misses.  When no
    explicit ``vtree`` is given the frozen base's vtree becomes the
    session vtree, so queries *outside* the base compile against the same
    decomposition.  The artifact's stamped database fingerprint must
    match ``db`` (a mismatched file raises, never silently answers for
    the wrong database).
    """

    _EVICTION_POLICIES = ("size-lru", "lru")
    _BACKENDS = ("sdd", "ddnnf")

    def __init__(
        self,
        db: ProbabilisticDatabase,
        *,
        vtree: Vtree | None = None,
        max_nodes: int | None = None,
        auto_minimize_nodes: int | None = None,
        eviction_policy: str = "size-lru",
        backend: str = "sdd",
        frozen=None,
    ):
        if max_nodes is not None and max_nodes <= 0:
            raise ValueError("max_nodes must be positive")
        if auto_minimize_nodes is not None and auto_minimize_nodes <= 0:
            raise ValueError("auto_minimize_nodes must be positive")
        if eviction_policy not in self._EVICTION_POLICIES:
            raise ValueError(
                f"unknown eviction_policy {eviction_policy!r}; "
                f"choose from {self._EVICTION_POLICIES}"
            )
        if backend not in self._BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; choose from {self._BACKENDS}"
            )
        if backend == "ddnnf" and (vtree is not None or auto_minimize_nodes is not None):
            raise ValueError(
                "backend='ddnnf' compiles from tree decompositions: "
                "vtree and auto_minimize_nodes do not apply"
            )
        if frozen is not None and backend != "sdd":
            raise ValueError("frozen artifact bases require backend='sdd'")
        if frozen is not None and not hasattr(frozen, "root_named"):
            # A path: mmap the artifact in place (children of a spawn pool
            # all map the same file — the OS shares the pages).
            from ..artifact.store import FrozenSdd

            frozen = FrozenSdd.load(frozen)
        if frozen is not None:
            frozen_fp = frozen.meta.get("db_fingerprint")
            if frozen_fp is not None and frozen_fp != db.fingerprint():
                raise ValueError(
                    "frozen artifact was compiled for a different database "
                    f"(artifact {frozen_fp!r} vs session {db.fingerprint()!r})"
                )
            if vtree is None:
                vtree = frozen.vtree()
        self._frozen = frozen
        self._frozen_wmc: dict[bool, object] = {}
        self._frozen_hits = 0
        self.db = db
        self.backend = backend
        self.max_nodes = max_nodes
        self.auto_minimize_nodes = auto_minimize_nodes
        self.eviction_policy = eviction_policy
        self._next_minimize_at = auto_minimize_nodes
        self._minimize_runs = 0
        self._vtree = vtree
        self._manager: SddManager | None = SddManager(vtree) if vtree is not None else None
        self._roots: OrderedDict[UCQ, int] = OrderedDict()
        self._evaluators: dict[bool, SddWmcEvaluator] = {}
        # backend="ddnnf": per-query compiled DAGs + one WMC evaluator per
        # (query, ring) + memoized root values (each DdnnfResult owns its
        # own DnnfDag, so evaluators and values evict with their query).
        self._ddnnf: OrderedDict[UCQ, object] = OrderedDict()
        self._ddnnf_wmc: dict[tuple[UCQ, bool], object] = {}
        self._ddnnf_values: dict[tuple[UCQ, bool], float | Fraction] = {}
        # Grounded DNF terms per cached query — what apply_update diffs to
        # delta-patch roots instead of recompiling.
        self._terms: dict[UCQ, frozenset[frozenset[str]]] = {}
        self._evicted = 0
        self._cache_hits = 0
        self._cache_misses = 0
        self._deadline_exceeded = 0
        self._updates_applied = 0
        self._memo_invalidations = 0
        self._delta_patched = 0
        self._update_recompiles = 0

    # ------------------------------------------------------------------
    # session resources
    # ------------------------------------------------------------------
    @property
    def vtree(self) -> Vtree | None:
        """The session vtree (``None`` until the first query arrives)."""
        return self._vtree

    @property
    def manager(self) -> SddManager | None:
        """The shared manager (``None`` until the first query arrives)."""
        return self._manager

    def _ensure_manager(self, query: UCQ) -> SddManager:
        if self._manager is None:
            if self._vtree is None:
                self._vtree = lineage_vtree(query, self.db)
            self._manager = SddManager(self._vtree)
        return self._manager

    def _evaluator(self, exact: bool) -> SddWmcEvaluator:
        assert self._manager is not None, "compile a query first"
        ev = self._evaluators.get(exact)
        if ev is None:
            prob = self.db.probability_map()
            weights = exact_weights(prob) if exact else float_weights(prob)
            missing = self._manager.vtree.variables - set(weights)
            if missing:
                # Vtree variables without a tuple probability (possible with
                # a hand-built vtree): weight pairs summing to 1 marginalize
                # them out of every query.
                half = Fraction(1, 2) if exact else 0.5
                weights.update({v: (half, half) for v in missing})
            ev = SddWmcEvaluator(self._manager, weights)
            self._evaluators[exact] = ev
        return ev

    def _ddnnf_evaluator(self, query: UCQ, exact: bool, result):
        """The persistent per-(query, ring) d-DNNF evaluator — same weights
        as the one-shot :func:`repro.dnnf.wmc.probability` path (so values
        are bit-identical to it), kept alive so weight-only updates can
        invalidate just the affected memo cone instead of resweeping."""
        key = (query, exact)
        ev = self._ddnnf_wmc.get(key)
        if ev is None:
            from ..dnnf.wmc import DnnfWmcEvaluator

            prob = self.db.probability_map()
            weights = exact_weights(prob) if exact else float_weights(prob)
            ev = DnnfWmcEvaluator(result.dag, weights)
            self._ddnnf_wmc[key] = ev
        return ev

    # ------------------------------------------------------------------
    # frozen artifact base
    # ------------------------------------------------------------------
    @property
    def frozen(self):
        """The preloaded :class:`~repro.artifact.store.FrozenSdd` base
        (``None`` when the session compiles everything live)."""
        return self._frozen

    def _frozen_root(self, query: UCQ) -> int | None:
        """The frozen base's root for ``query`` (matched on normalized
        query text), ``None`` when absent or no base is loaded."""
        if self._frozen is None or self._frozen.root_names is None:
            return None
        try:
            return self._frozen.root_named(query.normalized())
        except (KeyError, ValueError):
            return None

    def _frozen_evaluator(self, exact: bool):
        """A :class:`~repro.artifact.store.FrozenSddWmc` over the frozen
        base, weights built exactly like :meth:`_evaluator` (database
        probabilities plus half-weights for vtree-only variables) so
        frozen answers are bit-identical to live ones."""
        ev = self._frozen_wmc.get(exact)
        if ev is None:
            from ..artifact.store import FrozenSddWmc

            prob = self.db.probability_map()
            weights = exact_weights(prob) if exact else float_weights(prob)
            missing = self._frozen.variables - set(weights)
            if missing:
                half = Fraction(1, 2) if exact else 0.5
                weights.update({v: (half, half) for v in missing})
            ev = FrozenSddWmc(self._frozen, weights)
            self._frozen_wmc[exact] = ev
        return ev

    def save_artifact(self, path, *, meta: dict | None = None):
        """Freeze every currently cached query into one artifact file.

        Roots are named by :meth:`~repro.queries.syntax.UCQ.normalized`
        query text and the database fingerprint is stamped into the
        metadata, so a later session (or a spawn worker) can open the file
        with ``QueryEngine(db, frozen=path)`` and answer those queries
        without compiling anything.  Returns the written
        :class:`~repro.artifact.store.FrozenSdd`."""
        if self.backend != "sdd":
            raise ValueError("save_artifact requires backend='sdd'")
        if not self._roots or self._manager is None:
            raise ValueError("no compiled queries to save")
        full_meta = {"db_fingerprint": self.db.fingerprint()}
        if meta:
            full_meta.update(meta)
        frozen = self._manager.freeze(
            list(self._roots.values()),
            names=[q.normalized() for q in self._roots],
            meta=full_meta,
        )
        frozen.write(path)
        return frozen

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @staticmethod
    def _resolve_deadline(timeout: float | None, deadline):
        """One cancellation token from the two spellings: ``timeout``
        (seconds from now) or ``deadline`` (a pre-built
        :class:`~repro.service.errors.Deadline`, e.g. the remaining
        budget a pool computed after queue time)."""
        if timeout is None:
            return deadline
        if deadline is not None:
            raise ValueError("pass timeout= or deadline=, not both")
        from ..service.errors import Deadline

        return Deadline(timeout)

    def compile(self, query: UCQ, *, timeout: float | None = None, deadline=None) -> int:
        """Compile ``query``'s lineage (cached; for the SDD backend also
        pinned against collection); returns the root node id — in the
        shared manager (``backend="sdd"``) or in the query's own d-DNNF
        DAG (``backend="ddnnf"``).

        ``timeout``/``deadline`` bound the compilation wall-clock,
        enforced cooperatively at the per-gate (SDD) / per-bag (d-DNNF)
        safepoints; expiry raises the typed
        :class:`~repro.service.errors.DeadlineExceeded` and leaves the
        session consistent (nothing is cached for the query, and the
        partial manager garbage is unpinned, so the next collection
        reclaims it)."""
        deadline = self._resolve_deadline(timeout, deadline)
        if self.backend == "ddnnf":
            return self._compile_ddnnf(query, deadline=deadline).root
        root = self._roots.get(query)
        if root is not None:
            self._roots.move_to_end(query)
            self._cache_hits += 1
            return root
        self._cache_misses += 1
        mgr = self._ensure_manager(query)
        terms = lineage_terms(query, self.db)
        from ..service.errors import DeadlineExceeded

        try:
            _, root = compile_lineage_sdd(
                query, self.db, manager=mgr,
                circuit=lineage_circuit(query, self.db, terms=terms),
                deadline=deadline,
            )
        except DeadlineExceeded:
            self._deadline_exceeded += 1
            raise
        mgr.pin(root)
        self._roots[query] = root
        self._terms[query] = frozenset(terms)
        self._collect_over_budget(keep=query)
        if (
            self._next_minimize_at is not None
            and mgr.live_node_count > self._next_minimize_at
        ):
            self.minimize(rounds=1)
            assert self.auto_minimize_nodes is not None
            self._next_minimize_at = max(
                self.auto_minimize_nodes, 2 * mgr.live_node_count
            )
        return self._roots[query]

    def _compile_ddnnf(self, query: UCQ, *, deadline=None):
        """The ``backend="ddnnf"`` compile path: cache
        :class:`~repro.dnnf.builder.DdnnfResult` handles per query and
        apply the same budget sweep the SDD path runs."""
        result = self._ddnnf.get(query)
        if result is not None:
            self._ddnnf.move_to_end(query)
            self._cache_hits += 1
            return result
        self._cache_misses += 1
        from .compile import compile_lineage_ddnnf
        from ..service.errors import DeadlineExceeded

        terms = lineage_terms(query, self.db)
        try:
            result = compile_lineage_ddnnf(
                query, self.db,
                circuit=lineage_circuit(query, self.db, terms=terms),
                deadline=deadline,
            )
        except DeadlineExceeded:
            self._deadline_exceeded += 1
            raise
        self._ddnnf[query] = result
        self._terms[query] = frozenset(terms)
        self._collect_over_budget_ddnnf(keep=query)
        return result

    def cached_root(self, query: UCQ) -> int | None:
        """The root id of ``query`` if it is currently compiled, ``None``
        if it was never asked for or has been evicted/forgotten.  Never
        compiles — the read-only counterpart of :meth:`compile`."""
        if self.backend == "ddnnf":
            result = self._ddnnf.get(query)
            return None if result is None else result.root
        root = self._roots.get(query)
        if root is None:
            return self._frozen_root(query)
        return root

    def probability(
        self,
        query: UCQ,
        *,
        exact: bool = False,
        timeout: float | None = None,
        deadline=None,
    ) -> float | Fraction:
        """Exact probability of ``query`` under the tuple-independence
        semantics; ``exact=True`` stays in :class:`~fractions.Fraction`.

        ``timeout``/``deadline`` bound the compilation (the dominant
        cost; the linear WMC sweep is not interrupted) — see
        :meth:`compile` for the cooperative-cancellation contract."""
        deadline = self._resolve_deadline(timeout, deadline)
        if self.backend == "ddnnf":
            r = self._compile_ddnnf(query, deadline=deadline)
            key = (query, exact)
            value = self._ddnnf_values.get(key)
            if value is None:
                value = self._ddnnf_evaluator(query, exact, r).value(r.root)
                value = Fraction(value) if exact else float(value)
                self._ddnnf_values[key] = value
            return value
        froot = self._frozen_root(query)
        if froot is not None and query not in self._roots:
            # Served straight off the mmap-ed artifact: no compilation, no
            # manager, and not a cache miss — the answer was precompiled.
            # (apply_update drops the frozen base on insert/delete, so a
            # hit here is never stale.)
            self._frozen_hits += 1
            value = self._frozen_evaluator(exact).value(froot)
            return Fraction(value) if exact else float(value)
        root = self.compile(query, deadline=deadline)
        value = self._evaluator(exact).value(root)
        # Constant roots short-circuit to int 0/1; normalize the ring.
        return Fraction(value) if exact else float(value)

    def compiled_size(self, query: UCQ) -> int | None:
        """Compiled size of ``query`` if it is currently cached, ``None``
        otherwise.  Never compiles and never touches the hit/miss
        counters — the sibling of :meth:`cached_root` used by the worker
        pool and parallel paths to report sizes without inflating the
        cache statistics."""
        if self.backend == "ddnnf":
            result = self._ddnnf.get(query)
            return None if result is None else result.size
        root = self._roots.get(query)
        if root is None:
            froot = self._frozen_root(query)
            if froot is not None:
                return self._frozen.size(froot)
            return None
        assert self._manager is not None
        return self._manager.size(root)

    def lineage_size(self, query: UCQ) -> int:
        """Compiled size of the lineage of ``query`` (SDD size or d-DNNF
        node count, per the session ``backend``)."""
        if self.backend == "ddnnf":
            return self._compile_ddnnf(query).size
        froot = self._frozen_root(query)
        if froot is not None and query not in self._roots:
            self._frozen_hits += 1
            return self._frozen.size(froot)
        mgr = self._ensure_manager(query)
        return mgr.size(self.compile(query))

    def evaluate(
        self,
        queries: Iterable[UCQ],
        *,
        exact: bool = False,
        workers: int | None = None,
        parallel_mode: str = "auto",
        shard_seed: int = 0,
        timeout: float | None = None,
    ):
        """Evaluate a workload; returns a
        :class:`~repro.queries.evaluate.BatchEvaluation` (the same result
        type :func:`~repro.queries.evaluate.evaluate_many` returns).

        ``timeout`` grants each query its own wall-clock budget (seconds;
        per query, not per batch — matching the service tier's per-query
        deadlines); a query that exceeds it raises the typed
        :class:`~repro.service.errors.DeadlineExceeded` out of the batch.
        Serial path only — with ``workers > 1`` use the service tier
        (:meth:`~repro.service.QueryService.submit`), whose pool enforces
        per-task deadlines.

        With a ``max_nodes`` budget, queries early in a large batch may be
        evicted (and their node ids collected, possibly recycled) by the
        time the batch ends.  ``sizes`` are measured at evaluation time;
        ``roots`` holds only roots that are still compiled and pinned when
        the batch returns — evicted queries report ``None`` there, never a
        stale id.

        ``workers`` > 1 shards the batch across that many worker engines
        (each inheriting this session's vtree and per-worker ``max_nodes``
        budget) via :class:`~repro.queries.parallel.ParallelQueryEngine`
        and returns its
        :class:`~repro.queries.parallel.ParallelBatchEvaluation` —
        probabilities and sizes bit-identical to the serial path, but
        compiled in throwaway worker sessions (this engine's own caches
        are neither used nor populated).  ``workers=None`` or ``1`` stays
        on the serial path.
        """
        from .evaluate import BatchEvaluation

        qs: Sequence[UCQ] = list(queries)
        if not qs:
            raise ValueError("empty workload")
        if workers is not None and workers <= 0:
            raise ValueError("workers must be positive")
        if workers is not None and workers > 1:
            if timeout is not None:
                raise ValueError(
                    "timeout= is serial-path only; parallel batches enforce "
                    "per-task deadlines in the service tier (WorkerPool.submit)"
                )
            from .parallel import ParallelQueryEngine

            return ParallelQueryEngine(
                self.db,
                workers=workers,
                vtree=self._vtree,
                max_nodes=self.max_nodes,
                mode=parallel_mode,
                shard_seed=shard_seed,
                backend=self.backend,
            ).evaluate(qs, exact=exact)
        if self.backend == "ddnnf":
            probabilities = []
            sizes = []
            for q in qs:
                probabilities.append(self.probability(q, exact=exact, timeout=timeout))
                # Just asked for: never evicted yet (mirrors the SDD path's
                # measure-at-evaluation-time contract).
                sizes.append(self._ddnnf[q].size)
            return BatchEvaluation(
                queries=list(qs),
                probabilities=probabilities,
                roots=[self.cached_root(q) for q in qs],
                sizes=sizes,
                manager=None,
                vtree=None,
                stats=self.stats(),
            )
        probabilities = []
        sizes = []
        for q in qs:
            probabilities.append(self.probability(q, exact=exact, timeout=timeout))
            if q in self._roots:
                assert self._manager is not None
                sizes.append(self._manager.size(self._roots[q]))
            else:
                # Answered from the frozen artifact base: measure there.
                sizes.append(self._frozen.size(self._frozen_root(q)))
        return BatchEvaluation(
            queries=list(qs),
            probabilities=probabilities,
            roots=[self.cached_root(q) for q in qs],
            sizes=sizes,
            manager=self._manager,
            vtree=self._vtree,
            stats=self.stats(),
        )

    # ------------------------------------------------------------------
    # session lifecycle (GC policy)
    # ------------------------------------------------------------------
    def forget(self, query: UCQ) -> bool:
        """Release ``query``'s compiled lineage and drop it from the
        compiled-query cache — for the SDD backend the pinned root's nodes
        become collectable by the next :meth:`gc` (unless shared with a
        still-pinned query); for the d-DNNF backend the query's DAG and
        memoized values are dropped outright.  Returns whether the query
        was cached."""
        if self.backend == "ddnnf":
            if self._ddnnf.pop(query, None) is None:
                return False
            self._terms.pop(query, None)
            for exact in (False, True):
                self._ddnnf_values.pop((query, exact), None)
                self._ddnnf_wmc.pop((query, exact), None)
            return True
        root = self._roots.pop(query, None)
        if root is None:
            return False
        self._terms.pop(query, None)
        assert self._manager is not None
        self._manager.release(root)
        return True

    def gc(self) -> dict[str, int]:
        """Collect everything unreachable from the still-pinned roots.

        Runs a *full* collection (no aging grace): the engine pins every
        root it hands out, so nothing the session can still name is at
        risk."""
        if self._manager is None:
            return {"collected": 0, "live": 0, "free": 0, "generation": 0}
        return self._manager.gc(full=True)

    def minimize(
        self,
        *,
        budget: int | None = None,
        max_growth: float = 1.5,
        rounds: int = 2,
    ) -> dict[int, int]:
        """In-place dynamic vtree minimization for the whole session.

        Runs :meth:`SddManager.minimize` (sifting rotations/swaps on the
        live SDD — the objective is the union footprint of every cached
        query, all of which the engine pins) and re-anchors the cached
        roots across the transformation, so later :meth:`probability` /
        :meth:`forget` / eviction calls keep working on the same queries.
        Returns the move mapping (old→new node ids)."""
        mgr = self._manager
        if mgr is None:
            return {}
        mapping = mgr.minimize(budget=budget, max_growth=max_growth, rounds=rounds)
        if mapping:
            for q, r in self._roots.items():
                self._roots[q] = mapping.get(r, r)
        self._vtree = mgr.vtree
        self._minimize_runs += 1
        return mapping

    # ------------------------------------------------------------------
    # live updates
    # ------------------------------------------------------------------
    def apply_update(self, delta: UpdateDelta) -> dict[str, int]:
        """React to one database delta without restarting the session.

        ``delta`` comes from :meth:`ProbabilisticDatabase.set_probability`
        / :meth:`~ProbabilisticDatabase.insert` /
        :meth:`~ProbabilisticDatabase.delete`; the engine applies it to
        its database if a caller has not already (version-gated, so the
        same delta may arrive through several layers) and then repairs
        its caches per update class:

        - **weight** — lineages are unchanged; every live WMC evaluator
          point-updates the variable's weight pair and evicts exactly the
          memo entries that depended on it.  Zero recompilations.
        - **insert** — the manager's vtree grows a fresh leaf for the new
          tuple (no existing node or pin moves), and every cached root is
          delta-patched: the grounded terms the insert added are compiled
          as a small DNF and disjoined onto the old root (new root
          pinned, old released).  Inserting only ever adds satisfiable
          valuations, so the patch is exact.
        - **delete** — every cached root is conditioned on the tuple's
          variable being false (compiled lineages are closed under
          conditioning); the engine verifies against the re-grounded
          terms that dropping the variable's terms is the whole story and
          falls back to an eager recompile for that query otherwise
          (possible only through inequality-only variables whose active
          domain shrank).

        Returns this call's counter increments (the same keys
        :meth:`stats` accumulates).
        """
        delta.apply(self.db)
        self._updates_applied += 1
        memo_invalidations = 0
        patched = 0
        recompiles = 0
        if delta.kind == "weight":
            memo_invalidations = self._update_weight_caches(
                delta.var, delta.p
            )
        else:
            if self._frozen is not None:
                # The artifact was compiled against the old instance; its
                # roots are now answers to the wrong lineage.
                self._frozen = None
                self._frozen_wmc = {}
            if delta.kind == "insert":
                self._extend_vtree(delta.var)
                memo_invalidations = self._update_weight_caches(
                    delta.var, delta.p
                )
                patched, recompiles = self._patch_roots(delta, insert=True)
            else:
                # The variable stays in the vtree; give it the same
                # half/half weights a fresh engine fills in for vtree
                # variables without a tuple probability, so patched and
                # fresh sessions stay bit-identical.
                memo_invalidations = self._update_weight_caches(
                    delta.var, None
                )
                patched, recompiles = self._patch_roots(delta, insert=False)
        self._memo_invalidations += memo_invalidations
        self._delta_patched += patched
        self._update_recompiles += recompiles
        return {
            "updates_applied": 1,
            "memo_invalidations": memo_invalidations,
            "delta_patched_roots": patched,
            "update_recompiles": recompiles,
        }

    @staticmethod
    def _weight_pair(p: float | None, exact: bool):
        """The ``(w_neg, w_pos)`` pair a fresh evaluator would build:
        database probabilities via :func:`exact_weights` /
        :func:`float_weights` conventions, ``None`` (a deleted tuple's
        vtree leftover) as the half/half marginalizer."""
        if p is None:
            return (Fraction(1, 2), Fraction(1, 2)) if exact else (0.5, 0.5)
        if exact:
            fp = Fraction(str(p))
            return (1 - fp, fp)
        return (1.0 - float(p), float(p))

    def _update_weight_caches(self, var: str, p: float | None) -> int:
        """Point-update ``var``'s weight in every live evaluator; returns
        the total memo entries evicted."""
        invalidated = 0
        for exact, ev in self._evaluators.items():
            invalidated += ev.update_weights({var: self._weight_pair(p, exact)})
        for (query, exact), ev in self._ddnnf_wmc.items():
            invalidated += ev.update_weights({var: self._weight_pair(p, exact)})
            result = self._ddnnf.get(query)
            if result is not None and not ev.memoized(result.root):
                self._ddnnf_values.pop((query, exact), None)
        if self._frozen_wmc:
            # Frozen evaluators have no point-update; rebuilding them is
            # still compilation-free (weights re-read from the database).
            self._frozen_wmc = {}
        return invalidated

    def _extend_vtree(self, var: str) -> None:
        """Grow the session vtree (and manager, if live) with ``var`` —
        appended under a new root so nothing existing moves."""
        if self._manager is not None:
            self._manager.add_variable(var)
            self._vtree = self._manager.vtree
        elif self._vtree is not None and var not in self._vtree.variables:
            self._vtree = Vtree.internal_trusted(self._vtree, Vtree.leaf(var))

    def _patch_roots(self, delta: UpdateDelta, *, insert: bool) -> tuple[int, int]:
        """Delta-patch every cached query for a tuple insert/delete;
        returns ``(patched, recompiled)``."""
        if self.backend == "ddnnf":
            return self._patch_ddnnf(delta)
        mgr = self._manager
        if mgr is None:
            return 0, 0
        patched = 0
        recompiles = 0
        for query, root in list(self._roots.items()):
            old_terms = self._terms[query]
            new_terms = frozenset(lineage_terms(query, self.db))
            if new_terms == old_terms:
                continue
            if insert and old_terms <= new_terms:
                # Disjoining exactly the added terms is an exact patch.
                d_root = mgr.compile_circuit(terms_circuit(new_terms - old_terms))
                new_root = mgr.disjoin(root, d_root)
                patched += 1
            elif not insert and {
                t for t in old_terms if delta.var not in t
            } == new_terms:
                # Dropping the tuple's terms is the whole change:
                # condition the root on its variable being false.
                new_root = mgr.condition(root, {delta.var: 0})
                patched += 1
            else:
                # Inequality-only variables + a changed active domain can
                # alter terms that never mention the tuple; recompile.
                new_root = mgr.compile_circuit(
                    lineage_circuit(query, self.db, terms=sorted(
                        new_terms, key=lambda t: sorted(t)
                    ))
                )
                recompiles += 1
            mgr.pin(new_root)
            mgr.release(root)
            self._roots[query] = new_root
            self._terms[query] = new_terms
        return patched, recompiles

    def _patch_ddnnf(self, delta: UpdateDelta) -> tuple[int, int]:
        """The d-DNNF tier has no shared manager to patch through, and a
        compiled DAG's root scope spans *every* tuple of the instance it
        was built against — any insert/delete changes the scope (and
        possibly the decomposition) of what a fresh compile would build,
        so keeping even term-unchanged DAGs would break float
        bit-identity with fresh compilation.  Drop everything; queries
        recompile lazily on the next ask.  (Weight-only updates never
        come here — they stay on the memo-invalidation fast path.)"""
        recompiles = 0
        for query in list(self._ddnnf):
            self.forget(query)
            recompiles += 1
        return 0, recompiles

    def _eviction_order(self, keep: UCQ) -> list[UCQ]:
        """Victim order for the budget sweep.

        ``size-lru`` scores every cached query by ``(exclusive footprint
        + 1) × staleness rank``: *exclusive* counts the decision nodes
        reachable from that query's root and from no other cached root
        (shared sub-lineages are free to keep, so they shouldn't condemn
        their owners), staleness makes the oldest of equal-footprint
        queries go first.  ``lru`` is insertion order (oldest first)."""
        victims = [q for q in self._roots if q != keep]
        if self.eviction_policy == "lru" or len(victims) <= 1:
            return victims
        mgr = self._manager
        assert mgr is not None
        owners: dict[int, int] = {}
        reaches: list[set[int]] = []
        for q in victims:
            reach = mgr.reachable(self._roots[q])
            reaches.append(reach)
            for u in reach:
                owners[u] = owners.get(u, 0) + 1
        keep_root = self._roots.get(keep)
        if keep_root is not None:
            for u in mgr.reachable(keep_root):
                owners[u] = owners.get(u, 0) + 1
        n = len(victims)
        scored = []
        for age, (q, reach) in enumerate(zip(victims, reaches)):
            exclusive = sum(
                1
                for u in reach
                if owners[u] == 1 and u > 1 and mgr.node_kind[u] == "dec"
            )
            staleness = n - age  # oldest (first inserted) weighs most
            scored.append((-(exclusive + 1) * staleness, age, q))
        scored.sort()
        return [q for _, _, q in scored]

    def _collect_over_budget(self, keep: UCQ) -> None:
        """Evict queries + collect until the ``max_nodes`` budget holds
        (or only ``keep`` remains cached); victim order set by
        ``eviction_policy`` (see :meth:`_eviction_order`)."""
        mgr = self._manager
        if mgr is None or self.max_nodes is None:
            return
        if mgr.live_node_count <= self.max_nodes:
            return
        # First try a plain collection: compilation garbage (intermediate
        # gate results) often pays the whole bill without evicting anyone
        # — and the size-aware victim scoring (a reachability sweep over
        # every cached root) is only worth computing when it didn't.
        mgr.gc(full=True)
        if mgr.live_node_count <= self.max_nodes:
            return
        # Then evict in geometrically growing batches (one mark-sweep per
        # batch, O(log k) sweeps instead of one per eviction) until the
        # budget holds or only ``keep`` remains.
        victims = self._eviction_order(keep)
        i = 0
        batch = 1
        while mgr.live_node_count > self.max_nodes and i < len(victims):
            for q in victims[i : i + batch]:
                self.forget(q)
                self._evicted += 1
            i += batch
            batch *= 2
            mgr.gc(full=True)

    def _collect_over_budget_ddnnf(self, keep: UCQ) -> None:
        """The d-DNNF counterpart of :meth:`_collect_over_budget`: evict
        cached queries until the total d-DNNF node footprint fits
        ``max_nodes`` (or only ``keep`` remains).  Footprints are exact
        and exclusive (each query owns its DAG), so ``size-lru`` scores
        ``size × staleness`` directly — no reachability sweep needed."""
        if self.max_nodes is None or self.live_nodes() <= self.max_nodes:
            return
        victims = [q for q in self._ddnnf if q != keep]
        if self.eviction_policy == "size-lru" and len(victims) > 1:
            n = len(victims)
            scored = sorted(
                (-(self._ddnnf[q].size + 1) * (n - age), age, q)
                for age, q in enumerate(victims)
            )
            victims = [q for _, _, q in scored]
        for q in victims:
            if self.live_nodes() <= self.max_nodes:
                break
            self.forget(q)
            self._evicted += 1

    def live_nodes(self) -> int:
        """The session's current compiled-node footprint — the number the
        ``max_nodes`` budget bounds and service-tier quotas charge
        against: manager live nodes for the SDD backend, total cached
        d-DNNF nodes for the d-DNNF backend."""
        if self.backend == "ddnnf":
            return sum(r.size for r in self._ddnnf.values())
        return 0 if self._manager is None else self._manager.live_node_count

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int | str]:
        """Public counters for the session's shared state.

        Includes the manager's table/cache/GC counters (prefixed as
        reported by :meth:`SddManager.stats`), the combined WMC memo
        size, the active ``eviction_policy`` (the one non-numeric entry)
        and the minimization counters; use this instead of reading
        private ``_and_cache`` / ``_memo`` attributes.
        """
        out: dict[str, int | str] = {
            "queries_compiled": (
                len(self._ddnnf) if self.backend == "ddnnf" else len(self._roots)
            ),
            "queries_evicted": self._evicted,
            "cache_hits": self._cache_hits,
            "cache_misses": self._cache_misses,
            "cache_evictions": self._evicted,
            "backend": self.backend,
            "eviction_policy": self.eviction_policy,
            "minimize_runs": self._minimize_runs,
            "tuples": self.db.size,
            "frozen_queries": (
                0
                if self._frozen is None or self._frozen.root_names is None
                else len(self._frozen.root_names)
            ),
            "frozen_hits": self._frozen_hits,
            "updates_applied": self._updates_applied,
            "memo_invalidations": self._memo_invalidations,
            "delta_patched_roots": self._delta_patched,
            "update_recompiles": self._update_recompiles,
            "deadline_exceeded": self._deadline_exceeded,
        }
        if self.backend == "ddnnf":
            out["ddnnf_nodes"] = self.live_nodes()
            out["wmc_memo_entries"] = len(self._ddnnf_values)
            return out
        if self._manager is not None:
            m = self._manager.stats()
            out["manager_nodes"] = m["nodes"]
            out["manager_node_capacity"] = m["node_capacity"]
            out["manager_free_nodes"] = m["free_nodes"]
            out["manager_decision_nodes"] = m["decision_nodes"]
            out["apply_cache_entries"] = m["apply_cache_entries"]
            out["pinned_roots"] = m["pinned_roots"]
            out["gc_runs"] = m["gc_runs"]
            out["collected_nodes"] = m["collected_nodes"]
            out["vtree_moves"] = m["vtree_moves"]
        out["wmc_memo_entries"] = sum(
            ev.stats()["memo_entries"] for ev in self._evaluators.values()
        )
        return out
