"""Structural analysis of UCQs: hierarchy and inversions (Section 4).

The paper cites Dalvi & Suciu's *inversion* notion [9]: inversion freeness
implies compilability into constant-width OBDDs (UCQs) and polynomial-size
OBDDs (UCQs with inequalities), whereas an inversion of length ``k`` yields
the hard cofactors ``H^i_{k,n}`` (Lemma 7) and hence the Theorem-5 blowup.

We implement the operational reading used by those constructions, on
*ranked* queries (the paper's technical assumption):

- two variables of a CQ are ordered by inclusion of the atom sets
  containing them (``at(x) ⊋ at(y)``: ``x`` properly dominates ``y``);
- co-occurrence nodes ``(disjunct, atom, position pair)`` are linked when
  the same variable pair reappears in another atom of the same disjunct
  (intra edges) or when two atoms of the same relation transfer the pair
  across disjuncts (unification edges);
- an *inversion* is a path from a properly-dominating pair to a properly-
  dominated pair; its *length* is the number of unification edges.

On the paper's query families this reproduces exactly the advertised
inversion lengths (tests pin ``h_k`` at length ``k`` and the hierarchical
queries at inversion-free).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass

from .syntax import ConjunctiveQuery, UCQ

__all__ = ["is_hierarchical", "InversionWitness", "find_inversion", "is_inversion_free"]


def is_hierarchical(cq: ConjunctiveQuery) -> bool:
    """A CQ is hierarchical iff for every two variables the atom sets
    containing them are comparable or disjoint."""
    vs = cq.variables()
    for x, y in itertools.combinations(vs, 2):
        ax, ay = cq.atoms_containing(x), cq.atoms_containing(y)
        if ax & ay and not (ax <= ay or ay <= ax):
            return False
    return True


@dataclass(frozen=True)
class _PairNode:
    disjunct: int
    atom: int
    pos_x: int
    pos_y: int
    var_x: str
    var_y: str


@dataclass
class InversionWitness:
    """An inversion: endpoints plus its length (number of unifications)."""

    length: int
    start: _PairNode
    end: _PairNode


def _pair_nodes(query: UCQ) -> list[_PairNode]:
    nodes: list[_PairNode] = []
    for d, cq in enumerate(query.disjuncts):
        for a, atom in enumerate(cq.atoms):
            for i, ti in enumerate(atom.args):
                for j, tj in enumerate(atom.args):
                    if i == j or not (ti.is_variable and tj.is_variable):
                        continue
                    if ti.name == tj.name:
                        continue
                    nodes.append(_PairNode(d, a, i, j, ti.name, tj.name))
    return nodes


def _order(cq: ConjunctiveQuery, x: str, y: str) -> str:
    ax, ay = cq.atoms_containing(x), cq.atoms_containing(y)
    if ax == ay:
        return "equal"
    if ay < ax:
        return "greater"  # x properly dominates y
    if ax < ay:
        return "less"
    return "incomparable"


def find_inversion(query: UCQ) -> InversionWitness | None:
    """Find a minimum-length inversion, or ``None`` if inversion-free."""
    nodes = _pair_nodes(query)
    if not nodes:
        return None
    index = {n: i for i, n in enumerate(nodes)}
    intra: list[list[int]] = [[] for _ in nodes]
    unif: list[list[int]] = [[] for _ in nodes]
    by_pair: dict[tuple[int, str, str], list[int]] = {}
    by_atom_sig: dict[tuple[str, int, int], list[int]] = {}
    for i, n in enumerate(nodes):
        by_pair.setdefault((n.disjunct, n.var_x, n.var_y), []).append(i)
        rel = query.disjuncts[n.disjunct].atoms[n.atom].relation
        by_atom_sig.setdefault((rel, n.pos_x, n.pos_y), []).append(i)
    for group in by_pair.values():
        for i in group:
            for j in group:
                if i != j:
                    intra[i].append(j)
    for group in by_atom_sig.values():
        for i in group:
            for j in group:
                if i != j:
                    unif[i].append(j)
    starts = [
        i
        for i, n in enumerate(nodes)
        if _order(query.disjuncts[n.disjunct], n.var_x, n.var_y) == "greater"
    ]
    best: InversionWitness | None = None
    for s in starts:
        # 0-1 BFS: intra edges are free, unification edges cost 1.
        dist: dict[int, int] = {s: 0}
        dq: deque[int] = deque([s])
        while dq:
            u = dq.popleft()
            n = nodes[u]
            if _order(query.disjuncts[n.disjunct], n.var_x, n.var_y) == "less":
                if dist[u] >= 1 and (best is None or dist[u] < best.length):
                    best = InversionWitness(dist[u], nodes[s], n)
                continue
            for v in intra[u]:
                if dist[u] < dist.get(v, 1 << 30):
                    dist[v] = dist[u]
                    dq.appendleft(v)
            for v in unif[u]:
                if dist[u] + 1 < dist.get(v, 1 << 30):
                    dist[v] = dist[u] + 1
                    dq.append(v)
    return best


def is_inversion_free(query: UCQ) -> bool:
    return find_inversion(query) is None
