"""Lifted (intensional) evaluation of hierarchical queries — the classic
safe-plan baseline.

The paper's context (Dalvi & Suciu's dichotomy): *hierarchical* self-join-
free conjunctive queries admit PTIME "extensional" evaluation by
independent-project / independent-join recursion, with no compilation at
all.  We implement that recursion for self-join-free CQs (and unions of
independent CQs via inclusion–exclusion on two disjuncts), and cross-check
it against the compilation pipeline — two completely different evaluation
paths whose agreement is a strong correctness signal for both.
"""

from __future__ import annotations

import itertools
from typing import Mapping, Sequence

from .database import ProbabilisticDatabase
from .syntax import Atom, ConjunctiveQuery, UCQ
from .analysis import is_hierarchical

__all__ = ["is_safe_cq", "lifted_probability_cq", "lifted_probability"]


def is_safe_cq(cq: ConjunctiveQuery) -> bool:
    """Safe for the lifted recursion implemented here: self-join-free
    (each relation appears once), hierarchical, no inequalities."""
    rels = [a.relation for a in cq.atoms]
    return len(rels) == len(set(rels)) and not cq.inequalities and is_hierarchical(cq)


def _root_variables(cq: ConjunctiveQuery, free: set[str]) -> list[str]:
    """Free variables occurring in *every* atom (separator candidates)."""
    return [
        v
        for v in cq.variables()
        if v in free and len(cq.atoms_containing(v)) == len(cq.atoms)
    ]


def _connected_components(cq: ConjunctiveQuery, free: set[str]) -> list[ConjunctiveQuery]:
    """Split atoms into components connected through *free* variables
    (bound variables act as constants)."""
    n = len(cq.atoms)
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        parent[find(i)] = find(j)

    for i in range(n):
        for j in range(i + 1, n):
            if set(cq.atoms[i].variables()) & set(cq.atoms[j].variables()) & free:
                union(i, j)
    groups: dict[int, list[Atom]] = {}
    for i, atom in enumerate(cq.atoms):
        groups.setdefault(find(i), []).append(atom)
    return [ConjunctiveQuery(tuple(atoms)) for atoms in groups.values()]


def lifted_probability_cq(
    cq: ConjunctiveQuery, db: ProbabilisticDatabase, domain: Sequence | None = None
) -> float:
    """Exact probability of a safe (hierarchical, self-join-free) Boolean CQ
    by the independent-join / independent-project recursion."""
    if not is_safe_cq(cq):
        raise ValueError("query is not safe for lifted evaluation")
    dom = list(domain) if domain is not None else db.active_domain()
    probs = db.probability_map()

    def atom_probability(atom: Atom, env: Mapping[str, object]) -> float:
        values = tuple(
            env[t.name] if t.is_variable else _coerce(t.name) for t in atom.args
        )
        if not db.contains(atom.relation, values):
            return 0.0
        from .database import tuple_variable

        return probs[tuple_variable(atom.relation, values)]

    def rec(sub: ConjunctiveQuery, env: dict[str, object]) -> float:
        free = {v for v in sub.variables() if v not in env}
        if not free:
            # ground conjunction of independent tuples (self-join-free)
            p = 1.0
            for atom in sub.atoms:
                p *= atom_probability(atom, env)
            return p
        comps = _connected_components(sub, free)
        if len(comps) > 1:
            # independent join
            p = 1.0
            for comp in comps:
                p *= rec(comp, env)
            return p
        roots = _root_variables(sub, free)
        if not roots:
            raise ValueError("hierarchical recursion stuck (non-hierarchical input?)")
        # independent project on the first root variable
        x = roots[0]
        p_none = 1.0
        for a in dom:
            env[x] = a
            p_none *= 1.0 - rec(sub, env)
            del env[x]
        return 1.0 - p_none

    return rec(cq, {})


def _coerce(token: str):
    try:
        return int(token)
    except ValueError:
        return token


def lifted_probability(query: UCQ, db: ProbabilisticDatabase) -> float:
    """Lifted evaluation for UCQs whose disjuncts are safe CQs, via
    inclusion–exclusion over disjunct subsets (each conjunction of safe
    self-join-free CQs on *disjoint relations* is again safe; overlapping
    relations fall back to an error)."""
    disjuncts = query.disjuncts
    total = 0.0
    for r in range(1, len(disjuncts) + 1):
        for combo in itertools.combinations(disjuncts, r):
            merged_atoms = tuple(a for cq in combo for a in cq.atoms)
            merged_ineqs = tuple(i for cq in combo for i in cq.inequalities)
            # variables of different disjuncts are distinct (rename apart)
            renamed: list[Atom] = []
            ineqs = []
            for idx, cq in enumerate(combo):
                ren = {v: f"{v}_{idx}" for v in cq.variables()}
                for a in cq.atoms:
                    renamed.append(
                        Atom(a.relation, tuple(
                            type(t)(ren.get(t.name, t.name), t.is_variable) for t in a.args
                        ))
                    )
                for i in cq.inequalities:
                    from .syntax import Inequality

                    ineqs.append(Inequality(ren[i.left], ren[i.right]))
            merged = ConjunctiveQuery(tuple(renamed), tuple(ineqs))
            if not is_safe_cq(merged):
                raise ValueError(
                    "inclusion-exclusion term is unsafe; use compilation instead"
                )
            p = lifted_probability_cq(merged, db)
            total += p if r % 2 == 1 else -p
    return total
