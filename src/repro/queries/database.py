"""Relational and tuple-independent probabilistic databases.

The paper's probability model (via [33]): every tuple ``t`` of ``D``
carries a probability ``p(t)`` and is present independently; the
probability of a Boolean query is the probability that the lineage —
a Boolean function over tuple variables — is satisfied.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Iterable, Mapping, Sequence

__all__ = ["Database", "ProbabilisticDatabase", "tuple_variable", "complete_database"]


def tuple_variable(relation: str, values: Sequence) -> str:
    """The Boolean variable name of a tuple — e.g. ``R(1,2)``."""
    return f"{relation}({','.join(str(v) for v in values)})"


class Database:
    """A finite relational instance: relation name → set of tuples."""

    def __init__(self) -> None:
        self.relations: dict[str, set[tuple]] = {}

    def add(self, relation: str, *values) -> str:
        """Insert a tuple; returns its tuple-variable name."""
        tup = tuple(values)
        existing = self.relations.setdefault(relation, set())
        for other in existing:
            if len(other) != len(tup):
                raise ValueError(f"arity mismatch in relation {relation}")
            break
        existing.add(tup)
        return tuple_variable(relation, tup)

    def tuples(self, relation: str) -> set[tuple]:
        return self.relations.get(relation, set())

    def contains(self, relation: str, tup: tuple) -> bool:
        return tup in self.relations.get(relation, set())

    def active_domain(self) -> list:
        dom: set = set()
        for tuples in self.relations.values():
            for t in tuples:
                dom.update(t)
        return sorted(dom, key=repr)

    def all_tuple_variables(self) -> list[str]:
        out = []
        for rel in sorted(self.relations):
            for t in sorted(self.relations[rel], key=repr):
                out.append(tuple_variable(rel, t))
        return out

    @property
    def size(self) -> int:
        return sum(len(ts) for ts in self.relations.values())

    def fingerprint(self) -> str:
        """A stable content digest of the instance — same tuples (and, for
        probabilistic databases, same probabilities) ⇒ same fingerprint,
        across processes and restarts (no ``hash()``/identity involved).
        Cache layers key compiled queries on this plus the normalized
        query text (:meth:`repro.queries.syntax.UCQ.normalized`), so a
        rebuilt-but-identical database keeps its cache entries valid.
        """
        h = hashlib.blake2b(digest_size=16)
        probabilities = getattr(self, "probabilities", {})
        for rel in sorted(self.relations):
            for tup in sorted(self.relations[rel], key=repr):
                name = tuple_variable(rel, tup)
                entry = f"{name}={probabilities.get(name, 1)!r};"
                h.update(entry.encode())
        return h.hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Database({ {r: len(ts) for r, ts in self.relations.items()} })"


class ProbabilisticDatabase(Database):
    """A tuple-independent probabilistic database."""

    def __init__(self) -> None:
        super().__init__()
        self.probabilities: dict[str, float] = {}

    def add(self, relation: str, *values, p: float = 0.5) -> str:
        name = super().add(relation, *values)
        if not (0.0 <= p <= 1.0):
            raise ValueError("probability must be in [0, 1]")
        self.probabilities[name] = float(p)
        return name

    def probability_map(self) -> dict[str, float]:
        return dict(self.probabilities)

    @classmethod
    def random(
        cls,
        schema: Mapping[str, int],
        domain_size: int,
        rng,
        tuple_density: float = 1.0,
    ) -> "ProbabilisticDatabase":
        """A random instance over domain ``1..domain_size``: each possible
        tuple is included with probability ``tuple_density`` and gets a
        random probability."""
        db = cls()
        domain = range(1, domain_size + 1)
        for rel, arity in sorted(schema.items()):
            for tup in itertools.product(domain, repeat=arity):
                if rng.random() <= tuple_density:
                    db.add(rel, *tup, p=float(rng.uniform(0.05, 0.95)))
        return db


def complete_database(schema: Mapping[str, int], domain_size: int, p: float = 0.5) -> ProbabilisticDatabase:
    """All tuples over domain ``1..domain_size`` present, each with
    probability ``p`` (the instances of Lemma 7's constructions)."""
    db = ProbabilisticDatabase()
    domain = range(1, domain_size + 1)
    for rel, arity in sorted(schema.items()):
        for tup in itertools.product(domain, repeat=arity):
            db.add(rel, *tup, p=p)
    return db
