"""Relational and tuple-independent probabilistic databases.

The paper's probability model (via [33]): every tuple ``t`` of ``D``
carries a probability ``p(t)`` and is present independently; the
probability of a Boolean query is the probability that the lineage —
a Boolean function over tuple variables — is satisfied.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

__all__ = [
    "Database",
    "ProbabilisticDatabase",
    "UpdateDelta",
    "tuple_variable",
    "complete_database",
]


def tuple_variable(relation: str, values: Sequence) -> str:
    """The Boolean variable name of a tuple — e.g. ``R(1,2)``."""
    return f"{relation}({','.join(str(v) for v in values)})"


@dataclass(frozen=True)
class UpdateDelta:
    """One live mutation of a :class:`ProbabilisticDatabase`, as a value.

    Returned by :meth:`ProbabilisticDatabase.set_probability` /
    :meth:`~ProbabilisticDatabase.insert` /
    :meth:`~ProbabilisticDatabase.delete` and consumed by
    :meth:`repro.queries.engine.QueryEngine.apply_update` (and the
    parallel / pool / service tiers, which broadcast it).  ``version`` is
    the database's content version *after* the mutation, so a copy of the
    database in another process (a spawn worker) can :meth:`apply` the
    same sequence of deltas and stay in lockstep; picklable by design.

    ``kind`` is one of ``"weight"`` (probability change only — the
    lineage of every query is unchanged), ``"insert"`` (a new tuple, new
    Boolean variable ``var``), or ``"delete"`` (tuple removed; every
    lineage loses its derivations through ``var``).
    """

    kind: str
    relation: str
    values: tuple
    var: str
    version: int
    p: float | None = None
    old_p: float | None = None

    def apply(self, db: "ProbabilisticDatabase") -> bool:
        """Apply this delta to ``db`` if it has not been applied yet.

        Returns ``True`` when the database was mutated, ``False`` when it
        is already at (or past) this delta's version — so the same delta
        can safely reach a database object through several layers
        (engine, parallel engine, pool) without double-applying.  A
        database more than one version behind raises: deltas must be
        applied in order.
        """
        if db.version >= self.version:
            return False
        if db.version != self.version - 1:
            raise ValueError(
                f"out-of-order update: database at version {db.version}, "
                f"delta expects {self.version - 1}"
            )
        if self.kind == "weight":
            db.set_probability(self.relation, *self.values, p=self.p)
        elif self.kind == "insert":
            db.insert(self.relation, *self.values, p=self.p)
        elif self.kind == "delete":
            db.delete(self.relation, *self.values)
        else:  # pragma: no cover - constructor-controlled
            raise ValueError(f"unknown update kind {self.kind!r}")
        return True


class Database:
    """A finite relational instance: relation name → set of tuples.

    ``version`` is a monotone content version: every mutation (including
    :meth:`add`) bumps it, so caches layered on top can tell "same object,
    changed content" apart without re-fingerprinting."""

    def __init__(self) -> None:
        self.relations: dict[str, set[tuple]] = {}
        self.version: int = 0

    def add(self, relation: str, *values) -> str:
        """Insert a tuple; returns its tuple-variable name."""
        tup = tuple(values)
        existing = self.relations.setdefault(relation, set())
        for other in existing:
            if len(other) != len(tup):
                raise ValueError(f"arity mismatch in relation {relation}")
            break
        existing.add(tup)
        self.version += 1
        return tuple_variable(relation, tup)

    def tuples(self, relation: str) -> set[tuple]:
        return self.relations.get(relation, set())

    def contains(self, relation: str, tup: tuple) -> bool:
        return tup in self.relations.get(relation, set())

    def active_domain(self) -> list:
        dom: set = set()
        for tuples in self.relations.values():
            for t in tuples:
                dom.update(t)
        return sorted(dom, key=repr)

    def all_tuple_variables(self) -> list[str]:
        out = []
        for rel in sorted(self.relations):
            for t in sorted(self.relations[rel], key=repr):
                out.append(tuple_variable(rel, t))
        return out

    @property
    def size(self) -> int:
        return sum(len(ts) for ts in self.relations.values())

    def fingerprint(self) -> str:
        """A stable content digest of the instance — same tuples (and, for
        probabilistic databases, same probabilities) ⇒ same fingerprint,
        across processes and restarts (no ``hash()``/identity involved).
        Cache layers key compiled queries on this plus the normalized
        query text (:meth:`repro.queries.syntax.UCQ.normalized`), so a
        rebuilt-but-identical database keeps its cache entries valid.
        """
        h = hashlib.blake2b(digest_size=16)
        probabilities = getattr(self, "probabilities", {})
        for rel in sorted(self.relations):
            for tup in sorted(self.relations[rel], key=repr):
                name = tuple_variable(rel, tup)
                entry = f"{name}={probabilities.get(name, 1)!r};"
                h.update(entry.encode())
        return h.hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Database({ {r: len(ts) for r, ts in self.relations.items()} })"


class ProbabilisticDatabase(Database):
    """A tuple-independent probabilistic database."""

    def __init__(self) -> None:
        super().__init__()
        self.probabilities: dict[str, float] = {}

    def add(self, relation: str, *values, p: float = 0.5) -> str:
        # Validate before touching any state: a rejected probability must
        # leave the instance (tuples, probabilities, fingerprint) unchanged.
        if not (0.0 <= p <= 1.0):
            raise ValueError("probability must be in [0, 1]")
        name = super().add(relation, *values)
        self.probabilities[name] = float(p)
        return name

    # -- live updates -------------------------------------------------
    #
    # Each mutator bumps the content version and returns an
    # ``UpdateDelta`` describing the change, which the engine tiers
    # consume (``QueryEngine.apply_update`` and up).

    def set_probability(self, relation: str, *values, p: float) -> UpdateDelta:
        """Change the probability of an existing tuple (weight-only update)."""
        if not (0.0 <= p <= 1.0):
            raise ValueError("probability must be in [0, 1]")
        tup = tuple(values)
        if not self.contains(relation, tup):
            raise KeyError(f"tuple {relation}{tup} not in database")
        name = tuple_variable(relation, tup)
        old_p = self.probabilities[name]
        self.probabilities[name] = float(p)
        self.version += 1
        return UpdateDelta(
            kind="weight",
            relation=relation,
            values=tup,
            var=name,
            version=self.version,
            p=float(p),
            old_p=old_p,
        )

    def insert(self, relation: str, *values, p: float = 0.5) -> UpdateDelta:
        """Insert a new tuple as a live update."""
        tup = tuple(values)
        if self.contains(relation, tup):
            raise KeyError(f"tuple {relation}{tup} already in database")
        name = self.add(relation, *values, p=p)  # bumps version via Database.add
        return UpdateDelta(
            kind="insert",
            relation=relation,
            values=tup,
            var=name,
            version=self.version,
            p=float(p),
        )

    def delete(self, relation: str, *values) -> UpdateDelta:
        """Remove an existing tuple as a live update."""
        tup = tuple(values)
        if not self.contains(relation, tup):
            raise KeyError(f"tuple {relation}{tup} not in database")
        name = tuple_variable(relation, tup)
        old_p = self.probabilities.pop(name)
        self.relations[relation].discard(tup)
        if not self.relations[relation]:
            del self.relations[relation]
        self.version += 1
        return UpdateDelta(
            kind="delete",
            relation=relation,
            values=tup,
            var=name,
            version=self.version,
            old_p=old_p,
        )

    def probability_map(self) -> dict[str, float]:
        return dict(self.probabilities)

    @classmethod
    def random(
        cls,
        schema: Mapping[str, int],
        domain_size: int,
        rng,
        tuple_density: float = 1.0,
    ) -> "ProbabilisticDatabase":
        """A random instance over domain ``1..domain_size``: each possible
        tuple is included with probability ``tuple_density`` and gets a
        random probability."""
        db = cls()
        domain = range(1, domain_size + 1)
        for rel, arity in sorted(schema.items()):
            for tup in itertools.product(domain, repeat=arity):
                if rng.random() <= tuple_density:
                    db.add(rel, *tup, p=float(rng.uniform(0.05, 0.95)))
        return db


def complete_database(schema: Mapping[str, int], domain_size: int, p: float = 0.5) -> ProbabilisticDatabase:
    """All tuples over domain ``1..domain_size`` present, each with
    probability ``p`` (the instances of Lemma 7's constructions)."""
    db = ProbabilisticDatabase()
    domain = range(1, domain_size + 1)
    for rel, arity in sorted(schema.items()):
        for tup in itertools.product(domain, repeat=arity):
            db.add(rel, *tup, p=p)
    return db
