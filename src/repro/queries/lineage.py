"""Lineage of a Boolean UCQ over a database.

``L(Q, D)`` is the monotone Boolean function over the tuples of ``D`` that
accepts ``D' ⊆ D`` iff ``D' |= Q``.  We materialize it three ways:

- :func:`lineage_terms` — the grounded DNF terms (sets of tuple variables);
- :func:`lineage_circuit` — a DNF-shaped :class:`Circuit` (polynomial for
  fixed ``Q``, as in the paper's setup);
- :func:`lineage_function` — the exact :class:`BooleanFunction` (small
  instances; used for ground truth in tests/benches).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from .database import Database, tuple_variable
from .syntax import Atom, ConjunctiveQuery, UCQ
from ..circuits.circuit import Circuit
from ..circuits.nnf import NNF, conj, disj, false_node, lit
from ..core.boolfunc import BooleanFunction

__all__ = [
    "ground_cq",
    "lineage_terms",
    "lineage_circuit",
    "terms_circuit",
    "lineage_nnf",
    "lineage_function",
]


def ground_cq(cq: ConjunctiveQuery, db: Database, domain: Sequence | None = None):
    """Yield, for every satisfying assignment of the query variables to the
    domain, the frozenset of tuple variables the assignment uses."""
    dom = list(domain) if domain is not None else db.active_domain()
    variables = cq.variables()
    for values in itertools.product(dom, repeat=len(variables)):
        assignment = dict(zip(variables, values))
        ok = True
        for ineq in cq.inequalities:
            if assignment[ineq.left] == assignment[ineq.right]:
                ok = False
                break
        if not ok:
            continue
        used: set[str] = set()
        for atom in cq.atoms:
            tup = tuple(
                assignment[t.name] if t.is_variable else _coerce(t.name) for t in atom.args
            )
            if not db.contains(atom.relation, tup):
                ok = False
                break
            used.add(tuple_variable(atom.relation, tup))
        if ok:
            yield frozenset(used)


def _coerce(token: str):
    try:
        return int(token)
    except ValueError:
        return token


def lineage_terms(
    query: UCQ, db: Database, domain: Sequence | None = None
) -> list[frozenset[str]]:
    """The grounded DNF terms, deduplicated, in deterministic order."""
    seen: dict[frozenset[str], None] = {}
    for cq in query.disjuncts:
        for term in ground_cq(cq, db, domain):
            seen.setdefault(term)
    return sorted(seen, key=lambda t: sorted(t))


def lineage_circuit(
    query: UCQ,
    db: Database,
    domain: Sequence | None = None,
    *,
    terms: Sequence[frozenset[str]] | None = None,
) -> Circuit:
    """The lineage as a DNF-shaped circuit over tuple variables.

    The circuit contains one variable gate per tuple of ``D`` (so the
    lineage is a function of *all* tuples, matching ``L(Q, D)``'s scope),
    one AND per grounded term, and a top OR.  ``terms`` may pass
    pre-grounded terms (callers that also need the term sets, e.g. the
    engine's update diffing) to skip grounding twice.
    """
    c = Circuit()
    for name in db.all_tuple_variables():
        c.add_var(name)
    if terms is None:
        terms = lineage_terms(query, db, domain)
    ands = []
    for term in terms:
        ids = [c.add_var(v) for v in sorted(term)]
        ands.append(c.add_and(*ids) if ids else c.add_const(True))
    c.set_output(c.add_or(*ands) if ands else c.add_const(False))
    return c


def terms_circuit(terms: Iterable[frozenset[str]]) -> Circuit:
    """A DNF-shaped circuit over exactly the variables the terms mention.

    The delta-patch compile path: the terms an insert added are compiled
    alone and disjoined onto a cached root, so the circuit must not drag
    in every database tuple the way :func:`lineage_circuit` does.  Terms
    are sorted for a deterministic gate order (canonical compilation
    across parallel workers depends on it).
    """
    c = Circuit()
    ands = []
    for term in sorted(terms, key=lambda t: sorted(t)):
        ids = [c.add_var(v) for v in sorted(term)]
        ands.append(c.add_and(*ids) if ids else c.add_const(True))
    c.set_output(c.add_or(*ands) if ands else c.add_const(False))
    return c


def lineage_nnf(query: UCQ, db: Database, domain: Sequence | None = None) -> NNF:
    """The lineage as a (generally non-deterministic) monotone NNF."""
    terms = lineage_terms(query, db, domain)
    if not terms:
        return false_node()
    return disj([conj([lit(v, True) for v in sorted(term)]) for term in terms])


def lineage_function(
    query: UCQ, db: Database, domain: Sequence | None = None
) -> BooleanFunction:
    """Exact lineage function over *all* tuple variables of ``D``."""
    return lineage_circuit(query, db, domain).function(db.all_tuple_variables())
