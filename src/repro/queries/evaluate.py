"""Probabilistic query evaluation — the application the paper's compilation
results serve.

Three exact evaluators, cross-checked in tests:

- :func:`probability_brute_force` — sums over possible worlds through the
  exact lineage function (exponential; ground truth for small instances);
- :func:`probability_via_obdd` / :func:`probability_via_sdd` — compile the
  lineage and run the linear-time weighted model count on the tractable
  form (the query-compilation pipeline end-to-end).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from .compile import compile_lineage_obdd, compile_lineage_sdd
from .database import ProbabilisticDatabase
from .lineage import lineage_function
from .syntax import UCQ
from ..core.vtree import Vtree

__all__ = [
    "probability_brute_force",
    "probability_via_obdd",
    "probability_via_sdd",
    "probability_exact_fraction",
]


def probability_brute_force(query: UCQ, db: ProbabilisticDatabase) -> float:
    """Ground-truth query probability (exponential in the number of tuples)."""
    f = lineage_function(query, db)
    return f.probability(db.probability_map())


def probability_via_obdd(
    query: UCQ, db: ProbabilisticDatabase, order: Sequence[str] | None = None
) -> float:
    mgr, root = compile_lineage_obdd(query, db, order)
    return mgr.probability(root, db.probability_map())


def probability_via_sdd(
    query: UCQ, db: ProbabilisticDatabase, vtree: Vtree | None = None
) -> float:
    mgr, root = compile_lineage_sdd(query, db, vtree)
    return mgr.probability(root, db.probability_map())


def probability_exact_fraction(
    query: UCQ, db: ProbabilisticDatabase, order: Sequence[str] | None = None
) -> Fraction:
    """Exact rational probability via the OBDD WMC with Fraction weights
    (tuple probabilities are converted with ``Fraction(str(p))`` fidelity)."""
    mgr, root = compile_lineage_obdd(query, db, order)
    weights = {}
    for v, p in db.probability_map().items():
        fp = Fraction(str(p))
        weights[v] = (1 - fp, fp)
    return mgr.weighted_count(root, weights)
