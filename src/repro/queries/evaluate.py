"""Probabilistic query evaluation — the application the paper's compilation
results serve.

Exact evaluators, cross-checked in tests:

- :func:`probability_brute_force` — sums over possible worlds through the
  exact lineage function (exponential; ground truth for small instances);
- :func:`probability_via_obdd` / :func:`probability_via_sdd` — compile the
  lineage and run the linear-time weighted model count on the tractable
  form (the query-compilation pipeline end-to-end; ``exact=True`` keeps
  the arithmetic in :class:`~fractions.Fraction`, so results stay exact
  even on databases far beyond the truth-table regime);
- :func:`evaluate_many` — a *workload* evaluator: many queries against one
  database share a single vtree, one :class:`SddManager` (hash-cons tables
  and apply cache included), and one WMC memo, so common sub-lineages are
  compiled and counted once across the whole batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Sequence

from .compile import compile_lineage_obdd, compile_lineage_sdd, lineage_vtree
from .database import ProbabilisticDatabase
from .lineage import lineage_circuit, lineage_function
from .syntax import UCQ
from ..core.vtree import Vtree
from ..sdd.manager import SddManager
from ..sdd.wmc import SddWmcEvaluator, exact_weights, float_weights
from ..sdd.wmc import probability as sdd_probability

__all__ = [
    "probability_brute_force",
    "probability_via_obdd",
    "probability_via_sdd",
    "probability_exact_fraction",
    "BatchEvaluation",
    "evaluate_many",
]


def probability_brute_force(query: UCQ, db: ProbabilisticDatabase) -> float:
    """Ground-truth query probability (exponential in the number of tuples)."""
    f = lineage_function(query, db)
    return f.probability(db.probability_map())


def probability_via_obdd(
    query: UCQ, db: ProbabilisticDatabase, order: Sequence[str] | None = None
) -> float:
    mgr, root = compile_lineage_obdd(query, db, order)
    return mgr.probability(root, db.probability_map())


def probability_via_sdd(
    query: UCQ,
    db: ProbabilisticDatabase,
    vtree: Vtree | None = None,
    *,
    exact: bool = False,
) -> float | Fraction:
    """Query probability through the apply-based SDD pipeline.

    ``exact=True`` runs the WMC in rational arithmetic and returns the
    exact :class:`~fractions.Fraction` — the only trustworthy mode once
    instances outgrow float precision (hundreds of tuples).
    """
    mgr, root = compile_lineage_sdd(query, db, vtree)
    return sdd_probability(mgr, root, db.probability_map(), exact=exact)


def probability_exact_fraction(
    query: UCQ, db: ProbabilisticDatabase, order: Sequence[str] | None = None
) -> Fraction:
    """Exact rational probability via the OBDD WMC with Fraction weights
    (tuple probabilities are converted with ``Fraction(str(p))`` fidelity)."""
    mgr, root = compile_lineage_obdd(query, db, order)
    return mgr.weighted_count(root, exact_weights(db.probability_map()))


@dataclass
class BatchEvaluation:
    """Everything :func:`evaluate_many` produces for one workload."""

    queries: list[UCQ]
    probabilities: list[float | Fraction]
    roots: list[int]
    sizes: list[int]
    manager: SddManager
    vtree: Vtree
    stats: dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.queries)

    def __getitem__(self, i: int):
        return self.probabilities[i]


def evaluate_many(
    queries: Sequence[UCQ],
    db: ProbabilisticDatabase,
    *,
    vtree: Vtree | None = None,
    exact: bool = False,
) -> BatchEvaluation:
    """Compile and exactly evaluate a workload of queries against one
    database, sharing everything shareable.

    All lineages are functions over the same variable set (the tuples of
    ``db``), so one vtree fits all; one :class:`SddManager` then gives the
    batch a common hash-cons table and apply cache — a sub-lineage two
    queries share is compiled once — and one :class:`SddWmcEvaluator`
    gives them a common WMC memo keyed by node id, so shared nodes are
    counted once too.

    Returns a :class:`BatchEvaluation`; ``probabilities[i]`` is the exact
    :class:`~fractions.Fraction` (``exact=True``) or ``float`` probability
    of ``queries[i]``.
    """
    queries = list(queries)
    if not queries:
        raise ValueError("empty workload")
    if vtree is None:
        vtree = lineage_vtree(queries[0], db)
    mgr = SddManager(vtree)
    roots: list[int] = []
    for q in queries:
        _, root = compile_lineage_sdd(q, db, manager=mgr)
        roots.append(root)
    prob = db.probability_map()
    weights = exact_weights(prob) if exact else float_weights(prob)
    evaluator = SddWmcEvaluator(mgr, weights)
    values = [evaluator.value(r) for r in roots]
    # Constant roots short-circuit to int 0/1; normalize the ring.
    values = [Fraction(v) if exact else float(v) for v in values]
    return BatchEvaluation(
        queries=queries,
        probabilities=values,
        roots=roots,
        sizes=[mgr.size(r) for r in roots],
        manager=mgr,
        vtree=vtree,
        stats={
            "manager_nodes": len(mgr.node_kind),
            "apply_cache_entries": len(mgr._and_cache) + len(mgr._or_cache),
            "wmc_memo_entries": len(evaluator._memo),
        },
    )
