"""Probabilistic query evaluation — the application the paper's compilation
results serve.

Exact evaluators, cross-checked in tests:

- :func:`probability_brute_force` — sums over possible worlds through the
  exact lineage function (exponential; ground truth for small instances);
- :func:`probability_via_obdd` / :func:`probability_via_sdd` — compile the
  lineage and run the linear-time weighted model count on the tractable
  form (the query-compilation pipeline end-to-end; ``exact=True`` keeps
  the arithmetic in :class:`~fractions.Fraction`, so results stay exact
  even on databases far beyond the truth-table regime);
- :func:`evaluate_many` — a *workload* evaluator: many queries against one
  database share a single vtree, one :class:`SddManager` (hash-cons tables
  and apply cache included), and one WMC memo, so common sub-lineages are
  compiled and counted once across the whole batch.

The session-oriented front door is :class:`repro.queries.QueryEngine`;
:func:`probability_via_sdd` and :func:`evaluate_many` are thin shims over a
single-use engine and remain for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Sequence

from .compile import compile_lineage_ddnnf, compile_lineage_obdd
from .database import ProbabilisticDatabase
from .engine import QueryEngine
from .lineage import lineage_function
from .syntax import UCQ
from ..core.vtree import Vtree
from ..sdd.manager import SddManager
from ..sdd.wmc import exact_weights

__all__ = [
    "probability_brute_force",
    "probability_via_obdd",
    "probability_via_sdd",
    "probability_via_ddnnf",
    "probability_exact_fraction",
    "BatchEvaluation",
    "evaluate_many",
]


def probability_brute_force(query: UCQ, db: ProbabilisticDatabase) -> float:
    """Ground-truth query probability (exponential in the number of tuples)."""
    f = lineage_function(query, db)
    return f.probability(db.probability_map())


def probability_via_obdd(
    query: UCQ, db: ProbabilisticDatabase, order: Sequence[str] | None = None
) -> float:
    mgr, root = compile_lineage_obdd(query, db, order)
    return mgr.probability(root, db.probability_map())


def probability_via_sdd(
    query: UCQ,
    db: ProbabilisticDatabase,
    vtree: Vtree | None = None,
    *,
    exact: bool = False,
) -> float | Fraction:
    """Query probability through the apply-based SDD pipeline.

    .. deprecated:: PR 2
        Shim over a single-use :class:`~repro.queries.engine.QueryEngine`;
        construct an engine directly to share work across queries.

    ``exact=True`` runs the WMC in rational arithmetic and returns the
    exact :class:`~fractions.Fraction` — the only trustworthy mode once
    instances outgrow float precision (hundreds of tuples).
    """
    return QueryEngine(db, vtree=vtree).probability(query, exact=exact)


def probability_via_ddnnf(
    query: UCQ, db: ProbabilisticDatabase, *, exact: bool = False
) -> float | Fraction:
    """Query probability through the bag-by-bag d-DNNF pipeline — the only
    evaluator here that never builds an OBDD or touches an
    :class:`SddManager`: the lineage circuit's tree decomposition drives
    the compilation, then the smooth-d-DNNF WMC sums it up.

    ``exact=True`` keeps the arithmetic in :class:`~fractions.Fraction`
    with the same ``Fraction(str(p))`` conventions as the other exact
    evaluators, so the cross-backend parity tests compare bit-identical
    rationals.
    """
    from ..dnnf.wmc import probability as dnnf_probability

    r = compile_lineage_ddnnf(query, db)
    return dnnf_probability(r.dag, r.root, db.probability_map(), exact=exact)


def probability_exact_fraction(
    query: UCQ, db: ProbabilisticDatabase, order: Sequence[str] | None = None
) -> Fraction:
    """Exact rational probability via the OBDD WMC with Fraction weights
    (tuple probabilities are converted with ``Fraction(str(p))`` fidelity)."""
    mgr, root = compile_lineage_obdd(query, db, order)
    return mgr.weighted_count(root, exact_weights(db.probability_map()))


@dataclass
class BatchEvaluation:
    """Everything one workload evaluation produces.

    ``stats`` holds the public counters of the engine that ran the batch
    (see :meth:`repro.queries.engine.QueryEngine.stats`).  Under a
    ``max_nodes`` budget a query evicted before the batch returned has
    ``None`` in ``roots`` (its probability and size were computed while it
    was live; the root id itself may have been collected and recycled).
    """

    queries: list[UCQ]
    probabilities: list[float | Fraction]
    roots: list[int | None]
    sizes: list[int]
    manager: SddManager
    vtree: Vtree
    stats: dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.queries)

    def __getitem__(self, i: int):
        return self.probabilities[i]


def evaluate_many(
    queries: Sequence[UCQ],
    db: ProbabilisticDatabase,
    *,
    vtree: Vtree | None = None,
    exact: bool = False,
    max_nodes: int | None = None,
    workers: int | None = None,
    parallel_mode: str = "auto",
    shard_seed: int = 0,
):
    """Compile and exactly evaluate a workload of queries against one
    database, sharing everything shareable.

    .. deprecated:: PR 2
        Shim over a single-use :class:`~repro.queries.engine.QueryEngine`
        (``QueryEngine(db, vtree=vtree).evaluate(queries, exact=exact)``);
        construct an engine directly to keep the sharing alive beyond one
        batch.

    All lineages are functions over the same variable set (the tuples of
    ``db``), so one vtree fits all; one :class:`SddManager` then gives the
    batch a common hash-cons table and apply cache — a sub-lineage two
    queries share is compiled once — and one WMC memo keyed by node id
    counts shared nodes once too.

    Returns a :class:`BatchEvaluation`; ``probabilities[i]`` is the exact
    :class:`~fractions.Fraction` (``exact=True``) or ``float`` probability
    of ``queries[i]``.

    ``max_nodes`` bounds the shared manager for very large workloads:
    least-recently-used lineages are released and garbage-collected when
    the budget overflows (see :class:`~repro.queries.engine.QueryEngine`).

    ``workers`` > 1 shards the workload across that many worker engines
    sharing one base vtree (each with its own per-worker ``max_nodes``
    budget) and returns a
    :class:`~repro.queries.parallel.ParallelBatchEvaluation`; results are
    bit-identical to the serial path for every ``workers``/``shard_seed``
    setting.  ``workers=None`` or ``1`` is exactly the serial path.
    """
    return QueryEngine(db, vtree=vtree, max_nodes=max_nodes).evaluate(
        queries,
        exact=exact,
        workers=workers,
        parallel_mode=parallel_mode,
        shard_seed=shard_seed,
    )
