"""The paper's query families (Section 4 / Lemma 7).

- :func:`inversion_chain_query` — the length-``k`` inversion chain

      h_k = R(x),S1(x,y) | S1(x,y),S2(x,y) | ... | Sk(x,y),T(y)

  whose lineages over the complete database on ``[n]`` contain every
  ``H^i_{k,n}`` as a cofactor (Lemma 7; verified by
  :func:`verify_lemma7`).
- :func:`hierarchical_query` — the inversion-free ``R(x),S(x,y)``.
- :func:`inequality_query` — ``R(x),S(y),x≠y`` (inversion-free with
  inequalities: polynomial OBDDs, Figure 3).
- :func:`inversion_chain_with_inequality` — the chain with an inequality
  planted, exercising the "UCQ with inequalities + inversion" corner of
  Figure 3.
"""

from __future__ import annotations

from .database import ProbabilisticDatabase, complete_database, tuple_variable
from .lineage import lineage_function
from .syntax import UCQ, parse_ucq
from ..circuits.build import h_function, xvar, yvar, zvar
from ..core.boolfunc import BooleanFunction

__all__ = [
    "inversion_chain_query",
    "hierarchical_query",
    "independent_query",
    "inequality_query",
    "inversion_chain_with_inequality",
    "chain_schema",
    "chain_database",
    "lemma7_blocks",
    "lemma7_assignment",
    "verify_lemma7",
    "tuple_to_h_variable",
]


def inversion_chain_query(k: int) -> UCQ:
    """``h_k`` — contains an inversion of length ``k``."""
    if k < 1:
        raise ValueError("k >= 1")
    parts = ["R(x),S1(x,y)"]
    for i in range(1, k):
        parts.append(f"S{i}(x,y),S{i + 1}(x,y)")
    parts.append(f"S{k}(x,y),T(y)")
    return parse_ucq(" | ".join(parts))


def hierarchical_query() -> UCQ:
    """``R(x),S(x,y)`` — hierarchical, inversion-free (constant OBDD width)."""
    return parse_ucq("R(x),S(x,y)")


def independent_query() -> UCQ:
    """``R(x) | T(y)`` — trivially inversion-free."""
    return parse_ucq("R(x) | T(y)")


def inequality_query() -> UCQ:
    """``R(x),S(y),x≠y`` — inversion-free UCQ *with* inequalities."""
    return parse_ucq("R(x),S(y),x!=y")


def inversion_chain_with_inequality(k: int) -> UCQ:
    """The chain ``h_k`` with an extra inequality disjunct — a UCQ with
    inequalities that still contains the length-``k`` inversion."""
    base = inversion_chain_query(k)
    extra = parse_ucq("R(x),T(y),x!=y")
    return UCQ(base.disjuncts + extra.disjuncts)


def chain_schema(k: int) -> dict[str, int]:
    schema = {"R": 1, "T": 1}
    for i in range(1, k + 1):
        schema[f"S{i}"] = 2
    return schema


def chain_database(k: int, n: int, p: float = 0.5) -> ProbabilisticDatabase:
    """The complete database over ``[n]`` for the chain query."""
    return complete_database(chain_schema(k), n, p)


def tuple_to_h_variable(k: int) -> dict[str, str]:
    """Rename map: tuple variables of the chain database → the ``H^i_{k,n}``
    variable names (``R(l) ↦ x_l``, ``S_i(l,m) ↦ z^i_{l,m}``, ``T(m) ↦ y_m``)."""

    def mapping(n: int) -> dict[str, str]:
        out: dict[str, str] = {}
        for l in range(1, n + 1):
            out[tuple_variable("R", (l,))] = xvar(l)
            out[tuple_variable("T", (l,))] = yvar(l)
        for i in range(1, k + 1):
            for l in range(1, n + 1):
                for m in range(1, n + 1):
                    out[tuple_variable(f"S{i}", (l, m))] = zvar(i, l, m)
        return out

    return mapping  # type: ignore[return-value]


def lemma7_blocks(k: int, n: int) -> dict[str, list[str]]:
    """Variable blocks of the chain lineage: ``X``, ``Y``, ``Z1..Zk``."""
    blocks = {
        "X": [tuple_variable("R", (l,)) for l in range(1, n + 1)],
        "Y": [tuple_variable("T", (m,)) for m in range(1, n + 1)],
    }
    for i in range(1, k + 1):
        blocks[f"Z{i}"] = [
            tuple_variable(f"S{i}", (l, m))
            for l in range(1, n + 1)
            for m in range(1, n + 1)
        ]
    return blocks


def lemma7_assignment(k: int, n: int, i: int) -> dict[str, int]:
    """The assignment ``b_i`` killing every block except the ones ``H^i``
    reads: set all other blocks' tuples to 0."""
    if not (0 <= i <= k):
        raise ValueError("0 <= i <= k")
    blocks = lemma7_blocks(k, n)
    keep: set[str]
    if i == 0:
        keep = {"X", "Z1"}
    elif i == k:
        keep = {f"Z{k}", "Y"}
    else:
        keep = {f"Z{i}", f"Z{i + 1}"}
    assignment: dict[str, int] = {}
    for name, variables in blocks.items():
        if name not in keep:
            for v in variables:
                assignment[v] = 0
    return assignment


def verify_lemma7(k: int, n: int, i: int) -> bool:
    """Check ``F(b_i, X ∖ X_i) ≡ H^i_{k,n}`` semantically (Lemma 7)."""
    query = inversion_chain_query(k)
    db = chain_database(k, n)
    lineage = lineage_function(query, db)
    cof = lineage.cofactor(lemma7_assignment(k, n, i))
    rename = tuple_to_h_variable(k)(n)
    renamed = cof.rename({v: rename[v] for v in cof.variables})
    target = h_function(k, n, i).extend(renamed.variables)
    return renamed == target
