"""Parallel sharded query evaluation: one base vtree, N worker engines.

The paper's query-compilation pipeline fixes *one* vtree per lineage
workload (the hierarchy order over every tuple variable of the database),
which makes per-query compilation embarrassingly parallel: every query's
SDD is canonical with respect to that shared vtree, so the work units are
independent and their answers are order- and placement-invariant.

:class:`ParallelQueryEngine` exploits this by sharding a batch of queries
across ``workers`` :class:`~repro.queries.engine.QueryEngine` instances,
each owning its own :class:`~repro.sdd.manager.SddManager` and WMC memos
while sharing one **read-only base vtree** computed once from the database
(and the first query's hierarchy order — exactly the vtree a serial engine
would derive).

Determinism guarantee
---------------------

Results are **bit-identical to the serial path** for every ``workers``
setting, every shard seed, and both execution modes:

- shard assignment is a *stable* BLAKE2 hash of the query text plus the
  shard seed (:func:`shard_of`) — never arrival order, thread timing, or
  ``PYTHONHASHSEED``;
- all workers compile against the same base vtree, and SDDs are canonical
  per vtree, so each query's compiled form — hence its exact ``Fraction``
  and even its float WMC value — does not depend on which worker ran it
  or what was compiled before it;
- a ``max_nodes`` budget applies *shard-locally* (each worker engine gets
  the full budget for its shard), and PR 3's GC never changes an answer —
  eviction only affects whether ``roots[i]`` reports the still-pinned id
  or the ``None`` marker.

Execution modes
---------------

``mode="threads"`` runs each shard's engine on a worker thread (no
pickling, engines persist across batches for session reuse);
``mode="spawn"`` runs each shard in a spawn-started process (work units
are pickled: queries, database, and the base vtree as a flat
:meth:`~repro.core.vtree.Vtree.to_postfix` encoding, so 10k-deep
right-linear vtrees cross the process boundary without recursion).
``mode="auto"`` picks threads for small batches or single-CPU hosts
(process start-up would dominate) and spawn otherwise.

``workers=1`` short-circuits to the serial
:meth:`QueryEngine.evaluate` path and returns its
:class:`~repro.queries.evaluate.BatchEvaluation` byte-identically.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, Sequence

from .compile import lineage_vtree
from .database import ProbabilisticDatabase, UpdateDelta
from .engine import QueryEngine
from .syntax import UCQ
from ..core.vtree import Vtree

__all__ = ["ParallelQueryEngine", "ParallelBatchEvaluation", "shard_of"]

# ``mode="auto"``: below this many queries per worker a process pool's
# start-up cost (interpreter + imports per child) dominates the work.
_SPAWN_MIN_PER_WORKER = 64


def shard_of(query: UCQ, workers: int, seed: int = 0) -> int:
    """Deterministic shard index of ``query`` among ``workers`` shards.

    A stable keyed BLAKE2 hash of the canonical query text: independent of
    ``PYTHONHASHSEED``, arrival order, process, and platform — the same
    query lands on the same worker in every run, so repeat queries hit
    that worker's compiled-query cache.
    """
    if workers <= 0:
        raise ValueError("workers must be positive")
    digest = hashlib.blake2b(
        str(query).encode(),
        digest_size=8,
        key=seed.to_bytes(8, "big", signed=True),
    ).digest()
    return int.from_bytes(digest, "big") % workers


def _evaluate_shard(payload):
    """One worker's whole shard, start to finish (top-level so a spawned
    process can import it; everything in ``payload`` is picklable).

    ``items`` is ``[(batch_index, query), ...]`` in original batch order —
    so a ``max_nodes`` budget sees the same LRU sequence a serial engine
    would see restricted to this shard.  Returns per-query results plus
    the worker engine's public stats; ``root`` is the pinned root id or
    ``None`` if the query was evicted by the time the shard finished
    (mirroring the serial batch contract).
    """
    db, vtree_ops, max_nodes, backend, items, exact = payload
    vtree = Vtree.from_postfix(vtree_ops) if vtree_ops is not None else None
    engine = QueryEngine(db, vtree=vtree, max_nodes=max_nodes, backend=backend)
    return _run_items(engine, items, exact)


def _run_items(engine: QueryEngine, items, exact: bool):
    results = []
    for idx, q in items:
        p = engine.probability(q, exact=exact)
        size = engine.compiled_size(q)  # just asked for: never evicted yet
        assert size is not None
        results.append((idx, p, size))
    roots = [(idx, engine.cached_root(q)) for idx, q in items]
    return results, roots, engine.stats()


@dataclass
class ParallelBatchEvaluation:
    """Everything one sharded workload evaluation produces.

    Per-query lists are in original batch order.  ``roots[i]`` is the root
    id in worker ``shards[i]``'s manager, or ``None`` if that worker's
    ``max_nodes`` budget evicted the query before its shard finished —
    never a stale id.  In ``spawn`` mode the managers lived in worker
    processes, so root ids are reported for inspection but are not
    dereferenceable here; in ``threads`` mode ``engines[shards[i]]`` is
    the live session that owns ``roots[i]``.  ``worker_stats`` is keyed
    by shard index (``worker_stats[shards[i]]`` is query ``i``'s worker;
    empty shards never spin up and have no entry).
    """

    queries: list[UCQ]
    probabilities: list[float | Fraction]
    roots: list[int | None]
    sizes: list[int]
    shards: list[int]
    workers: int
    mode: str
    vtree: Vtree | None  # None for the (vtree-free) d-DNNF backend
    worker_stats: dict[int, dict[str, int | str]]  # shard index -> engine stats
    stats: dict[str, int | str] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.queries)

    def __getitem__(self, i: int):
        return self.probabilities[i]


class ParallelQueryEngine:
    """Shard query batches across ``workers`` engines over one base vtree.

    ``vtree`` pins the shared decomposition; otherwise it is derived once
    from the first query of the first batch (hierarchy order covering
    every tuple variable of ``db`` — the same vtree a serial
    :class:`QueryEngine` would build) and reused for the engine's
    lifetime.  ``max_nodes`` is a *per-worker* session budget: each worker
    engine evicts and collects shard-locally, so a workload whose working
    set thrashes one serial engine's budget can fit ``workers`` smaller
    shard working sets (see ``benchmarks/bench_parallel.py``).

    ``mode`` is ``"auto"`` (default), ``"threads"``, or ``"spawn"``; see
    the module docstring for the choice rule and the determinism
    guarantee.  Not safe for *concurrent* ``evaluate`` calls on the same
    instance.

    ``backend`` selects the compiled representation per worker engine
    (``"sdd"`` or ``"ddnnf"`` — the latter needs no shared vtree, every
    other guarantee is unchanged).  ``persistent=True`` routes batches
    through a long-lived :class:`~repro.service.pool.WorkerPool` instead
    of the per-batch executors: worker engines (threads *and* spawn-child
    processes) survive across batches, and ``steal`` lets idle workers
    take queued work from skewed shards — answers stay bit-identical, per
    the pool's determinism guarantee.  A persistent engine should be
    :meth:`close`\\ d (or used as a context manager) when done.
    """

    def __init__(
        self,
        db: ProbabilisticDatabase,
        *,
        workers: int = 2,
        vtree: Vtree | None = None,
        max_nodes: int | None = None,
        mode: str = "auto",
        shard_seed: int = 0,
        backend: str = "sdd",
        persistent: bool = False,
        steal: bool = True,
    ):
        if workers <= 0:
            raise ValueError("workers must be positive")
        if mode not in ("auto", "threads", "spawn"):
            raise ValueError(f"unknown mode {mode!r}")
        if max_nodes is not None and max_nodes <= 0:
            raise ValueError("max_nodes must be positive")
        if backend not in QueryEngine._BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; choose from {QueryEngine._BACKENDS}"
            )
        self.db = db
        self.workers = workers
        self.max_nodes = max_nodes
        self.mode = mode
        self.shard_seed = shard_seed
        self.backend = backend
        self.persistent = persistent
        self.steal = steal
        self._vtree = vtree
        # threads mode keeps one engine per shard alive across batches —
        # the session-sharing contract of the serial engine, per shard.
        self._engines: dict[int, QueryEngine] = {}
        self._pool = None  # persistent=True: the lazily started WorkerPool

    @property
    def vtree(self) -> Vtree | None:
        """The shared base vtree (``None`` until the first batch)."""
        return self._vtree

    def shard_of(self, query: UCQ) -> int:
        """The worker index this engine deterministically assigns ``query``."""
        return shard_of(query, self.workers, self.shard_seed)

    def _ensure_vtree(self, first_query: UCQ) -> Vtree | None:
        if self.backend == "ddnnf":
            return None  # d-DNNF compiles from tree decompositions, no vtree
        if self._vtree is None:
            self._vtree = lineage_vtree(first_query, self.db)
        return self._vtree

    def _resolve_mode(self, n_queries: int) -> str:
        if self.mode != "auto":
            return self.mode
        if (os.cpu_count() or 1) <= 1:
            return "threads"  # no parallelism to win; skip process start-up
        if n_queries < self.workers * _SPAWN_MIN_PER_WORKER:
            return "threads"  # small batch: spawn cost dominates
        return "spawn"

    def evaluate(self, queries: Iterable[UCQ], *, exact: bool = False):
        """Evaluate a workload sharded across the workers.

        Returns a :class:`ParallelBatchEvaluation` — except with
        ``workers=1``, which runs the serial
        :meth:`QueryEngine.evaluate` path unchanged and returns its
        :class:`~repro.queries.evaluate.BatchEvaluation` (byte-identical
        to not using the parallel engine at all).
        """
        qs: Sequence[UCQ] = list(queries)
        if not qs:
            raise ValueError("empty workload")
        if self.workers == 1:
            engine = self._engines.get(0)
            if engine is None:
                engine = QueryEngine(
                    self.db,
                    vtree=self._vtree,
                    max_nodes=self.max_nodes,
                    backend=self.backend,
                )
                self._engines[0] = engine
            batch = engine.evaluate(qs, exact=exact)
            self._vtree = engine.vtree
            return batch

        vtree = self._ensure_vtree(qs[0])
        shards: list[int] = [self.shard_of(q) for q in qs]
        items_per_worker: dict[int, list[tuple[int, UCQ]]] = {}
        for i, (q, w) in enumerate(zip(qs, shards)):
            items_per_worker.setdefault(w, []).append((i, q))
        mode = self._resolve_mode(len(qs))
        occupied = sorted(items_per_worker)

        if self.persistent:
            return self._run_pool(qs, shards, items_per_worker, exact, vtree, mode)
        if mode == "threads":
            outputs = self._run_threads(occupied, items_per_worker, exact, vtree)
        else:
            outputs = self._run_spawn(occupied, items_per_worker, exact, vtree)

        probabilities: list = [None] * len(qs)
        sizes: list = [0] * len(qs)
        roots: list = [None] * len(qs)
        worker_stats: dict[int, dict[str, int | str]] = {}
        for w, (results, shard_roots, stats) in zip(occupied, outputs):
            for idx, p, size in results:
                probabilities[idx] = p
                sizes[idx] = size
            for idx, root in shard_roots:
                roots[idx] = root
            worker_stats[w] = stats
        return ParallelBatchEvaluation(
            queries=list(qs),
            probabilities=probabilities,
            roots=roots,
            sizes=sizes,
            shards=shards,
            workers=self.workers,
            mode=mode,
            vtree=vtree,
            worker_stats=worker_stats,
            stats=self._merge_stats(list(worker_stats.values())),
        )

    # ------------------------------------------------------------------
    # execution backends
    # ------------------------------------------------------------------
    def _run_threads(self, occupied, items_per_worker, exact, vtree):
        from concurrent.futures import ThreadPoolExecutor

        for w in occupied:
            if w not in self._engines:
                self._engines[w] = QueryEngine(
                    self.db,
                    vtree=vtree,
                    max_nodes=self.max_nodes,
                    backend=self.backend,
                )
        if len(occupied) == 1:
            w = occupied[0]
            return [_run_items(self._engines[w], items_per_worker[w], exact)]
        with ThreadPoolExecutor(max_workers=len(occupied)) as pool:
            futures = [
                pool.submit(_run_items, self._engines[w], items_per_worker[w], exact)
                for w in occupied
            ]
            return [f.result() for f in futures]

    def _run_spawn(self, occupied, items_per_worker, exact, vtree):
        from concurrent.futures import ProcessPoolExecutor
        from multiprocessing import get_context

        vtree_ops = None if vtree is None else vtree.to_postfix()
        payloads = [
            (self.db, vtree_ops, self.max_nodes, self.backend, items_per_worker[w], exact)
            for w in occupied
        ]
        if len(payloads) == 1:
            # Everything hashed to one shard: a process pool would pay
            # interpreter start-up and payload pickling for a strictly
            # serial run — evaluate the lone shard in this process
            # (same throwaway-engine semantics as a spawn worker).
            return [_evaluate_shard(payloads[0])]
        with ProcessPoolExecutor(
            max_workers=len(occupied), mp_context=get_context("spawn")
        ) as pool:
            return list(pool.map(_evaluate_shard, payloads))

    def _run_pool(self, qs, shards, items_per_worker, exact, vtree, mode):
        """``persistent=True``: run the batch on the long-lived
        :class:`~repro.service.pool.WorkerPool` (started on the first
        batch with the mode resolved then; warm engines and — in spawn
        mode — warm child processes serve every later batch)."""
        pool = self._ensure_pool(vtree, mode)
        results = pool.run_batch(items_per_worker, exact=exact)
        probabilities: list = [None] * len(qs)
        sizes: list = [0] * len(qs)
        roots: list = [None] * len(qs)
        for idx, r in results.items():
            probabilities[idx] = r.probability
            sizes[idx] = r.size
            roots[idx] = r.root
        worker_stats = pool.worker_stats()
        stats = self._merge_stats(list(worker_stats.values()))
        stats.update(pool.stats())
        return ParallelBatchEvaluation(
            queries=list(qs),
            probabilities=probabilities,
            roots=roots,
            sizes=sizes,
            shards=shards,
            workers=self.workers,
            mode=pool.mode,
            vtree=vtree,
            worker_stats=worker_stats,
            stats=stats,
        )

    def _ensure_pool(self, vtree, mode):
        if self._pool is None:
            from ..service.pool import WorkerPool

            self._pool = WorkerPool(
                self.db,
                workers=self.workers,
                vtree=vtree,
                max_nodes=self.max_nodes,
                mode=mode,
                steal=self.steal,
                backend=self.backend,
            )
        return self._pool

    # ------------------------------------------------------------------
    # live updates
    # ------------------------------------------------------------------
    def apply_update(self, delta: UpdateDelta) -> dict[str, int]:
        """Broadcast one database delta to every tier this engine owns.

        The shared database is mutated once (version-gated), the base
        vtree grows the inserted tuple's leaf exactly the way each
        worker's manager grows its own (appended under a new root — so
        workers that extend live, workers created later from the base
        vtree, and spawn children rebuilding from postfix all compile
        against structurally identical vtrees, keeping answers
        bit-identical), live per-shard engines delta-patch their caches,
        and a persistent :class:`~repro.service.pool.WorkerPool` gets the
        delta as a control message for threads *and* spawn children.
        Per-batch spawn workers need nothing: they pickle the database
        fresh each batch.  Like :meth:`evaluate`, not safe concurrently
        with an in-flight batch on the same instance.

        Returns the merged counter increments across workers
        (``updates_applied`` counts this call once).
        """
        delta.apply(self.db)
        if (
            delta.kind == "insert"
            and self.backend == "sdd"
            and self._vtree is not None
            and delta.var not in self._vtree.variables
        ):
            self._vtree = Vtree.internal_trusted(self._vtree, Vtree.leaf(delta.var))
        merged = {
            "updates_applied": 1,
            "memo_invalidations": 0,
            "delta_patched_roots": 0,
            "update_recompiles": 0,
        }
        increments = [e.apply_update(delta) for e in self._engines.values()]
        if self._pool is not None:
            increments.append(self._pool.apply_update(delta))
        for inc in increments:
            for key in ("memo_invalidations", "delta_patched_roots", "update_recompiles"):
                merged[key] += inc.get(key, 0)
        return merged

    def close(self) -> None:
        """Shut down the persistent worker pool, if one was started.
        Idempotent; a no-op for the classic per-batch paths."""
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "ParallelQueryEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def engines(self) -> dict[int, QueryEngine]:
        """The live per-shard engines (classic threads/serial modes; with
        ``persistent=True`` see the pool's own
        :meth:`~repro.service.pool.WorkerPool.engines`)."""
        if self._pool is not None:
            return self._pool.engines()
        return dict(self._engines)

    @property
    def pool(self):
        """The persistent :class:`~repro.service.pool.WorkerPool`
        (``None`` unless ``persistent=True`` and a batch has run)."""
        return self._pool

    def _merge_stats(
        self, worker_stats: Sequence[dict[str, int | str]]
    ) -> dict[str, int | str]:
        merged: dict[str, int | str] = {}
        for stats in worker_stats:
            for k, v in stats.items():
                if isinstance(v, str):
                    # Non-numeric stats (e.g. eviction_policy) don't sum;
                    # workers are configured identically, pass one through.
                    merged[k] = v
                else:
                    merged[k] = merged.get(k, 0) + v
        merged["tuples"] = self.db.size  # session-wide, not per-worker
        merged["workers"] = self.workers
        return merged

    def stats(self) -> dict[str, int]:
        """Aggregated public counters over the live per-shard engines
        (threads/serial modes; empty until the first batch)."""
        return self._merge_stats([e.stats() for e in self._engines.values()])
