"""Unions of conjunctive queries with and without inequalities (Section 4).

A UCQ (with inequalities) is a disjunction of existentially closed
conjunctions of relational atoms ``R x1 ... xm`` and inequalities
``x != y``.  Queries here are Boolean (all variables quantified).

A compact parser is provided::

    parse_ucq("R(x),S(x,y) | S(x,y),T(y)")
    parse_ucq("R(x),S(y),x!=y")

Terms starting with a lowercase letter are variables; anything else
(numbers, capitalized tokens) is a constant.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["Term", "Atom", "Inequality", "ConjunctiveQuery", "UCQ", "parse_cq", "parse_ucq"]


@dataclass(frozen=True)
class Term:
    """A query term: a variable or a constant."""

    name: str
    is_variable: bool

    @classmethod
    def of(cls, token: str) -> "Term":
        token = token.strip()
        if not token:
            raise ValueError("empty term")
        return cls(token, token[0].islower())

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Atom:
    """A relational atom ``R(t1, ..., tm)``."""

    relation: str
    args: tuple[Term, ...]

    @property
    def arity(self) -> int:
        return len(self.args)

    def variables(self) -> tuple[str, ...]:
        return tuple(t.name for t in self.args if t.is_variable)

    def __str__(self) -> str:
        return f"{self.relation}({','.join(map(str, self.args))})"


@dataclass(frozen=True)
class Inequality:
    """``left != right`` between two variables."""

    left: str
    right: str

    def __str__(self) -> str:
        return f"{self.left}!={self.right}"


@dataclass(frozen=True)
class ConjunctiveQuery:
    """An existentially closed conjunction of atoms and inequalities."""

    atoms: tuple[Atom, ...]
    inequalities: tuple[Inequality, ...] = ()

    def variables(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for a in self.atoms:
            for v in a.variables():
                seen.setdefault(v)
        for ineq in self.inequalities:
            seen.setdefault(ineq.left)
            seen.setdefault(ineq.right)
        return tuple(seen)

    def atoms_containing(self, var: str) -> frozenset[int]:
        """Indices of atoms containing ``var`` (the ``at(x)`` of the
        hierarchy/inversion analysis)."""
        return frozenset(i for i, a in enumerate(self.atoms) if var in a.variables())

    def relations(self) -> frozenset[str]:
        return frozenset(a.relation for a in self.atoms)

    def __str__(self) -> str:
        parts = [str(a) for a in self.atoms] + [str(i) for i in self.inequalities]
        return ",".join(parts)


@dataclass(frozen=True)
class UCQ:
    """A union (disjunction) of conjunctive queries."""

    disjuncts: tuple[ConjunctiveQuery, ...]

    def variables(self) -> frozenset[str]:
        out: set[str] = set()
        for d in self.disjuncts:
            out |= set(d.variables())
        return frozenset(out)

    def relations(self) -> frozenset[str]:
        out: set[str] = set()
        for d in self.disjuncts:
            out |= d.relations()
        return frozenset(out)

    def has_inequalities(self) -> bool:
        return any(d.inequalities for d in self.disjuncts)

    def __str__(self) -> str:
        return " | ".join(str(d) for d in self.disjuncts)

    def normalized(self) -> str:
        """Canonical query text for content-keyed caches.

        Conjunction and disjunction are commutative and idempotent, so
        atoms/inequalities are sorted and deduplicated within each
        disjunct and the disjuncts sorted and deduplicated in turn —
        ``S(x,y),R(x)`` and ``R(x),S(x,y)`` key the same cache entry
        (:class:`repro.service.QueryService` uses this with
        :meth:`repro.queries.database.Database.fingerprint`).  Variable
        *renamings* are not canonicalized; syntactically distinct
        equivalent queries may still occupy separate entries.
        """
        parts = sorted(
            {
                ",".join(
                    sorted({str(a) for a in d.atoms})
                    + sorted({str(i) for i in d.inequalities})
                )
                for d in self.disjuncts
            }
        )
        return " | ".join(parts)


_ATOM = re.compile(r"([A-Za-z_][A-Za-z0-9_]*)\(([^()]*)\)")
_INEQ = re.compile(r"([A-Za-z_][A-Za-z0-9_]*)\s*!=\s*([A-Za-z_][A-Za-z0-9_]*)")


def parse_cq(text: str) -> ConjunctiveQuery:
    """Parse a conjunctive query like ``R(x),S(x,y),x!=y``."""
    atoms: list[Atom] = []
    ineqs: list[Inequality] = []
    # Split on commas that are not inside parentheses.
    parts: list[str] = []
    depth = 0
    cur = ""
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append(cur)
            cur = ""
        else:
            cur += ch
    if cur.strip():
        parts.append(cur)
    for part in parts:
        part = part.strip()
        if not part:
            continue
        m = _INEQ.fullmatch(part)
        if m:
            ineqs.append(Inequality(m.group(1), m.group(2)))
            continue
        m = _ATOM.fullmatch(part)
        if m:
            rel = m.group(1)
            args = tuple(Term.of(t) for t in m.group(2).split(",") if t.strip())
            atoms.append(Atom(rel, args))
            continue
        raise SyntaxError(f"cannot parse query part {part!r}")
    if not atoms:
        raise SyntaxError("conjunctive query needs at least one atom")
    return ConjunctiveQuery(tuple(atoms), tuple(ineqs))


def parse_ucq(text: str) -> UCQ:
    """Parse a UCQ; disjuncts separated by ``|``."""
    return UCQ(tuple(parse_cq(part) for part in text.split("|")))
