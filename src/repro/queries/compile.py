"""Query compilation: lineage → OBDD / SDD (the paper's pipeline).

The positive side of the paper's Figures 2–3 rests on Jha–Suciu's
constructions: inversion-free UCQs compile to constant-*width* OBDDs, and
inversion-free UCQs with inequalities to polynomial-*size* OBDDs.  The
crucial ingredient is the variable order: tuples are grouped by the domain
value of the query's root variables, so each block is processed before the
next begins.  :func:`hierarchy_order` produces that order; the benches then
measure constant width / polynomial size empirically.
"""

from __future__ import annotations

from typing import Sequence

from .database import Database, tuple_variable
from .lineage import lineage_circuit
from .syntax import UCQ
from ..circuits.circuit import Circuit
from ..core.vtree import Vtree
from ..obdd.obdd import ObddManager
from ..sdd.manager import SddManager

__all__ = [
    "hierarchy_order",
    "lineage_vtree",
    "compile_lineage_obdd",
    "compile_lineage_sdd",
    "compile_lineage_ddnnf",
    "lineage_obdd_width",
    "lineage_sdd_size",
]


def hierarchy_order(query: UCQ, db: Database) -> list[str]:
    """A tuple-variable order grouping tuples by domain value of the most
    frequent query variable (Jha–Suciu's hierarchical traversal).

    Tuples whose atoms contain the root variable are emitted domain value by
    domain value (recursively ordered by the remaining values); relations
    not mentioning the root variable are appended per-value where possible.
    The order covers *all* tuple variables of the database.
    """
    dom = db.active_domain()
    # Rank query variables by how many atoms contain them (root first).
    freq: dict[str, int] = {}
    for cq in query.disjuncts:
        for v in cq.variables():
            freq[v] = freq.get(v, 0) + len(cq.atoms_containing(v))
    root_vars = sorted(freq, key=lambda v: (-freq[v], v))
    # Positions of the root variable inside each relation (first occurrence).
    root_pos: dict[str, int] = {}
    if root_vars:
        root = root_vars[0]
        for cq in query.disjuncts:
            for atom in cq.atoms:
                for i, t in enumerate(atom.args):
                    if t.is_variable and t.name == root:
                        root_pos.setdefault(atom.relation, i)
                        break
    order: list[str] = []
    emitted: set[str] = set()

    def emit(name: str) -> None:
        if name not in emitted:
            emitted.add(name)
            order.append(name)

    for value in dom:
        for rel in sorted(db.relations):
            pos = root_pos.get(rel)
            if pos is None:
                continue
            for tup in sorted(db.relations[rel], key=repr):
                if pos < len(tup) and tup[pos] == value:
                    emit(tuple_variable(rel, tup))
    # Relations without the root variable (and any leftovers) at the end,
    # grouped by their first attribute to stay block-local.
    for rel in sorted(db.relations):
        for tup in sorted(db.relations[rel], key=repr):
            emit(tuple_variable(rel, tup))
    return order


def compile_lineage_obdd(
    query: UCQ, db: Database, order: Sequence[str] | None = None
) -> tuple[ObddManager, int]:
    """Compile the lineage into an OBDD (default order:
    :func:`hierarchy_order`)."""
    circuit = lineage_circuit(query, db)
    o = list(order) if order is not None else hierarchy_order(query, db)
    missing = set(circuit.variables) - set(o)
    if missing:
        o = o + sorted(missing)
    mgr = ObddManager(o)
    return mgr, mgr.compile_circuit(circuit)


def lineage_vtree(query: UCQ, db: Database, shape: str = "right") -> Vtree:
    """The default lineage vtree: the hierarchy order arranged right-linear
    (mirroring the OBDD construction) or balanced.

    The order covers *every* tuple variable of ``db``, so one vtree — and
    hence one :class:`SddManager` — serves any query against the same
    database (what :func:`repro.queries.evaluate.evaluate_many` exploits).
    """
    order = hierarchy_order(query, db)
    missing = set(db.all_tuple_variables()) - set(order)
    if missing:
        order = order + sorted(missing)
    if shape == "right":
        return Vtree.right_linear(order)
    if shape == "balanced":
        return Vtree.balanced(order)
    raise ValueError(f"unknown vtree shape {shape!r}")


def compile_lineage_sdd(
    query: UCQ,
    db: Database,
    vtree: Vtree | None = None,
    *,
    manager: SddManager | None = None,
    circuit: Circuit | None = None,
    deadline=None,
) -> tuple[SddManager, int]:
    """Compile the lineage into an SDD via bottom-up ``apply`` — no truth
    table, so instances with hundreds of tuples compile.

    Default vtree: right-linear over the hierarchy order, mirroring the
    OBDD construction; callers exploring Figure-2/3 shapes may pass
    balanced or custom vtrees.  Passing ``manager`` compiles into an
    existing manager (its vtree must cover the lineage variables), sharing
    its hash-cons tables and apply cache with previous compilations.
    ``circuit`` may pass a pre-built lineage circuit (callers that ground
    the lineage anyway, e.g. the engine's update-diff bookkeeping).
    ``deadline`` (a :class:`~repro.service.errors.Deadline`) cancels the
    compilation cooperatively at the per-gate safepoints.
    """
    if circuit is None:
        circuit = lineage_circuit(query, db)
    if manager is None:
        if vtree is None:
            vtree = lineage_vtree(query, db)
        manager = SddManager(vtree)
    missing = set(circuit.variables) - manager.vtree.variables
    if missing:
        raise ValueError(f"manager vtree misses lineage variables: {sorted(missing)[:5]}")
    return manager, manager.compile_circuit(circuit, deadline=deadline)


def compile_lineage_ddnnf(
    query: UCQ, db: Database, *, circuit: Circuit | None = None, deadline=None
):
    """Compile the lineage bag-by-bag into a d-DNNF — no variable order, no
    manager, no apply cascade: the decomposition of the lineage circuit's
    gate graph drives the build directly (:mod:`repro.dnnf`).

    Returns the :class:`~repro.dnnf.builder.DdnnfResult`; pair it with
    :func:`repro.dnnf.wmc.probability` or hand both to
    :func:`repro.queries.evaluate.probability_via_ddnnf`.  ``circuit``
    may pass a pre-built lineage circuit, as in
    :func:`compile_lineage_sdd`; ``deadline`` cancels cooperatively at
    the per-bag safepoints.
    """
    from ..dnnf.builder import build_ddnnf

    return build_ddnnf(
        circuit if circuit is not None else lineage_circuit(query, db),
        deadline=deadline,
    )


def lineage_obdd_width(query: UCQ, db: Database, order: Sequence[str] | None = None) -> int:
    mgr, root = compile_lineage_obdd(query, db, order)
    return mgr.width(root)


def lineage_sdd_size(query: UCQ, db: Database, vtree: Vtree | None = None) -> int:
    mgr, root = compile_lineage_sdd(query, db, vtree)
    return mgr.size(root)
