"""Reduced ordered binary decision diagrams (OBDDs).

OBDDs are the baseline compilation target of Jha & Suciu's programme: a
deterministic read-once branching program where every root-leaf path visits
variables in the same order (Bryant).  The paper uses two size measures:

- *size*: number of nodes of the diagram;
- *width*: the largest number of nodes labelled by the same variable —
  ``OBDD width``; bounded OBDD width characterizes bounded circuit pathwidth
  (eq. (2)) and OBDDs are exactly the canonical SDDs of right-linear vtrees.

The manager keeps a unique table so every function has one canonical node
per variable order; ``apply``/``negate``/``exists`` are memoized.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from ..core.boolfunc import BooleanFunction
from ..circuits.circuit import AND, CONST, NOT, OR, VAR, Circuit
from ..circuits.nnf import NNF, conj, disj, false_node, lit, true_node

__all__ = ["ObddManager", "obdd_from_function", "obdd_width_of_function"]


class ObddManager:
    """An OBDD manager for a fixed variable order.

    Node 0 is the ``False`` terminal and node 1 the ``True`` terminal; every
    other node is a triple ``(level, lo, hi)`` interned in a unique table.
    ``level`` indexes into ``order``; terminals live at level ``len(order)``.
    """

    def __init__(self, order: Sequence[str]):
        if len(set(order)) != len(order):
            raise ValueError("variable order contains duplicates")
        self.order = tuple(order)
        self.level_of = {v: i for i, v in enumerate(self.order)}
        self.n = len(self.order)
        self.level: list[int] = [self.n, self.n]
        self.lo: list[int] = [-1, -1]
        self.hi: list[int] = [-1, -1]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._apply_cache: dict[tuple, int] = {}

    # ------------------------------------------------------------------
    # node construction
    # ------------------------------------------------------------------
    @property
    def false(self) -> int:
        return 0

    @property
    def true(self) -> int:
        return 1

    def node(self, level: int, lo: int, hi: int) -> int:
        """Get-or-create a reduced node."""
        if lo == hi:
            return lo
        key = (level, lo, hi)
        nid = self._unique.get(key)
        if nid is None:
            nid = len(self.level)
            self.level.append(level)
            self.lo.append(lo)
            self.hi.append(hi)
            self._unique[key] = nid
        return nid

    def var(self, name: str) -> int:
        return self.node(self.level_of[name], 0, 1)

    def literal(self, name: str, sign: bool) -> int:
        return self.var(name) if sign else self.node(self.level_of[name], 1, 0)

    def constant(self, value: bool) -> int:
        return 1 if value else 0

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def apply(self, u: int, v: int, op: str) -> int:
        """Binary apply for ``op`` in {and, or, xor}."""
        if op not in ("and", "or", "xor"):
            raise ValueError(f"unsupported op {op!r}")
        key = (op, u, v) if u <= v else (op, v, u)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        result = self._apply(u, v, op)
        self._apply_cache[key] = result
        return result

    def _apply(self, u: int, v: int, op: str) -> int:
        if u <= 1 and v <= 1:
            a, b = bool(u), bool(v)
            if op == "and":
                return int(a and b)
            if op == "or":
                return int(a or b)
            return int(a != b)
        # terminal shortcuts
        if op == "and":
            if u == 0 or v == 0:
                return 0
            if u == 1:
                return v
            if v == 1:
                return u
        elif op == "or":
            if u == 1 or v == 1:
                return 1
            if u == 0:
                return v
            if v == 0:
                return u
        lu, lv = self.level[u], self.level[v]
        top = min(lu, lv)
        u0, u1 = (self.lo[u], self.hi[u]) if lu == top else (u, u)
        v0, v1 = (self.lo[v], self.hi[v]) if lv == top else (v, v)
        return self.node(top, self.apply(u0, v0, op), self.apply(u1, v1, op))

    def negate(self, u: int) -> int:
        key = ("not", u)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        if u <= 1:
            result = 1 - u
        else:
            result = self.node(self.level[u], self.negate(self.lo[u]), self.negate(self.hi[u]))
        self._apply_cache[key] = result
        return result

    def conjoin(self, *nodes: int) -> int:
        acc = 1
        for nid in nodes:
            acc = self.apply(acc, nid, "and")
        return acc

    def disjoin(self, *nodes: int) -> int:
        acc = 0
        for nid in nodes:
            acc = self.apply(acc, nid, "or")
        return acc

    def restrict(self, u: int, name: str, value: bool) -> int:
        lv = self.level_of[name]
        cache: dict[int, int] = {}

        def rec(w: int) -> int:
            if w <= 1 or self.level[w] > lv:
                return w
            got = cache.get(w)
            if got is not None:
                return got
            if self.level[w] == lv:
                res = self.hi[w] if value else self.lo[w]
            else:
                res = self.node(self.level[w], rec(self.lo[w]), rec(self.hi[w]))
            cache[w] = res
            return res

        return rec(u)

    def exists(self, u: int, names: Iterable[str]) -> int:
        out = u
        for name in sorted(names, key=lambda x: self.level_of[x]):
            out = self.apply(
                self.restrict(out, name, False), self.restrict(out, name, True), "or"
            )
        return out

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def from_function(self, f: BooleanFunction) -> int:
        """Canonical OBDD of an exact function (Shannon expansion with
        memoization on cofactor tables)."""
        if not set(f.variables) <= set(self.order):
            raise ValueError("function variables must be within the manager order")
        aligned = f.extend(self.order) if f.variables != self.order else f
        table = aligned.table
        memo: dict[tuple[int, bytes], int] = {}

        def rec(level: int, sub: np.ndarray) -> int:
            if sub.all():
                return 1
            if not sub.any():
                return 0
            key = (level, sub.tobytes())
            got = memo.get(key)
            if got is not None:
                return got
            # Variable order[level]; with little-endian indexing on sorted
            # variables, slice the axis for this variable.
            var = self.order[level]
            rest = self.n - level
            vs = sorted(self.order[level:])
            i = vs.index(var)
            shaped = sub.reshape((2,) * rest)
            ax = rest - 1 - i
            lo = np.ascontiguousarray(np.take(shaped, 0, axis=ax)).reshape(-1)
            hi = np.ascontiguousarray(np.take(shaped, 1, axis=ax)).reshape(-1)
            res = self.node(level, rec(level + 1, lo), rec(level + 1, hi))
            memo[key] = res
            return res

        # Reorder the table so it is indexed by suffixes of `order`.
        # BooleanFunction tables index by *sorted* variables; build the table
        # over sorted(order) then recurse slicing per decision variable.
        return rec(0, table)

    def compile_circuit(self, circuit: Circuit) -> int:
        """Bottom-up apply compilation of a circuit (no global truth table)."""
        if circuit.output is None:
            raise ValueError("circuit has no output")
        vals: dict[int, int] = {}
        for gid in circuit.topological_order():
            gate = circuit.gates[gid]
            if gate.kind == VAR:
                vals[gid] = self.var(gate.payload)  # type: ignore[arg-type]
            elif gate.kind == CONST:
                vals[gid] = self.constant(bool(gate.payload))
            elif gate.kind == NOT:
                vals[gid] = self.negate(vals[gate.inputs[0]])
            elif gate.kind == AND:
                vals[gid] = self.conjoin(*[vals[i] for i in gate.inputs])
            else:
                vals[gid] = self.disjoin(*[vals[i] for i in gate.inputs])
        return vals[circuit.output]

    # ------------------------------------------------------------------
    # measures / queries
    # ------------------------------------------------------------------
    def freeze(self, roots, *, names=None, meta=None):
        """Freeze ``roots`` into an immutable array-backed
        :class:`~repro.artifact.store.FrozenObdd` (save/mmap/share)."""
        from ..artifact.store import FrozenObdd

        return FrozenObdd.from_manager(self, list(roots), names=names, meta=meta)

    def stats(self) -> dict[str, int]:
        """Public counters for the manager's tables and caches (mirrors
        :meth:`repro.sdd.manager.SddManager.stats`)."""
        return {
            "variables": self.n,
            "nodes": len(self.level),
            "unique_table_entries": len(self._unique),
            "apply_cache_entries": len(self._apply_cache),
        }

    def reachable(self, u: int) -> set[int]:
        seen: set[int] = set()
        stack = [u]
        while stack:
            w = stack.pop()
            if w in seen:
                continue
            seen.add(w)
            if w > 1:
                stack.extend((self.lo[w], self.hi[w]))
        return seen

    def size(self, u: int) -> int:
        """Number of nodes of the diagram rooted at ``u`` (incl. terminals)."""
        return len(self.reachable(u))

    def width(self, u: int) -> int:
        """The paper's OBDD width: the largest number of nodes labelled by
        the same variable."""
        counts: dict[int, int] = {}
        for w in self.reachable(u):
            if w > 1:
                counts[self.level[w]] = counts.get(self.level[w], 0) + 1
        return max(counts.values(), default=0)

    def level_profile(self, u: int) -> list[int]:
        counts = [0] * self.n
        for w in self.reachable(u):
            if w > 1:
                counts[self.level[w]] += 1
        return counts

    def count_models(self, u: int, scope: Iterable[str] | None = None) -> int:
        scope_set = set(scope) if scope is not None else set(self.order)
        missing = len(scope_set - set(self.order))
        memo: dict[int, int] = {}

        # rec(w) counts models over the variables at levels >= level(w);
        # terminals sit at level n so rec(1) == 1 == 2^0.
        def rec(w: int) -> int:
            if w == 0:
                return 0
            if w == 1:
                return 1
            got = memo.get(w)
            if got is not None:
                return got
            lvl = self.level[w]
            lo_count = rec(self.lo[w]) << (self.level_or_n(self.lo[w]) - lvl - 1)
            hi_count = rec(self.hi[w]) << (self.level_or_n(self.hi[w]) - lvl - 1)
            res = lo_count + hi_count
            memo[w] = res
            return res

        # Scale by the free variables above the root, then by scope padding.
        total = rec(u) << self.level_or_n(u)
        return total << missing

    def level_or_n(self, w: int) -> int:
        return self.level[w] if w > 1 else self.n

    def weighted_count(self, u: int, weights: Mapping[str, tuple[float, float]]):
        """WMC with weights ``(w_neg, w_pos)`` per variable."""
        memo: dict[int, object] = {}
        sums = [weights[v][0] + weights[v][1] for v in self.order]

        def gap(from_level: int, to_level: int):
            f = 1
            for i in range(from_level, to_level):
                f = f * sums[i]
            return f

        def rec(w: int):
            if w == 0:
                return 0
            if w == 1:
                return 1
            got = memo.get(w)
            if got is not None:
                return got
            lvl = self.level[w]
            w0, w1 = weights[self.order[lvl]]
            lo_val = rec(self.lo[w]) * gap(lvl + 1, self.level_or_n(self.lo[w]))
            hi_val = rec(self.hi[w]) * gap(lvl + 1, self.level_or_n(self.hi[w]))
            res = w0 * lo_val + w1 * hi_val
            memo[w] = res
            return res

        return rec(u) * gap(0, self.level_or_n(u))

    def probability(self, u: int, prob: Mapping[str, float]) -> float:
        weights = {v: (1.0 - float(p), float(p)) for v, p in prob.items()}
        return float(self.weighted_count(u, weights))

    def evaluate(self, u: int, assignment: Mapping[str, int]) -> bool:
        w = u
        while w > 1:
            v = self.order[self.level[w]]
            w = self.hi[w] if assignment[v] else self.lo[w]
        return bool(w)

    def function(self, u: int, variables: Sequence[str] | None = None) -> BooleanFunction:
        vs = tuple(sorted(variables if variables is not None else self.order))
        return self.to_nnf(u).function(vs) if u > 1 else BooleanFunction.constant(bool(u), vs)

    def to_nnf(self, u: int) -> NNF:
        """Convert to NNF: each node becomes ``(¬x ∧ lo) ∨ (x ∧ hi)`` —
        OBDDs are deterministic decomposable (indeed structured) NNFs."""
        memo: dict[int, NNF] = {0: false_node(), 1: true_node()}

        def rec(w: int) -> NNF:
            got = memo.get(w)
            if got is not None:
                return got
            x = self.order[self.level[w]]
            res = disj(
                [
                    conj([lit(x, False), rec(self.lo[w])]),
                    conj([lit(x, True), rec(self.hi[w])]),
                ]
            )
            memo[w] = res
            return res

        return rec(u)


def obdd_from_function(f: BooleanFunction, order: Sequence[str] | None = None) -> tuple[ObddManager, int]:
    """Convenience: manager + root for ``f`` under ``order`` (default sorted)."""
    o = tuple(order) if order is not None else tuple(sorted(f.variables))
    mgr = ObddManager(o)
    return mgr, mgr.from_function(f)


def obdd_width_of_function(f: BooleanFunction, order: Sequence[str] | None = None) -> int:
    mgr, root = obdd_from_function(f, order)
    return mgr.width(root)
