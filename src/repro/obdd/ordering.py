"""Variable-order search for OBDDs.

``OBDD width`` (and size) depend heavily on the order; the paper's
statements quantify over the best order.  For small variable counts the
exhaustive search is exact; beyond that a swap-based hill climbing gives a
practical upper bound (used for the Figure-1/2/3 measurements, which only
need shapes, with exactness asserted at the small end).
"""

from __future__ import annotations

import itertools
from typing import Callable, Sequence

from ..core.boolfunc import BooleanFunction
from .obdd import ObddManager

__all__ = ["best_order_exhaustive", "best_order_hillclimb", "min_obdd_width", "min_obdd_size"]


def _measure(f: BooleanFunction, order: Sequence[str], objective: str) -> int:
    mgr = ObddManager(order)
    root = mgr.from_function(f)
    return mgr.width(root) if objective == "width" else mgr.size(root)


def best_order_exhaustive(
    f: BooleanFunction, objective: str = "width", limit: int = 8
) -> tuple[int, tuple[str, ...]]:
    """Exact best order by enumerating all permutations (``n ≤ limit``)."""
    vs = sorted(f.variables)
    if len(vs) > limit:
        raise ValueError(f"exhaustive order search limited to {limit} variables")
    best: tuple[int, tuple[str, ...]] | None = None
    for perm in itertools.permutations(vs):
        val = _measure(f, perm, objective)
        if best is None or val < best[0]:
            best = (val, perm)
    assert best is not None
    return best


def best_order_hillclimb(
    f: BooleanFunction,
    objective: str = "width",
    start: Sequence[str] | None = None,
    max_rounds: int = 8,
) -> tuple[int, tuple[str, ...]]:
    """Adjacent-swap hill climbing (a light stand-in for sifting)."""
    order = list(start) if start is not None else sorted(f.variables)
    best_val = _measure(f, order, objective)
    for _ in range(max_rounds):
        improved = False
        for i in range(len(order) - 1):
            candidate = list(order)
            candidate[i], candidate[i + 1] = candidate[i + 1], candidate[i]
            val = _measure(f, candidate, objective)
            if val < best_val:
                best_val, order = val, candidate
                improved = True
        if not improved:
            break
    return best_val, tuple(order)


def min_obdd_width(f: BooleanFunction, exact_limit: int = 7) -> int:
    """The paper's ``OBDD width of F``: the smallest width over orders
    (exact for ≤ ``exact_limit`` variables, hill-climbed beyond)."""
    if len(f.variables) <= exact_limit:
        return best_order_exhaustive(f, "width", limit=exact_limit)[0]
    return best_order_hillclimb(f, "width")[0]


def min_obdd_size(f: BooleanFunction, exact_limit: int = 7) -> int:
    """The paper's ``OBDD size of F`` (smallest over orders)."""
    if len(f.variables) <= exact_limit:
        return best_order_exhaustive(f, "size", limit=exact_limit)[0]
    return best_order_hillclimb(f, "size")[0]
