"""Reduced ordered binary decision diagrams."""

from .obdd import ObddManager, obdd_from_function, obdd_width_of_function
from .ordering import best_order_exhaustive, best_order_hillclimb, min_obdd_size, min_obdd_width
