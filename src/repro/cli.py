"""Command-line interface.

Usage::

    python -m repro.cli compile "(a & b) | c" [--vtree balanced|right|left|search]
    python -m repro.cli ctw "x & ~y" [--max-gates 4]
    python -m repro.cli query "R(x),S(x,y)" --domain 3 [--prob 0.5]
    python -m repro.cli isa 2 4

Each subcommand prints a small report; exit code 0 on success.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .circuits.parse import parse_formula
from .core.computability import ctw_upper_bound, exact_circuit_treewidth
from .core.nnf_compile import compile_canonical_nnf
from .core.sdd_compile import compile_canonical_sdd
from .core.vtree import Vtree
from .core.vtree_search import minimize_vtree
from .obdd.obdd import obdd_from_function
from .queries.analysis import find_inversion
from .queries.compile import compile_lineage_obdd
from .queries.database import complete_database
from .queries.evaluate import probability_via_obdd
from .queries.syntax import parse_ucq
from .util.report import report

__all__ = ["main"]


def _cmd_compile(args: argparse.Namespace) -> int:
    circuit = parse_formula(args.formula)
    f = circuit.function()
    vs = sorted(f.variables)
    if not vs:
        print(f"constant formula: {'true' if f.is_tautology() else 'false'}")
        return 0
    if args.vtree == "balanced":
        t = Vtree.balanced(vs)
    elif args.vtree == "right":
        t = Vtree.right_linear(vs)
    elif args.vtree == "left":
        t = Vtree.left_linear(vs)
    else:
        _, t = minimize_vtree(f, max_rounds=6)
    sdd = compile_canonical_sdd(f, t)
    nnf = compile_canonical_nnf(f, t)
    mgr, root = obdd_from_function(f)
    report(
        f"compile: {args.formula}",
        ["form", "size", "width"],
        [
            ["canonical SDD", sdd.size, sdd.sdw],
            ["canonical det. structured NNF", nnf.size, nnf.fiw],
            ["OBDD (sorted order)", mgr.size(root), mgr.width(root)],
        ],
    )
    print(f"models: {f.count_models()} / {1 << len(vs)}")
    return 0


def _cmd_ctw(args: argparse.Namespace) -> int:
    f = parse_formula(args.formula).function()
    res = exact_circuit_treewidth(f, max_gates=args.max_gates)
    upper = ctw_upper_bound(f)
    if res.exhausted:
        print(f"ctw = {res.value} (witness with {res.witness.size} gates; "
              f"DNF upper bound {upper})")
        return 0
    print(f"ctw not determined within {args.max_gates} gates "
          f"(DNF upper bound {upper})")
    return 1


def _cmd_query(args: argparse.Namespace) -> int:
    q = parse_ucq(args.query)
    inv = find_inversion(q)
    schema: dict[str, int] = {}
    for cq in q.disjuncts:
        for atom in cq.atoms:
            schema[atom.relation] = atom.arity
    db = complete_database(schema, args.domain, p=args.prob)
    mgr, root = compile_lineage_obdd(q, db)
    p = probability_via_obdd(q, db)
    report(
        f"query: {q}",
        ["property", "value"],
        [
            ["inversion", "none" if inv is None else f"length {inv.length}"],
            ["tuples", db.size],
            ["lineage OBDD width", mgr.width(root)],
            ["lineage OBDD size", mgr.size(root)],
            ["P(q)", f"{p:.6f}"],
        ],
    )
    return 0


def _cmd_isa(args: argparse.Namespace) -> int:
    from .isa.isa import isa_n, isa_vtree
    from .isa.sdd_construction import build_isa_sdd

    n = isa_n(args.k, args.m)
    s = build_isa_sdd(args.k, args.m)
    print(f"ISA_{n}: SDD size {s.size}, AND gates {s.and_gate_count}, "
          f"n^13/5 = {n ** 2.6:.0f}")
    if args.show_vtree:
        print(isa_vtree(args.k, args.m).render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = p.add_subparsers(dest="command", required=True)

    c = sub.add_parser("compile", help="compile a formula into SDD/NNF/OBDD")
    c.add_argument("formula")
    c.add_argument("--vtree", choices=["balanced", "right", "left", "search"],
                   default="balanced")
    c.set_defaults(fn=_cmd_compile)

    t = sub.add_parser("ctw", help="exhaustive circuit treewidth (Result 2)")
    t.add_argument("formula")
    t.add_argument("--max-gates", type=int, default=4)
    t.set_defaults(fn=_cmd_ctw)

    q = sub.add_parser("query", help="compile and evaluate a UCQ")
    q.add_argument("query")
    q.add_argument("--domain", type=int, default=2)
    q.add_argument("--prob", type=float, default=0.5)
    q.set_defaults(fn=_cmd_query)

    i = sub.add_parser("isa", help="build the Appendix-A ISA SDD")
    i.add_argument("k", type=int)
    i.add_argument("m", type=int)
    i.add_argument("--show-vtree", action="store_true")
    i.set_defaults(fn=_cmd_isa)
    return p


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
