"""Command-line interface.

Usage::

    python -m repro.cli compile "(a & b) | c" [--backend canonical|apply|obdd|ddnnf|race]
                                              [--strategy lemma1|natural|balanced|best-of|dynamic|...]
                                              [--minimize]
                                              [--vtree balanced|right|left|search]
    python -m repro.cli ctw "x & ~y" [--max-gates 4]
    python -m repro.cli query "R(x),S(x,y)" --domain 3 [--prob 0.5] [--backend obdd|sdd|ddnnf]
    python -m repro.cli batch "R(x),S(x,y); S(x,y)" --domain 3 [--prob 0.5] [--exact]
    python -m repro.cli engine "R(x),S(x,y); S(x,y)" --domain 3 [--prob 0.5] [--exact]
                                                    [--max-nodes 50000]
                                                    [--auto-minimize 30000]
                                                    [--workers 4] [--parallel-mode auto]
    python -m repro.cli isa 2 4

Each subcommand prints a small report; exit code 0 on success.

``compile --strategy ...`` routes through the unified
:class:`repro.compiler.Compiler` facade (any registered backend × any
registered vtree strategy); the legacy ``--vtree`` flag keeps its original
behaviour when no strategy is given.  ``engine`` evaluates a workload
through one :class:`repro.queries.QueryEngine` session and prints its
public ``stats()``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .circuits.parse import parse_formula
from .compiler import Compiler, available_backends, available_strategies
from .core.computability import ctw_upper_bound, exact_circuit_treewidth
from .core.nnf_compile import compile_canonical_nnf
from .core.pipeline import compile_circuit_apply
from .core.sdd_compile import compile_canonical_sdd
from .core.vtree import Vtree
from .core.vtree_search import minimize_vtree
from .obdd.obdd import obdd_from_function
from .queries.analysis import find_inversion
from .queries.compile import compile_lineage_obdd, compile_lineage_sdd
from .queries.engine import QueryEngine
from .queries.parallel import ParallelQueryEngine
from .queries.evaluate import evaluate_many, probability_via_obdd
from .queries.database import complete_database
from .queries.syntax import parse_ucq
from .util.report import report

__all__ = ["main"]


def _cmd_compile(args: argparse.Namespace) -> int:
    circuit = parse_formula(args.formula)
    vs = sorted(map(str, circuit.variables))
    if not vs:
        f = circuit.function()
        print(f"constant formula: {'true' if f.is_tautology() else 'false'}")
        return 0
    if args.minimize and args.backend != "apply":
        print("--minimize requires --backend apply (in-place vtree "
              "minimization is manager-backed)", file=sys.stderr)
        return 1
    if args.strategy is None and args.backend in ("ddnnf", "race"):
        # The d-DNNF build is decomposition-driven (the vtree is recorded
        # but unused) and the race only needs one cheap vtree choice, so
        # default these backends onto the facade path.
        args.strategy = "natural"
    if args.save is not None and args.strategy is None:
        # Saving needs a Compiled handle, which only the facade path
        # returns; default it onto the facade's default strategy.
        args.strategy = "lemma1"
    if args.strategy is not None or args.minimize:
        strategy = args.strategy if args.strategy is not None else "best-of"
        compiled = Compiler(
            backend=args.backend, strategy=strategy, minimize=args.minimize
        ).compile(circuit)
        via = compiled.strategy or strategy
        report(
            f"compile ({args.backend} backend, {strategy} strategy"
            f"{', minimized' if args.minimize else ''}): {args.formula}",
            ["form", "size", "width"],
            [[f"{args.backend} (via {via})", compiled.size, compiled.width]],
        )
        if compiled.decomposition_width is not None:
            print(f"decomposition width: {compiled.decomposition_width}")
        stats = compiled.stats()
        if "friendly_width" in stats:
            print(f"friendly decomposition: width {stats['friendly_width']}, "
                  f"{stats.get('bags_forget', 0)} responsible bags, "
                  f"peak {stats.get('states_peak', 0)} states/bag")
        print(f"models: {compiled.model_count()} / 2^{len(vs)}")
        if args.save is not None:
            compiled.save(args.save)
            reloaded = Compiler.load(args.save)
            print(f"saved artifact: {args.save} "
                  f"({reloaded.backend} backend, size {reloaded.size})")
        return 0
    if args.backend == "obdd":
        print("--backend obdd requires --strategy (facade path)", file=sys.stderr)
        return 1
    if args.backend == "apply":
        if args.vtree == "balanced":
            res = compile_circuit_apply(circuit, vtree=Vtree.balanced(vs))
        elif args.vtree == "right":
            res = compile_circuit_apply(circuit, vtree=Vtree.right_linear(vs))
        elif args.vtree == "left":
            res = compile_circuit_apply(circuit, vtree=Vtree.left_linear(vs))
        else:  # search → the Lemma-1 extraction
            res = compile_circuit_apply(circuit)
        report(
            f"compile (apply backend): {args.formula}",
            ["form", "size", "width"],
            [["SDD (manager)", res.sdd_size, res.sdd_width]],
        )
        print(f"models: {res.model_count()} / 2^{len(vs)}")
        return 0
    f = circuit.function()
    if args.vtree == "balanced":
        t = Vtree.balanced(vs)
    elif args.vtree == "right":
        t = Vtree.right_linear(vs)
    elif args.vtree == "left":
        t = Vtree.left_linear(vs)
    else:
        _, t = minimize_vtree(f, max_rounds=6)
    sdd = compile_canonical_sdd(f, t)
    nnf = compile_canonical_nnf(f, t)
    mgr, root = obdd_from_function(f)
    report(
        f"compile: {args.formula}",
        ["form", "size", "width"],
        [
            ["canonical SDD", sdd.size, sdd.sdw],
            ["canonical det. structured NNF", nnf.size, nnf.fiw],
            ["OBDD (sorted order)", mgr.size(root), mgr.width(root)],
        ],
    )
    print(f"models: {f.count_models()} / {1 << len(vs)}")
    return 0


def _cmd_ctw(args: argparse.Namespace) -> int:
    f = parse_formula(args.formula).function()
    res = exact_circuit_treewidth(f, max_gates=args.max_gates)
    upper = ctw_upper_bound(f)
    if res.exhausted:
        print(f"ctw = {res.value} (witness with {res.witness.size} gates; "
              f"DNF upper bound {upper})")
        return 0
    print(f"ctw not determined within {args.max_gates} gates "
          f"(DNF upper bound {upper})")
    return 1


def _schema_of(q) -> dict[str, int]:
    schema: dict[str, int] = {}
    for cq in q.disjuncts:
        for atom in cq.atoms:
            schema[atom.relation] = atom.arity
    return schema


def _parse_workload(args: argparse.Namespace):
    """Parse a ';'-separated UCQ workload and build the complete database
    for its union schema.  Returns ``(queries, db)``; ``queries`` is empty
    when nothing parses (callers report and bail)."""
    queries = [parse_ucq(part.strip()) for part in args.queries.split(";") if part.strip()]
    if not queries:
        return [], None
    schema: dict[str, int] = {}
    for q in queries:
        schema.update(_schema_of(q))
    return queries, complete_database(schema, args.domain, p=args.prob)


def _cmd_query(args: argparse.Namespace) -> int:
    q = parse_ucq(args.query)
    inv = find_inversion(q)
    db = complete_database(_schema_of(q), args.domain, p=args.prob)
    if (args.load is not None or args.save is not None) and args.backend != "sdd":
        print("--load/--save require --backend sdd (artifacts are frozen "
              "SDD bases)", file=sys.stderr)
        return 1
    if args.load is not None or args.save is not None:
        engine = QueryEngine(db, frozen=args.load)
        p = engine.probability(q, exact=args.exact)
        size = engine.compiled_size(q)
        frozen_hit = engine.stats()["frozen_hits"] > 0
        form, width = "SDD", "-"
        if args.save is not None:
            if frozen_hit:
                engine.compile(q)  # freeze sets come from live roots
            engine.save_artifact(args.save)
            print(f"saved artifact: {args.save}")
        if frozen_hit:
            print(f"answered from artifact {args.load} (no compilation)")
    elif args.backend == "sdd":
        from .sdd.wmc import probability as sdd_probability

        mgr, root = compile_lineage_sdd(q, db)
        p = sdd_probability(mgr, root, db.probability_map(), exact=args.exact)
        form, width, size = "SDD", mgr.width(root), mgr.size(root)
    elif args.backend == "ddnnf":
        from .dnnf.wmc import probability as dnnf_probability
        from .queries.compile import compile_lineage_ddnnf

        r = compile_lineage_ddnnf(q, db)
        p = dnnf_probability(r.dag, r.root, db.probability_map(), exact=args.exact)
        form, width, size = "d-DNNF", r.width, r.size
    else:
        mgr, root = compile_lineage_obdd(q, db)
        p = probability_via_obdd(q, db)
        form, width, size = "OBDD", mgr.width(root), mgr.size(root)
    report(
        f"query: {q}",
        ["property", "value"],
        [
            ["inversion", "none" if inv is None else f"length {inv.length}"],
            ["tuples", db.size],
            [f"lineage {form} width", width],
            [f"lineage {form} size", size],
            ["P(q)", str(p) if args.exact else f"{p:.6f}"],
        ],
    )
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    """Evaluate a ';'-separated workload of UCQs against one complete
    database through the shared-manager batch pipeline."""
    queries, db = _parse_workload(args)
    if not queries:
        print("no queries given", file=sys.stderr)
        return 1
    batch = evaluate_many(queries, db, exact=args.exact)
    rows = [
        [str(q), batch.sizes[i],
         str(batch.probabilities[i]) if args.exact else f"{batch.probabilities[i]:.6f}"]
        for i, q in enumerate(queries)
    ]
    report(
        f"batch: {len(queries)} queries, {db.size} tuples, one shared manager",
        ["query", "SDD size", "P(q)"],
        rows,
    )
    s = batch.stats
    print(
        f"shared manager: {s['manager_nodes']} nodes, "
        f"{s['apply_cache_entries']} apply-cache entries, "
        f"{s['wmc_memo_entries']} WMC memo entries"
    )
    return 0


def _apply_update_spec(db, spec: str):
    """Parse one ``--update`` spec and apply it to ``db``, returning the
    :class:`~repro.queries.database.UpdateDelta`.

    Formats: ``weight:R:1,2:0.7`` (reweight an existing tuple),
    ``insert:R:1,2:0.5`` (add a tuple), ``delete:R:1,2`` (remove one).
    Values are comma-separated; integer-looking tokens are coerced, as in
    query constants."""
    parts = spec.split(":")
    kind = parts[0]
    if kind in ("weight", "insert") and len(parts) != 4:
        raise ValueError(f"--update {spec!r}: expected {kind}:REL:VALUES:P")
    if kind == "delete" and len(parts) != 3:
        raise ValueError(f"--update {spec!r}: expected delete:REL:VALUES")
    if kind not in ("weight", "insert", "delete"):
        raise ValueError(f"--update {spec!r}: unknown kind {kind!r}")
    relation = parts[1]

    def coerce(token: str):
        try:
            return int(token)
        except ValueError:
            return token

    values = [coerce(t) for t in parts[2].split(",") if t != ""]
    if kind == "weight":
        return db.set_probability(relation, *values, p=float(parts[3]))
    if kind == "insert":
        return db.insert(relation, *values, p=float(parts[3]))
    return db.delete(relation, *values)


def _cmd_engine(args: argparse.Namespace) -> int:
    """Evaluate a ';'-separated workload through one
    :class:`~repro.queries.engine.QueryEngine` session (or, with
    ``--workers N``, a sharded
    :class:`~repro.queries.parallel.ParallelQueryEngine`) and print its
    stats.  ``--update`` specs are applied *after* the first evaluation —
    cached lineages are delta-patched, the workload re-evaluated, and the
    update counters printed."""
    queries, db = _parse_workload(args)
    if not queries:
        print("no queries given", file=sys.stderr)
        return 1
    if args.workers < 1:
        print("--workers must be positive", file=sys.stderr)
        return 1

    def run_updates(target, evaluate) -> int:
        merged: dict[str, int] = {}
        for spec in args.update:
            delta = _apply_update_spec(db, spec)
            inc = target.apply_update(delta)
            for k, v in inc.items():
                merged[k] = merged.get(k, 0) + v
        rows = evaluate()
        report(
            f"after {len(args.update)} update(s): {len(queries)} queries, "
            f"{db.size} tuples",
            ["query", "SDD size", "P(q)"],
            rows,
        )
        print("update counters: "
              + ", ".join(f"{k}={v}" for k, v in sorted(merged.items())))
        return 0

    if args.workers > 1:
        if args.auto_minimize is not None:
            print("--auto-minimize applies to the serial session "
                  "(--workers 1)", file=sys.stderr)
            return 1
        par = ParallelQueryEngine(
            db, workers=args.workers, max_nodes=args.max_nodes,
            mode=args.parallel_mode,
        )
        batch = par.evaluate(queries, exact=args.exact)
        rows = [
            [str(q), batch.sizes[i],
             str(batch.probabilities[i]) if args.exact else f"{batch.probabilities[i]:.6f}",
             batch.shards[i]]
            for i, q in enumerate(queries)
        ]
        report(
            f"engine: {len(queries)} queries, {db.size} tuples, "
            f"{args.workers} workers ({batch.mode})",
            ["query", "SDD size", "P(q)", "shard"],
            rows,
        )
        stats = batch.stats
        print("merged stats: " + ", ".join(f"{k}={v}" for k, v in sorted(stats.items())))
        if args.update:
            def evaluate():
                b = par.evaluate(queries, exact=args.exact)
                return [
                    [str(q), b.sizes[i],
                     str(b.probabilities[i]) if args.exact else f"{b.probabilities[i]:.6f}"]
                    for i, q in enumerate(queries)
                ]
            return run_updates(par, evaluate)
        return 0
    engine = QueryEngine(
        db, max_nodes=args.max_nodes, auto_minimize_nodes=args.auto_minimize
    )

    def evaluate():
        rows = []
        for q in queries:
            p = engine.probability(q, exact=args.exact)
            rows.append([str(q), engine.lineage_size(q),
                         str(p) if args.exact else f"{p:.6f}"])
        return rows

    rows = evaluate()
    report(
        f"engine: {len(queries)} queries, {db.size} tuples, one session",
        ["query", "SDD size", "P(q)"],
        rows,
    )
    stats = engine.stats()
    print("engine stats: " + ", ".join(f"{k}={v}" for k, v in sorted(stats.items())))
    if args.update:
        return run_updates(engine, evaluate)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run a ';'-separated workload through the always-on service tier:
    one warm :class:`~repro.service.QueryService` pool serving
    ``--sessions`` concurrent asyncio sessions × ``--repeats`` rounds,
    then print per-query answers and the merged service stats.

    With ``--forever`` the workload loops until SIGTERM/SIGINT; either
    signal (in any mode) triggers a graceful shutdown — new submissions
    are refused with the retry-after backpressure signal while the
    admitted in-flight queries drain, then the pool closes."""
    import asyncio
    import signal
    import threading

    from .service import QueryService
    from .service.supervisor import RestartPolicy

    queries, db = _parse_workload(args)
    if not queries:
        print("no queries given", file=sys.stderr)
        return 1
    if args.artifacts is not None and args.backend != "sdd":
        print("--artifacts requires --backend sdd", file=sys.stderr)
        return 1
    service = QueryService(
        db,
        workers=args.workers,
        mode=args.mode,
        backend=args.backend,
        max_nodes=args.max_nodes,
        cache_capacity=args.cache_capacity,
        max_in_flight=args.max_in_flight,
        session_quota=args.session_quota,
        artifact_dir=args.artifacts,
        default_timeout=(
            None if args.deadline_ms is None else args.deadline_ms / 1000.0
        ),
        restart=(
            None
            if args.max_restarts is None
            else RestartPolicy(max_restarts=args.max_restarts)
        ),
    )

    stop = threading.Event()

    def _on_signal(signum, frame) -> None:
        stop.set()

    # Graceful shutdown on both the orchestrator signal (SIGTERM) and the
    # operator's ^C; restored afterwards so embedders (tests call main()
    # in-process) keep their handlers.
    previous = {
        sig: signal.signal(sig, _on_signal)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }

    async def one_session(name: str) -> list:
        answers = None
        for _ in range(args.repeats):
            answers = await service.submit(queries, session=name, exact=args.exact)
        return answers

    async def drive() -> list:
        return await asyncio.gather(
            *(one_session(f"session-{s}") for s in range(args.sessions))
        )

    try:
        all_answers = asyncio.run(drive())
        rounds = 1
        if args.forever:
            print(f"serving forever ({len(queries)} queries/round); "
                  "SIGTERM or ^C drains and exits", flush=True)
            while not stop.is_set():
                asyncio.run(drive())
                rounds += 1
                stop.wait(0.01)
            print(f"served {rounds} rounds", flush=True)
        if args.artifacts is not None:
            import os

            os.makedirs(args.artifacts, exist_ok=True)
            saved = service.save_artifact()
            print(f"artifact saved: {saved} "
                  f"(warm start was {'on' if service.stats().get('pool_artifact_warm') else 'off'})")
    finally:
        stats = service.stats()
        if stop.is_set():
            print("signal received: draining in-flight queries...", flush=True)
            drained = service.shutdown(drain_timeout=30.0)
            print(f"graceful shutdown complete (drained={drained})", flush=True)
        else:
            service.close()
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    answers = all_answers[0]
    rows = [
        [str(q), answers[i].size,
         str(answers[i].probability) if args.exact else f"{answers[i].probability:.6f}"]
        for i, q in enumerate(queries)
    ]
    report(
        f"serve: {len(queries)} queries x {args.sessions} sessions x "
        f"{args.repeats} repeats, {db.size} tuples, "
        f"{args.workers} warm workers ({args.mode})",
        ["query", "size", "P(q)"],
        rows,
    )
    for session_answers in all_answers:
        assert [a.probability for a in session_answers] == [
            a.probability for a in answers
        ], "sessions disagree — determinism violated"
    print("service stats: " + ", ".join(f"{k}={v}" for k, v in sorted(stats.items())))
    return 0


def _cmd_isa(args: argparse.Namespace) -> int:
    from .isa.isa import isa_n, isa_vtree
    from .isa.sdd_construction import build_isa_sdd

    n = isa_n(args.k, args.m)
    s = build_isa_sdd(args.k, args.m)
    print(f"ISA_{n}: SDD size {s.size}, AND gates {s.and_gate_count}, "
          f"n^13/5 = {n ** 2.6:.0f}")
    if args.show_vtree:
        print(isa_vtree(args.k, args.m).render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = p.add_subparsers(dest="command", required=True)

    c = sub.add_parser("compile", help="compile a formula into SDD/NNF/OBDD")
    c.add_argument("formula")
    c.add_argument("--vtree", choices=["balanced", "right", "left", "search"],
                   default="balanced",
                   help="legacy vtree shape (ignored when --strategy is given)")
    c.add_argument("--backend", choices=available_backends(), default="canonical",
                   help="'apply' compiles bottom-up without a truth table "
                        "(scales past 20 variables); 'obdd' needs --strategy")
    c.add_argument("--strategy", choices=available_strategies(), default=None,
                   help="vtree strategy; routes through the Compiler facade "
                        "(any backend x any strategy)")
    c.add_argument("--minimize", action="store_true",
                   help="after compiling, minimize the vtree in place with "
                        "live SDD rotations/swaps (apply backend; defaults "
                        "the strategy to best-of when none is given)")
    c.add_argument("--save", metavar="PATH", default=None,
                   help="write the compiled result as a flat binary artifact "
                        "(reload with Compiler.load / 'query --load'; routes "
                        "through the facade, defaulting --strategy lemma1)")
    c.set_defaults(fn=_cmd_compile)

    t = sub.add_parser("ctw", help="exhaustive circuit treewidth (Result 2)")
    t.add_argument("formula")
    t.add_argument("--max-gates", type=int, default=4)
    t.set_defaults(fn=_cmd_ctw)

    q = sub.add_parser("query", help="compile and evaluate a UCQ")
    q.add_argument("query")
    q.add_argument("--domain", type=int, default=2)
    q.add_argument("--prob", type=float, default=0.5)
    q.add_argument("--backend", choices=["obdd", "sdd", "ddnnf"], default="obdd")
    q.add_argument("--exact", action="store_true",
                   help="exact Fraction probability (sdd/ddnnf backends)")
    q.add_argument("--load", metavar="PATH", default=None,
                   help="answer from a saved artifact base (sdd backend): a "
                        "stored query is served off the mmap-ed file with no "
                        "compilation, bit-identical to a live compile")
    q.add_argument("--save", metavar="PATH", default=None,
                   help="after answering, freeze the compiled query into an "
                        "artifact file for later --load (sdd backend)")
    q.set_defaults(fn=_cmd_query)

    b = sub.add_parser("batch", help="evaluate a ';'-separated UCQ workload "
                                     "through one shared SDD manager")
    b.add_argument("queries")
    b.add_argument("--domain", type=int, default=2)
    b.add_argument("--prob", type=float, default=0.5)
    b.add_argument("--exact", action="store_true",
                   help="exact Fraction probabilities")
    b.set_defaults(fn=_cmd_batch)

    e = sub.add_parser("engine", help="evaluate a ';'-separated UCQ workload "
                                      "through one QueryEngine session")
    e.add_argument("queries")
    e.add_argument("--domain", type=int, default=2)
    e.add_argument("--prob", type=float, default=0.5)
    e.add_argument("--exact", action="store_true",
                   help="exact Fraction probabilities")
    e.add_argument("--max-nodes", type=int, default=None,
                   help="session node budget: evict LRU compiled queries and "
                        "garbage-collect the manager past this many live nodes "
                        "(per worker when --workers > 1)")
    e.add_argument("--auto-minimize", type=int, default=None,
                   help="dynamic vtree minimization watermark: when the "
                        "session manager outgrows this many live nodes, sift "
                        "the vtree in place (serial sessions)")
    e.add_argument("--workers", type=int, default=1,
                   help="shard the workload across N worker engines sharing "
                        "one base vtree (deterministic: results bit-identical "
                        "to --workers 1)")
    e.add_argument("--parallel-mode", choices=["auto", "threads", "spawn"],
                   default="auto",
                   help="worker execution mode (auto: threads for small "
                        "batches / single-CPU hosts, spawn otherwise)")
    e.add_argument("--update", action="append", default=[], metavar="SPEC",
                   help="after the first evaluation, apply a live database "
                        "update and re-evaluate: weight:REL:V1,V2:P "
                        "(reweight), insert:REL:V1,V2:P, delete:REL:V1,V2; "
                        "repeatable, applied in order (cached lineages are "
                        "delta-patched, not recompiled)")
    e.set_defaults(fn=_cmd_engine)

    s = sub.add_parser("serve", help="serve a ';'-separated UCQ workload to "
                                     "concurrent sessions over one warm "
                                     "worker pool (the service tier)")
    s.add_argument("queries")
    s.add_argument("--domain", type=int, default=2)
    s.add_argument("--prob", type=float, default=0.5)
    s.add_argument("--exact", action="store_true",
                   help="exact Fraction probabilities")
    s.add_argument("--workers", type=int, default=2,
                   help="persistent warm worker engines in the pool")
    s.add_argument("--mode", choices=["threads", "spawn"], default="threads",
                   help="worker execution mode (spawn keeps child processes "
                        "alive across batches)")
    s.add_argument("--backend", choices=["sdd", "ddnnf"], default="sdd",
                   help="compiled representation per worker engine")
    s.add_argument("--sessions", type=int, default=4,
                   help="concurrent client sessions to simulate")
    s.add_argument("--repeats", type=int, default=2,
                   help="times each session re-submits the workload "
                        "(repeats exercise the shared answer cache)")
    s.add_argument("--max-nodes", type=int, default=None,
                   help="per-worker engine node budget")
    s.add_argument("--cache-capacity", type=int, default=None,
                   help="shared answer-cache capacity (default unbounded)")
    s.add_argument("--max-in-flight", type=int, default=1024,
                   help="admission control: maximum admitted-but-unanswered "
                        "queries across all sessions")
    s.add_argument("--session-quota", type=int, default=None,
                   help="default per-session compiled-node quota")
    s.add_argument("--artifacts", metavar="DIR", default=None,
                   help="artifact directory: warm-start the pool from "
                        "<db_fingerprint>.rpaf when present, and save the "
                        "served workload back to it after the run "
                        "(sdd backend)")
    s.add_argument("--deadline-ms", type=float, default=None,
                   help="per-query wall-clock budget in milliseconds, "
                        "enforced cooperatively at the compilation "
                        "safepoints (DeadlineExceeded past it)")
    s.add_argument("--max-restarts", type=int, default=None,
                   help="supervisor restart budget per worker slot before "
                        "the slot is retired and its queue redistributed")
    s.add_argument("--forever", action="store_true",
                   help="loop the workload until SIGTERM/SIGINT, then "
                        "drain in-flight queries and shut down gracefully")
    s.set_defaults(fn=_cmd_serve)

    i = sub.add_parser("isa", help="build the Appendix-A ISA SDD")
    i.add_argument("k", type=int)
    i.add_argument("m", type=int)
    i.add_argument("--show-vtree", action="store_true")
    i.set_defaults(fn=_cmd_isa)
    return p


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
