"""Garbage-collection properties of :class:`SddManager`.

The invariants that make GC safe to run mid-session:

- collection never touches anything reachable from a pinned root
  (``validate`` still passes, WMC values are bit-identical);
- every cache keyed by node id (apply, negation, registered WMC memos) is
  evicted coherently, so recycled ids can never resurrect stale entries;
- recompiling a collected function reproduces the same canonical node and
  the same probability;
- aging spares nodes born since the previous collection unless ``full``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.build import chain_and_or, parity
from repro.circuits.random_circuits import random_circuit
from repro.core.vtree import Vtree
from repro.sdd.manager import SddManager
from repro.sdd.wmc import SddWmcEvaluator, exact_weights


def fresh_manager(n: int = 40) -> SddManager:
    return SddManager(Vtree.right_linear([f"x{i}" for i in range(1, n + 1)]))


def half_weights(n: int = 40):
    return exact_weights({f"x{i}": "0.5" for i in range(1, n + 1)})


class TestPinRelease:
    def test_pin_counts(self):
        mgr = fresh_manager()
        root = mgr.compile_circuit(chain_and_or(40))
        mgr.pin(root)
        mgr.pin(root)
        mgr.release(root)
        mgr.gc(full=True)
        mgr.validate(root)  # still pinned once
        mgr.release(root)
        with pytest.raises(ValueError):
            mgr.release(root)

    def test_constants_need_no_pin(self):
        mgr = fresh_manager()
        assert mgr.pin(mgr.true) == mgr.true
        mgr.release(mgr.false)  # no-op, no error
        mgr.gc(full=True)

    def test_pin_collected_node_rejected(self):
        mgr = fresh_manager()
        root = mgr.compile_circuit(chain_and_or(40))
        mgr.gc(full=True)  # nothing pinned: root is swept
        with pytest.raises(ValueError):
            mgr.pin(root)

    def test_literals_survive_collection(self):
        mgr = fresh_manager()
        a = mgr.literal("x1")
        mgr.gc(full=True)
        assert mgr.literal("x1") == a
        assert mgr.stats()["literal_nodes"] == 1


class TestCollectionSafety:
    def test_validate_and_wmc_unchanged_across_gc(self):
        mgr = fresh_manager()
        root = mgr.pin(mgr.compile_circuit(chain_and_or(40)))
        junk = mgr.compile_circuit(parity(30))  # noqa: F841 — garbage on purpose
        ev = SddWmcEvaluator(mgr, half_weights())
        value_before = ev.value(root)
        stats = mgr.gc(full=True)
        assert stats["collected"] > 0
        mgr.validate(root)
        assert ev.value(root) == value_before
        # A fresh evaluator over the post-gc manager agrees too.
        assert SddWmcEvaluator(mgr, half_weights()).value(root) == value_before

    def test_recompile_after_collection_reproduces_probability(self):
        mgr = fresh_manager()
        root = mgr.compile_circuit(parity(40))
        ev = SddWmcEvaluator(mgr, half_weights())
        value = ev.value(root)
        mgr.gc(full=True)  # root unpinned: collected
        root2 = mgr.compile_circuit(parity(40))
        assert ev.value(root2) == value
        mgr.validate(root2)

    def test_id_reuse_is_coherent(self):
        """Freed slots are recycled; recycled ids must never hit stale
        apply/neg/WMC cache entries."""
        mgr = fresh_manager()
        keep = mgr.pin(mgr.compile_circuit(chain_and_or(40)))
        mgr.compile_circuit(parity(30))
        ev = SddWmcEvaluator(mgr, half_weights())
        keep_value = ev.value(keep)
        capacity_before = len(mgr.node_kind)
        mgr.gc(full=True)
        assert mgr.stats()["free_nodes"] > 0
        root = mgr.compile_circuit(parity(25))  # refills freed slots
        assert len(mgr.node_kind) <= capacity_before + 5
        mgr.validate(root)
        mgr.validate(keep)
        assert ev.value(root) == SddWmcEvaluator(mgr, half_weights()).value(root)
        assert ev.value(keep) == keep_value
        neg = mgr.negate(root)
        assert mgr.count_models(neg) == (1 << 40) - mgr.count_models(root)

    def test_shared_structure_survives_partner_release(self):
        mgr = fresh_manager()
        a = mgr.pin(mgr.compile_circuit(chain_and_or(40)))
        b = mgr.pin(mgr.disjoin(a, mgr.compile_circuit(parity(30))))
        mgr.release(a)
        mgr.gc(full=True)
        mgr.validate(b)  # b reaches much of a's structure; must be intact
        assert 0 < mgr.count_models(b) < (1 << 40)


class TestAgingAndWatermark:
    def test_aging_spares_young_nodes(self):
        mgr = fresh_manager()
        root = mgr.compile_circuit(chain_and_or(40))  # born this generation
        stats = mgr.gc()  # aging pass: nothing old enough to sweep
        assert stats["collected"] == 0
        mgr.validate(root)
        stats = mgr.gc()  # one generation later the unpinned root goes
        assert stats["collected"] > 0

    def test_aging_spares_young_nodes_transitively(self):
        """A spared young node keeps its older substructure alive: the
        aging pass must never leave a spared node with dangling element
        ids (regression: old primes under fresh decisions were swept)."""
        mgr = SddManager(Vtree.from_nested((("a", "b"), ("c", "d"))))
        f1 = mgr.apply(mgr.literal("a"), mgr.literal("b"), "and")
        mgr.gc()  # f1 is now one generation old (and unpinned)
        y = mgr.apply(f1, mgr.literal("c"), "and")  # young, references f1
        mgr.gc()  # aging: sparing y must spare f1 too
        mgr.pin(y)
        mgr.validate(y)
        assert mgr.count_models(y) == 2  # a ∧ b ∧ c, d free

    def test_full_ignores_aging(self):
        mgr = fresh_manager()
        mgr.compile_circuit(chain_and_or(40))
        assert mgr.gc(full=True)["collected"] > 0

    def test_maybe_gc_watermark(self):
        mgr = SddManager(
            Vtree.right_linear([f"x{i}" for i in range(1, 41)]),
            auto_gc_nodes=200,
        )
        root = mgr.pin(mgr.compile_circuit(chain_and_or(40)))
        assert mgr.live_node_count > 200
        first = mgr.maybe_gc()  # aging spares generation-0 nodes
        assert first is not None
        second = mgr.maybe_gc()
        assert second is not None and second["collected"] > 0
        mgr.validate(root)
        small = SddManager(Vtree.right_linear(["x1", "x2"]))
        assert small.maybe_gc() is None  # no watermark armed

    def test_stats_counters(self):
        mgr = fresh_manager()
        root = mgr.pin(mgr.compile_circuit(chain_and_or(40)))
        mgr.compile_circuit(parity(30))
        before = mgr.stats()
        mgr.gc(full=True)
        after = mgr.stats()
        assert after["gc_runs"] == before["gc_runs"] + 1
        assert after["collected_nodes"] > before["collected_nodes"]
        assert after["nodes"] < before["nodes"]
        assert after["node_capacity"] == before["node_capacity"]
        assert after["free_nodes"] == after["node_capacity"] - after["nodes"]
        assert after["pinned_roots"] == 1
        mgr.validate(root)


class TestGcProperty:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_circuits_survive_gc_roundtrip(self, seed):
        """Compile two random circuits, pin one, collect, and check the
        pinned SDD's count and the recompiled partner's count both match
        their pre-collection values."""
        rng = np.random.default_rng(seed)
        c1 = random_circuit(rng, n_vars=6, n_gates=12)
        c2 = random_circuit(rng, n_vars=6, n_gates=12)
        vs = sorted(set(map(str, c1.variables)) | set(map(str, c2.variables)))
        mgr = SddManager(Vtree.right_linear(vs))
        r1 = mgr.pin(mgr.compile_circuit(c1))
        r2 = mgr.compile_circuit(c2)
        count1 = mgr.count_models(r1, vs)
        count2 = mgr.count_models(r2, vs)
        mgr.gc(full=True)
        mgr.validate(r1)
        assert mgr.count_models(r1, vs) == count1
        r2b = mgr.compile_circuit(c2)
        assert mgr.count_models(r2b, vs) == count2
