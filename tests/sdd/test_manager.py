"""Apply-based SDD manager tests: canonicity, apply, invariants, counting."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.build import chain_and_or, disjointness, h0, parity
from repro.circuits.circuit import Circuit
from repro.core.boolfunc import BooleanFunction
from repro.core.sdd_compile import compile_canonical_sdd
from repro.core.vtree import Vtree
from repro.sdd.manager import SddManager, sdd_from_circuit

from ..conftest import boolean_functions


def compile_fn(mgr: SddManager, f: BooleanFunction) -> int:
    return mgr.compile_circuit(Circuit.from_function_dnf(f))


class TestBasics:
    def test_terminals(self):
        mgr = SddManager(Vtree.balanced(["x", "y"]))
        assert mgr.false == 0 and mgr.true == 1

    def test_literal_unknown_var(self):
        mgr = SddManager(Vtree.leaf("x"))
        with pytest.raises(ValueError):
            mgr.literal("zz")

    def test_literal_same_id(self):
        mgr = SddManager(Vtree.balanced(["x", "y"]))
        assert mgr.literal("x", True) == mgr.literal("x", True)

    def test_same_var_literal_ops(self):
        mgr = SddManager(Vtree.balanced(["x", "y"]))
        x, nx_ = mgr.literal("x", True), mgr.literal("x", False)
        assert mgr.apply(x, nx_, "and") == mgr.false
        assert mgr.apply(x, nx_, "or") == mgr.true

    def test_negate_involution(self):
        mgr = SddManager(Vtree.balanced(["x", "y", "z"]))
        u = mgr.conjoin(mgr.literal("x", True), mgr.literal("y", False))
        assert mgr.negate(mgr.negate(u)) == u


class TestApplyCorrectness:
    @settings(max_examples=30, deadline=None)
    @given(
        boolean_functions(min_vars=2, max_vars=4),
        boolean_functions(min_vars=2, max_vars=4),
        st.integers(0, 10_000),
    )
    def test_ops_match_semantics(self, f, g, seed):
        vs = sorted(set(f.variables) | set(g.variables))
        rng = np.random.default_rng(seed)
        mgr = SddManager(Vtree.random(vs, rng))
        u, v = compile_fn(mgr, f.extend(vs)), compile_fn(mgr, g.extend(vs))
        assert mgr.function(mgr.apply(u, v, "and"), vs) == (f & g).extend(vs)
        assert mgr.function(mgr.apply(u, v, "or"), vs) == (f | g).extend(vs)
        assert mgr.function(mgr.negate(u), vs) == ~(f.extend(vs))

    @settings(max_examples=30, deadline=None)
    @given(boolean_functions(min_vars=1, max_vars=5), st.integers(0, 10_000))
    def test_canonicity(self, f, seed):
        """Same function, same manager ⇒ same node id — regardless of the
        circuit shape it was compiled from."""
        vs = sorted(f.variables)
        rng = np.random.default_rng(seed)
        mgr = SddManager(Vtree.random(vs, rng))
        a = compile_fn(mgr, f)
        # a different circuit for the same function: CNF of the complement's
        # models, negated
        b = mgr.negate(compile_fn(mgr, ~f))
        assert a == b

    @settings(max_examples=20, deadline=None)
    @given(boolean_functions(min_vars=2, max_vars=4))
    def test_invariants_validate(self, f):
        vs = sorted(f.variables)
        mgr = SddManager(Vtree.balanced(vs))
        root = compile_fn(mgr, f)
        mgr.validate(root)

    def test_bad_op(self):
        mgr = SddManager(Vtree.balanced(["x", "y"]))
        with pytest.raises(ValueError):
            mgr.apply(0, 1, "xor")


class TestCompilation:
    def test_compile_circuit_matches_function(self):
        c = chain_and_or(5)
        mgr, root = sdd_from_circuit(c)
        assert mgr.function(root, sorted(c.variables)) == c.function()

    def test_compile_nnf(self):
        from repro.circuits.nnf import conj, disj, lit

        n = disj([conj([lit("a", True), lit("b", True)]), lit("c", True)])
        mgr = SddManager(Vtree.balanced(["a", "b", "c"]))
        root = mgr.compile_nnf(n)
        assert mgr.function(root, ["a", "b", "c"]) == n.function(["a", "b", "c"])

    def test_matches_canonical_compile_semantics(self):
        rng = np.random.default_rng(5)
        vs = [f"v{i}" for i in range(4)]
        f = BooleanFunction.random(vs, rng)
        t = Vtree.balanced(vs)
        mgr = SddManager(t)
        root = compile_fn(mgr, f)
        canonical = compile_canonical_sdd(f, t)
        assert mgr.function(root, vs) == canonical.root.function(vs) == f


class TestConditionRestrict:
    @settings(max_examples=20, deadline=None)
    @given(boolean_functions(min_vars=2, max_vars=4))
    def test_condition(self, f):
        vs = sorted(f.variables)
        mgr = SddManager(Vtree.balanced(vs))
        root = compile_fn(mgr, f)
        v0 = vs[0]
        conditioned = mgr.condition(root, {v0: 1})
        expect = f.cofactor({v0: 1}).extend(vs)
        assert mgr.function(conditioned, vs) == expect


class TestMeasures:
    def test_size_and_width(self):
        c = h0(1, 2)
        mgr, root = sdd_from_circuit(c)
        assert mgr.size(root) > 0
        assert mgr.width(root) > 0
        assert mgr.node_count(root) >= mgr.width(root) // 2

    def test_constant_sizes(self):
        mgr = SddManager(Vtree.balanced(["x", "y"]))
        assert mgr.size(mgr.true) == 0
        assert mgr.width(mgr.false) == 0

    @settings(max_examples=30, deadline=None)
    @given(boolean_functions(min_vars=1, max_vars=5), st.integers(0, 10_000))
    def test_count_models(self, f, seed):
        vs = sorted(f.variables)
        rng = np.random.default_rng(seed)
        mgr = SddManager(Vtree.random(vs, rng))
        root = compile_fn(mgr, f)
        assert mgr.count_models(root) == f.count_models()

    def test_count_models_scope(self):
        mgr = SddManager(Vtree.balanced(["x", "y"]))
        root = mgr.literal("x", True)
        assert mgr.count_models(root, ["x", "y", "z"]) == 4

    @settings(max_examples=20, deadline=None)
    @given(boolean_functions(min_vars=1, max_vars=4))
    def test_probability(self, f):
        vs = sorted(f.variables)
        mgr = SddManager(Vtree.balanced(vs))
        root = compile_fn(mgr, f)
        prob = {v: 0.4 for v in vs}
        assert mgr.probability(root, prob) == pytest.approx(f.probability(prob))

    def test_wmc_fraction_exact(self):
        mgr = SddManager(Vtree.balanced(["x", "y"]))
        root = mgr.disjoin(mgr.literal("x", True), mgr.literal("y", True))
        w = {"x": (Fraction(1, 2), Fraction(1, 2)), "y": (Fraction(1, 2), Fraction(1, 2))}
        assert mgr.weighted_count(root, w) == Fraction(3, 4)

    @settings(max_examples=20, deadline=None)
    @given(boolean_functions(min_vars=2, max_vars=4))
    def test_evaluate(self, f):
        vs = sorted(f.variables)
        mgr = SddManager(Vtree.balanced(vs))
        root = compile_fn(mgr, f)
        for m in list(f.models())[:4]:
            assert mgr.evaluate(root, m)

    @settings(max_examples=15, deadline=None)
    @given(boolean_functions(min_vars=2, max_vars=4))
    def test_to_nnf_structured_deterministic(self, f):
        vs = sorted(f.variables)
        t = Vtree.balanced(vs)
        mgr = SddManager(t)
        root = compile_fn(mgr, f)
        nnf = mgr.to_nnf(root)
        assert nnf.function(vs) == f
        if nnf.kind not in ("true", "false", "lit"):
            assert nnf.is_deterministic()
            assert nnf.is_structured_by(t)


class TestForgetRestrict:
    def test_restrict_matches_semantics(self):
        import numpy as np

        rng = np.random.default_rng(3)
        vs = ["a", "b", "c"]
        f = BooleanFunction.random(vs, rng)
        mgr = SddManager(Vtree.balanced(vs))
        root = compile_fn(mgr, f)
        r = mgr._restrict(root, "a", True)
        assert mgr.function(r, vs).exists(["a"]).extend(vs) == (
            f.cofactor({"a": 1}).extend(vs)
        )

    def test_forget_var_is_exists(self):
        import numpy as np

        rng = np.random.default_rng(4)
        vs = ["a", "b", "c"]
        f = BooleanFunction.random(vs, rng)
        mgr = SddManager(Vtree.balanced(vs))
        root = compile_fn(mgr, f)
        forgotten = mgr._forget_var(root, "b")
        assert mgr.function(forgotten, vs) == f.exists(["b"]).extend(vs)
