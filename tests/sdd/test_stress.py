"""Scale/stress tests for the apply-based engines — the 'wide circuit'
regime where truth tables are impossible (the query-lineage use case)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.build import chain_and_or, cnf_chain
from repro.core.vtree import Vtree
from repro.obdd.obdd import ObddManager
from repro.queries.compile import compile_lineage_obdd
from repro.queries.database import complete_database
from repro.queries.families import hierarchical_query
from repro.sdd.manager import SddManager


class TestWideCircuits:
    def test_chain_60_vars_sdd(self):
        """60 variables: far beyond truth tables; sizes must stay linear."""
        c = chain_and_or(60)
        vs = sorted(c.variables)
        mgr = SddManager(Vtree.right_linear(vs))
        root = mgr.compile_circuit(c)
        assert mgr.size(root) < 60 * 40
        mgr.validate(root)
        # model count sanity: strictly between 0 and 2^60, odd-ball exact value
        mc = mgr.count_models(root)
        assert 0 < mc < (1 << 60)

    def test_chain_60_vars_obdd(self):
        c = chain_and_or(60)
        vs = [f"x{i}" for i in range(1, 61)]  # natural chain order
        mgr = ObddManager(vs)
        root = mgr.compile_circuit(c)
        assert mgr.width(root) <= 4
        assert mgr.size(root) < 60 * 8

    def test_obdd_sdd_counts_agree_wide(self):
        c = cnf_chain(40, 2)
        vs = [f"x{i}" for i in range(1, 41)]
        omgr = ObddManager(vs)
        ocount = omgr.count_models(omgr.compile_circuit(c))
        smgr = SddManager(Vtree.balanced(sorted(vs)))
        scount = smgr.count_models(smgr.compile_circuit(c))
        assert ocount == scount > 0

    def test_lineage_at_domain_12(self):
        """156 tuple variables — 2^156 possible worlds — compiled and
        counted exactly through the OBDD."""
        db = complete_database({"R": 1, "S": 2}, 12)
        mgr, root = compile_lineage_obdd(hierarchical_query(), db)
        assert mgr.width(root) == 1  # still constant (Figure 2)
        mc = mgr.count_models(root)
        assert 0 < mc < (1 << db.size)
        # cross-check against the closed form: the lineage is
        # OR_l ( R(l) ∧ OR_m S(l,m) ); counting non-models per independent
        # block l: R(l)=0 gives 2^n S-suffixes, R(l)=1 needs all S(l,·)=0.
        n = 12
        fail_per_block = (1 << n) + 1
        non_models = fail_per_block ** n
        assert mc == (1 << db.size) - non_models

    def test_deep_random_vtree(self):
        rng = np.random.default_rng(0)
        c = chain_and_or(30)
        t = Vtree.random(sorted(c.variables), rng)
        mgr = SddManager(t)
        root = mgr.compile_circuit(c)
        mgr.validate(root)
        assert mgr.size(root) > 0
