"""In-manager dynamic vtree minimization: moves, invariants, search.

Three layers:

- deterministic unit tests for ``rotate_left`` / ``rotate_right`` /
  ``swap`` / ``minimize`` semantics (mapping, pins, rollback, watermark);
- a hypothesis property suite (marked ``minimize``, own CI job) asserting
  that model count, exact-Fraction WMC and ``evaluate()`` are bit-identical
  across *any* sequence of moves, and that the unique table stays canonical
  after rollbacks;
- the RNG-threading determinism tests for the fresh-manager baseline
  search (the per-round ``default_rng(0)`` reset regression).
"""

from __future__ import annotations

import itertools
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.build import chain_and_or, disjointness, ladder
from repro.circuits.random_circuits import random_circuit
from repro.core.vtree import Vtree
from repro.sdd.compile import minimize_vtree_for_circuit, minimize_vtree_fresh
from repro.sdd.manager import SddManager
from repro.sdd.wmc import SddWmcEvaluator, exact_weights

MOVES = ("rotate-right", "rotate-left", "swap")
INVERSE = {"rotate-right": "rotate-left", "rotate-left": "rotate-right", "swap": "swap"}


def compiled(circuit, vtree=None):
    vs = sorted(map(str, circuit.variables))
    mgr = SddManager(vtree if vtree is not None else Vtree.balanced(vs))
    root = mgr.pin(mgr.compile_circuit(circuit))
    return mgr, root, vs


def brute_wmc(circuit, weights):
    """Ground-truth WMC by exhaustive enumeration (exact Fractions)."""
    vs = sorted(map(str, circuit.variables))
    f = circuit.function()
    total = Fraction(0)
    for bits in itertools.product((0, 1), repeat=len(vs)):
        asg = dict(zip(vs, bits))
        if f(asg):
            w = Fraction(1)
            for v, b in asg.items():
                w *= weights[v][b]
            total += w
    return total


def internal_indices(mgr):
    return [i for i in range(len(mgr.v_nodes)) if mgr.v_left[i] is not None]


class TestSingleMoves:
    def test_every_move_preserves_semantics(self):
        c = chain_and_or(7)
        mgr, root, vs = compiled(c)
        weights = exact_weights({v: Fraction(1, 3) for v in vs})
        ev = SddWmcEvaluator(mgr, weights)
        truth = brute_wmc(c, weights)
        mc = mgr.count_models(root)
        for v in internal_indices(mgr):
            for name in MOVES:
                mapping = mgr._move(name, v)
                if mapping is None:
                    continue
                root = mapping.get(root, root)
                mgr.check_unique_table()
                mgr.validate(root)
                assert mgr.count_models(root) == mc
                assert ev.value(root) == truth

    def test_inapplicable_moves_return_none(self):
        c = chain_and_or(3)
        vs = sorted(map(str, c.variables))
        mgr, root, _ = compiled(c, Vtree.right_linear(vs))
        leaf = mgr.leaf_of_var[vs[0]]
        assert mgr.rotate_left(leaf) is None
        assert mgr.rotate_right(leaf) is None
        assert mgr.swap(leaf) is None
        # right-linear root: left child is a leaf, right rotation inapplicable
        assert mgr.rotate_right(mgr.v_root) is None

    def test_rotation_roundtrip_restores_size_and_leaf_order(self):
        c = ladder(4)
        mgr, root, vs = compiled(c)
        order0 = mgr.vtree.leaf_order()
        size0 = mgr.size(root)
        for v in internal_indices(mgr):
            for name in MOVES:
                mapping = mgr._move(name, v)
                if mapping is None:
                    continue
                root = mapping.get(root, root)
                back = mgr._move(INVERSE[name], v)
                assert back is not None
                root = back.get(root, root)
                mgr.check_unique_table()
                assert mgr.size(root) == size0
                assert mgr.vtree.leaf_order() == order0

    def test_swap_changes_leaf_order(self):
        c = chain_and_or(4)
        mgr, root, _ = compiled(c)
        order0 = mgr.vtree.leaf_order()
        mapping = mgr.swap(mgr.v_root)
        assert mapping is not None
        assert mgr.vtree.leaf_order() != order0
        assert set(mgr.vtree.leaf_order()) == set(order0)

    def test_pins_travel_with_the_mapping(self):
        c = chain_and_or(6)
        mgr, root, _ = compiled(c)
        for v in internal_indices(mgr):
            mapping = mgr.rotate_right(v)
            if mapping:
                break
        else:
            pytest.skip("no rotation re-normalized a pinned node")
        new_root = mapping.get(root, root)
        if new_root != root:
            assert root not in mgr.pinned_roots()
        assert new_root in mgr.pinned_roots()
        # the pin protects the remapped root across a full collection
        mgr.gc(full=True)
        mgr.validate(new_root)

    def test_literal_and_constant_roots_survive(self):
        c = chain_and_or(3)
        mgr, root, vs = compiled(c)
        lit = mgr.literal(vs[0])
        mgr.pin(lit)
        for v in internal_indices(mgr):
            for name in MOVES:
                m = mgr._move(name, v)
                if m is not None:
                    assert lit not in m  # literals are never re-normalized
        assert mgr.node_kind[lit] == "lit"


class TestMinimize:
    def test_minimize_never_grows_and_stays_canonical(self):
        c = chain_and_or(12)
        mgr, root, vs = compiled(c)
        weights = exact_weights({v: Fraction(2, 7) for v in vs})
        ev = SddWmcEvaluator(mgr, weights)
        before = ev.value(root)
        size0 = mgr.size(root)
        mapping = mgr.minimize(rounds=2)
        root = mapping.get(root, root)
        mgr.check_unique_table()
        mgr.validate(root)
        assert mgr.size(root) <= size0
        assert ev.value(root) == before  # bit-identical exact WMC

    def test_minimize_budget_caps_exploration(self):
        c = chain_and_or(10)
        mgr, root, _ = compiled(c)
        moves_before = mgr.stats()["vtree_moves"]
        mgr.minimize(budget=3, rounds=5)
        # exploration is capped; the only extra moves allowed are the
        # rollback/settle ones for the node in flight
        assert mgr.stats()["vtree_moves"] - moves_before <= 3 * 3
        mgr.check_unique_table()

    def test_minimize_rejects_bad_arguments(self):
        c = chain_and_or(3)
        mgr, _, _ = compiled(c)
        with pytest.raises(ValueError, match="rounds"):
            mgr.minimize(rounds=0)
        with pytest.raises(ValueError, match="max_growth"):
            mgr.minimize(max_growth=0.5)

    def test_node_order_restricts_the_pass(self):
        c = chain_and_or(8)
        mgr, root, _ = compiled(c)
        mgr.minimize(rounds=1, node_order=[])
        assert mgr.stats()["vtree_moves"] == 0

    def test_auto_minimize_watermark_fires_mid_compile(self):
        c = chain_and_or(40)
        vs = sorted(c.variables)
        plain = SddManager(Vtree.balanced(vs))
        r0 = plain.pin(plain.compile_circuit(c))
        mc = plain.count_models(r0)

        mgr = SddManager(Vtree.balanced(vs), auto_minimize_nodes=400)
        root = mgr.pin(mgr.compile_circuit(c))
        stats = mgr.stats()
        assert stats["minimize_runs"] > 0
        assert stats["vtree_moves"] > 0
        assert mgr.count_models(root) == mc
        mgr.check_unique_table()
        mgr.validate(root)

    def test_watermark_none_never_fires(self):
        c = chain_and_or(20)
        mgr, root, _ = compiled(c)
        assert mgr.stats()["minimize_runs"] == 0


class TestInManagerCircuitSearch:
    def test_matches_fresh_search_quality(self):
        """The rewritten search must reach at most the old baseline's size
        (the benchmark's acceptance criterion in miniature)."""
        c = disjointness(3)
        xs = [f"x{i}" for i in range(1, 4)]
        ys = [f"y{i}" for i in range(1, 4)]
        bad = Vtree.internal(Vtree.balanced(xs), Vtree.balanced(ys))
        fresh_size, _ = minimize_vtree_fresh(c, start=bad, max_rounds=4)
        in_mgr_size, t = minimize_vtree_for_circuit(c, start=bad, max_rounds=4)
        assert in_mgr_size <= fresh_size
        # returned vtree really compiles to the reported size
        mgr = SddManager(t)
        assert mgr.size(mgr.compile_circuit(c)) == in_mgr_size

    def test_fresh_search_threads_one_rng_across_rounds(self):
        """Satellite regression: the old code re-created
        ``default_rng(0)`` inside the round loop, so every round sampled
        the same neighbor indices.  With one generator threaded through,
        successive rounds draw successive (distinct) samples."""

        class RecordingRng:
            def __init__(self, seed):
                self._gen = np.random.default_rng(seed)
                self.draws: list[tuple[int, ...]] = []

            def choice(self, n, size, replace):
                out = self._gen.choice(n, size=size, replace=replace)
                self.draws.append(tuple(int(x) for x in out))
                return out

        c = disjointness(3)
        xs = [f"x{i}" for i in range(1, 4)]
        ys = [f"y{i}" for i in range(1, 4)]
        bad = Vtree.internal(Vtree.balanced(xs), Vtree.balanced(ys))
        rec = RecordingRng(seed=7)
        minimize_vtree_fresh(c, start=bad, max_rounds=4, max_neighbors=6, rng=rec)
        assert len(rec.draws) >= 2, "search should run multiple sampled rounds"
        assert len(set(rec.draws)) > 1, (
            "per-round RNG reset regression: every round sampled the same "
            "neighbor indices"
        )

    def test_fresh_search_deterministic_for_a_seed(self):
        c = disjointness(3)
        runs = [
            minimize_vtree_fresh(
                c, max_rounds=3, max_neighbors=5, rng=np.random.default_rng(42)
            )
            for _ in range(2)
        ]
        assert runs[0][0] == runs[1][0]
        assert runs[0][1] == runs[1][1]

    def test_in_manager_search_deterministic_for_a_seed(self):
        c = disjointness(3)
        runs = [
            minimize_vtree_for_circuit(
                c, max_rounds=3, max_neighbors=3, rng=np.random.default_rng(42)
            )
            for _ in range(2)
        ]
        assert runs[0][0] == runs[1][0]
        assert runs[0][1] == runs[1][1]


@st.composite
def circuits(draw):
    seed = draw(st.integers(0, 2**16))
    n_vars = draw(st.integers(3, 5))
    n_gates = draw(st.integers(3, 9))
    rng = np.random.default_rng(seed)
    return random_circuit(rng, n_vars=n_vars, n_gates=n_gates)


@pytest.mark.minimize
class TestMoveInvariantProperties:
    """Hypothesis suite: any move sequence preserves the compiled function
    bit for bit, and the unique table stays canonical throughout."""

    @given(
        circuits(),
        st.lists(
            st.tuples(st.sampled_from(MOVES), st.integers(0, 10**6)),
            min_size=1,
            max_size=10,
        ),
        st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_move_sequence_is_semantics_preserving(self, c, moves, vseed):
        vs = sorted(map(str, c.variables))
        vtree = Vtree.random(vs, np.random.default_rng(vseed))
        mgr = SddManager(vtree)
        root = mgr.pin(mgr.compile_circuit(c))
        weights = exact_weights(
            {v: Fraction(i + 1, len(vs) + 2) for i, v in enumerate(vs)}
        )
        ev = SddWmcEvaluator(mgr, weights)
        truth_wmc = brute_wmc(c, weights)
        truth_mc = mgr.count_models(root)
        f = c.function()
        assignments = list(itertools.product((0, 1), repeat=len(vs)))
        for name, pick in moves:
            targets = internal_indices(mgr)
            mapping = mgr._move(name, targets[pick % len(targets)])
            if mapping is None:
                continue
            root = mapping.get(root, root)
            mgr.check_unique_table()
            mgr.validate(root)
            assert mgr.count_models(root) == truth_mc
            assert ev.value(root) == truth_wmc
            for bits in assignments:
                asg = dict(zip(vs, bits))
                assert mgr.evaluate(root, asg) == bool(f(asg))

    @given(circuits(), st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_rollback_restores_canonical_unique_table(self, c, vseed):
        vs = sorted(map(str, c.variables))
        vtree = Vtree.random(vs, np.random.default_rng(vseed))
        mgr = SddManager(vtree)
        root = mgr.pin(mgr.compile_circuit(c))
        size0 = mgr.size(root)
        nnf0 = None
        for v in internal_indices(mgr):
            for name in MOVES:
                mapping = mgr._move(name, v)
                if mapping is None:
                    continue
                root = mapping.get(root, root)
                back = mgr._move(INVERSE[name], v)
                assert back is not None
                root = back.get(root, root)
                mgr.check_unique_table()
                mgr.validate(root)
                assert mgr.size(root) == size0
                if nnf0 is None:
                    nnf0 = mgr.function(root, vs)
                else:
                    assert mgr.function(root, vs) == nnf0

    @given(circuits())
    @settings(max_examples=25, deadline=None)
    def test_minimize_preserves_exact_probabilities(self, c):
        vs = sorted(map(str, c.variables))
        mgr = SddManager(Vtree.balanced(vs))
        root = mgr.pin(mgr.compile_circuit(c))
        weights = exact_weights({v: Fraction(1, 3) for v in vs})
        ev = SddWmcEvaluator(mgr, weights)
        before = ev.value(root)
        size0 = mgr.size(root)
        mapping = mgr.minimize(rounds=2)
        root = mapping.get(root, root)
        mgr.check_unique_table()
        mgr.validate(root)
        assert mgr.size(root) <= size0
        assert ev.value(root) == before
        assert SddWmcEvaluator(mgr, weights).value(root) == before
