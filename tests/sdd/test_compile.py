"""Tests for circuit-level SDD vtree search and serialization round trips."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.build import chain_and_or, disjointness
from repro.circuits.random_circuits import random_circuit
from repro.circuits.serialize import (
    circuit_from_dict,
    circuit_to_dict,
    nnf_dumps,
    nnf_from_dict,
    nnf_loads,
    nnf_to_dict,
)
from repro.core.sdd_compile import compile_canonical_sdd
from repro.core.vtree import Vtree
from repro.sdd.compile import (
    candidate_compilations,
    compile_with_vtree,
    minimize_vtree_for_circuit,
)


class TestCircuitVtreeSearch:
    def test_compile_with_vtree(self):
        c = chain_and_or(5)
        mgr, root, size = compile_with_vtree(c, Vtree.balanced(sorted(c.variables)))
        assert size == mgr.size(root)
        assert mgr.function(root, sorted(c.variables)) == c.function()

    def test_candidates_sorted(self):
        c = chain_and_or(5)
        pairs = candidate_compilations(c)
        sizes = [s for _, s in pairs]
        assert sizes == sorted(sizes)

    def test_search_never_worse(self):
        c = disjointness(3)
        xs = [f"x{i}" for i in range(1, 4)]
        ys = [f"y{i}" for i in range(1, 4)]
        bad = Vtree.internal(Vtree.balanced(xs), Vtree.balanced(ys))
        _, _, s0 = compile_with_vtree(c, bad)
        best, t = minimize_vtree_for_circuit(c, start=bad, max_rounds=5)
        assert best <= s0
        _, _, check = compile_with_vtree(c, t)
        assert check == best

    def test_neighbor_sampling_path(self):
        rng = np.random.default_rng(0)
        c = chain_and_or(5)
        best, _ = minimize_vtree_for_circuit(
            c, max_rounds=2, max_neighbors=3, rng=rng
        )
        assert best > 0


class TestNnfSerialization:
    def test_round_trip_preserves_structure(self):
        rng = np.random.default_rng(1)
        c = random_circuit(rng, n_vars=4, n_gates=8)
        f = c.function()
        sdd = compile_canonical_sdd(f, Vtree.balanced(sorted(f.variables)))
        with pytest.warns(DeprecationWarning):
            restored = nnf_loads(nnf_dumps(sdd.root))
        assert restored.structural_key() == sdd.root.structural_key()
        assert restored.function(sorted(f.variables)) == f

    def test_container_codec_matches_legacy_strings(self):
        from repro.artifact.format import nnf_from_bytes, nnf_to_bytes

        rng = np.random.default_rng(1)
        c = random_circuit(rng, n_vars=4, n_gates=8)
        f = c.function()
        sdd = compile_canonical_sdd(f, Vtree.balanced(sorted(f.variables)))
        restored = nnf_from_bytes(nnf_to_bytes(sdd.root))
        assert restored.structural_key() == sdd.root.structural_key()

    def test_sharing_survives(self):
        rng = np.random.default_rng(2)
        c = random_circuit(rng, n_vars=4, n_gates=10)
        sdd = compile_canonical_sdd(c.function(), Vtree.balanced(sorted(c.variables)))
        data = nnf_to_dict(sdd.root)
        assert len(data["nodes"]) == sdd.root.size  # one entry per DAG node
        assert nnf_from_dict(data).size == sdd.root.size

    def test_constants_and_literals(self):
        from repro.circuits.nnf import false_node, lit, true_node

        for node in (true_node(), false_node(), lit("x", False)):
            with pytest.warns(DeprecationWarning):
                restored = nnf_loads(nnf_dumps(node))
            assert restored.structural_key() == node.structural_key()

    def test_bad_payload(self):
        with pytest.raises(ValueError):
            nnf_from_dict({"format": "nope"})


class TestCircuitSerialization:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        c = random_circuit(rng, n_vars=3, n_gates=6)
        restored = circuit_from_dict(circuit_to_dict(c))
        assert restored.size == c.size
        assert restored.function(c.variables) == c.function()

    def test_var_dedup_restored(self):
        c = chain_and_or(4)
        restored = circuit_from_dict(circuit_to_dict(c))
        assert restored.add_var("x1") == c.add_var("x1")

    def test_bad_payload(self):
        with pytest.raises(ValueError):
            circuit_from_dict({"format": "nope"})
