"""Tests for the linear-time WMC/model-count sweep of :mod:`repro.sdd.wmc`."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.build import chain_and_or, parity
from repro.circuits.circuit import Circuit
from repro.core.vtree import Vtree
from repro.sdd.manager import SddManager
from repro.sdd.wmc import (
    SddWmcEvaluator,
    exact_weights,
    model_count,
    probability,
    weighted_model_count,
)

from ..conftest import boolean_functions


class TestModelCount:
    @settings(max_examples=40, deadline=None)
    @given(boolean_functions(max_vars=4))
    def test_matches_truth_table(self, f):
        vt = Vtree.balanced(sorted(f.variables))
        mgr = SddManager(vt)
        root = mgr.compile_circuit(Circuit.from_function_dnf(f))
        assert model_count(mgr, root) == f.count_models()

    def test_terminals(self):
        mgr = SddManager(Vtree.balanced(["x", "y"]))
        assert model_count(mgr, mgr.false) == 0
        assert model_count(mgr, mgr.true) == 4
        assert model_count(mgr, mgr.literal("x")) == 2

    def test_scope_extends_count(self):
        mgr = SddManager(Vtree.balanced(["x", "y"]))
        x = mgr.literal("x")
        assert model_count(mgr, x, scope=["x", "y", "z", "w"]) == 8


class TestWeighted:
    @settings(max_examples=30, deadline=None)
    @given(boolean_functions(min_vars=2, max_vars=4))
    def test_fraction_probability_matches_float(self, f):
        vt = Vtree.right_linear(sorted(f.variables))
        mgr = SddManager(vt)
        root = mgr.compile_circuit(Circuit.from_function_dnf(f))
        prob = {v: 0.25 for v in f.variables}
        exact = probability(mgr, root, prob, exact=True)
        assert isinstance(exact, Fraction)
        assert float(exact) == pytest.approx(probability(mgr, root, prob))
        assert float(exact) == pytest.approx(f.probability(prob))

    def test_unnormalized_integer_weights(self):
        """The sweep is ring-generic: integer (1,1) weights count models."""
        mgr = SddManager(Vtree.balanced(["a", "b", "c"]))
        u = mgr.disjoin(
            mgr.conjoin(mgr.literal("a"), mgr.literal("b")),
            mgr.conjoin(mgr.literal("b"), mgr.literal("c")),
        )
        w = {v: (1, 1) for v in "abc"}
        assert weighted_model_count(mgr, u, w) == 3

    def test_missing_weights_raise(self):
        mgr = SddManager(Vtree.balanced(["a", "b"]))
        with pytest.raises(ValueError):
            SddWmcEvaluator(mgr, {"a": (1, 1)})

    def test_exact_weights_decimal_fidelity(self):
        w = exact_weights({"t": 0.1})
        assert w["t"] == (Fraction(9, 10), Fraction(1, 10))


class TestScaleAndSharing:
    def test_deep_vtree_no_recursion_error(self):
        """150-variable right-linear vtree: the iterative sweep must not
        touch Python's recursion limit."""
        n = 150
        c = chain_and_or(n)
        vs = [f"x{i}" for i in range(1, n + 1)]
        mgr = SddManager(Vtree.right_linear(vs))
        root = mgr.compile_circuit(c)
        mc = model_count(mgr, root)
        mc_neg = model_count(mgr, mgr.negate(root))
        assert mc + mc_neg == 1 << n

    def test_shared_evaluator_across_roots(self):
        """One evaluator reused across roots gives the same answers as
        fresh evaluators, while sharing the memo."""
        mgr = SddManager(Vtree.balanced([f"v{i}" for i in range(6)]))
        rng = np.random.default_rng(3)
        from repro.circuits.random_circuits import random_circuit

        roots = [
            mgr.compile_circuit(random_circuit(rng, n_vars=6, n_gates=8))
            for _ in range(4)
        ]
        weights = {f"v{i}": (Fraction(1, 2), Fraction(1, 2)) for i in range(6)}
        shared = SddWmcEvaluator(mgr, weights)
        got = [shared.value(r) for r in roots]
        per_root = []
        for r in roots:
            ev = SddWmcEvaluator(mgr, weights)
            per_root.append(ev.value(r))
            assert len(ev._memo) <= len(shared._memo)
        assert got == per_root

    def test_manager_delegation_consistency(self):
        """`SddManager.count_models`/`weighted_count`/`probability` are the
        same computation as the wmc module."""
        mgr = SddManager(Vtree.right_linear(["a", "b", "c", "d"]))
        u = mgr.disjoin(
            mgr.conjoin(mgr.literal("a"), mgr.literal("b", False)),
            mgr.literal("d"),
        )
        prob = {"a": 0.2, "b": 0.9, "c": 0.5, "d": 0.4}
        assert mgr.count_models(u) == model_count(mgr, u)
        assert mgr.probability(u, prob) == pytest.approx(probability(mgr, u, prob))
        ew = exact_weights(prob)
        assert mgr.weighted_count(u, ew) == weighted_model_count(mgr, u, ew)
