"""Stack-safety regression tests.

Every vtree traversal and SDD operation must run under Python's *default*
recursion limit on instances whose vtree depth far exceeds it — recursive
implementations used to crash at ~1000 leaves (`Vtree.nodes()` during
`SddManager.__init__`) and, after a successful compile, in
``negate``/``condition``/``to_nnf``.  ``n ≈ 2000`` is double the default
limit; the guard test additionally *lowers* the limit so a reintroduced
recursion over depth cannot hide behind an unusually deep interpreter
stack.
"""

from __future__ import annotations

import sys

import pytest

from repro.circuits.build import chain_and_or
from repro.compiler.strategies import natural_variable_order
from repro.core.vtree import Vtree
from repro.sdd.manager import SddManager

N = 2000


@pytest.fixture(scope="module")
def deep_compiled():
    """One chain_and_or(2000) compilation shared by the module's tests."""
    circuit = chain_and_or(N)
    vtree = Vtree.right_linear(natural_variable_order(circuit))
    mgr = SddManager(vtree)
    root = mgr.compile_circuit(circuit)
    return mgr, root


class TestDeepVtree:
    def test_construct_and_traverse(self):
        order = [f"x{i}" for i in range(1, N + 1)]
        t = Vtree.right_linear(order)
        assert t.depth() == N - 1
        assert t.leaf_order() == order
        assert sum(1 for _ in t.nodes()) == 2 * N - 1
        assert t.is_right_linear() and not t.is_left_linear()
        assert len(t.variables) == N

    def test_left_linear_and_balanced(self):
        order = [f"x{i}" for i in range(1, N + 1)]
        t = Vtree.left_linear(order)
        assert t.is_left_linear() and t.depth() == N - 1
        assert t.leaf_order() == order
        b = Vtree.balanced(order)
        assert b.depth() < 2 * N.bit_length()

    def test_repr_of_large_lazy_vtree(self):
        t = Vtree.balanced([f"x{i}" for i in range(1, 71)])
        assert "70 leaves" in repr(t)

    def test_duplicate_leaves_rejected(self):
        xs = [f"x{i}" for i in range(1, 71)]
        with pytest.raises(ValueError, match="share variables"):
            Vtree.internal(Vtree.balanced(xs), Vtree.balanced(xs))
        # Past the eager-check size the error surfaces at materialization.
        big = [f"x{i}" for i in range(1, 401)]
        lazy = Vtree(None, Vtree.balanced(big), Vtree.balanced(big))
        with pytest.raises(ValueError, match="share variables"):
            lazy.leaf_order()
        with pytest.raises(ValueError, match="share variables"):
            _ = lazy.variables
        with pytest.raises(ValueError, match="duplicate vtree leaf"):
            SddManager(lazy)

    def test_nested_roundtrip_and_equality(self):
        order = [f"x{i}" for i in range(1, N + 1)]
        t = Vtree.right_linear(order)
        t2 = Vtree.from_nested(t.to_nested())
        assert t2 == t
        assert hash(t2) == hash(t)
        assert t != Vtree.left_linear(order)

    def test_prune_deep(self):
        order = [f"x{i}" for i in range(1, N + 1)]
        t = Vtree.right_linear(order)
        kept = t.prune_to(order[: N // 2])
        assert len(kept.variables) == N // 2

    def test_render_deep(self):
        # Depth 1500 > default recursion limit; quadratic prefixes keep the
        # full-N version out of the unit suite.
        t = Vtree.right_linear([f"x{i}" for i in range(1, 1501)])
        assert t.render().count("\n") == 2 * 1500 - 2


class TestDeepSddOperations:
    def test_compile(self, deep_compiled):
        mgr, root = deep_compiled
        assert mgr.size(root) > 0

    def test_negate(self, deep_compiled):
        mgr, root = deep_compiled
        neg = mgr.negate(root)
        assert mgr.negate(neg) == root
        assert mgr.count_models(neg) == (1 << N) - mgr.count_models(root)

    def test_condition(self, deep_compiled):
        mgr, root = deep_compiled
        # Conditioning on x1 ∧ x2 satisfies the first disjunct: tautology.
        assert mgr.condition(root, {"x1": 1, "x2": 1}) == mgr.true
        cond = mgr.condition(root, {"x1": 0})
        assert cond not in (mgr.true, mgr.false)

    def test_model_count_and_wmc(self, deep_compiled):
        mgr, root = deep_compiled
        mc = mgr.count_models(root)
        assert 0 < mc < (1 << N)
        p = mgr.probability(root, {f"x{i}": 0.5 for i in range(1, N + 1)})
        assert 0.0 < p < 1.0

    def test_evaluate(self, deep_compiled):
        mgr, root = deep_compiled
        assignment = {f"x{i}": 0 for i in range(1, N + 1)}
        assert mgr.evaluate(root, assignment) is False
        assignment["x1000"] = assignment["x1001"] = 1
        assert mgr.evaluate(root, assignment) is True

    def test_to_nnf(self, deep_compiled):
        mgr, root = deep_compiled
        nnf = mgr.to_nnf(root)
        assert nnf.size > 0


class TestTenThousandVariables:
    """The PR's acceptance criterion end-to-end: chain_and_or(10000)
    compiles, negates, conditions and model-counts under the *default*
    recursion limit.  Also exercises the balanced chain-flattening fold —
    the gate-by-gate fold would need Θ(n²) ≈ 10⁸ manager nodes here."""

    def test_chain_10000_end_to_end(self):
        n = 10_000
        assert sys.getrecursionlimit() <= 1000 * 10  # no raised-limit escape
        circuit = chain_and_or(n)
        vtree = Vtree.right_linear(natural_variable_order(circuit))
        mgr = SddManager(vtree)
        root = mgr.compile_circuit(circuit)
        assert mgr.live_node_count < 60 * n  # O(n log n), not Θ(n²)
        mc = mgr.count_models(root)
        assert 0 < mc < (1 << n)
        neg = mgr.negate(root)
        assert mgr.count_models(neg) == (1 << n) - mc
        assert mgr.condition(root, {"x1": 1, "x2": 1}) == mgr.true
        cond = mgr.condition(root, {"x1": 0})
        assert cond not in (mgr.true, mgr.false)


class TestRecursionGuard:
    """Run a >limit-depth instance with the recursion limit *lowered*, so a
    regression to recursive traversals fails here even if the interpreter
    is started with a raised limit (no ``sys.setrecursionlimit`` escape
    hatches allowed in library code)."""

    def test_pipeline_under_reduced_limit(self):
        n = 500
        circuit = chain_and_or(n)
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(250)
        try:
            vtree = Vtree.right_linear(natural_variable_order(circuit))
            mgr = SddManager(vtree)
            root = mgr.compile_circuit(circuit)
            mgr.negate(root)
            mgr.condition(root, {"x3": 1})
            assert 0 < mgr.count_models(root) < (1 << n)
        finally:
            sys.setrecursionlimit(limit)

    def test_library_does_not_touch_recursion_limit(self):
        import pathlib

        import repro

        src_root = pathlib.Path(repro.__file__).parent
        offenders = [
            p
            for p in src_root.rglob("*.py")
            if "setrecursionlimit" in p.read_text()
        ]
        assert offenders == [], (
            f"library code must stay within the default recursion limit, "
            f"found sys.setrecursionlimit in {offenders}"
        )
