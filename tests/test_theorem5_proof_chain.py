"""The Theorem 5 proof, executed step by step on a small instance.

Proof skeleton (Section 4.1): take a deterministic structured NNF ``C``
for the lineage ``F`` of the inversion chain, condition it on the
Lemma-7 assignments ``b_i`` — conditioning preserves determinism,
structuredness (w.r.t. the *same* vtree) and never increases size [27] —
obtaining circuits ``C_i`` for the ``H^i_{k,n}``; Lemma 8 then pins one
``C_i`` at exponential size.  Every arrow of that chain is checked here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.build import h_function
from repro.comm.lowerbounds import analyze_vtree_for_h
from repro.core.sdd_compile import compile_canonical_sdd
from repro.core.vtree import Vtree
from repro.queries.families import (
    chain_database,
    inversion_chain_query,
    lemma7_assignment,
    tuple_to_h_variable,
)
from repro.queries.lineage import lineage_function


@pytest.fixture(scope="module")
def setting():
    k, n = 1, 2
    query = inversion_chain_query(k)
    db = chain_database(k, n)
    lineage = lineage_function(query, db)
    rename = tuple_to_h_variable(k)(n)
    renamed = lineage.rename({v: rename[v] for v in lineage.variables})
    vtree = Vtree.balanced(sorted(renamed.variables))
    compiled = compile_canonical_sdd(renamed, vtree)
    return k, n, renamed, vtree, compiled


def renamed_assignment(k, n, i):
    rename = tuple_to_h_variable(k)(n)
    return {rename[v]: b for v, b in lemma7_assignment(k, n, i).items()}


class TestProofChain:
    def test_step0_compiled_form_is_det_structured(self, setting):
        k, n, f, vtree, compiled = setting
        assert compiled.root.function(sorted(f.variables)) == f
        assert compiled.root.is_deterministic()
        assert compiled.root.is_structured_by(vtree)

    @pytest.mark.parametrize("i", [0, 1])
    def test_step1_conditioning_yields_hi(self, setting, i):
        """C(b_i, ·) computes H^i_{k,n} (Lemma 7 through the circuit)."""
        k, n, f, vtree, compiled = setting
        b = renamed_assignment(k, n, i)
        conditioned = compiled.root.condition(b)
        target = h_function(k, n, i)
        got = conditioned.function(sorted(set(f.variables) - set(b)))
        assert got == target.extend(sorted(set(f.variables) - set(b)))

    @pytest.mark.parametrize("i", [0, 1])
    def test_step2_conditioning_preserves_properties(self, setting, i):
        """[27]: conditioning keeps determinism and structuredness (same
        vtree) and never increases size."""
        k, n, f, vtree, compiled = setting
        b = renamed_assignment(k, n, i)
        conditioned = compiled.root.condition(b)
        assert conditioned.size <= compiled.root.size
        assert conditioned.is_deterministic()
        assert conditioned.is_structured_by(vtree)

    def test_step3_lemma8_bound_applies(self, setting):
        """Lemma 8 certifies a bound for this vtree; the conditioned
        circuit for the pinned H^i respects it (via Theorems 1–2)."""
        k, n, f, vtree, compiled = setting
        res = analyze_vtree_for_h(vtree, k, n)
        b = renamed_assignment(k, n, res.hard_index)
        conditioned = compiled.root.condition(b)
        assert conditioned.size >= res.bound
        # ... and therefore the original circuit is at least that large:
        assert compiled.root.size >= res.bound

    def test_step4_growth_across_n(self):
        """Putting it together: the compiled lineage grows super-linearly
        in the number of tuples (the 2^{Ω(n/k)} signal at small scale)."""
        sizes, tuples = [], []
        for n in (1, 2, 3):
            query = inversion_chain_query(1)
            db = chain_database(1, n)
            f = lineage_function(query, db)
            vtree = Vtree.balanced(sorted(f.variables))
            compiled = compile_canonical_sdd(f, vtree)
            sizes.append(compiled.size)
            tuples.append(db.size)
        assert sizes[-1] / sizes[0] > tuples[-1] / tuples[0]
