"""Rectangle covers: Lemma 3 canonical covers, Theorem 1 extraction,
Theorem 2 rank lower bound."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.matrix import cm_rank
from repro.comm.rectangles import (
    Rectangle,
    RectangleCover,
    cover_from_factors,
    cover_from_structured_nnf,
    min_disjoint_cover_lower_bound,
)
from repro.core.boolfunc import BooleanFunction
from repro.core.nnf_compile import compile_canonical_nnf
from repro.core.sdd_compile import compile_canonical_sdd
from repro.core.vtree import Vtree

from ..conftest import boolean_functions


class TestRectangle:
    def test_function_is_product(self):
        r = Rectangle(BooleanFunction.var("x"), BooleanFunction.var("y"))
        assert r.function().count_models() == 1

    def test_empty(self):
        r = Rectangle(BooleanFunction.false(["x"]), BooleanFunction.var("y"))
        assert r.is_empty()


class TestFactorCovers:
    @settings(max_examples=30, deadline=None)
    @given(boolean_functions(min_vars=2, max_vars=4))
    def test_lemma3_cover_valid(self, f):
        y = list(f.variables[: f.arity // 2])
        cov = cover_from_factors(f, y)
        cov.validate(f)

    @settings(max_examples=25, deadline=None)
    @given(boolean_functions(min_vars=2, max_vars=4))
    def test_theorem2_respected(self, f):
        """The canonical cover can never beat the rank bound."""
        y = list(f.variables[: f.arity // 2])
        yp = [v for v in f.variables if v not in y]
        cov = cover_from_factors(f, y)
        assert len(cov) >= min_disjoint_cover_lower_bound(f, y, yp) - (
            0 if f.is_satisfiable() else 0
        )

    def test_unsat_function_empty_cover(self):
        f = BooleanFunction.false(["a", "b"])
        cov = cover_from_factors(f, ["a"])
        assert len(cov) == 0
        cov.validate(f)

    def test_disjointness_cover_counts(self):
        """For D_n with the (X, Y) split, every factor is a single
        assignment, and the implicants are exactly the disjoint subset
        pairs: 3^n rectangles, respecting the 2^n rank bound."""
        from repro.circuits.build import disjointness

        n = 3
        f = disjointness(n).function()
        xs = [f"x{i}" for i in range(1, n + 1)]
        ys = [f"y{i}" for i in range(1, n + 1)]
        cov = cover_from_factors(f, xs)
        cov.validate(f)
        assert len(cov) == 3 ** n
        assert cm_rank(f, xs, ys) == 2 ** n <= len(cov)


class TestTheorem1Extraction:
    @settings(max_examples=15, deadline=None)
    @given(boolean_functions(min_vars=3, max_vars=4), st.integers(0, 1000))
    def test_cover_valid_at_every_node(self, f, seed):
        """The extracted cover is a valid disjoint cover at *every* vtree
        node, and always respects the Theorem-2 rank bound."""
        rng = np.random.default_rng(seed)
        vs = sorted(f.variables)
        t = Vtree.random(vs, rng)
        compiled = compile_canonical_sdd(f, t)
        for v in t.internal_nodes():
            left = v.left
            if left is None or left.is_leaf:
                continue
            cov = cover_from_structured_nnf(compiled.root, f, t, left)
            cov.validate(f)
            y = [x for x in vs if x in left.variables]
            yp = [x for x in vs if x not in left.variables]
            if y and yp:
                assert len(cov) >= cm_rank(f, y, yp)

    @settings(max_examples=15, deadline=None)
    @given(boolean_functions(min_vars=3, max_vars=4), st.integers(0, 1000))
    def test_size_bound_at_root_split(self, f, seed):
        """Theorem 1's |C| bound, constructive case: at the root split the
        cover's rectangles are the root-structured AND gates of C_{F,T}."""
        rng = np.random.default_rng(seed)
        vs = sorted(f.variables)
        t = Vtree.random(vs, rng)
        compiled = compile_canonical_nnf(f, t)
        cov = cover_from_structured_nnf(compiled.root, f, t, t.left)
        cov.validate(f)
        if f.is_satisfiable() and not f.is_constant():
            root_gates = compiled.and_gates_per_node.get(id(t), 0)
            assert len(cov) == root_gates
            assert len(cov) <= max(compiled.root.size, 1)

    def test_extract_from_canonical_nnf(self):
        rng = np.random.default_rng(3)
        vs = ["a", "b", "c", "d"]
        f = BooleanFunction.random(vs, rng)
        t = Vtree.balanced(vs)
        compiled = compile_canonical_nnf(f, t)
        cov = cover_from_structured_nnf(compiled.root, f, t, t.left)
        cov.validate(f)
        assert cov.block1 == ("a", "b")
        assert len(cov) <= compiled.root.size
