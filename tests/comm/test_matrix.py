"""Communication matrix and exact rank tests (Section 2.2, eq. (8))."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.build import disjointness
from repro.comm.matrix import cm_rank, communication_matrix, disjointness_rank, exact_rank
from repro.core.boolfunc import BooleanFunction

from ..conftest import boolean_functions


class TestCommunicationMatrix:
    def test_shape(self):
        f = disjointness(2).function()
        m = communication_matrix(f, ["x1", "x2"], ["y1", "y2"])
        assert m.shape == (4, 4)

    def test_entries(self):
        f = BooleanFunction.from_callable(["a", "b"], lambda a, b: a and b)
        m = communication_matrix(f, ["a"], ["b"])
        assert m.tolist() == [[0, 0], [0, 1]]

    def test_blocks_must_partition(self):
        f = disjointness(1).function()
        with pytest.raises(ValueError):
            communication_matrix(f, ["x1"], ["x1"])
        with pytest.raises(ValueError):
            communication_matrix(f, ["x1"], [])


class TestExactRank:
    def test_identity(self):
        assert exact_rank(np.eye(5, dtype=int)) == 5

    def test_all_ones(self):
        assert exact_rank(np.ones((4, 4), dtype=int)) == 1

    def test_zero(self):
        assert exact_rank(np.zeros((3, 3), dtype=int)) == 0

    def test_known_rank_2(self):
        m = [[1, 0, 1], [0, 1, 1], [1, 1, 2]]
        assert exact_rank(m) == 2

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 5), st.integers(1, 5), st.integers(0, 10_000))
    def test_matches_numpy_on_random_small(self, r, c, seed):
        rng = np.random.default_rng(seed)
        m = rng.integers(0, 2, size=(r, c))
        assert exact_rank(m) == np.linalg.matrix_rank(m)

    def test_no_float_blowup(self):
        """Fraction-free elimination keeps exactness where floats round:
        a scaled near-singular integer matrix."""
        m = [[2, 4, 6], [1, 2, 3], [3, 6, 9]]
        assert exact_rank(m) == 1

    def test_empty(self):
        assert exact_rank(np.zeros((0, 0), dtype=int)) == 0


class TestEq8:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6])
    def test_disjointness_full_rank(self, n):
        """Equation (8): cm(D_n) has full rank 2^n."""
        assert disjointness_rank(n) == 2 ** n

    def test_complement_rank_lower_bound(self):
        """The Claim-3 linear algebra: rank(1 - cm) >= 2^n - 1."""
        n = 3
        f = ~disjointness(n).function()
        xs = [f"x{i}" for i in range(1, n + 1)]
        ys = [f"y{i}" for i in range(1, n + 1)]
        assert cm_rank(f, xs, ys) >= 2 ** n - 1
