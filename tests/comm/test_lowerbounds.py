"""Lemma 8 / Claims 2–4 machinery tests, plus the end-to-end Theorem 5
consequence: measured SDD sizes respect the certified lower bounds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.build import h_function, xvar, yvar, zvar
from repro.comm.lowerbounds import (
    analyze_vtree_for_h,
    balanced_node,
    theorem5_bound,
)
from repro.core.sdd_compile import compile_canonical_sdd
from repro.core.vtree import Vtree


def h_vars(k: int, n: int) -> list[str]:
    out = {xvar(l) for l in range(1, n + 1)} | {yvar(m) for m in range(1, n + 1)}
    for i in range(1, k + 1):
        out |= {zvar(i, l, m) for l in range(1, n + 1) for m in range(1, n + 1)}
    return sorted(out)


class TestClaim2:
    @pytest.mark.parametrize("shape", ["balanced", "right", "left"])
    def test_balanced_node_in_range(self, shape):
        vs = [f"w{i}" for i in range(20)] + [f"pad{i}" for i in range(10)]
        weight = frozenset(v for v in vs if v.startswith("w"))
        t = {
            "balanced": Vtree.balanced(vs),
            "right": Vtree.right_linear(vs),
            "left": Vtree.left_linear(vs),
        }[shape]
        v = balanced_node(t, weight)
        m = len(weight)
        inside = len(v.variables & weight)
        assert m / 5 < inside <= 4 * m / 5 + 1  # Claim 2's window (integer slack)

    def test_no_weight_vars_raises(self):
        with pytest.raises(ValueError):
            balanced_node(Vtree.leaf("x"), frozenset({"zzz"}))


class TestLemma8Analysis:
    @pytest.mark.parametrize("k,n", [(1, 2), (1, 3), (2, 2)])
    def test_analysis_produces_certified_bound(self, k, n):
        for t in (
            Vtree.balanced(h_vars(k, n)),
            Vtree.right_linear(h_vars(k, n)),
        ):
            res = analyze_vtree_for_h(t, k, n)
            assert res.case in ("claim3", "claim4")
            assert 0 <= res.hard_index <= k
            assert res.bound >= 1

    def test_missing_vars_rejected(self):
        with pytest.raises(ValueError):
            analyze_vtree_for_h(Vtree.balanced(["a", "b"]), 1, 2)

    @pytest.mark.parametrize("k,n", [(1, 2)])
    def test_bound_holds_against_actual_sdd(self, k, n):
        """End to end: for the vtree analyzed, the canonical SDD of the
        pinned H^i really is at least as large as the certified bound —
        the executable content of Lemma 8 (via Theorems 1 and 2)."""
        rng = np.random.default_rng(0)
        vs = h_vars(k, n)
        for t in [Vtree.balanced(vs), Vtree.random(vs, rng)]:
            res = analyze_vtree_for_h(t, k, n)
            f = h_function(k, n, res.hard_index)
            compiled = compile_canonical_sdd(f, t)
            assert compiled.size >= res.bound, (res.case, res.details)


class TestTheorem5Floor:
    def test_monotone_in_n(self):
        values = [theorem5_bound(1, n) for n in (5, 10, 15, 20)]
        assert values == sorted(values)
        assert values[-1] > values[0]

    def test_decreasing_in_k(self):
        assert theorem5_bound(1, 20) >= theorem5_bound(4, 20)

    def test_floor_at_least_one(self):
        assert theorem5_bound(10, 1) == 1
