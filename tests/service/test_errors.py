"""The typed error hierarchy: classes, fields, and pickle round trips.

Tier-1 (no marker, no processes): these are the contracts everything in
the fault-tolerance layer leans on — callers branch on exception *types*
and *fields*, and the spawn pool ships exceptions through pickles, so a
class that loses its fields (or its identity) in a round trip would
silently degrade typed failures into strings.
"""

from __future__ import annotations

import pickle

import pytest

from repro.service.errors import (
    AdmissionError,
    Deadline,
    DeadlineExceeded,
    PoolClosed,
    QuotaExceeded,
    ServiceError,
    ServiceSaturated,
    TaskPoisoned,
    WorkerRetired,
)


class TestHierarchy:
    def test_every_failure_is_a_service_error(self):
        for exc in (
            ServiceSaturated(3, 4, 0.1),
            QuotaExceeded("s", 10, 5),
            DeadlineExceeded(1.5, "apply"),
            TaskPoisoned("R(x)", 3),
            PoolClosed(),
            WorkerRetired(2, 5),
        ):
            assert isinstance(exc, ServiceError)

    def test_admission_errors_keep_their_base(self):
        assert issubclass(ServiceSaturated, AdmissionError)
        assert issubclass(QuotaExceeded, AdmissionError)

    def test_pool_closed_is_still_a_runtime_error(self):
        # Closed-pool submission has raised RuntimeError since PR 7;
        # callers catching that must keep working.
        assert isinstance(PoolClosed(), RuntimeError)

    def test_admission_module_reexports(self):
        from repro.service import admission

        assert admission.ServiceSaturated is ServiceSaturated
        assert admission.QuotaExceeded is QuotaExceeded
        assert admission.AdmissionError is AdmissionError

    def test_package_reexports(self):
        import repro.service as service

        assert service.DeadlineExceeded is DeadlineExceeded
        assert service.TaskPoisoned is TaskPoisoned
        assert service.ServiceError is ServiceError


class TestPickleRoundTrips:
    """Same type, same fields, same message — the spawn pipe contract."""

    @pytest.mark.parametrize(
        "exc",
        [
            ServiceSaturated(7, 16, 0.25),
            QuotaExceeded("tenant-a", 123, 100),
            DeadlineExceeded(0.5, "d-DNNF bag compilation"),
            TaskPoisoned("R(x),S(x,y)", 3),
            PoolClosed("pool closed"),
            WorkerRetired(1, 5),
        ],
        ids=lambda e: type(e).__name__,
    )
    def test_round_trip(self, exc):
        back = pickle.loads(pickle.dumps(exc))
        assert type(back) is type(exc)
        assert str(back) == str(exc)
        for slot, value in vars(exc).items():
            assert getattr(back, slot) == value

    def test_fields_survive(self):
        back = pickle.loads(pickle.dumps(ServiceSaturated(7, 16, 0.25)))
        assert (back.in_flight, back.max_in_flight, back.retry_after) == (7, 16, 0.25)
        back = pickle.loads(pickle.dumps(DeadlineExceeded(0.5, "apply")))
        assert (back.timeout, back.where) == (0.5, "apply")
        back = pickle.loads(pickle.dumps(TaskPoisoned("q", 3)))
        assert (back.task, back.kills) == ("q", 3)


class TestDeadlineToken:
    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Deadline(-1.0)

    def test_fake_clock_lifecycle(self):
        now = [100.0]
        d = Deadline(5.0, clock=lambda: now[0])
        assert d.remaining() == 5.0
        assert not d.expired()
        d.check("early")  # no raise
        now[0] = 104.9
        assert not d.expired()
        now[0] = 105.1
        assert d.expired()
        assert d.remaining() < 0
        with pytest.raises(DeadlineExceeded) as ei:
            d.check("apply compilation")
        assert ei.value.timeout == 5.0
        assert ei.value.where == "apply compilation"
        assert "apply compilation" in str(ei.value)
