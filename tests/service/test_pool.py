"""WorkerPool: persistent warm workers answer bit-identically to serial.

The determinism harness of the service tentpole, pool layer: for every
worker count, steal setting, and forced steal schedule (skewed shards
that pile every query onto one worker's queue), the pool must reproduce
the serial engine's answers *exactly* — same ``Fraction`` numerators,
same float bit patterns, same compiled sizes — and its engines must
survive batch after batch (threads: the same live engine objects; spawn:
the same child pids).
"""

from __future__ import annotations

import threading

import pytest

from repro.queries.database import ProbabilisticDatabase, complete_database
from repro.queries.engine import QueryEngine
from repro.queries.parallel import ParallelQueryEngine, shard_of
from repro.queries.syntax import parse_ucq
from repro.service import WorkerPool

pytestmark = pytest.mark.service

QUERIES = [
    "R(x),S(x,y)",
    "S(x,y)",
    "R(x),S(x,x)",
    "R(x),S(x,y) | S(y,y)",
    "S(x,x)",
    "R(x) | S(x,y)",
]


def _db(domain: int = 3, p: float = 0.4) -> ProbabilisticDatabase:
    return complete_database({"R": 1, "S": 2}, domain, p=p)


def _queries():
    return [parse_ucq(t) for t in QUERIES]


def _serial_expectations(db, qs, exact=True):
    engine = QueryEngine(db)
    return [engine.probability(q, exact=exact) for q in qs], engine.vtree


class _Blocker:
    """A fake query that pins whichever worker executes it: the first
    engine attribute access records the worker (parsed from its thread
    name), signals ``started``, and parks until ``release`` — then every
    access raises, so the pinned worker survives with a failed task."""

    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()
        self.worker = -1

    def __getattr__(self, name):
        if not self.started.is_set():
            self.worker = int(threading.current_thread().name.rsplit("-", 1)[1])
            self.started.set()
            self.release.wait(timeout=60)
        raise AttributeError(name)


def _items_by_shard(qs, workers, seed=0):
    items: dict[int, list] = {}
    for i, q in enumerate(qs):
        items.setdefault(shard_of(q, workers, seed), []).append((i, q))
    return items


class TestBitIdenticalToSerial:
    @pytest.mark.parametrize("workers", [1, 2, 3, 5, 8])
    @pytest.mark.parametrize("steal", [False, True])
    def test_every_worker_count_and_steal_setting(self, workers, steal):
        db = _db()
        qs = _queries()
        expect, vtree = _serial_expectations(db, qs)
        with WorkerPool(db, workers=workers, vtree=vtree, steal=steal) as pool:
            results = pool.run_batch(_items_by_shard(qs, workers), exact=True)
            assert [results[i].probability for i in range(len(qs))] == expect

    def test_forced_steal_schedule_skewed_shards(self):
        """Force a steal schedule that no scheduler accident can dodge:
        a sentinel task pins whichever worker picks it up, then the whole
        batch lands on the *pinned* worker's shard — every query MUST be
        stolen by the other workers, and the answers must still be
        bit-identical to serial.  (Timing-based skew is not reliable on a
        single-core box: one thread can legally drain the queue alone.)"""
        db = _db()
        qs = _queries() * 3
        expect, vtree = _serial_expectations(db, qs)
        blocker = _Blocker()
        with WorkerPool(db, workers=4, vtree=vtree, steal=True) as pool:
            blocked_future = pool.submit(0, blocker, exact=True)
            assert blocker.started.wait(timeout=30), "no worker picked the pin"
            pinned = blocker.worker
            futures = [pool.submit(pinned, q, exact=True) for q in qs]
            results = [f.result(timeout=60) for f in futures]
            blocker.release.set()
            with pytest.raises(Exception):
                blocked_future.result(timeout=60)
            stats = pool.stats()
        assert [r.probability for r in results] == expect
        # The pinned worker owned the shard, so every answer was stolen.
        assert stats["pool_steals"] >= len(qs)
        assert all(r.worker != pinned for r in results)

    def test_float_path_bit_identical(self):
        db = _db()
        qs = _queries()
        expect, vtree = _serial_expectations(db, qs, exact=False)
        with WorkerPool(db, workers=3, vtree=vtree) as pool:
            results = pool.run_batch(_items_by_shard(qs, 3))
            got = [results[i].probability for i in range(len(qs))]
            assert got == expect  # exact float equality: same bits

    def test_sizes_match_serial(self):
        db = _db()
        qs = _queries()
        serial = QueryEngine(db)
        sizes = []
        for q in qs:
            serial.probability(q)
            sizes.append(serial.compiled_size(q))
        with WorkerPool(db, workers=2, vtree=serial.vtree) as pool:
            results = pool.run_batch(_items_by_shard(qs, 2))
            assert [results[i].size for i in range(len(qs))] == sizes


class TestPersistence:
    def test_threads_engines_survive_batches(self):
        db = _db()
        qs = _queries()
        _, vtree = _serial_expectations(db, qs)
        # steal=False pins ownership, so the hit count is deterministic
        # and no engine is lazily born by a late steal.
        with WorkerPool(db, workers=2, vtree=vtree, steal=False) as pool:
            pool.run_batch(_items_by_shard(qs, 2))
            engines_after_first = pool.engines()
            for _ in range(3):
                pool.run_batch(_items_by_shard(qs, 2))
            assert pool.engines() == engines_after_first  # same objects
            assert pool.batches_served == 4
            # Warm engines: the repeats were compiled-query cache hits.
            total_hits = sum(
                s["cache_hits"] for s in pool.worker_stats().values()
            )
            assert total_hits >= 3 * len(qs)

    def test_steal_disabled_keeps_shard_ownership(self):
        db = _db()
        qs = _queries()
        _, vtree = _serial_expectations(db, qs)
        with WorkerPool(db, workers=3, vtree=vtree, steal=False) as pool:
            items = _items_by_shard(qs, 3)
            results = pool.run_batch(items)
            for shard, shard_items in items.items():
                for idx, _q in shard_items:
                    assert results[idx].worker == shard
            assert pool.stats()["pool_steals"] == 0

    def test_ddnnf_backend_pool(self):
        db = _db(domain=2, p=0.3)
        qs = _queries()
        expect, _ = _serial_expectations(db, qs)
        with WorkerPool(db, workers=2, vtree=None, backend="ddnnf") as pool:
            results = pool.run_batch(_items_by_shard(qs, 2), exact=True)
            assert [results[i].probability for i in range(len(qs))] == expect

    def test_per_worker_budget_stays_exact(self):
        db = _db()
        qs = _queries() * 2
        expect, vtree = _serial_expectations(db, qs)
        with WorkerPool(db, workers=2, vtree=vtree, max_nodes=1) as pool:
            results = pool.run_batch(_items_by_shard(qs, 2), exact=True)
            assert [results[i].probability for i in range(len(qs))] == expect
            assert sum(
                s["queries_evicted"] for s in pool.worker_stats().values()
            ) > 0


class TestLifecycle:
    def test_close_fails_queued_work_and_rejects_new(self):
        db = _db(domain=2)
        _, vtree = _serial_expectations(db, _queries())
        pool = WorkerPool(db, workers=1, vtree=vtree)
        pool.start()
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError):
            pool.submit(0, parse_ucq("R(x)"))

    def test_validation(self):
        db = _db(domain=2)
        with pytest.raises(ValueError):
            WorkerPool(db, workers=0, vtree=None, backend="ddnnf")
        with pytest.raises(ValueError):
            WorkerPool(db, workers=1, vtree=None)  # sdd needs a vtree
        with pytest.raises(ValueError):
            WorkerPool(db, workers=1, vtree=None, backend="ddnnf", mode="fork")

    def test_worker_exception_reaches_future_and_pool_survives(self):
        db = _db(domain=2)
        qs = _queries()
        expect, vtree = _serial_expectations(db, qs)

        with WorkerPool(db, workers=1, vtree=vtree) as pool:
            good = pool.run_batch({0: list(enumerate(qs))}, exact=True)
            assert [good[i].probability for i in range(len(qs))] == expect
            f = pool.submit(0, "not a query")  # blows up inside the worker
            with pytest.raises(Exception):
                f.result(timeout=60)
            # The worker thread survived the failed task.
            again = pool.run_batch({0: list(enumerate(qs))}, exact=True)
            assert [again[i].probability for i in range(len(qs))] == expect


class TestSpawnPool:
    """One spawn-mode pass: identical answers, stable pids across 3+
    batches (the warm-process guarantee), and clean shutdown."""

    def test_spawn_pool_persists_and_matches_serial(self):
        db = _db()
        qs = _queries()
        expect, vtree = _serial_expectations(db, qs)
        with WorkerPool(
            db, workers=2, vtree=vtree, mode="spawn", steal=False
        ) as pool:
            pids = None
            for _ in range(3):
                results = pool.run_batch(_items_by_shard(qs, 2), exact=True)
                assert [results[i].probability for i in range(len(qs))] == expect
                if pids is None:
                    pids = pool.worker_pids()
                    assert len(pids) == 2
                else:
                    assert pool.worker_pids() == pids  # same warm children
            stats = pool.worker_stats()
            assert sum(s["cache_hits"] for s in stats.values()) >= 2 * len(qs)
        for proc in pool._procs:
            assert not proc.is_alive()

    def test_spawn_forced_steal_matches_serial(self):
        db = _db()
        qs = _queries()
        expect, vtree = _serial_expectations(db, qs)
        with WorkerPool(db, workers=3, vtree=vtree, mode="spawn") as pool:
            results = pool.run_batch({1: list(enumerate(qs))}, exact=True)
            assert [results[i].probability for i in range(len(qs))] == expect
            assert pool.stats()["pool_steals"] > 0


class TestPersistentParallelEngine:
    """ParallelQueryEngine(persistent=True) rides the pool and stays
    bit-identical to both serial and its own classic batch path."""

    @pytest.mark.parametrize("mode", ["threads", "spawn"])
    def test_matches_classic_and_serial(self, mode):
        db = _db()
        qs = _queries()
        expect, _ = _serial_expectations(db, qs)
        classic = ParallelQueryEngine(db, workers=3, mode=mode).evaluate(
            qs, exact=True
        )
        with ParallelQueryEngine(
            db, workers=3, mode=mode, persistent=True
        ) as persistent:
            batches = [persistent.evaluate(qs, exact=True) for _ in range(3)]
        for batch in batches:
            assert batch.probabilities == classic.probabilities == expect
            assert batch.sizes == classic.sizes
            assert batch.shards == classic.shards
        assert persistent.pool.batches_served == 3

    def test_close_is_idempotent_and_classic_noop(self):
        db = _db(domain=2)
        engine = ParallelQueryEngine(db, workers=2)
        engine.close()  # no pool: no-op
        with ParallelQueryEngine(db, workers=2, persistent=True) as engine:
            engine.evaluate(_queries())
        engine.close()  # second close after __exit__
