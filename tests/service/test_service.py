"""QueryService: sessions, shared answer cache, admission control.

The service-layer half of the ``-m service`` suite: the asyncio front
door must answer bit-identically to a serial engine for every worker
count, reject over-quota and over-capacity submissions *deterministically*
(same rejection at the same submission, independent of scheduling), share
answers across sessions through the content-keyed cache, and keep one
warm pool alive across batches and sessions.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.compiler.cache import LruStatsCache, fingerprint
from repro.queries.database import ProbabilisticDatabase, complete_database
from repro.queries.engine import QueryEngine
from repro.queries.syntax import parse_ucq
from repro.service import (
    AdmissionController,
    QueryService,
    QuotaExceeded,
    ServiceSaturated,
)

pytestmark = pytest.mark.service

QUERIES = [
    "R(x),S(x,y)",
    "S(x,y)",
    "R(x),S(x,x)",
    "R(x),S(x,y) | S(y,y)",
    "S(x,x)",
    "R(x) | S(x,y)",
]


def _db(domain: int = 3, p: float = 0.4) -> ProbabilisticDatabase:
    return complete_database({"R": 1, "S": 2}, domain, p=p)


def _queries():
    return [parse_ucq(t) for t in QUERIES]


def _expect(db, qs, exact=True):
    engine = QueryEngine(db)
    return [engine.probability(q, exact=exact) for q in qs]


class TestBitIdenticalService:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_submit_sync_matches_serial(self, workers):
        db = _db()
        qs = _queries()
        expect = _expect(db, qs)
        with QueryService(db, workers=workers) as svc:
            answers = svc.submit_sync(qs, exact=True)
            assert [a.probability for a in answers] == expect
            again = svc.submit_sync(qs, exact=True)
            assert [a.probability for a in again] == expect
            assert all(a.cached for a in again)

    def test_async_sessions_agree_with_serial(self):
        db = _db()
        qs = _queries()
        expect = _expect(db, qs)
        with QueryService(db, workers=3) as svc:

            async def drive():
                return await asyncio.gather(
                    *(
                        svc.submit(qs, session=f"s{i}", exact=True)
                        for i in range(8)
                    )
                )

            for answers in asyncio.run(drive()):
                assert [a.probability for a in answers] == expect
            assert svc.stats()["service_sessions"] == 8

    def test_ddnnf_backend_service(self):
        db = _db(domain=2, p=0.3)
        qs = _queries()
        expect = _expect(db, qs)
        with QueryService(db, workers=2, backend="ddnnf") as svc:
            answers = svc.submit_sync(qs, exact=True)
            assert [a.probability for a in answers] == expect
            assert svc.stats()["engine_backend"] == "ddnnf"


class TestAnswerCache:
    def test_cross_session_sharing_and_normalization(self):
        db = _db(domain=2)
        with QueryService(db, workers=2) as svc:
            p1 = svc.probability(parse_ucq("R(x),S(x,y)"), session="alice")
            # Same query, different atom order, different session: a hit.
            answers = svc.submit_sync(
                [parse_ucq("S(x,y),R(x)")], session="bob"
            )
            assert answers[0].cached
            assert answers[0].probability == p1
            s = svc.stats()
            assert s["cache_hits"] == 1 and s["cache_misses"] == 1

    def test_exact_and_float_keyed_separately(self):
        db = _db(domain=2)
        q = parse_ucq("S(x,y)")
        with QueryService(db, workers=1) as svc:
            exact = svc.submit_sync([q], exact=True)[0]
            floaty = svc.submit_sync([q], exact=False)[0]
            assert not floaty.cached  # different value ring, different key
            assert float(exact.probability) == pytest.approx(floaty.probability)

    def test_capacity_evicts_and_counts(self):
        db = _db(domain=2)
        qs = _queries()
        with QueryService(db, workers=2, cache_capacity=2) as svc:
            svc.submit_sync(qs)
            svc.submit_sync(qs)
            s = svc.stats()
            assert s["cache_entries"] <= 2
            assert s["cache_evictions"] > 0
            assert s["cache_capacity"] == 2

    def test_stats_expose_all_cache_counters(self):
        db = _db(domain=2)
        with QueryService(db, workers=1) as svc:
            svc.submit_sync(_queries())
            s = svc.stats()
            for key in ("cache_hits", "cache_misses", "cache_evictions",
                        "cache_entries", "pool_steals", "admission_admitted",
                        "engine_cache_hits", "engine_cache_misses"):
                assert key in s, key


class TestAdmissionControl:
    def test_quota_rejection_is_deterministic(self):
        db = _db()
        qs = _queries()
        rejected_at = []
        for _trial in range(3):
            with QueryService(db, workers=2, session_quota=50) as svc:
                for i, q in enumerate(qs):
                    try:
                        svc.submit_sync([q], session="metered")
                    except QuotaExceeded:
                        rejected_at.append(i)
                        break
                else:  # pragma: no cover - quota must bind
                    pytest.fail("quota never bound")
        # Same rejection point on every run: compiled sizes are canonical.
        assert len(set(rejected_at)) == 1
        assert rejected_at[0] >= 1  # first query always admitted

    def test_quota_is_per_session(self):
        db = _db(domain=2)
        q = parse_ucq("R(x),S(x,y)")
        with QueryService(db, workers=1, session_quota=1) as svc:
            svc.submit_sync([q], session="one")
            with pytest.raises(QuotaExceeded):
                svc.submit_sync([q], session="one")
            # An independent session has its own ledger (and gets a cache
            # hit, which still charges its quota).
            answers = svc.submit_sync([q], session="two")
            assert answers[0].cached
            with pytest.raises(QuotaExceeded):
                svc.submit_sync([q], session="two")

    def test_session_quota_override_and_ledger(self):
        db = _db(domain=2)
        q = parse_ucq("S(x,y)")
        with QueryService(db, workers=1, session_quota=1) as svc:
            svc.session("vip", max_nodes=10**9)
            for _ in range(5):
                svc.submit_sync([q], session="vip")
            ledger = svc.session_stats()["vip"]
            assert ledger["queries_answered"] == 5
            assert ledger["nodes_used"] > 0
            assert ledger["queries_rejected"] == 0

    def test_saturation_rejects_whole_batch_with_retry_after(self):
        db = _db(domain=2)
        qs = _queries()
        with QueryService(db, workers=1, max_in_flight=3) as svc:
            with pytest.raises(ServiceSaturated) as exc:
                svc.submit_sync(qs)  # 6 > 3: all-or-nothing rejection
            assert exc.value.retry_after > 0
            # Nothing was admitted: a fitting batch still runs fine.
            answers = svc.submit_sync(qs[:3])
            assert len(answers) == 3
            s = svc.stats()
            assert s["admission_rejected"] == len(qs)
            assert s["admission_in_flight"] == 0

    def test_closed_service_rejects(self):
        db = _db(domain=2)
        svc = QueryService(db, workers=1)
        svc.submit_sync([parse_ucq("R(x)")])
        svc.close()
        svc.close()  # idempotent
        with pytest.raises(RuntimeError):
            svc.submit_sync([parse_ucq("R(x)")])

    def test_empty_batch_rejected(self):
        with QueryService(_db(domain=2), workers=1) as svc:
            with pytest.raises(ValueError):
                svc.submit_sync([])


class TestPoolSurvivesBatches:
    def test_three_batches_reuse_engines_and_db(self):
        db = _db()
        qs = _queries()
        expect = _expect(db, qs)
        with QueryService(db, workers=2) as svc:
            svc.submit_sync(qs, exact=True, session="warmup")
            engines = svc.pool.engines()
            for i in range(3):
                answers = svc.submit_sync(qs, exact=True, session=f"batch{i}")
                assert [a.probability for a in answers] == expect
            assert svc.pool.engines() == engines  # same live objects
            # Later batches were answered from the shared cache: the
            # engines compiled each distinct query exactly once.
            assert svc.stats()["engine_queries_compiled"] == len(qs)

    def test_spawn_service_stable_pids(self):
        db = _db()
        qs = _queries()
        expect = _expect(db, qs)
        with QueryService(db, workers=2, mode="spawn", cache_capacity=1) as svc:
            pids = None
            for i in range(3):
                # cache_capacity=1 forces real pool round-trips each batch.
                answers = svc.submit_sync(qs, exact=True, session=f"b{i}")
                assert [a.probability for a in answers] == expect
                if pids is None:
                    pids = svc.pool.worker_pids()
                else:
                    assert svc.pool.worker_pids() == pids


class TestCachePlumbing:
    """Unit coverage for the shared cache/fingerprint helpers."""

    def test_fingerprint_is_stable_and_prefix_safe(self):
        assert fingerprint("ab", "c") != fingerprint("a", "bc")
        assert fingerprint("x") == fingerprint("x")
        assert fingerprint("x", digest_size=8) != fingerprint("y", digest_size=8)

    def test_database_fingerprint_content_keyed(self):
        a, b = _db(domain=2), _db(domain=2)
        assert a.fingerprint() == b.fingerprint()  # rebuilt identically
        b.add("R", 99, p=0.5)
        assert a.fingerprint() != b.fingerprint()

    def test_ucq_normalized_commutes(self):
        assert (
            parse_ucq("S(x,y),R(x) | R(x)").normalized()
            == parse_ucq("R(x) | R(x),S(x,y)").normalized()
        )
        assert (
            parse_ucq("R(x),R(x)").normalized() == parse_ucq("R(x)").normalized()
        )

    def test_lru_stats_cache(self):
        cache = LruStatsCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes a
        cache.put("c", 3)  # evicts b
        assert "b" not in cache
        assert cache.get("b") is None
        assert cache.peek("a") == 1
        s = cache.stats()
        assert s == {
            "cache_entries": 2,
            "cache_capacity": 2,
            "cache_hits": 1,
            "cache_misses": 1,
            "cache_evictions": 1,
            "cache_expired": 0,
        }
        with pytest.raises(ValueError):
            LruStatsCache(capacity=0)

    def test_admission_controller_accounting(self):
        ac = AdmissionController(max_in_flight=4)
        ac.try_admit(3)
        with pytest.raises(ServiceSaturated):
            ac.try_admit(2)
        ac.release(3)
        ac.try_admit(4)
        ac.release(4)
        s = ac.stats()
        assert s["admission_admitted"] == 7
        assert s["admission_rejected"] == 2
        assert s["admission_peak_in_flight"] == 4
        with pytest.raises(RuntimeError):
            ac.release(1)
        with pytest.raises(ValueError):
            AdmissionController(max_in_flight=0)
